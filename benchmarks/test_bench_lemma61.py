"""Benchmark E-L61: regenerate and verify E-L61 at bench scale."""

from repro.experiments.lemma61 import TITLE, run

from .conftest import run_once


def test_bench_lemma61(benchmark, bench_config):
    """E-L61 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["forward_ok"]
    assert result.data["contrapositive_ok"]
