"""Benchmark E-L64: regenerate and verify E-L64 at bench scale."""

from repro.experiments.lemma64 import TITLE, run

from .conftest import run_once


def test_bench_lemma64(benchmark, bench_config):
    """E-L64 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["g_ok"]
    assert result.data["cr_broken"]
