"""Benchmark E-C56: regenerate and verify E-C56 at bench scale."""

from repro.experiments.claim56 import TITLE, run

from .conftest import run_once


def test_bench_claim56(benchmark, bench_config):
    """E-C56 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["monotone"]
    assert all(result.data["witnesses"].values())
