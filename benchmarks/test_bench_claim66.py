"""Benchmark E-C66: regenerate and verify E-C66 at bench scale."""

from repro.experiments.claim66 import TITLE, run

from .conftest import run_once


def test_bench_claim66(benchmark, bench_config):
    """E-C66 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["all_zero"]
    assert result.data["honest_pass_through"]
    assert result.data["rigged_values_seen"] == [0, 1]
