"""Benchmark E-COST: regenerate and verify the measured-complexity report."""

from repro.experiments.cost import TITLE, run

from .conftest import run_once


def test_bench_cost(benchmark, bench_config):
    """E-COST — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    checks = result.data["checks"]
    # Every certification must hold individually, not just their conjunction.
    failing = [name for name, ok in checks.items() if not ok]
    assert not failing, f"failed cost certifications: {failing}"

    measured = result.data["measured"]
    sizes = sorted(measured["sequential"])
    n_hi = sizes[-1]
    # The round separation, from measured counters.
    assert measured["sequential"][n_hi]["rounds"] == n_hi
    assert measured["cgma"][n_hi]["rounds"] == 3 * n_hi + 1
    assert measured["gennaro"][n_hi]["rounds"] == measured["gennaro"][sizes[0]]["rounds"]
    # Counter/transcript exactness on a deterministic seed.
    for per_n in measured.values():
        for record in per_n.values():
            assert record["counters_match_transcript"]
            assert record["seed"] == bench_config.seed
    # The emulation's message blowup is at least quadratic in n.
    for n, record in result.data["emulation"].items():
        assert record["message_blowup"] >= (n - 1) ** 2
