"""Benchmark the parallel engine: serial vs 2/4/8-worker wall-clock.

Runs the E-COST + E-C56 + E-C66 subset (the fast, representative slice
of the sharded experiments) through ``run_many`` at each worker count,
asserts serial/parallel result equality, and records the measured
wall-clocks — plus the speedups and the CPU budget they were measured
under — as ``results/BENCH_parallel.json``.

Interpretation note: speedup is bounded by the CPUs actually available
(``cpu_budget`` in the artifact).  On a single-core runner the workers
buy no extra CPU, but they fork from a coordinator whose parameter
caches and fixed-base tables are already warm — so jobs >= 2 must still
come out at >= 1.0x (the warm start pays for pool overhead).  The
≥1.8x-at-4-workers target is meaningful only when ``cpu_budget >= 4``.
"""

import json
import os
import time

from repro.experiments import ExperimentConfig
from repro.experiments.diffjson import strip_wall_clock
from repro.experiments.registry import run_many
from repro.parallel import default_jobs

from .conftest import BENCH_SCALE

SUBSET = ["E-COST", "E-C56", "E-C66"]
WORKER_COUNTS = (1, 2, 4, 8)
ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "results", "BENCH_parallel.json")


def _stripped(results):
    return [strip_wall_clock(result.to_json_dict()) for result in results]


def test_bench_parallel_scaling(benchmark):
    """Serial vs multi-worker wall-clock on the sharded experiment subset."""
    config = ExperimentConfig(scale=max(BENCH_SCALE, 1.0))
    timings = {}
    reference = None
    for jobs in WORKER_COUNTS:
        start = time.perf_counter()
        results = run_many(SUBSET, config, jobs=jobs)
        timings[jobs] = time.perf_counter() - start
        assert all(result.passed for result in results)
        if reference is None:
            reference = _stripped(results)
        else:
            assert _stripped(results) == reference, f"jobs={jobs} diverged from serial"

    artifact = {
        "subset": SUBSET,
        "scale": config.scale,
        "cpu_budget": default_jobs(),
        "wall_seconds": {str(jobs): round(timings[jobs], 4) for jobs in WORKER_COUNTS},
        "speedup_vs_serial": {
            str(jobs): round(timings[1] / timings[jobs], 3) if timings[jobs] else None
            for jobs in WORKER_COUNTS
        },
    }
    os.makedirs(os.path.dirname(ARTIFACT), exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Report the serial leg through pytest-benchmark for trend tracking.
    benchmark.pedantic(
        run_many, args=(SUBSET, config), kwargs={"jobs": 1}, rounds=1, iterations=1
    )

    # Gates.  The persistent warm-started pool (fork inherits the
    # coordinator's safe primes and fixed-base tables; the initializer
    # replays them under spawn) must keep modest worker counts from losing
    # to serial even on a single-CPU budget — pool overhead has to be paid
    # for by the warm start.  The genuine-scaling target (>= 1.8x at 4
    # workers) only binds when the hardware can actually run 4 workers.
    for jobs in (2, 4):
        assert artifact["speedup_vs_serial"][str(jobs)] >= 1.0, artifact
    if default_jobs() >= 4:
        assert artifact["speedup_vs_serial"]["4"] >= 1.8, artifact
