"""Benchmark E-RND: regenerate and verify E-RND at bench scale."""

from repro.experiments.rounds import TITLE, run

from .conftest import run_once


def test_bench_rounds(benchmark, bench_config):
    """E-RND — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    rounds = result.data["rounds"]
    sizes = sorted(rounds["cgma"])
    # Linear vs logarithmic vs constant shapes.
    assert rounds["cgma"][sizes[-1]] == 3 * sizes[-1] + 1
    assert rounds["gennaro"][sizes[0]] == rounds["gennaro"][sizes[-1]] == 2
    assert rounds["chor-rabin"][sizes[-1]] < rounds["cgma"][sizes[-1]]
