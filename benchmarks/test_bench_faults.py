"""Benchmark the fault-injection overhead: empty plan vs no injector.

The scheduler calls :meth:`FaultInjector.apply` once per round; with an
empty :class:`FaultPlan` the call must be a near-free identity (one
attribute check plus a list copy).  This benchmark runs the same
protocol workload with no injector and with an empty plan, interleaving
min-of-repeats measurements, asserts the overhead stays within the 5%
budget, and records the measurement as ``results/BENCH_faults.json``.
A non-trivial plan is measured too (reported, not gated) so the artifact
shows the real cost of active injection.
"""

import json
import os
import time

from repro.faults import FaultPlan, get_plan
from repro.protocols import NaiveCommitReveal

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "results", "BENCH_faults.json")

RUNS_PER_SAMPLE = 250
REPEATS = 9
OVERHEAD_BUDGET = 1.05


def _workload(fault_plan):
    protocol = NaiveCommitReveal(6, 2)
    inputs = [1, 0, 1, 0, 1, 0]
    for seed in range(RUNS_PER_SAMPLE):
        protocol.run(inputs, seed=seed, fault_plan=fault_plan, fault_seed=seed)


def _measure(fault_plan):
    start = time.perf_counter()
    _workload(fault_plan)
    return time.perf_counter() - start


def test_bench_empty_plan_overhead(benchmark):
    empty = FaultPlan(name="baseline")
    active = get_plan("mixed")
    baseline_times, empty_times, active_times = [], [], []
    # Interleave the legs so drift (thermal, GC) hits all three equally;
    # min-of-repeats discards scheduling noise.
    for _ in range(REPEATS):
        baseline_times.append(_measure(None))
        empty_times.append(_measure(empty))
        active_times.append(_measure(active))
    baseline, empty_best, active_best = (
        min(baseline_times),
        min(empty_times),
        min(active_times),
    )
    overhead = empty_best / baseline

    artifact = {
        "workload": f"NaiveCommitReveal(6, 2) x {RUNS_PER_SAMPLE} runs",
        "repeats": REPEATS,
        "seconds": {
            "no_injector": round(baseline, 5),
            "empty_plan": round(empty_best, 5),
            "mixed_plan": round(active_best, 5),
        },
        "empty_plan_overhead_ratio": round(overhead, 4),
        "budget_ratio": OVERHEAD_BUDGET,
    }
    os.makedirs(os.path.dirname(ARTIFACT), exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Report the empty-plan leg through pytest-benchmark for trend tracking.
    benchmark.pedantic(_workload, args=(empty,), rounds=1, iterations=1)

    assert overhead <= OVERHEAD_BUDGET, artifact
