"""Benchmark E-L54: regenerate and verify E-L54 at bench scale."""

from repro.experiments.lemma54 import TITLE, run

from .conftest import run_once


def test_bench_lemma54(benchmark, bench_config):
    """E-L54 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert min(result.data["bad_gaps"]) > 0.5
    assert all(gap < 0.6 for gap in result.data["control_gaps"])
