"""Benchmark E-FIG1: regenerate and verify E-FIG1 at bench scale."""

from repro.experiments.figure1 import TITLE, run

from .conftest import run_once


def test_bench_figure1(benchmark, bench_config):
    """E-FIG1 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    arrows = result.data["arrows"]
    assert arrows["Sb->CR"] is True
    assert arrows["CR->Sb"] is False  # broken arrow (Proposition 6.3)
    assert arrows["CR->G"] is True
    assert arrows["G->CR"] is False  # broken arrow (Lemma 6.4)
