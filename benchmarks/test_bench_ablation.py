"""Benchmark E-ABL: the proof-of-knowledge / identity-tag ablation."""

from repro.experiments.ablation import TITLE, run

from .conftest import run_once


def test_bench_ablation(benchmark, bench_config):
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["naive (no PoK, no tag)"] == 1.0
    assert result.data["gennaro (NIZK PoK + tag)"] == 0.0
    assert result.data["chor-rabin (interactive PoK + tag)"] == 0.0
