"""Microbenchmarks: naive crypto paths vs the ``repro.fastpath`` kernels.

Times the three hot operations the fastpath layer accelerates — Pedersen
commit, Pedersen verify, and VSS share verification — with the kernels
enabled (warm fixed-base tables, Horner ladder) and disabled (the plain
``pow``-per-term code paths), at the security levels where the speedup
is supposed to pay for itself.  A second section times the RLC batch
verifiers (``verify_batch`` / ``verify_shares``) against per-item loops
over the *fastpath* paths at m = :data:`BATCH` items.  Records
everything as ``results/BENCH_fastpath.json`` — including which crypto
``backend`` produced the numbers — and fails if any measured speedup
falls below its budget ratio.

The two legs compute bit-identical values (asserted here per operation;
the equivalence argument lives in DESIGN.md and the property tests in
``tests/test_fastpath.py``) — this file only defends the *perf* claim.

Batch budgets are calibrated per family: share checks (Feldman and
Pedersen VSS) clear 3x because every per-item check pays a
polynomial-size multi-exponentiation that the batch collapses into one;
Pedersen *openings* are already two warm fixed-base table
exponentiations each, so their batch sits near the 64-point multi-exp
floor and is gated only against regression (DESIGN.md §12 quantifies
this asymmetry).
"""

import json
import os
import random
import time

from repro import fastpath
from repro.crypto.backend import active as active_backend
from repro.crypto.commitment import PedersenCommitment, PedersenParameters
from repro.crypto.group import SchnorrGroup
from repro.crypto.vss import FeldmanVSS, PedersenVSS

SECURITY_LEVELS = (48, 64)
#: Minimum naive/fast wall-clock ratio per operation (the perf contract).
BUDGETS = {
    "pedersen_commit": 2.0,
    "pedersen_verify": 2.0,
    "vss_verify": 2.0,
}
#: Minimum batched/per-item wall-clock ratio per batch family, on the
#: pure-python reference backend (where the perf contract is pinned).
BATCH_BUDGETS = {
    "pedersen_openings": 1.2,
    "feldman_shares": 3.0,
    "pedersen_vss_shares": 3.0,
}
#: Budget relaxation on accelerated backends: gmpy2 shrinks the naive
#: per-item cost too (native powmod), so the batch *ratio* legitimately
#: compresses even as both absolute times drop.  The batch must still
#: win, just not by the pure-python margin.
ACCELERATED_BUDGET_FACTOR = 0.5
BATCH = 64
REPS = 5
ARTIFACT = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_fastpath.json"
)


def _time_batch(op, batch):
    """Min-of-REPS wall-clock (ns per item) for ``op`` over ``batch``."""
    best = None
    for _ in range(REPS):
        start = time.perf_counter_ns()
        for item in batch:
            op(item)
        elapsed = time.perf_counter_ns() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / len(batch)


def _workloads(bits):
    """The benchmarked operations for one security level.

    Returns ``{name: (op, batch)}`` where each op returns a comparable
    value so the naive and fast legs can be checked for equality.
    """
    rng = random.Random(bits * 7919)
    group = SchnorrGroup.for_security(bits)
    params = PedersenParameters.generate(group)
    scheme = PedersenCommitment(params)
    vss = FeldmanVSS(group, threshold=3, parties=8)
    dealing = vss.deal(rng.randrange(group.q), rng)

    commit_inputs = [
        (rng.randrange(group.q), rng.randrange(group.q)) for _ in range(BATCH)
    ]
    openings = [
        (scheme.commit_with_randomness(m, r), m, r) for m, r in commit_inputs
    ]
    shares = [dealing.shares[1 + (i % 8)] for i in range(BATCH)]

    return {
        "pedersen_commit": (
            lambda mr: scheme.commit_with_randomness(*mr).value,
            commit_inputs,
        ),
        "pedersen_verify": (
            lambda cmo: scheme.commit_with_randomness(cmo[1], cmo[2]) == cmo[0],
            openings,
        ),
        "vss_verify": (
            lambda share: vss.verify_share(dealing.commitments, share),
            shares,
        ),
    }


def _time_call(fn):
    """Min-of-REPS wall-clock (ns) for one zero-argument call."""
    best = None
    for _ in range(REPS):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _batch_workloads(bits):
    """``{family: (per_item_fn, batched_fn)}`` for m = BATCH checks.

    Both legs return the full verdict list so equivalence is asserted on
    exactly what callers consume.
    """
    rng = random.Random(bits * 104729)
    group = SchnorrGroup.for_security(bits)
    params = PedersenParameters.generate(group)
    scheme = PedersenCommitment(params)
    pairs = [scheme.commit(rng.randrange(group.q), rng) for _ in range(BATCH)]

    feldman = FeldmanVSS(group, threshold=3, parties=BATCH)
    feldman_dealing = feldman.deal(rng.randrange(group.q), rng)
    feldman_shares = [feldman_dealing.shares[i] for i in range(1, BATCH + 1)]

    pedersen_vss = PedersenVSS(params, threshold=3, parties=BATCH)
    pvss_dealing = pedersen_vss.deal(rng.randrange(group.q), rng)
    pvss_shares = [pvss_dealing.shares[i] for i in range(1, BATCH + 1)]

    return {
        "pedersen_openings": (
            lambda: [scheme.verify(c, o) for c, o in pairs],
            lambda: scheme.verify_batch(pairs),
        ),
        "feldman_shares": (
            lambda: [
                feldman.verify_share(feldman_dealing.commitments, share)
                for share in feldman_shares
            ],
            lambda: feldman.verify_shares(
                feldman_dealing.commitments, feldman_shares
            ),
        ),
        "pedersen_vss_shares": (
            lambda: [
                pedersen_vss.verify_share(pvss_dealing.commitments, share)
                for share in pvss_shares
            ],
            lambda: pedersen_vss.verify_shares(
                pvss_dealing.commitments, pvss_shares
            ),
        ),
    }


def test_bench_fastpath_budgets():
    """Fastpath kernels must beat the naive paths by their budget ratios."""
    budget_factor = 1.0 if active_backend().name == "python" else (
        ACCELERATED_BUDGET_FACTOR
    )
    measurements = {}
    failures = []
    for bits in SECURITY_LEVELS:
        workloads = _workloads(bits)
        measurements[str(bits)] = {}
        for name, (op, batch) in workloads.items():
            with fastpath.disabled():
                naive_values = [op(item) for item in batch]
                naive_ns = _time_batch(op, batch)
            fastpath.clear_caches()
            fast_values = [op(item) for item in batch]  # warm-up: builds tables
            fast_ns = _time_batch(op, batch)
            assert fast_values == naive_values, f"{name}@{bits}: values diverged"
            speedup = naive_ns / fast_ns if fast_ns else float("inf")
            budget = round(BUDGETS[name] * budget_factor, 3)
            measurements[str(bits)][name] = {
                "naive_ns_per_op": round(naive_ns, 1),
                "fast_ns_per_op": round(fast_ns, 1),
                "speedup": round(speedup, 3),
                "budget": budget,
            }
            if speedup < budget:
                failures.append(
                    f"{name}@{bits} bits: {speedup:.2f}x < budget {budget}x"
                )
    batch_measurements = {}
    for bits in SECURITY_LEVELS:
        batch_measurements[str(bits)] = {}
        for family, (per_item, batched) in _batch_workloads(bits).items():
            per_item()  # warm-up: builds fixed-base tables
            assert batched() == per_item(), f"{family}@{bits}: verdicts diverged"
            per_item_ns = _time_call(per_item)
            batched_ns = _time_call(batched)
            speedup = per_item_ns / batched_ns if batched_ns else float("inf")
            budget = round(BATCH_BUDGETS[family] * budget_factor, 3)
            batch_measurements[str(bits)][family] = {
                "items": BATCH,
                "per_item_ns": per_item_ns,
                "batched_ns": batched_ns,
                "speedup": round(speedup, 3),
                "budget": budget,
            }
            if speedup < budget:
                failures.append(
                    f"batch {family}@{bits} bits: {speedup:.2f}x <"
                    f" budget {budget}x"
                )

    artifact = {
        "backend": active_backend().name,
        "batch": BATCH,
        "batch_budgets": BATCH_BUDGETS,
        "batch_verify": batch_measurements,
        "reps": REPS,
        "security_levels": list(SECURITY_LEVELS),
        "budgets": BUDGETS,
        "measurements": measurements,
        "fastpath_caches": fastpath.cache_sizes(),
        "fastpath_stats": fastpath.stats(),
    }
    os.makedirs(os.path.dirname(ARTIFACT), exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert not failures, "; ".join(failures) + f" (artifact: {artifact})"
