"""Microbenchmarks: naive crypto paths vs the ``repro.fastpath`` kernels.

Times the three hot operations the fastpath layer accelerates — Pedersen
commit, Pedersen verify, and VSS share verification — with the kernels
enabled (warm fixed-base tables, Horner ladder) and disabled (the plain
``pow``-per-term code paths), at the security levels where the speedup
is supposed to pay for itself.  Records everything as
``results/BENCH_fastpath.json`` and fails if any measured speedup falls
below its budget ratio.

The two legs compute bit-identical values (asserted here per operation;
the equivalence argument lives in DESIGN.md and the property tests in
``tests/test_fastpath.py``) — this file only defends the *perf* claim.
"""

import json
import os
import random
import time

from repro import fastpath
from repro.crypto.commitment import PedersenCommitment, PedersenParameters
from repro.crypto.group import SchnorrGroup
from repro.crypto.vss import FeldmanVSS

SECURITY_LEVELS = (48, 64)
#: Minimum naive/fast wall-clock ratio per operation (the perf contract).
BUDGETS = {
    "pedersen_commit": 2.0,
    "pedersen_verify": 2.0,
    "vss_verify": 2.0,
}
BATCH = 64
REPS = 5
ARTIFACT = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_fastpath.json"
)


def _time_batch(op, batch):
    """Min-of-REPS wall-clock (ns per item) for ``op`` over ``batch``."""
    best = None
    for _ in range(REPS):
        start = time.perf_counter_ns()
        for item in batch:
            op(item)
        elapsed = time.perf_counter_ns() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / len(batch)


def _workloads(bits):
    """The benchmarked operations for one security level.

    Returns ``{name: (op, batch)}`` where each op returns a comparable
    value so the naive and fast legs can be checked for equality.
    """
    rng = random.Random(bits * 7919)
    group = SchnorrGroup.for_security(bits)
    params = PedersenParameters.generate(group)
    scheme = PedersenCommitment(params)
    vss = FeldmanVSS(group, threshold=3, parties=8)
    dealing = vss.deal(rng.randrange(group.q), rng)

    commit_inputs = [
        (rng.randrange(group.q), rng.randrange(group.q)) for _ in range(BATCH)
    ]
    openings = [
        (scheme.commit_with_randomness(m, r), m, r) for m, r in commit_inputs
    ]
    shares = [dealing.shares[1 + (i % 8)] for i in range(BATCH)]

    return {
        "pedersen_commit": (
            lambda mr: scheme.commit_with_randomness(*mr).value,
            commit_inputs,
        ),
        "pedersen_verify": (
            lambda cmo: scheme.commit_with_randomness(cmo[1], cmo[2]) == cmo[0],
            openings,
        ),
        "vss_verify": (
            lambda share: vss.verify_share(dealing.commitments, share),
            shares,
        ),
    }


def test_bench_fastpath_budgets():
    """Fastpath kernels must beat the naive paths by their budget ratios."""
    measurements = {}
    failures = []
    for bits in SECURITY_LEVELS:
        workloads = _workloads(bits)
        measurements[str(bits)] = {}
        for name, (op, batch) in workloads.items():
            with fastpath.disabled():
                naive_values = [op(item) for item in batch]
                naive_ns = _time_batch(op, batch)
            fastpath.clear_caches()
            fast_values = [op(item) for item in batch]  # warm-up: builds tables
            fast_ns = _time_batch(op, batch)
            assert fast_values == naive_values, f"{name}@{bits}: values diverged"
            speedup = naive_ns / fast_ns if fast_ns else float("inf")
            measurements[str(bits)][name] = {
                "naive_ns_per_op": round(naive_ns, 1),
                "fast_ns_per_op": round(fast_ns, 1),
                "speedup": round(speedup, 3),
                "budget": BUDGETS[name],
            }
            if speedup < BUDGETS[name]:
                failures.append(
                    f"{name}@{bits} bits: {speedup:.2f}x < budget {BUDGETS[name]}x"
                )

    artifact = {
        "batch": BATCH,
        "reps": REPS,
        "security_levels": list(SECURITY_LEVELS),
        "budgets": BUDGETS,
        "measurements": measurements,
        "fastpath_caches": fastpath.cache_sizes(),
        "fastpath_stats": fastpath.stats(),
    }
    os.makedirs(os.path.dirname(ARTIFACT), exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert not failures, "; ".join(failures) + f" (artifact: {artifact})"
