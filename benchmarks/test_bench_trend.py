"""Benchmark E-TRD: negligibility trends across the security parameter."""

from repro.experiments.trend_k import TITLE, run

from .conftest import run_once


def test_bench_trend(benchmark, bench_config):
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["pi-g/A* CR"] == "non-negligible"
    assert result.data["cgma/honest CR"] == "consistent-with-negligible"
    assert result.data["gennaro/echo G**"] == "consistent-with-negligible"
