"""Benchmark the flight-recorder overhead: recorder off vs absent vs on.

The scheduler, network, and fault layers guard every flight-recorder
touch with ``if _obs.flightrec is not None`` — with the recorder off
(the default) the per-message cost must be one attribute load and a
``None`` comparison.  This benchmark runs the same protocol workload
with the recorder absent and (redundantly, as a guard against future
regressions in the guard itself) asserts the disabled path stays within
the 5% budget, interleaving min-of-repeats measurements like the other
``BENCH_*`` suites.  The recorder-on leg is measured and recorded in
``results/BENCH_obs.json`` but not gated: recording genuinely costs
(one dict per message into a deque), and the budget only applies to
users who never turn it on.
"""

import json
import os
import time

from repro.obs import flightrec
from repro.protocols import NaiveCommitReveal

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "results", "BENCH_obs.json")

RUNS_PER_SAMPLE = 250
REPEATS = 9
OVERHEAD_BUDGET = 1.05


def _workload():
    protocol = NaiveCommitReveal(6, 2)
    inputs = [1, 0, 1, 0, 1, 0]
    for seed in range(RUNS_PER_SAMPLE):
        protocol.run(inputs, seed=seed)


def _measure_off():
    start = time.perf_counter()
    _workload()
    return time.perf_counter() - start


def _measure_on():
    with flightrec.recording(capacity=4096):
        start = time.perf_counter()
        _workload()
        return time.perf_counter() - start


def test_bench_flightrec_disabled_overhead(benchmark):
    assert flightrec.active() is None, "recorder must be off for the baseline leg"
    baseline_times, disabled_times, recording_times = [], [], []
    # Interleave the legs so drift (thermal, GC) hits all three equally;
    # min-of-repeats discards scheduling noise.  The first two legs run
    # identical code — both measure the `flightrec is None` guard — so
    # their ratio is a direct read on the guard's cost plus noise floor.
    for _ in range(REPEATS):
        baseline_times.append(_measure_off())
        disabled_times.append(_measure_off())
        recording_times.append(_measure_on())
    baseline, disabled_best, recording_best = (
        min(baseline_times),
        min(disabled_times),
        min(recording_times),
    )
    overhead = disabled_best / baseline
    recording_overhead = recording_best / baseline

    artifact = {
        "workload": f"NaiveCommitReveal(6, 2) x {RUNS_PER_SAMPLE} runs",
        "repeats": REPEATS,
        "seconds": {
            "recorder_off_a": round(baseline, 5),
            "recorder_off_b": round(disabled_best, 5),
            "recorder_on": round(recording_best, 5),
        },
        "disabled_overhead_ratio": round(overhead, 4),
        "recording_overhead_ratio": round(recording_overhead, 4),
        "budget_ratio": OVERHEAD_BUDGET,
    }
    os.makedirs(os.path.dirname(ARTIFACT), exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Report the disabled leg through pytest-benchmark for trend tracking.
    benchmark.pedantic(_workload, rounds=1, iterations=1)

    assert overhead <= OVERHEAD_BUDGET, artifact
