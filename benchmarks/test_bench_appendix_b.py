"""Benchmark E-APB: the Appendix B characterizations (G*, G** vs G)."""

from repro.experiments.appendix_b import TITLE, run

from .conftest import run_once


def test_bench_appendix_b(benchmark, bench_config):
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["b3_equivalence"]
    assert result.data["b4_implication"]
