"""Benchmark E-L52: regenerate and verify E-L52 at bench scale."""

from repro.experiments.lemma52 import TITLE, run

from .conftest import run_once


def test_bench_lemma52(benchmark, bench_config):
    """E-L52 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["all_violated"]
    # The CR gap of correlated inputs is the covariance itself (~0.25).
    assert all(gap > 0.2 for gap in result.data["gaps"].values())
