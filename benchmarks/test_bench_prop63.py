"""Benchmark E-P63: regenerate and verify E-P63 at bench scale."""

from repro.experiments.prop63 import TITLE, run

from .conftest import run_once


def test_bench_prop63(benchmark, bench_config):
    """E-P63 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    assert result.data["cr_all_trivial"]
    assert result.data["sb_gap"] > 0.9  # the copier is fully exposed by Sb
