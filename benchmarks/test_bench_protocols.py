"""Micro-benchmarks: single-execution latency of every protocol.

Not a paper table, but the cost model behind every experiment's sample
budget — and a regression guard for the substrate (crypto + network)
performance.
"""

import pytest

from repro.protocols import (
    CGMABroadcast,
    ChorRabinBroadcast,
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    PiGBroadcast,
    SequentialBroadcast,
)

N, T, K = 5, 2, 24
INPUTS = (1, 0, 1, 1, 0)


@pytest.mark.parametrize(
    "factory",
    [
        pytest.param(lambda: SequentialBroadcast(N, T), id="sequential"),
        pytest.param(lambda: IdealSimultaneousBroadcast(N, T), id="ideal-sb"),
        pytest.param(lambda: CGMABroadcast(N, T, security_bits=K), id="cgma"),
        pytest.param(lambda: ChorRabinBroadcast(N, T, security_bits=K), id="chor-rabin"),
        pytest.param(lambda: GennaroBroadcast(N, T, security_bits=K), id="gennaro"),
        pytest.param(lambda: PiGBroadcast(N, T, backend="ideal"), id="pi-g-ideal"),
        pytest.param(lambda: PiGBroadcast(N, T, backend="bgw"), id="pi-g-bgw"),
    ],
)
def test_bench_protocol_execution(benchmark, factory):
    protocol = factory()
    announced = benchmark(lambda: protocol.announced(INPUTS, seed=7))
    assert announced == INPUTS
