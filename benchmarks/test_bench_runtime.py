"""Benchmark: event-runtime overhead over lockstep on a real workload.

The event runtime with its default ``RushDelay(ConstantDelay(1))`` timing
computes the *same* executions the lockstep scheduler computes (the
equivalence lives in ``tests/test_net_runtime_properties.py``); what it
adds is the discrete-event machinery — heap scheduling, per-edge RNG
streams, delivery batching.  This file defends the claim that the seam
is cheap: running E-RND at smoke scale under ``REPRO_RUNTIME=event``
must stay within ``MAX_OVERHEAD`` of the lockstep wall-clock.

Records both legs (and the verdict) as ``results/BENCH_runtime.json``.
"""

import json
import os
import time

from repro.experiments.common import ExperimentConfig
from repro.experiments.registry import run_experiment
from repro.net.runtime import ENV_RUNTIME

EXPERIMENT = "E-RND"
SCALE = 0.15
SEED = 20050717
REPS = 3
#: Maximum tolerated event/lockstep wall-clock ratio (the perf contract).
MAX_OVERHEAD = 1.25
ARTIFACT = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_runtime.json"
)


def _run_once(runtime):
    config = ExperimentConfig(seed=SEED, scale=SCALE, runtime=runtime)
    previous = os.environ.get(ENV_RUNTIME)
    os.environ[ENV_RUNTIME] = runtime
    try:
        start = time.perf_counter_ns()
        result = run_experiment(EXPERIMENT, config, jobs=1)
        elapsed = time.perf_counter_ns() - start
    finally:
        if previous is None:
            os.environ.pop(ENV_RUNTIME, None)
        else:
            os.environ[ENV_RUNTIME] = previous
    assert result.passed, f"{EXPERIMENT} under {runtime}: {result.table}"
    return elapsed, result


def _best_of(runtime):
    """Min-of-REPS wall-clock (ns) plus the last result for cross-checking."""
    best = None
    result = None
    for _ in range(REPS):
        elapsed, result = _run_once(runtime)
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_bench_event_runtime_overhead():
    """The event runtime must stay within MAX_OVERHEAD of lockstep on E-RND."""
    lockstep_ns, lockstep_result = _best_of("lockstep")
    event_ns, event_result = _best_of("event")

    # Same science on both legs: the event default is the degenerate
    # lockstep point, so the experiment data must be identical.
    assert event_result.data == lockstep_result.data, (
        "event-runtime E-RND diverged from lockstep"
    )

    ratio = event_ns / lockstep_ns if lockstep_ns else float("inf")
    artifact = {
        "experiment": EXPERIMENT,
        "scale": SCALE,
        "reps": REPS,
        "max_overhead": MAX_OVERHEAD,
        "lockstep_ms": round(lockstep_ns / 1e6, 2),
        "event_ms": round(event_ns / 1e6, 2),
        "overhead_ratio": round(ratio, 3),
        "within_budget": ratio <= MAX_OVERHEAD,
    }
    os.makedirs(os.path.dirname(ARTIFACT), exist_ok=True)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert ratio <= MAX_OVERHEAD, (
        f"event runtime overhead {ratio:.2f}x exceeds {MAX_OVERHEAD}x"
        f" (lockstep {artifact['lockstep_ms']}ms, event {artifact['event_ms']}ms)"
    )
