"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md §4) at a reduced sample scale, asserts that the
measured behaviour matches the paper's claim, and reports the wall-clock
cost through pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

Full-scale numbers (the ones recorded in EXPERIMENTS.md) come from
``python -m repro.experiments`` instead.
"""

import pytest

from repro.experiments import ExperimentConfig

BENCH_SCALE = 0.15


@pytest.fixture
def bench_config():
    """Reduced-scale configuration used by every experiment benchmark."""
    return ExperimentConfig(scale=BENCH_SCALE)


def run_once(benchmark, runner, config):
    """Run an experiment exactly once under the benchmark timer."""
    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    return result
