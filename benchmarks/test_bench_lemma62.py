"""Benchmark E-L62: regenerate and verify E-L62 at bench scale."""

from repro.experiments.lemma62 import TITLE, run

from .conftest import run_once


def test_bench_lemma62(benchmark, bench_config):
    """E-L62 — {}""".format(TITLE)
    result = run_once(benchmark, run, bench_config)
    assert result.passed
    # The A.2 construction predicts a CR gap of p(1-p) x (G** gap) = 0.25.
    assert result.data["predicted_cr_gap"] == 0.25
    assert result.data["cr_gap_under_d_prime"] >= 0.2
    assert result.data["d_prime_in_dg"]
