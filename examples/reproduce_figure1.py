#!/usr/bin/env python
"""Reproduce Figure 1 — the paper's implication/separation diagram.

Runs the E-FIG1 experiment (every arrow measured on live protocol
executions) at a configurable scale and prints the measured diagram next
to the paper's.  ``--scale 1.0`` matches the EXPERIMENTS.md numbers;
smaller scales trade confidence for speed.

Run with::

    python examples/reproduce_figure1.py [--scale 0.25]
"""

import argparse

from repro.experiments import ExperimentConfig, run_experiment

PAPER_FIGURE = """\
  the paper's Figure 1:

      Sb  ==[D(CR)]==>  CR  ==[D(G)]==>  G
      Sb  <=/=[Singleton]=  CR
      CR  <=/=[D(G)]=       G     (witness: Pi_G, even under uniform)
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    print(PAPER_FIGURE)
    result = run_experiment("E-FIG1", ExperimentConfig(scale=args.scale))
    print(result.render())
    if result.passed:
        print("\nmeasured diagram matches the paper.")
    else:
        print("\nMISMATCH against the paper's diagram — inspect the table above.")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
