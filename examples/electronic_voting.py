#!/usr/bin/env python
"""Electronic voting and the role of input distributions (Section 5).

Two lessons from the paper, played out on a yes/no referendum:

1. **Vote copying.**  Without simultaneity, a corrupted voter mirrors a
   targeted voter's ballot — amplifying their influence.  A simultaneous
   broadcast (Chor–Rabin here) makes the mirrored ballot worthless.

2. **Correlated electorates and the limits of CR/G.**  Real votes are
   correlated (party lines, households).  The paper shows the CR and G
   definitions are simply *unachievable* under such input distributions —
   not because any protocol is at fault, but because the announced values
   must reproduce the correlation.  We measure the CR gap of the *ideal*
   trusted-party protocol under an increasingly partisan electorate and
   watch it leave the achievable zone, while Sb-Independence (the
   simulation-based definition) remains meaningful throughout.

Run with::

    python examples/electronic_voting.py
"""

import random

from repro.adversaries import CommitEchoAdversary, SequentialCopier
from repro.core import HONEST, cr_report, sb_report
from repro.distributions import PSI_C, noisy_copy
from repro.protocols import ChorRabinBroadcast, IdealSimultaneousBroadcast, SequentialBroadcast

N, T = 5, 2


def vote_copying_demo() -> None:
    print("— vote copying —")
    ballots = [1, 0, 1, 0, None]  # party 5 is the copier
    sequential = SequentialBroadcast(N, T)
    announced = sequential.announced(
        ballots, adversary=SequentialCopier(copier=5, target=1), seed=3
    )
    print(f"  sequential:  announced {announced}  (P5 mirrored P1's ballot)")
    assert announced[4] == announced[0]

    chor_rabin = ChorRabinBroadcast(N, T, security_bits=16)
    announced = chor_rabin.announced(
        ballots,
        adversary=CommitEchoAdversary(
            copier=5, target=1, commit_tag="cr:commit", reveal_tag="cr:reveal"
        ),
        seed=3,
    )
    print(f"  chor-rabin:  announced {announced}  (mirror rejected, counted as 0)")
    assert announced[4] == 0


def correlated_electorate_demo() -> None:
    print("\n— correlated electorates (the Section 5 achievability boundary) —")
    print(f"  {'household corr.':<16} {'in D(CR)?':<10} {'CR gap of Ideal(f_SB)':<22}")
    ideal = IdealSimultaneousBroadcast(N, T)
    rng = random.Random(5)
    for flip_probability in (0.5, 0.25, 0.05):
        # Voters 1 and 2 share a household: voter 2 copies voter 1's ballot
        # except with probability `flip_probability`.
        electorate = noisy_copy(N, flip_probability=flip_probability)
        achievable = PSI_C.contains(electorate)
        report = cr_report(ideal, electorate, HONEST, samples=600, rng=rng)
        correlation = 1.0 - 2.0 * flip_probability
        print(
            f"  {correlation:<16.2f} {str(achievable):<10} "
            f"{report.gap:.3f} ({report.decision.value})"
        )
    sb = sb_report(ideal, HONEST, samples_per_point=40, rng=rng)
    print(f"\n  Sb gap of Ideal(f_SB) over all fixed ballots: {sb.gap:.3f}"
          f" ({sb.decision.value})")
    print(
        "  -> even the *ideal* protocol fails Definition 4.3 once ballots"
        "\n     correlate; only the simulation-based definition keeps working"
    )


def main() -> None:
    vote_copying_demo()
    correlated_electorate_demo()


if __name__ == "__main__":
    main()
