#!/usr/bin/env python
"""Collective coin flipping — the application that motivated it all.

A classic use of simultaneous broadcast: n parties each broadcast a random
bit and the common coin is the XOR of the announced values.  If the
broadcasts are truly simultaneous, no coalition can bias the coin; if a
coalition can correlate its bits with the honest ones, the coin is theirs.

This script flips coins through three protocols:

* the CGMA-style VSS protocol [7] — the coin is fair even under attack;
* the sequential baseline with the copy adversary — the copier cancels an
  honest bit out of the XOR, fixing the coin's distribution;
* Π_G under the A* adversary of Claim 6.6 — the most striking case: each
  corrupted bit *looks* perfectly random (G-Independence holds!) and yet
  the coin lands on 0 every single time.

Run with::

    python examples/coin_flipping.py
"""

import random

from repro.adversaries import SequentialCopier, XorAttacker
from repro.protocols import CGMABroadcast, PiGBroadcast, SequentialBroadcast

N, T = 5, 2
FLIPS = 200


def flip_coins(protocol, adversary_factory, flips: int, seed: int) -> list:
    """Flip the collective coin ``flips`` times; inputs are fresh random bits."""
    rng = random.Random(seed)
    coins = []
    for _ in range(flips):
        inputs = [rng.randrange(2) for _ in range(N)]
        announced = protocol.announced(
            inputs, adversary=adversary_factory(), rng=random.Random(rng.getrandbits(64))
        )
        coin = 0
        for bit in announced:
            coin ^= bit
        coins.append(coin)
    return coins


def report(label: str, coins: list) -> float:
    heads = sum(coins) / len(coins)
    print(f"  {label:<42} P(coin = 1) ≈ {heads:.3f}")
    return heads


def main() -> None:
    print(f"collective coin = XOR of {N} simultaneously broadcast bits, {FLIPS} flips\n")

    cgma = CGMABroadcast(N, T, security_bits=16)
    fair = report("cgma, honest", flip_coins(cgma, lambda: None, FLIPS, seed=1))
    assert 0.4 < fair < 0.6

    sequential = SequentialBroadcast(N, T)
    copier = lambda: SequentialCopier(copier=N, target=1)
    biased = report(
        "sequential, copy adversary", flip_coins(sequential, copier, FLIPS, seed=2)
    )
    # W_n == W_1 cancels party 1's contribution from the XOR: the coin no
    # longer depends on party 1's randomness at all.  It still looks fair
    # here because the other honest parties are random — but a party whose
    # bit can be cancelled has lost its stake in the coin.
    flipper = lambda: SequentialCopier(copier=N, target=1, transform=lambda b: 1 - b)
    report(
        "sequential, anti-copy adversary", flip_coins(sequential, flipper, FLIPS, seed=3)
    )

    pi_g = PiGBroadcast(N, T, backend="ideal")
    attacker = lambda: XorAttacker(pi_g, corrupted_pair=[1, 2])
    rigged = flip_coins(pi_g, attacker, FLIPS, seed=4)
    fixed = report("pi-g, A* (the Claim 6.6 adversary)", rigged)
    assert fixed == 0.0, "Claim 6.6: the coin is stuck at zero"

    print(
        "\npi-g's corrupted bits are individually uniform (G-Independence"
        "\nholds), yet the XOR is 0 on every run — the definitional gap the"
        "\npaper's Lemma 6.4 formalizes, live."
    )


if __name__ == "__main__":
    main()
