#!/usr/bin/env python
"""Audit a protocol against every independence definition at once.

The library's measurement engine (:mod:`repro.core.relations`) evaluates
any (protocol, adversary suite, distribution) triple under all five
definitions — Sb, CR, G, G*, G** — and reports a worst-case verdict per
definition.  This script audits three protocols of very different quality
and prints the resulting scorecards; it is the template for auditing a
*new* protocol you might add to the zoo.

Run with::

    python examples/definition_audit.py
"""

import random

from repro.analysis import render_table
from repro.core import HONEST, MeasurementBudget, measure
from repro.adversaries import CommitEchoAdversary, SequentialCopier, XorAttacker
from repro.distributions import uniform
from repro.protocols import GennaroBroadcast, PiGBroadcast, SequentialBroadcast

N, T = 4, 1
DEFINITIONS = ("Sb", "CR", "G", "G*", "G**")


def audit(label, protocol, suite, budget, rng):
    row = [label]
    for definition in DEFINITIONS:
        report = measure(definition, protocol, uniform(N), suite, rng, budget)
        mark = {True: "VIOLATED"}.get(report.violated, f"{report.gap:.2f}")
        row.append(mark)
    return row


def main() -> None:
    rng = random.Random(2024)
    budget = MeasurementBudget(distribution_samples=400, samples_per_point=60)

    sequential = SequentialBroadcast(N, T)
    gennaro = GennaroBroadcast(N, T, security_bits=16)
    pi_g = PiGBroadcast(N, T, backend="ideal")

    rows = [
        audit(
            "sequential + copier",
            sequential,
            {"copier": lambda: SequentialCopier(copier=N, target=1)},
            budget,
            rng,
        ),
        audit(
            "gennaro + commit-echo",
            gennaro,
            {
                "echo": lambda: CommitEchoAdversary(
                    copier=N, target=1, commit_tag="gen:commit", reveal_tag="gen:reveal"
                ),
                "honest": HONEST,
            },
            budget,
            rng,
        ),
        audit(
            "pi-g + A*",
            pi_g,
            {"A*": lambda: XorAttacker(pi_g, corrupted_pair=[1, 2])},
            budget,
            rng,
        ),
    ]

    print(render_table(
        ["protocol + adversary"] + list(DEFINITIONS),
        rows,
        title=f"definition audit (uniform inputs, n={N}, worst adversary per cell)",
    ))
    print(
        "\nreading the scorecard:"
        "\n  sequential+copier fails everything — no independence at all;"
        "\n  gennaro shrugs off the copy attack under every definition;"
        "\n  pi-g+A* is the paper's separation: G-family clean, CR (and Sb) broken."
    )


if __name__ == "__main__":
    main()
