#!/usr/bin/env python
"""Sealed-bid auction (contract bidding) over simultaneous broadcast.

The paper's introduction names contract bidding as a canonical
application: bids must be mutually independent or a rushing bidder can
adapt its bid to the best honest offer.

Bids here are B-bit integers, announced bit-by-bit through B broadcast
instances (the paper fixes single-bit messages, so multi-bit values are a
layered application).  We run the auction twice:

* over the **sequential** baseline, where a rushing last bidder reads the
  honest bids in flight and announces the bitwise OR of everything it
  heard (plus a forced low bit) — a bid that is always >= the honest
  maximum, so it wins every auction while having committed to nothing;
* over the **CGMA** VSS protocol, where the same adversary sees only
  hiding commitments and its pre-committed lowball bid stands.

Run with::

    python examples/sealed_bid_auction.py
"""

import random

from repro.net.adversary import Adversary
from repro.net.message import broadcast as bc
from repro.protocols import CGMABroadcast, SequentialBroadcast

N, T = 4, 1
BITS = 4  # bids in 0..15


class DominateBit(Adversary):
    """Rushing bidder for one bit position of the sequential protocol.

    Party N speaks last (round N); by then it has seen every honest bit of
    this position, and announces their OR (forced to 1 at the lowest
    position).  Across positions this yields a bid >= every honest bid.
    """

    def __init__(self, position: int):
        super().__init__(corrupted=[N])
        self.position = position
        self._heard = []

    def act(self, round_number, rushed):
        self._heard.extend(
            m.payload
            for m in rushed[N].broadcasts(tag="seq")
            if m.sender != N and m.payload in (0, 1)
        )
        if round_number != N:
            return {N: []}
        bit = 1 if self.position == 0 else max(self._heard, default=0)
        return {N: [bc(bit, tag="seq")]}


def announce_bids(protocol_factory, adversary_factory, bids, seed):
    """One broadcast instance per bit position (MSB first); returns int bids."""
    rng = random.Random(seed)
    totals = [0] * N
    for position in reversed(range(BITS)):
        protocol = protocol_factory()
        inputs = [(bid >> position) & 1 for bid in bids]
        adversary = adversary_factory(position) if adversary_factory else None
        announced = protocol.announced(
            inputs, adversary=adversary, rng=random.Random(rng.getrandbits(64))
        )
        for party in range(N):
            totals[party] = (totals[party] << 1) | announced[party]
    return totals


def main() -> None:
    rng = random.Random(99)
    auctions = 25
    sequential_wins = 0
    cgma_wins = 0
    overpayment = 0
    for auction in range(auctions):
        honest_bids = [rng.randrange(16) for _ in range(N - 1)]
        cheater_bid = rng.randrange(4)  # a lowball bid it hopes to adapt
        bids = honest_bids + [cheater_bid]

        seq_results = announce_bids(
            lambda: SequentialBroadcast(N, T), DominateBit, bids, seed=auction
        )
        assert seq_results[: N - 1] == honest_bids  # honest bids unharmed
        if seq_results[N - 1] >= max(honest_bids):
            sequential_wins += 1
            overpayment += seq_results[N - 1] - max(honest_bids)

        cgma_results = announce_bids(
            lambda: CGMABroadcast(N, T, security_bits=16), None, bids, seed=auction
        )
        assert cgma_results == bids  # nothing to adapt: the dealt bid stands
        if cgma_results[N - 1] >= max(honest_bids):
            cgma_wins += 1

    print(f"{auctions} sealed-bid auctions, {N - 1} honest bidders + 1 rushing bidder")
    print(f"  sequential broadcast: rushing bidder wins {sequential_wins}/{auctions}"
          f" (avg margin {overpayment / max(1, sequential_wins):.2f})")
    print(f"  cgma (simultaneous):  rushing bidder wins {cgma_wins}/{auctions}")
    print(
        "\nwith simultaneity the cheater's lowball bid is locked in at commit"
        "\ntime; without it, every honest bid leaks before the cheater speaks"
    )
    assert sequential_wins == auctions
    assert cgma_wins < auctions


if __name__ == "__main__":
    main()
