#!/usr/bin/env python
"""Quickstart: run a simultaneous broadcast and watch an attack fail.

Five parties broadcast one bit each, in parallel, such that nobody can
base their bit on anybody else's.  We run the constant-round Gennaro-style
protocol [12] honestly, then unleash the rushing copy adversary on both a
naive commit-then-reveal protocol (which it breaks) and on Gennaro's
(which resists).

Run with::

    python examples/quickstart.py
"""

from repro.adversaries import CommitEchoAdversary
from repro.protocols import GennaroBroadcast, NaiveCommitReveal


def main() -> None:
    n, t = 5, 2
    inputs = [1, 0, 1, 1, 0]

    # ---- 1. honest run --------------------------------------------------------
    protocol = GennaroBroadcast(n, t, security_bits=24)
    execution = protocol.run(inputs, seed=42)
    print("honest Gennaro run")
    print(f"  inputs:    {tuple(inputs)}")
    print(f"  announced: {execution.announced_vector()}")
    print(f"  rounds:    {execution.communication_rounds}")
    assert execution.announced_vector() == tuple(inputs)

    # ---- 2. the copy attack on a naive protocol --------------------------------
    print("\nrushing copy attack (party 5 copies party 1)")
    naive = NaiveCommitReveal(n, t)
    for x1 in (0, 1):
        attack = CommitEchoAdversary(copier=5, target=1)
        announced = naive.announced([x1, 0, 1, 1, None], adversary=attack, seed=7)
        print(f"  naive commit-reveal, x1={x1}: announced {announced}"
              f"   <- W5 == x1 = {announced[4] == x1}")
        assert announced[4] == x1  # the copier tracks its target perfectly

    # ---- 3. the same attack against Gennaro ------------------------------------
    for x1 in (0, 1):
        attack = CommitEchoAdversary(
            copier=5, target=1, commit_tag="gen:commit", reveal_tag="gen:reveal"
        )
        announced = protocol.announced([x1, 0, 1, 1, None], adversary=attack, seed=7)
        print(f"  gennaro,             x1={x1}: announced {announced}"
              f"   <- copier disqualified, announced 0")
        assert announced[4] == 0  # context-bound proofs reject the replay

    print("\nthe copied commitment is rejected: announced values stay independent")


if __name__ == "__main__":
    main()
