"""Tests for Shamir sharing and both VSS schemes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commitment import PedersenParameters
from repro.crypto.field import PrimeField
from repro.crypto.group import SchnorrGroup
from repro.crypto.secret_sharing import ShamirSharing, Share
from repro.crypto.vss import FeldmanVSS, PedersenVSS
from repro.errors import InvalidParameterError, ShareError

F = PrimeField(101)
GROUP = SchnorrGroup.for_security(24)
PARAMS = PedersenParameters.generate(GROUP)


class TestShamir:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            ShamirSharing(F, 3, 3)  # threshold must be < parties
        with pytest.raises(InvalidParameterError):
            ShamirSharing(F, -1, 3)
        with pytest.raises(InvalidParameterError):
            ShamirSharing(F, 0, 0)
        with pytest.raises(InvalidParameterError):
            ShamirSharing(PrimeField(3), 1, 4)  # field too small

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_share_reconstruct_roundtrip(self, secret, seed):
        scheme = ShamirSharing(F, 2, 5)
        _, shares = scheme.share(secret, random.Random(seed))
        assert scheme.reconstruct(list(shares.values())[:3]) == F.element(secret)

    def test_any_quorum_reconstructs(self):
        scheme = ShamirSharing(F, 2, 5)
        _, shares = scheme.share(42, random.Random(1))
        import itertools

        for subset in itertools.combinations(shares.values(), 3):
            assert scheme.reconstruct(subset) == F.element(42)

    def test_too_few_shares_rejected(self):
        scheme = ShamirSharing(F, 2, 5)
        _, shares = scheme.share(42, random.Random(1))
        with pytest.raises(ShareError):
            scheme.reconstruct(list(shares.values())[:2])

    def test_duplicate_shares_rejected(self):
        scheme = ShamirSharing(F, 1, 4)
        _, shares = scheme.share(9, random.Random(1))
        with pytest.raises(ShareError):
            scheme.reconstruct([shares[1], shares[1], shares[2]])

    def test_threshold_shares_reveal_nothing(self):
        # Perfect privacy: for any t shares, every secret is equally likely.
        # We verify the weaker but testable consequence: the distribution of
        # one share is uniform regardless of the secret.
        scheme = ShamirSharing(F, 1, 3)
        counts = {0: {}, 1: {}}
        for secret in (0, 1):
            for seed in range(400):
                _, shares = scheme.share(secret, random.Random(seed))
                value = shares[1].value.value
                counts[secret][value] = counts[secret].get(value, 0) + 1
        # Total variation between the two share distributions should be small.
        support = set(counts[0]) | set(counts[1])
        tv = sum(
            abs(counts[0].get(v, 0) - counts[1].get(v, 0)) for v in support
        ) / (2 * 400)
        assert tv < 0.25

    def test_reconstruct_with_errors_detects_corruption(self):
        scheme = ShamirSharing(F, 2, 5)
        _, shares = scheme.share(42, random.Random(1))
        good = list(shares.values())
        bad = good[:4] + [Share(good[4].x, good[4].value + 1)]
        with pytest.raises(ShareError):
            scheme.reconstruct_with_errors(bad)

    def test_reconstruct_with_errors_accepts_clean_shares(self):
        scheme = ShamirSharing(F, 2, 5)
        _, shares = scheme.share(42, random.Random(1))
        assert scheme.reconstruct_with_errors(list(shares.values())) == F.element(42)

    def test_linear_homomorphism(self):
        scheme = ShamirSharing(F, 2, 5)
        _, shares_a = scheme.share(10, random.Random(1))
        _, shares_b = scheme.share(20, random.Random(2))
        summed = [scheme.add_shares(shares_a[i], shares_b[i]) for i in range(1, 6)]
        assert scheme.reconstruct(summed[:3]) == F.element(30)

    def test_scaling_homomorphism(self):
        scheme = ShamirSharing(F, 2, 5)
        _, shares = scheme.share(10, random.Random(1))
        scaled = [scheme.scale_share(shares[i], 5) for i in range(1, 6)]
        assert scheme.reconstruct(scaled[:3]) == F.element(50)

    def test_add_shares_mismatched_points_rejected(self):
        scheme = ShamirSharing(F, 1, 3)
        with pytest.raises(ShareError):
            scheme.add_shares(Share(1, F.element(1)), Share(2, F.element(1)))


class TestFeldmanVSS:
    def setup_method(self):
        self.vss = FeldmanVSS(GROUP, threshold=2, parties=5)

    def test_deal_and_verify_all_shares(self):
        dealing = self.vss.deal(1, random.Random(3))
        assert len(dealing.commitments) == 3
        for share in dealing.shares.values():
            assert self.vss.verify_share(dealing.commitments, share)

    def test_tampered_share_rejected(self):
        dealing = self.vss.deal(1, random.Random(3))
        share = dealing.shares[2]
        tampered = Share(share.x, share.value + 1)
        assert not self.vss.verify_share(dealing.commitments, tampered)

    def test_wrong_commitment_vector_length_rejected(self):
        dealing = self.vss.deal(1, random.Random(3))
        assert not self.vss.verify_share(
            dealing.commitments[:2], dealing.shares[1]
        )

    def test_reconstruct_ignores_bad_shares(self):
        dealing = self.vss.deal(1, random.Random(4))
        shares = list(dealing.shares.values())
        shares[0] = Share(shares[0].x, shares[0].value + 1)  # corrupted
        secret = self.vss.reconstruct(dealing.commitments, shares)
        assert secret == GROUP.exponent_field.element(1)

    def test_reconstruct_insufficient_valid_shares(self):
        dealing = self.vss.deal(1, random.Random(4))
        shares = [Share(s.x, s.value + 1) for s in dealing.shares.values()]
        with pytest.raises(ShareError):
            self.vss.reconstruct(dealing.commitments, shares)

    def test_commitment_to_secret_is_g_to_s(self):
        dealing = self.vss.deal(7, random.Random(5))
        assert self.vss.commitment_to_secret(dealing.commitments) == GROUP.power(7)

    def test_commitment_to_secret_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            self.vss.commitment_to_secret([])

    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_bit_secrets_roundtrip(self, bit, seed):
        dealing = self.vss.deal(bit, random.Random(seed))
        secret = self.vss.reconstruct(
            dealing.commitments, list(dealing.shares.values())
        )
        assert secret.value == bit


class TestPedersenVSS:
    def setup_method(self):
        self.vss = PedersenVSS(PARAMS, threshold=2, parties=5)

    def test_deal_and_verify(self):
        dealing = self.vss.deal(1, random.Random(8))
        for share in dealing.shares.values():
            assert self.vss.verify_share(dealing.commitments, share)

    def test_tampered_value_rejected(self):
        from repro.crypto.vss import PedersenShare

        dealing = self.vss.deal(1, random.Random(8))
        share = dealing.shares[3]
        tampered = PedersenShare(share.x, share.value + 1, share.blinding)
        assert not self.vss.verify_share(dealing.commitments, tampered)

    def test_tampered_blinding_rejected(self):
        from repro.crypto.vss import PedersenShare

        dealing = self.vss.deal(1, random.Random(8))
        share = dealing.shares[3]
        tampered = PedersenShare(share.x, share.value, share.blinding + 1)
        assert not self.vss.verify_share(dealing.commitments, tampered)

    def test_reconstruct(self):
        dealing = self.vss.deal(1, random.Random(9))
        secret = self.vss.reconstruct(
            dealing.commitments, list(dealing.shares.values())
        )
        assert secret.value == 1

    def test_reconstruct_with_minimum_quorum(self):
        dealing = self.vss.deal(1, random.Random(9))
        subset = [dealing.shares[i] for i in (2, 4, 5)]
        assert self.vss.reconstruct(dealing.commitments, subset).value == 1

    def test_insufficient_shares_rejected(self):
        dealing = self.vss.deal(1, random.Random(9))
        with pytest.raises(ShareError):
            self.vss.reconstruct(dealing.commitments, [dealing.shares[1]])

    def test_commitments_hide_secret(self):
        # Perfect hiding: the commitment vectors for secrets 0 and 1 with the
        # same rng stream are different group elements but both verify, and
        # nothing in the public view pins the secret (we just sanity-check
        # that commitments are not trivially equal to g^s).
        dealing0 = self.vss.deal(0, random.Random(10))
        assert dealing0.commitments[0] != GROUP.power(0)
