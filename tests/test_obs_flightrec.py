"""Flight recorder tests: ring semantics, hooks, dump triggers, shard folding."""

import json

import pytest

from repro.errors import ConsistencyError
from repro.experiments import ExperimentConfig, run_experiment
from repro.net.network import run_protocol
from repro.net.transcript import Execution
from repro.obs import FlightRecorder, Metrics, Tracer, flightrec, runtime
from repro.obs.flightrec import read_dump
from repro.parallel import ExperimentEngine
from repro.protocols import CGMABroadcast, NaiveCommitReveal


# -- module-level task for pool workers (must pickle) --------------------------------


def _run_commit_reveal(seed):
    NaiveCommitReveal(4, 1).run([1, 0, 1, 0], seed=seed)
    return seed


class _ExplodingProtocol:
    """A minimal protocol whose parties die on their first activation."""

    n = 3

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        def boom():
            raise RuntimeError("boom")
            yield []  # pragma: no cover — makes `boom` a generator

        return boom()


class TestRing:
    def test_ring_forgets_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.push("tick", index=index)
        assert len(recorder) == 3
        assert recorder.pushed == 5
        assert recorder.forgotten == 2
        assert [record["index"] for record in recorder.snapshot()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_snapshot_is_json_safe(self):
        recorder = FlightRecorder(capacity=8)
        recorder.push("raw", payload=b"\x00\x01", parties={3, 1})
        json.dumps(recorder.snapshot())

    def test_dump_and_read_round_trip(self, tmp_path):
        recorder = FlightRecorder(capacity=4, run_id="t", dump_dir=str(tmp_path))
        recorder.push("tick", index=0)
        recorder.push("tick", index=1)
        path = recorder.dump("unit-test", extra="context")
        records = read_dump(path)
        header, body = records[0], records[1:]
        assert header["kind"] == "flightrec.header"
        assert header["reason"] == "unit-test"
        assert header["context"] == {"extra": "context"}
        assert header["retained"] == 2
        assert [record["index"] for record in body] == [0, 1]
        assert recorder.dumps == [path]

    def test_sequential_dumps_get_distinct_paths(self, tmp_path):
        recorder = FlightRecorder(capacity=4, run_id="t", dump_dir=str(tmp_path))
        recorder.push("tick")
        first = recorder.dump("one")
        second = recorder.dump("two")
        assert first != second

    def test_fold_marks_shard_records(self):
        recorder = FlightRecorder(capacity=8)
        recorder.fold([{"kind": "tick", "ts": 0.1}, {"kind": "tock", "ts": 0.2}])
        snapshot = recorder.snapshot()
        assert [record["kind"] for record in snapshot] == ["tick", "tock"]
        assert all(record["shard"] for record in snapshot)


class TestLifecycle:
    def test_off_by_default(self):
        assert runtime.flightrec is None
        assert flightrec.active() is None
        assert flightrec.dump_if_active("nothing-on") is None

    def test_enable_disable(self):
        recorder = flightrec.enable(capacity=16)
        try:
            assert flightrec.active() is recorder
            assert runtime.flightrec is recorder
            assert Tracer.flight_tap is recorder
        finally:
            flightrec.disable()
        assert flightrec.active() is None
        assert Tracer.flight_tap is None

    def test_recording_restores_previous(self):
        outer = flightrec.enable(capacity=16)
        try:
            with flightrec.recording(capacity=8) as inner:
                assert flightrec.active() is inner
            assert flightrec.active() is outer
        finally:
            flightrec.disable()

    def test_dump_if_active_swallows_write_errors(self, tmp_path):
        with flightrec.recording(dump_dir=str(tmp_path / "missing" / "x" / "y")):
            # os.makedirs handles the nested dir; force failure via a file
            # standing where the directory should be.
            (tmp_path / "blocked").write_text("")
            with flightrec.recording(dump_dir=str(tmp_path / "blocked" / "sub")):
                assert flightrec.dump_if_active("unwritable") is None


class TestTracerTap:
    def test_spans_and_events_mirrored(self):
        with flightrec.recording(capacity=32) as recorder:
            tracer = Tracer()
            with runtime.observed(tracer=tracer, metrics=Metrics()):
                with tracer.span("outer", n=2):
                    tracer.event("tick", round=1)
        kinds = [record["kind"] for record in recorder.snapshot()]
        assert "trace.event" in kinds
        assert "trace.span" in kinds
        mirrored = [r for r in recorder.snapshot() if r["kind"] == "trace.span"]
        assert mirrored[0]["name"] == "outer"

    def test_no_tap_when_recorder_off(self):
        tracer = Tracer()
        with runtime.observed(tracer=tracer, metrics=Metrics()):
            tracer.event("tick")
        # Nothing to assert beyond "does not raise": the tap is None.
        assert tracer.events("tick")


class TestSchedulerHooks:
    def test_messages_and_rounds_recorded(self):
        with flightrec.recording(capacity=4096) as recorder:
            execution = CGMABroadcast(4, 1, security_bits=16).run(
                [1, 0, 1, 0], seed=7
            )
        kinds = {record["kind"] for record in recorder.snapshot()}
        assert {"run_protocol.start", "message", "round"} <= kinds
        messages = [r for r in recorder.snapshot() if r["kind"] == "message"]
        # The ring retains at most the transcript's traffic (plus summaries).
        assert 0 < len(messages) <= len(execution.all_messages())

    def test_recorder_does_not_perturb_execution(self):
        bare = NaiveCommitReveal(4, 1).run([1, 0, 1, 0], seed=11)
        with flightrec.recording(capacity=256):
            recorded = NaiveCommitReveal(4, 1).run([1, 0, 1, 0], seed=11)
        assert bare.exec_vector == recorded.exec_vector
        assert bare.round_count == recorded.round_count


class TestDumpTriggers:
    def test_timeout_dumps_snapshot(self, tmp_path):
        with flightrec.recording(
            capacity=256, run_id="to", dump_dir=str(tmp_path)
        ) as recorder:
            execution = NaiveCommitReveal(4, 1).run(
                [1, 0, 1, 0], seed=3, timeout_rounds=1
            )
        assert execution.timed_out
        assert len(recorder.dumps) == 1
        records = read_dump(recorder.dumps[0])
        assert records[0]["reason"] == "timeout"
        assert records[0]["context"]["timeout_rounds"] == 1
        assert any(record["kind"] == "scheduler.timeout" for record in records[1:])

    def test_escaped_exception_dumps_snapshot(self, tmp_path):
        with flightrec.recording(
            capacity=64, run_id="exc", dump_dir=str(tmp_path)
        ) as recorder:
            with pytest.raises(RuntimeError, match="boom"):
                run_protocol(_ExplodingProtocol(), [0, 0, 0], seed=5)
        assert len(recorder.dumps) == 1
        header = read_dump(recorder.dumps[0])[0]
        assert header["reason"] == "exception"
        assert header["context"]["error"] == "RuntimeError"

    def test_consistency_violation_dumps_snapshot(self, tmp_path):
        execution = Execution(
            n=2,
            corrupted=frozenset(),
            inputs=(0, 1),
            outputs={1: (0, 0), 2: (0, 1)},
            adversary_output=None,
        )
        with flightrec.recording(
            capacity=64, run_id="cv", dump_dir=str(tmp_path)
        ) as recorder:
            with pytest.raises(ConsistencyError):
                execution.announced_vector()
        assert len(recorder.dumps) == 1
        header = read_dump(recorder.dumps[0])[0]
        assert header["reason"] == "consistency-violation"
        assert header["context"]["first"] == [0, 0]

    def test_clean_run_dumps_nothing(self, tmp_path):
        with flightrec.recording(
            capacity=256, run_id="ok", dump_dir=str(tmp_path)
        ) as recorder:
            NaiveCommitReveal(4, 1).run([1, 0, 1, 0], seed=9)
        assert recorder.dumps == []
        assert list(tmp_path.iterdir()) == []


class TestParallelFolding:
    def test_shard_buffers_fold_into_parent(self):
        with flightrec.recording(capacity=4096) as recorder:
            with ExperimentEngine(jobs=2) as engine:
                results = engine.map(_run_commit_reveal, [(s,) for s in range(4)])
        assert results == [0, 1, 2, 3]
        shard_records = [r for r in recorder.snapshot() if r.get("shard")]
        assert shard_records, "worker flight buffers did not fold into the parent"
        assert any(r["kind"] == "run_protocol.start" for r in shard_records)

    def test_no_flight_shipping_when_recorder_off(self):
        with ExperimentEngine(jobs=2) as engine:
            results = engine.map(_run_commit_reveal, [(s,) for s in range(3)])
        assert results == [0, 1, 2]


def _stripped(result):
    from repro.experiments.diffjson import strip_wall_clock

    return strip_wall_clock(result.to_json_dict())


class TestArtifactStability:
    def test_serial_vs_jobs4_artifact_identical_with_recorder_on(self):
        """ISSUE 6 regression gate: the flight recorder introduces wall-clock
        timestamps, and none of them may leak into diffjson-gated artifacts —
        serial and --jobs 4 stay identical with recording enabled, and both
        match a recorder-off run."""
        config = ExperimentConfig(scale=0.15)
        reference = _stripped(run_experiment("E-COST", config, jobs=1))
        with flightrec.recording(capacity=2048):
            serial = _stripped(run_experiment("E-COST", config, jobs=1))
            parallel = _stripped(run_experiment("E-COST", config, jobs=4))
        assert serial == parallel
        assert serial == reference
