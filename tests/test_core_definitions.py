"""Tests for the independence definition estimators (the paper's core).

These tests pin the scientific behaviour: secure protocols score
CONSISTENT, the paper's attacks score VIOLATED, and the G/CR split on
Π_G reproduces Lemma 6.4 in miniature.
"""

import random

import pytest

from repro.adversaries import SequentialCopier, XorAttacker
from repro.analysis import Decision
from repro.core import (
    HONEST,
    MeasurementBudget,
    announce_once,
    cr_report,
    definition_grid,
    g_report,
    g_star_report,
    g_star_star_report,
    measure,
    sample_announced,
    sb_report,
)
from repro.core.predicates import (
    default_family,
    equality_predicate,
    parity_predicate,
    projection_predicate,
    threshold_predicate,
)
from repro.distributions import uniform
from repro.errors import ExperimentError
from repro.protocols import (
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    PiGBroadcast,
    SequentialBroadcast,
)

N, T = 4, 1
UNIFORM = uniform(N)


def rng():
    return random.Random(1234)


class TestAnnouncedSamplers:
    def test_announce_once(self):
        protocol = IdealSimultaneousBroadcast(N, T)
        sample = announce_once(protocol, (1, 0, 1, 0), HONEST, rng())
        assert sample.announced == (1, 0, 1, 0)
        assert sample.corrupted == frozenset()

    def test_sample_announced_counts(self):
        protocol = IdealSimultaneousBroadcast(N, T)
        draws = sample_announced(protocol, UNIFORM, HONEST, 50, rng())
        assert len(draws) == 50
        assert all(d.announced == d.inputs for d in draws)

    def test_adversary_factory_fresh_instances(self):
        protocol = SequentialBroadcast(N, T)
        factory = lambda: SequentialCopier(copier=4, target=1)
        draws = sample_announced(protocol, UNIFORM, factory, 20, rng())
        assert all(d.corrupted == frozenset({4}) for d in draws)
        assert all(d.announced[3] == d.inputs[0] for d in draws)


class TestPredicates:
    def test_parity(self):
        p = parity_predicate(0)
        assert p((1, 1, 0, 0), excluded=3)  # 1^1^0 = 0
        assert not p((1, 0, 0, 0), excluded=3)

    def test_projection_excluded_coordinate(self):
        p = projection_predicate(2, 1)
        assert p((0, 1, 0), excluded=1)
        assert not p((0, 1, 0), excluded=2)  # projecting the excluded coord

    def test_equality(self):
        p = equality_predicate(1, 3)
        assert p((1, 0, 1), excluded=2)
        assert not p((1, 0, 0), excluded=2)
        assert not p((1, 0, 1), excluded=1)

    def test_threshold(self):
        p = threshold_predicate(2)
        assert p((1, 1, 1, 0), excluded=1)
        assert not p((1, 1, 0, 0), excluded=1)

    def test_family_size_and_names(self):
        family = default_family(4)
        names = {p.name for p in family}
        assert len(names) == len(family)  # all distinct
        assert "parity==0" in names


class TestCREstimator:
    def test_secure_protocol_consistent(self):
        report = cr_report(
            IdealSimultaneousBroadcast(N, T), UNIFORM, HONEST, 400, rng()
        )
        assert report.decision == Decision.CONSISTENT

    def test_copy_attack_violates(self):
        report = cr_report(
            SequentialBroadcast(N, T),
            UNIFORM,
            lambda: SequentialCopier(copier=4, target=1),
            400,
            rng(),
        )
        assert report.decision == Decision.VIOLATED
        # The witness predicate involves the copied coordinate.
        assert "P_1" in report.witness or "W[4]" in report.witness

    def test_sample_floor(self):
        with pytest.raises(ExperimentError):
            cr_report(SequentialBroadcast(N, T), UNIFORM, HONEST, 5, rng())

    def test_report_metadata(self):
        report = cr_report(
            IdealSimultaneousBroadcast(N, T), UNIFORM, HONEST, 100, rng()
        )
        assert report.definition == "CR"
        assert report.samples == 100
        assert report.details["distribution"] == UNIFORM.name
        assert "CR" in report.summary()


class TestGEstimator:
    def test_vacuous_without_corruption(self):
        report = g_report(
            IdealSimultaneousBroadcast(N, T), UNIFORM, HONEST, 100, rng()
        )
        assert report.gap == 0.0
        assert "vacuous" in report.witness

    def test_pig_under_xor_attack_consistent(self):
        """Lemma 6.4 half 1: Π_G remains G-independent under A*."""
        protocol = PiGBroadcast(N, T, backend="ideal")
        report = g_report(
            protocol,
            UNIFORM,
            lambda: XorAttacker(protocol, corrupted_pair=[2, 4]),
            1200,
            rng(),
            min_condition_count=40,
        )
        assert report.decision == Decision.CONSISTENT

    def test_copier_violates_g(self):
        protocol = SequentialBroadcast(N, T)
        report = g_report(
            protocol,
            UNIFORM,
            lambda: SequentialCopier(copier=4, target=1),
            800,
            rng(),
        )
        assert report.decision == Decision.VIOLATED

    def test_min_condition_count_respected(self):
        protocol = PiGBroadcast(N, T, backend="ideal")
        report = g_report(
            protocol,
            UNIFORM,
            lambda: XorAttacker(protocol, corrupted_pair=[2, 4]),
            100,
            rng(),
            min_condition_count=1000,
        )
        assert report.details["conditioning_events"] == 0


class TestCRSeparatesPiG:
    def test_pig_under_xor_attack_violates_cr(self):
        """Lemma 6.4 half 2 / Claim 6.6: the parity predicate exposes Π_G."""
        protocol = PiGBroadcast(N, T, backend="ideal")
        report = cr_report(
            protocol,
            UNIFORM,
            lambda: XorAttacker(protocol, corrupted_pair=[2, 4]),
            400,
            rng(),
        )
        assert report.decision == Decision.VIOLATED
        assert "parity" in report.witness

    def test_pig_honest_is_cr_consistent(self):
        protocol = PiGBroadcast(N, T, backend="ideal")
        report = cr_report(protocol, UNIFORM, HONEST, 400, rng())
        assert report.decision == Decision.CONSISTENT


class TestGStarEstimators:
    def test_vacuous_without_corruption(self):
        for fn in (g_star_report, g_star_star_report):
            report = fn(IdealSimultaneousBroadcast(N, T), HONEST, 10, rng())
            assert report.gap == 0.0

    def test_pig_xor_attack_gstar_consistent(self):
        protocol = PiGBroadcast(N, T, backend="ideal")
        factory = lambda: XorAttacker(protocol, corrupted_pair=[2, 4])
        # The interventional estimator maxes over many (w, r, s) triples, so
        # small per-point samples inflate the noise floor; 400 per point puts
        # the max comfortably under the threshold.
        report = g_star_star_report(protocol, factory, 400, rng())
        assert report.decision == Decision.CONSISTENT

    def test_copier_violates_gstarstar(self):
        protocol = SequentialBroadcast(N, T)
        factory = lambda: SequentialCopier(copier=4, target=1)
        report = g_star_star_report(protocol, factory, 60, rng())
        assert report.decision == Decision.VIOLATED
        assert "corrupted P_4" in report.witness

    def test_copier_violates_gstar(self):
        protocol = SequentialBroadcast(N, T)
        factory = lambda: SequentialCopier(copier=4, target=1)
        report = g_star_report(protocol, factory, 60, rng())
        assert report.decision == Decision.VIOLATED

    def test_equivalence_direction_on_examples(self):
        """Proposition B.3 sampled: on our examples G* and G** agree."""
        cases = [
            (SequentialBroadcast(N, T), lambda p: lambda: SequentialCopier(4, 1)),
            (PiGBroadcast(N, T, backend="ideal"), lambda p: lambda: XorAttacker(p, [2, 4])),
        ]
        for protocol, suite in cases:
            factory = suite(protocol)
            star = g_star_report(protocol, factory, 60, rng())
            star_star = g_star_star_report(protocol, factory, 60, rng())
            assert star.violated == star_star.violated

    def test_sample_floor(self):
        with pytest.raises(ExperimentError):
            g_star_star_report(SequentialBroadcast(N, T), HONEST, 1, rng())


class TestSbEstimator:
    def test_ideal_protocol_consistent(self):
        report = sb_report(IdealSimultaneousBroadcast(N, T), HONEST, 30, rng())
        assert report.decision == Decision.CONSISTENT
        assert report.details["correctness_violation"] == 0.0

    def test_copier_violates_sb(self):
        protocol = SequentialBroadcast(N, T)
        report = sb_report(
            protocol, lambda: SequentialCopier(copier=4, target=1), 30, rng()
        )
        assert report.decision == Decision.VIOLATED
        assert report.details["simulation_gap"] > 0.5

    def test_input_substitution_is_simulatable(self):
        """Announcing a substituted input is ideal-model legal: Sb holds."""
        from repro.adversaries import InputSubstitution

        protocol = GennaroBroadcast(N, T, security_bits=16)
        report = sb_report(
            protocol,
            lambda: InputSubstitution(protocol, corrupted=[2], substitution=1),
            20,
            rng(),
        )
        assert report.decision == Decision.CONSISTENT

    def test_restricted_input_class(self):
        protocol = SequentialBroadcast(N, T)
        report = sb_report(
            protocol,
            lambda: SequentialCopier(copier=4, target=1),
            30,
            rng(),
            input_vectors=[(0, 0, 0, 0), (1, 0, 0, 0)],
        )
        # Two singletons differing only in the target's bit expose the copier.
        assert report.decision == Decision.VIOLATED


class TestMeasureAndGrid:
    def test_measure_dispatch(self):
        protocol = IdealSimultaneousBroadcast(N, T)
        budget = MeasurementBudget(distribution_samples=100, samples_per_point=10)
        for definition in ("CR", "G", "Sb", "G*", "G**"):
            report = measure(
                definition, protocol, UNIFORM, {"honest": HONEST}, rng(), budget
            )
            assert report.definition == definition
            assert report.gap <= 0.2

    def test_measure_unknown_definition(self):
        with pytest.raises(ExperimentError):
            measure("XYZ", IdealSimultaneousBroadcast(N, T), UNIFORM, {}, rng())

    def test_measure_takes_worst_adversary(self):
        protocol = SequentialBroadcast(N, T)
        suite = {
            "honest": HONEST,
            "copier": lambda: SequentialCopier(copier=4, target=1),
        }
        budget = MeasurementBudget(distribution_samples=400, samples_per_point=20)
        report = measure("CR", protocol, UNIFORM, suite, rng(), budget)
        assert report.violated
        assert "copier" in report.witness

    def test_grid_shape(self):
        budget = MeasurementBudget(distribution_samples=60, samples_per_point=8)
        cells = definition_grid(
            [IdealSimultaneousBroadcast(N, T)],
            ["CR", "G"],
            [UNIFORM],
            {},
            rng(),
            budget,
        )
        assert len(cells) == 2
        assert {c.definition for c in cells} == {"CR", "G"}

    def test_budget_scaling(self):
        budget = MeasurementBudget(100, 50).scaled(0.1)
        assert budget.distribution_samples == 10
        assert budget.samples_per_point == 5
