"""Tests for the round engine: delivery, rushing, termination, transcripts."""

import random

import pytest

from repro.errors import ConsistencyError, NetworkError, ProtocolError
from repro.net.adversary import Adversary, PassiveAdversary, ProgramAdversary
from repro.net.message import Draft, Message, broadcast, send
from repro.net.network import run_protocol
from repro.obs import Metrics, Tracer, payload_size, runtime as obs_runtime


class EchoProtocol:
    """Round 1: everyone broadcasts its input.  Round 2: output what was heard."""

    def __init__(self, n):
        self.n = n

    def setup(self, rng):
        return {"name": "echo"}

    def program(self, ctx, value):
        inbox = yield [broadcast(value, tag="val")]
        heard = inbox.payload_by_sender(tag="val")
        return tuple(heard.get(i) for i in range(1, ctx.n + 1))


class PingPongProtocol:
    """Party 1 sends to 2, party 2 replies; measures point-to-point latency."""

    def __init__(self):
        self.n = 2

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        if ctx.party_id == 1:
            inbox = yield [send(2, ("ping", value))]
            inbox = yield []
            reply = inbox.first_from(2)
            return reply.payload if reply else None
        inbox = yield []
        ping = inbox.first_from(1)
        inbox = yield [send(1, ("pong", ping.payload[1]))]
        return "done"


class NeverTerminates:
    def __init__(self):
        self.n = 2

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        while True:
            yield []


class TestBasicExecution:
    def test_echo_all_honest(self):
        execution = run_protocol(EchoProtocol(3), [10, 20, 30], seed=1)
        for i in (1, 2, 3):
            assert execution.outputs[i] == (10, 20, 30)
        assert execution.round_count == 2

    def test_ping_pong(self):
        execution = run_protocol(PingPongProtocol(), ["x", None], seed=1)
        assert execution.outputs[1] == ("pong", "x")
        assert execution.outputs[2] == "done"

    def test_exec_vector_shape(self):
        execution = run_protocol(EchoProtocol(2), [1, 0], seed=1)
        vector = execution.exec_vector
        assert len(vector) == 3
        assert vector[0] is None  # no-adversary output
        assert vector[1] == (1, 0)

    def test_max_rounds_guard(self):
        with pytest.raises(NetworkError):
            run_protocol(NeverTerminates(), [None, None], seed=1, max_rounds=5)

    def test_input_count_validated(self):
        with pytest.raises(ProtocolError):
            run_protocol(EchoProtocol(3), [1, 2], seed=1)

    def test_all_corrupted_rejected(self):
        with pytest.raises(ProtocolError):
            run_protocol(
                EchoProtocol(2), [1, 2], adversary=Adversary(corrupted=[1, 2]), seed=1
            )

    def test_out_of_range_corruption_rejected(self):
        with pytest.raises(ProtocolError):
            run_protocol(
                EchoProtocol(2), [1, 2], adversary=Adversary(corrupted=[5]), seed=1
            )

    def test_deterministic_under_seed(self):
        e1 = run_protocol(EchoProtocol(3), [1, 0, 1], seed=7)
        e2 = run_protocol(EchoProtocol(3), [1, 0, 1], seed=7)
        assert e1.outputs == e2.outputs
        assert [r.messages for r in e1.rounds] == [r.messages for r in e2.rounds]

    def test_transcript_records_traffic(self):
        execution = run_protocol(EchoProtocol(2), [5, 6], seed=1)
        round1 = execution.messages_in_round(1)
        assert {m.payload for m in round1} == {5, 6}
        assert execution.messages_in_round(99) == []
        assert len(execution.all_messages()) == 2
        history = execution.broadcast_history()
        assert (1, 1, 5) in history and (1, 2, 6) in history


class TestSilentCorruption:
    def test_crashed_party_delivers_nothing(self):
        execution = run_protocol(
            EchoProtocol(3), [10, 20, 30], adversary=Adversary(corrupted=[2]), seed=1
        )
        assert execution.outputs[1] == (10, None, 30)
        assert 2 not in execution.outputs

    def test_honest_list(self):
        execution = run_protocol(
            EchoProtocol(3), [1, 1, 1], adversary=Adversary(corrupted=[2]), seed=1
        )
        assert execution.honest == [1, 3]
        with pytest.raises(ConsistencyError):
            execution.honest_output(2)


class TestPassiveAdversary:
    def test_corrupted_behave_honestly(self):
        execution = run_protocol(
            EchoProtocol(3),
            [10, 20, 30],
            adversary=PassiveAdversary(corrupted=[2]),
            seed=1,
        )
        assert execution.outputs[1] == (10, 20, 30)
        assert execution.adversary_output[2] == (10, 20, 30)

    def test_requires_program_factory_installed(self):
        adversary = PassiveAdversary(corrupted=[1])
        with pytest.raises(ProtocolError):
            adversary.setup(2, None, {}, random.Random(0))


class TestProgramAdversary:
    def test_malicious_program_replaces_value(self):
        def liar(ctx, value):
            yield [broadcast(999, tag="val")]
            return None

        execution = run_protocol(
            EchoProtocol(3),
            [10, 20, 30],
            adversary=ProgramAdversary({2: liar}),
            seed=1,
        )
        assert execution.outputs[1] == (10, 999, 30)

    def test_input_override(self):
        def honest_like(ctx, value):
            yield [broadcast(value, tag="val")]
            return None

        execution = run_protocol(
            EchoProtocol(3),
            [10, 20, 30],
            adversary=ProgramAdversary({2: honest_like}, inputs_override={2: -1}),
            seed=1,
        )
        assert execution.outputs[1] == (10, -1, 30)


class TestRushing:
    def test_adversary_sees_current_round_honest_broadcasts(self):
        """A rushing adversary echoes an honest round-1 broadcast in round 1."""

        class RushEcho(Adversary):
            def act(self, round_number, rushed):
                if round_number == 1:
                    seen = rushed[2].broadcasts(tag="val")
                    honest_value = next(
                        m.payload for m in seen if m.sender == 1
                    )
                    return {2: [broadcast(honest_value, tag="val")]}
                return {2: []}

        execution = run_protocol(
            EchoProtocol(3), [10, 20, 30], adversary=RushEcho(corrupted=[2]), seed=1
        )
        # Party 2's announced value equals party 1's, decided within round 1.
        assert execution.outputs[1] == (10, 10, 30)

    def test_rushed_point_to_point_traffic(self):
        """Honest round-r p2p messages to corrupted parties arrive in round r."""

        observed_rounds = {}

        class Recorder(Adversary):
            def act(self, round_number, rushed):
                for message in rushed[2]:
                    if not message.is_broadcast:
                        observed_rounds.setdefault(message.payload, round_number)
                return {2: []}

        run_protocol(
            PingPongProtocol(), ["x", None], adversary=Recorder(corrupted=[2]), seed=1
        )
        # Party 1 sends ("ping", "x") in round 1; the adversary must see it in round 1.
        assert observed_rounds[("ping", "x")] == 1

    def test_honest_parties_are_not_rushed(self):
        """Honest parties see round-r messages only in round r+1 (EchoProtocol
        outputs would be impossible otherwise: they hear values one round later)."""
        execution = run_protocol(EchoProtocol(2), [1, 2], seed=0)
        assert execution.round_count == 2

    def test_adversary_observes_all_channels(self):
        class Observer(Adversary):
            def finish(self):
                return [m.payload for m in self.observed_messages]

        execution = run_protocol(
            PingPongProtocol(), ["x", None], adversary=Observer(corrupted=[]), seed=1
        )
        # Wait: corrupted=[] means no corrupted parties, but observe still sees traffic.
        assert ("ping", "x") in execution.adversary_output
        assert ("pong", "x") in execution.adversary_output

    def test_forged_honest_sender_rejected(self):
        class Forger(Adversary):
            def act(self, round_number, rushed):
                return {2: [Message(sender=1, recipient=3, payload="fake")]}

        with pytest.raises(ProtocolError):
            run_protocol(
                EchoProtocol(3), [1, 2, 3], adversary=Forger(corrupted=[2]), seed=1
            )

    def test_forged_corrupted_sender_allowed(self):
        class CorruptForger(Adversary):
            def act(self, round_number, rushed):
                if round_number == 1:
                    return {
                        2: [
                            Message(sender=4, recipient=1, payload="from-4"),
                            Draft(recipient=1, payload="from-2").stamped(2),
                        ]
                    }
                return {2: []}

        class Listen:
            n = 4

            def setup(self, rng):
                return None

            def program(self, ctx, value):
                inbox = yield []
                return sorted(m.payload for m in inbox)

        execution = run_protocol(
            Listen(),
            [None] * 4,
            adversary=CorruptForger(corrupted=[2, 4]),
            seed=1,
        )
        assert execution.outputs[1] == ["from-2", "from-4"]


class TestSeedRecording:
    def test_seed_recorded_on_execution(self):
        assert run_protocol(EchoProtocol(2), [1, 0], seed=9).seed == 9
        # The silent default is no longer silent: it is recorded as 0.
        assert run_protocol(EchoProtocol(2), [1, 0]).seed == 0
        # An externally seeded rng cannot be recovered; recorded as unknown.
        assert run_protocol(EchoProtocol(2), [1, 0], rng=random.Random(5)).seed is None

    def test_default_seed_matches_explicit_zero(self):
        defaulted = run_protocol(EchoProtocol(3), [1, 0, 1])
        explicit = run_protocol(EchoProtocol(3), [1, 0, 1], seed=0)
        assert defaulted.outputs == explicit.outputs
        assert defaulted.seed == explicit.seed == 0

    def test_seed_traced(self):
        tracer = Tracer()
        with obs_runtime.observed(tracer=tracer):
            run_protocol(EchoProtocol(2), [1, 0])
        (event,) = tracer.events("run_protocol.seed")
        assert event["attrs"]["seed"] == 0
        assert event["attrs"]["defaulted"] is True
        (span,) = tracer.spans("scheduler.run")
        assert span["attrs"]["seed"] == 0


class TestInstrumentation:
    """Scheduler counters must match the execution transcript exactly."""

    def _observed_run(self, protocol, inputs, adversary=None, seed=1):
        with obs_runtime.observed(metrics=Metrics()) as (_, metrics):
            execution = run_protocol(protocol, inputs, adversary=adversary, seed=seed)
        return execution, metrics

    def test_message_and_round_counters_match_transcript(self):
        execution, metrics = self._observed_run(EchoProtocol(3), [10, 20, 30])
        messages = execution.all_messages()
        assert metrics.get("net.rounds") == execution.round_count == 2
        assert metrics.get("net.messages.sent") == len(messages) == 3
        assert metrics.get("net.messages.honest") == 3
        assert metrics.get("net.messages.corrupted") == 0
        assert metrics.get("net.messages.broadcast") == 3
        # Each broadcast is delivered to all 3 parties.
        assert metrics.get("net.messages.delivered") == 9

    def test_byte_counters_match_transcript(self):
        execution, metrics = self._observed_run(EchoProtocol(3), [10, 20, 30])
        expected = sum(payload_size(m.payload) for m in execution.all_messages())
        assert metrics.get("net.bytes.sent") == expected
        per_party = {
            i: sum(
                payload_size(m.payload)
                for m in execution.all_messages()
                if m.sender == i
            )
            for i in (1, 2, 3)
        }
        for i, size in per_party.items():
            assert metrics.get(f"net.messages.sent.party.{i}") == 1
            assert metrics.get(f"net.bytes.sent.party.{i}") == size
        assert sum(per_party.values()) == expected

    def test_point_to_point_accounting(self):
        execution, metrics = self._observed_run(PingPongProtocol(), ["x", None])
        messages = execution.all_messages()
        assert metrics.get("net.messages.sent") == len(messages) == 2
        assert metrics.get("net.messages.broadcast") == 0
        # p2p messages are delivered to exactly one recipient each.
        assert metrics.get("net.messages.delivered") == 2
        assert metrics.get("net.messages.sent.party.1") == 1
        assert metrics.get("net.messages.sent.party.2") == 1

    def test_corrupted_traffic_counted(self):
        execution, metrics = self._observed_run(
            EchoProtocol(3), [10, 20, 30], adversary=PassiveAdversary(corrupted=[2])
        )
        assert metrics.get("net.messages.honest") == 2
        assert metrics.get("net.messages.corrupted") == 1
        assert metrics.get("net.messages.sent") == len(execution.all_messages()) == 3

    def test_counters_deterministic_across_replays(self):
        _, first = self._observed_run(EchoProtocol(3), [1, 0, 1], seed=7)
        _, second = self._observed_run(EchoProtocol(3), [1, 0, 1], seed=7)
        assert first.counters == second.counters

    def test_uninstrumented_run_pays_no_bookkeeping(self):
        execution = run_protocol(EchoProtocol(3), [10, 20, 30], seed=1)
        assert obs_runtime.metrics is None
        assert execution.round_count == 2
