"""Tests for repro.parallel: the engine, trial plans, and serial/parallel equality.

The load-bearing guarantee: a parallel run is *bit-identical* to a serial
run at any worker count.  Equality is asserted on the full JSON dump of
each result (tables, data, notes, metrics counters and histograms) with
only wall-clock fields stripped.
"""

import inspect
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    SHARDED_IDS,
    ExperimentConfig,
    TrialPlan,
    run_all,
    run_experiment,
    run_many,
)
from repro.experiments import registry as registry_module
from repro.experiments.common import TRIAL_SALT_SHIFT
from repro.experiments.diffjson import compare_dirs, strip_wall_clock
from repro.experiments.lemma64 import _collect_draws
from repro.obs import Metrics, Tracer, runtime
from repro.parallel import SERIAL_ENGINE, ExperimentEngine, normalize_jobs


# -- module-level task functions (must pickle into worker processes) ---------------


def _square(x):
    return x * x


def _count_and_observe(x):
    if runtime.metrics is not None:
        runtime.metrics.inc("test.calls")
        runtime.metrics.observe("test.values", x)
    if runtime.tracer.enabled:
        with runtime.tracer.span("test.shard", x=x):
            runtime.tracer.event("test.tick", x=x)
    return x


def _stripped(result):
    return strip_wall_clock(result.to_json_dict())


class TestEngine:
    def test_jobs_normalization(self):
        assert normalize_jobs(1) == 1
        assert normalize_jobs(4) == 4
        assert normalize_jobs(0) == 1
        assert normalize_jobs(-3) == 1
        assert normalize_jobs(None) >= 1

    def test_serial_map_runs_inline(self):
        assert SERIAL_ENGINE.map(_square, [(i,) for i in range(5)]) == [0, 1, 4, 9, 16]

    def test_parallel_map_preserves_order(self):
        engine = ExperimentEngine(jobs=2)
        assert engine.map(_square, [(i,) for i in range(7)]) == [i * i for i in range(7)]

    def test_single_task_stays_inline(self):
        engine = ExperimentEngine(jobs=4)
        assert engine.map(_square, [(3,)]) == [9]

    def test_worker_metrics_fold_into_ambient_registry(self):
        engine = ExperimentEngine(jobs=2)
        with runtime.observed(metrics=Metrics()) as (_, metrics):
            engine.map(_count_and_observe, [(i,) for i in range(6)])
        assert metrics.get("test.calls") == 6
        histogram = metrics.histograms["test.values"]
        assert histogram.count == 6
        assert histogram.min == 0 and histogram.max == 5

    def test_serial_and_parallel_fold_to_equal_metrics(self):
        snapshots = []
        for jobs in (1, 3):
            with runtime.observed(metrics=Metrics()) as (_, metrics):
                ExperimentEngine(jobs).map(_count_and_observe, [(i,) for i in range(9)])
            snapshots.append(metrics.snapshot())
        assert snapshots[0] == snapshots[1]

    def test_worker_trace_records_fold_under_current_path(self):
        engine = ExperimentEngine(jobs=2)
        tracer = Tracer()
        with runtime.observed(tracer=tracer, metrics=Metrics()):
            with runtime.tracer.span("coordinator"):
                engine.map(_count_and_observe, [(i,) for i in range(4)])
        spans = tracer.spans("test.shard")
        assert len(spans) == 4
        assert all(span["path"].startswith("coordinator/") for span in spans)
        assert len(tracer.events("test.tick")) == 4


class TestTracerFold:
    def test_fold_reroots_paths_and_depths(self):
        worker = Tracer()
        with worker.span("inner"):
            worker.event("tick")
        coordinator = Tracer()
        with coordinator.span("outer"):
            coordinator.fold(list(worker.records))
        folded = coordinator.spans("inner")[0]
        assert folded["path"] == "outer/inner"
        assert folded["depth"] == 1
        assert coordinator.events("tick")[0]["path"] == "outer/inner"

    def test_fold_at_top_level_keeps_paths(self):
        worker = Tracer()
        with worker.span("inner"):
            pass
        coordinator = Tracer()
        coordinator.fold(list(worker.records))
        assert coordinator.spans("inner")[0]["path"] == "inner"


class TestTrialPlan:
    @given(
        total=st.integers(min_value=0, max_value=500),
        parts=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_shards_partition_exactly(self, total, parts):
        plan = TrialPlan(salt=0x7E57, total=total, parts=parts)
        shards = plan.shards()
        covered = [trial for shard in shards for trial in shard.trials()]
        assert covered == list(range(total))
        sizes = [shard.count for shard in shards]
        assert all(size >= 1 for size in sizes)
        if sizes:
            assert max(sizes) - min(sizes) <= 1

    @given(seed=st.integers(min_value=0, max_value=2**31), total=st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_per_trial_streams_are_disjoint(self, seed, total):
        config = ExperimentConfig(seed=seed)
        plan = TrialPlan(salt=0x7E57, total=total)
        salts = [plan.trial_salt(trial) for trial in plan.trials()]
        assert len(set(salts)) == total
        prefixes = [
            tuple(plan.rng(config, trial).random() for _ in range(4))
            for trial in plan.trials()
        ]
        assert len(set(prefixes)) == total

    def test_plans_with_different_salts_never_share_streams(self):
        first = TrialPlan(salt=0x100, total=20)
        second = TrialPlan(salt=0x101, total=20)
        first_salts = {first.trial_salt(i) for i in range(20)}
        second_salts = {second.trial_salt(i) for i in range(20)}
        assert not first_salts & second_salts

    def test_trial_salts_avoid_legacy_namespace(self):
        # Legacy call sites use salts < 2**16; per-trial salts start at 2**32.
        plan = TrialPlan(salt=1, total=10)
        assert all(plan.trial_salt(i) >= 1 << TRIAL_SALT_SHIFT for i in range(10))

    def test_shard_rng_matches_plan_rng(self):
        config = ExperimentConfig()
        plan = TrialPlan(salt=0x55, total=17, parts=4)
        for shard in plan.shards():
            for trial in shard.trials():
                assert shard.rng(config, trial).random() == plan.rng(config, trial).random()

    def test_shard_rejects_foreign_trial(self):
        plan = TrialPlan(salt=0x55, total=10, parts=2)
        first, second = plan.shards()
        with pytest.raises(IndexError):
            first.rng(ExperimentConfig(), second.start)

    @given(jobs=st.integers(min_value=1, max_value=4))
    @settings(max_examples=4, deadline=None)
    def test_sharded_sampling_invariant_under_worker_count(self, jobs):
        config = ExperimentConfig(scale=0.05)
        reference = _collect_draws(config, SERIAL_ENGINE, "ideal", ("uniform",), 0x99, 30)
        draws = _collect_draws(
            config, ExperimentEngine(jobs), "ideal", ("uniform",), 0x99, 30
        )
        assert draws == reference


class TestSerialParallelEquality:
    """run_experiment / run_many output is invariant in the worker count."""

    def test_sharded_registry_contents(self):
        assert SHARDED_IDS == {"E-C56", "E-C66", "E-L64", "E-COST", "E-FAULT"}

    @pytest.mark.parametrize("jobs", [2, 3, 4])
    def test_claim56_equal_at_any_worker_count(self, jobs):
        config = ExperimentConfig(scale=0.05)
        serial = run_experiment("E-C56", config, jobs=1)
        parallel = run_experiment("E-C56", config, jobs=jobs)
        assert _stripped(serial) == _stripped(parallel)
        assert serial.passed

    def test_claim66_equal_including_metrics(self):
        config = ExperimentConfig(scale=0.05)
        serial = run_experiment("E-C66", config, jobs=1)
        parallel = run_experiment("E-C66", config, jobs=2)
        assert _stripped(serial) == _stripped(parallel)
        assert serial.metrics["counters"] == parallel.metrics["counters"]

    def test_cost_equal_and_exactness_checks_stay_green(self):
        config = ExperimentConfig(scale=0.15)
        serial = run_experiment("E-COST", config, jobs=1)
        parallel = run_experiment("E-COST", config, jobs=2)
        assert _stripped(serial) == _stripped(parallel)
        assert parallel.data["checks"]["counters_exact"]
        assert parallel.data["checks"]["deterministic"]

    def test_run_many_mixed_light_and_heavy(self):
        config = ExperimentConfig(scale=0.05)
        ids = ["E-C56", "E-RND"]
        serial = run_many(ids, config, jobs=1)
        parallel = run_many(ids, config, jobs=2)
        assert [r.experiment_id for r in parallel] == ids
        for a, b in zip(serial, parallel, strict=True):
            assert _stripped(a) == _stripped(b)


class TestMutableDefaultFix:
    def test_run_experiment_default_config_is_none(self):
        assert inspect.signature(run_experiment).parameters["config"].default is None

    def test_run_all_default_config_is_none(self):
        assert inspect.signature(run_all).parameters["config"].default is None

    def test_runner_modules_do_not_share_a_config_instance(self):
        for module in registry_module._MODULES:
            default = inspect.signature(module.run).parameters["config"].default
            assert default is None, f"{module.EXPERIMENT_ID} shares a mutable default"

    def test_run_experiment_accepts_missing_config(self):
        result = run_experiment("E-C56", ExperimentConfig(scale=0.05))
        assert result.passed


class TestDiffJson:
    def _write(self, directory, name, payload):
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, name), "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    def test_identical_dirs_have_no_diffs(self, tmp_path):
        payload = {"passed": True, "metrics": {"wall_seconds": 1.0, "counters": {"x": 1}}}
        self._write(tmp_path / "a", "E-X.json", payload)
        self._write(tmp_path / "b", "E-X.json", payload)
        assert compare_dirs(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_wall_clock_differences_are_ignored(self, tmp_path):
        first = {"passed": True, "metrics": {"wall_seconds": 1.0, "counters": {"x": 1}}}
        second = {"passed": True, "metrics": {"wall_seconds": 9.9, "counters": {"x": 1}}}
        self._write(tmp_path / "a", "E-X.json", first)
        self._write(tmp_path / "b", "E-X.json", second)
        assert compare_dirs(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_counter_drift_is_a_divergence(self, tmp_path):
        first = {"passed": True, "metrics": {"wall_seconds": 1.0, "counters": {"x": 1}}}
        second = {"passed": True, "metrics": {"wall_seconds": 1.0, "counters": {"x": 2}}}
        self._write(tmp_path / "a", "E-X.json", first)
        self._write(tmp_path / "b", "E-X.json", second)
        diffs = compare_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert diffs and "counters.x" in diffs[0]

    def test_missing_artifact_is_a_divergence(self, tmp_path):
        payload = {"passed": True}
        self._write(tmp_path / "a", "E-X.json", payload)
        self._write(tmp_path / "a", "E-Y.json", payload)
        self._write(tmp_path / "b", "E-X.json", payload)
        diffs = compare_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert any("E-Y.json" in diff for diff in diffs)

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.experiments.diffjson import main

        payload = {"passed": True, "metrics": {"wall_seconds": 0.5}}
        self._write(tmp_path / "a", "E-X.json", payload)
        self._write(tmp_path / "b", "E-X.json", payload)
        assert main([str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        self._write(tmp_path / "b", "E-X.json", {"passed": False, "metrics": {}})
        assert main([str(tmp_path / "a"), str(tmp_path / "b")]) == 1


class TestCLIJobs:
    def test_cli_jobs_flag_parallel(self, capsys, tmp_path):
        from repro.experiments.__main__ import main as cli_main

        code = cli_main(
            ["E-C56", "--scale", "0.05", "--jobs", "2", "--json", str(tmp_path / "par")]
        )
        assert code == 0
        assert "E-C56" in capsys.readouterr().out
        serial = cli_main(
            ["E-C56", "--scale", "0.05", "--jobs", "1", "--json", str(tmp_path / "ser")]
        )
        assert serial == 0
        capsys.readouterr()
        assert compare_dirs(str(tmp_path / "ser"), str(tmp_path / "par")) == []

    def test_cli_rejects_nonpositive_jobs(self, capsys):
        from repro.experiments.__main__ import main as cli_main

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["E-C56", "--jobs", "0"])
        assert excinfo.value.code == 2
