"""Crash-fault conformance for the single-sender broadcast implementations.

Crash faults (send omission) are strictly weaker than the Byzantine
corruption each protocol tolerates, so as long as crashed + corrupted
parties stay within the bound t:

* **agreement** — all running (non-crashed, honest) parties deliver the
  same value;
* **validity** — if the sender is honest and its round-1 transmission
  happened before any crash, that value is the one delivered;
* **default** — a sender crashed from round 1 delivers nothing, and the
  running parties must agree on the default 0 (the paper's convention
  for missing contributions).

Swept per protocol at its own bound: Dolev-Strong (t < n, here t = 2),
EIG (3t < n, t = 1), phase-king (4t < n, t = 1), all at n = 5.
"""

from __future__ import annotations

import pytest

from repro.broadcast.dolev_strong import DolevStrongBroadcast
from repro.broadcast.eig import EIGBroadcast
from repro.broadcast.phase_king import PhaseKingBroadcast
from repro.faults import CrashFault, FaultPlan, FaultRule
from repro.net.adversary import Adversary
from repro.net.network import run_protocol

N = 5
SENDER = 1
VALUE = 1  # distinct from the default 0, so validity is a real check.
TIMEOUT = 12 * N

PROTOCOLS = {
    "dolev-strong": (lambda sender: DolevStrongBroadcast(N, 2, sender=sender), 2),
    "eig": (lambda sender: EIGBroadcast(N, 1, sender=sender), 1),
    "phase-king": (lambda sender: PhaseKingBroadcast(N, 1, sender=sender), 1),
}


def relays(t):
    """The first ``t`` non-sender parties (the crash victims)."""
    return [i for i in range(1, N + 1) if i != SENDER][:t]


def crash_plan(parties, at_round=1, recover_at=None, name="crash"):
    return FaultPlan(
        name=name,
        crashes=tuple(
            CrashFault(party=p, at_round=at_round, recover_at=recover_at)
            for p in parties
        ),
    )


def run_broadcast(protocol, plan, seed=11, adversary=None):
    inputs = [VALUE if i == SENDER else 0 for i in range(1, N + 1)]
    return run_protocol(
        protocol,
        inputs,
        adversary=adversary,
        seed=seed,
        fault_plan=plan,
        timeout_rounds=TIMEOUT,
    )


def check_agreement(execution, crashed, corrupted=(), expect=None):
    running = [
        i
        for i in range(1, N + 1)
        if i not in crashed and i not in corrupted
    ]
    outputs = [execution.outputs[i] for i in running]
    assert all(o == outputs[0] for o in outputs), (
        f"running parties disagree: { {i: execution.outputs[i] for i in running} }"
    )
    if expect is not None:
        assert outputs[0] == expect
    return outputs[0]


# -- crash scenarios, swept over every protocol at its own bound -------------------

SCENARIOS = [
    "baseline",
    "crash-one-relay",
    "crash-t-relays",
    "crash-recover",
    "drop-as-crash",
    "sender-crash-late",
    "sender-crash-immediate",
]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_crash_conformance(protocol_name, scenario, conformance_log):
    factory, t = PROTOCOLS[protocol_name]
    protocol = factory(SENDER)
    if scenario == "baseline":
        plan, crashed, expect = FaultPlan(name="baseline"), (), VALUE
    elif scenario == "crash-one-relay":
        crashed = tuple(relays(1))
        plan, expect = crash_plan(crashed, name=scenario), VALUE
    elif scenario == "crash-t-relays":
        crashed = tuple(relays(t))
        plan, expect = crash_plan(crashed, name=scenario), VALUE
    elif scenario == "crash-recover":
        crashed = tuple(relays(1))
        plan = crash_plan(crashed, at_round=2, recover_at=4, name=scenario)
        expect = VALUE  # round-1 relay already happened; crash is sub-threshold.
    elif scenario == "drop-as-crash":
        crashed = tuple(relays(1))
        plan = FaultPlan(
            name=scenario,
            rules=(FaultRule(kind="drop", senders=list(crashed)),),
        )
        expect = VALUE
    elif scenario == "sender-crash-late":
        crashed = (SENDER,)
        plan = crash_plan(crashed, at_round=2, name=scenario)
        expect = VALUE  # the round-1 distribution already reached everyone.
    elif scenario == "sender-crash-immediate":
        crashed = (SENDER,)
        plan = crash_plan(crashed, at_round=1, name=scenario)
        expect = 0  # nothing was ever sent: the paper's default decides.
    execution = run_broadcast(protocol, plan)
    assert not execution.timed_out
    check_agreement(execution, crashed, expect=expect)
    conformance_log(
        protocol=protocol_name,
        plan=plan.name,
        check="crash-agreement-validity",
        expect=expect,
        ok=True,
    )


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_crash_conformance_is_seed_stable(protocol_name):
    factory, t = PROTOCOLS[protocol_name]
    plan = crash_plan(relays(t), name="crash-t")
    for seed in (1, 2, 3):
        execution = run_broadcast(factory(SENDER), plan, seed=seed)
        check_agreement(execution, relays(t), expect=VALUE)


def test_dolev_strong_byzantine_plus_crash(conformance_log):
    # DS tolerates t = 2 total faults: one silently-Byzantine party plus
    # one crashed honest relay still leaves agreement and validity intact.
    protocol = DolevStrongBroadcast(N, 2, sender=SENDER)
    plan = crash_plan([4], name="byz+crash")
    execution = run_broadcast(
        protocol, plan, adversary=Adversary(corrupted=[5])
    )
    check_agreement(execution, crashed=(4,), corrupted=(5,), expect=VALUE)
    conformance_log(
        protocol="dolev-strong", plan="byz+crash", check="mixed-fault-bound", ok=True
    )


def test_dolev_strong_other_sender_positions():
    for sender in (3, 5):
        protocol = DolevStrongBroadcast(N, 2, sender=sender)
        crashed = [i for i in range(1, N + 1) if i != sender][:2]
        inputs = [VALUE if i == sender else 0 for i in range(1, N + 1)]
        execution = run_protocol(
            protocol,
            inputs,
            seed=5,
            fault_plan=crash_plan(crashed),
            timeout_rounds=TIMEOUT,
        )
        check_agreement(execution, crashed, expect=VALUE)


def test_crashed_relay_still_decides_correctly():
    # Send omission only silences the party; it keeps receiving, so in
    # Dolev-Strong a crashed relay still reconstructs the sender's value.
    protocol = DolevStrongBroadcast(N, 2, sender=SENDER)
    crashed = relays(2)
    execution = run_broadcast(protocol, crash_plan(crashed))
    for party in crashed:
        assert execution.outputs[party] == VALUE
