"""Property-based conformance: determinism, serialization, sharding.

Hypothesis generates arbitrary (valid) fault plans and checks the three
properties the whole subsystem rests on:

* **fixed-seed determinism** — the same (plan, seed, salt) recipe yields
  bit-identical executions;
* **JSON round trip** — every plan survives ``dumps``/``loads`` exactly;
* **shard-partition commutation** — running a trial batch through any
  :class:`TrialPlan` partition produces the same per-trial results as the
  serial loop, which is the invariant that keeps ``--jobs N`` honest.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import ExperimentConfig, TrialPlan
from repro.faults import CrashFault, FaultPlan, FaultRule
from repro.protocols import NaiveCommitReveal

N = 4

kinds = st.sampled_from(["drop", "delay", "duplicate", "corrupt"])
parties = st.integers(min_value=1, max_value=N)
maybe_parties = st.none() | st.lists(parties, min_size=1, max_size=N)
maybe_rounds = st.none() | st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=3
)
maybe_tags = st.none() | st.lists(
    st.sampled_from(["naive:commit", "naive:reveal", "other"]), min_size=1, max_size=2
)


@st.composite
def fault_rules(draw):
    kind = draw(kinds)
    return FaultRule(
        kind=kind,
        rounds=draw(maybe_rounds),
        senders=draw(maybe_parties),
        receivers=draw(maybe_parties),
        tags=draw(maybe_tags),
        probability=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        delay=draw(st.integers(min_value=1, max_value=3)),
        copies=draw(st.integers(min_value=1, max_value=3)),
        mode=draw(st.sampled_from(["garbage", "flip"])),
    )


@st.composite
def crash_faults(draw):
    at_round = draw(st.integers(min_value=1, max_value=4))
    recover = draw(st.none() | st.integers(min_value=at_round + 1, max_value=8))
    return CrashFault(party=draw(parties), at_round=at_round, recover_at=recover)


@st.composite
def fault_plans(draw):
    return FaultPlan(
        rules=tuple(draw(st.lists(fault_rules(), max_size=3))),
        crashes=tuple(draw(st.lists(crash_faults(), max_size=2))),
        seed=draw(st.integers(min_value=0, max_value=2**20)),
        name=draw(st.sampled_from(["", "prop"])),
    )


@settings(max_examples=20, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_fixed_seed_determinism(plan, seed):
    protocol = NaiveCommitReveal(N, 1)
    runs = [
        protocol.run([1, 0, 1, 0], seed=seed, fault_plan=plan, fault_seed=5,
                     timeout_rounds=30)
        for _ in range(2)
    ]
    assert runs[0].outputs == runs[1].outputs
    assert runs[0].rounds == runs[1].rounds
    assert runs[0].faults == runs[1].faults
    assert runs[0].timed_out == runs[1].timed_out


@settings(max_examples=50, deadline=None)
@given(plan=fault_plans())
def test_json_round_trip(plan):
    assert FaultPlan.loads(plan.dumps()) == plan
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def _trial_result(config, plan, shard, trial):
    """One trial of the canonical per-trial recipe (mirrors E-FAULT)."""
    protocol = NaiveCommitReveal(config.n, config.t)
    trial_rng = shard.rng(config, trial)
    inputs = [trial_rng.randrange(2) for _ in range(config.n)]
    run_rng = random.Random(trial_rng.getrandbits(64))
    fault_seed = trial_rng.getrandbits(64)
    execution = protocol.run(
        inputs, rng=run_rng, fault_plan=plan, fault_seed=fault_seed, timeout_rounds=30
    )
    return (tuple(sorted(execution.outputs.items())), tuple(execution.faults))


@settings(max_examples=10, deadline=None)
@given(
    plan=fault_plans(),
    total=st.integers(min_value=1, max_value=9),
    parts=st.integers(min_value=1, max_value=5),
    salt=st.integers(min_value=1, max_value=2**10),
)
def test_shard_partition_commutes(plan, total, parts, salt):
    config = ExperimentConfig(n=N, t=1, seed=99)
    serial_plan = TrialPlan(salt=salt, total=total, parts=1)
    sharded_plan = TrialPlan(salt=salt, total=total, parts=parts)
    serial = [
        _trial_result(config, plan, shard, trial)
        for shard in serial_plan.shards()
        for trial in shard.trials()
    ]
    sharded = [
        _trial_result(config, plan, shard, trial)
        for shard in sharded_plan.shards()
        for trial in shard.trials()
    ]
    assert sharded == serial
