"""Shared fixtures for the fault-conformance suite.

Tests log one row per certified (protocol, plan) cell through the
``conformance_log`` fixture; at the end of the session the rows are
aggregated into ``results/CONFORMANCE_faults.json`` — the fault-sweep
summary artifact the CI ``conformance`` job uploads.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "results"
SUMMARY_PATH = RESULTS_DIR / "CONFORMANCE_faults.json"


@pytest.fixture(scope="session")
def _conformance_rows():
    return []


@pytest.fixture
def conformance_log(_conformance_rows):
    """Record one certified cell: ``log(protocol=..., plan=..., check=..., ok=...)``.

    A failing cell triggers a flight-recorder snapshot (when recording is
    on — see :mod:`repro.obs.flightrec`), so the last rounds of traffic
    that produced the violation land in ``results/flightrec_*.jsonl``
    next to the conformance summary.
    """
    from repro.obs import flightrec

    def log(**row):
        _conformance_rows.append(dict(row))
        if not row.get("ok", True):
            flightrec.dump_if_active("conformance-check-failed", **row)

    return log


@pytest.fixture(scope="session", autouse=True)
def _write_summary(_conformance_rows):
    yield
    if not _conformance_rows:
        return
    protocols = sorted({row["protocol"] for row in _conformance_rows})
    plans = sorted({row["plan"] for row in _conformance_rows})
    by_protocol = {
        protocol: {
            "cells": sum(1 for r in _conformance_rows if r["protocol"] == protocol),
            "ok": all(
                r.get("ok", True) for r in _conformance_rows if r["protocol"] == protocol
            ),
        }
        for protocol in protocols
    }
    summary = {
        "protocols": protocols,
        "plans": plans,
        "cells": len(_conformance_rows),
        "all_ok": all(row.get("ok", True) for row in _conformance_rows),
        "by_protocol": by_protocol,
        "rows": _conformance_rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(SUMMARY_PATH, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
