"""Independence verdicts must survive (or keep failing) under faults.

Two paper-grounded checks:

* **Π_G under sub-threshold drops** — on the BGW backend, dropping every
  round-1 input share of one honest party (tag ``bgw:theta:in``) is a
  *consistent* input substitution to 0 (missing shares default to the
  field zero), so the protocol completes, honest parties agree, and the
  Lemma 6.4 verdict is unchanged: the A* attack still leaves G consistent
  while breaking CR with the parity witness.  On the ideal backend all
  traffic rides the trusted-party mailbox, so wire faults are vacuous and
  the faulted execution must be *identical* to the clean one.

* **Naive commit-reveal stays broken under delays** — delaying the
  commit broadcasts of uninvolved honest parties degrades their
  coordinates to the default 0 but leaves the rushing
  :class:`CommitEchoAdversary` copy attack fully intact: the G** gap is
  still ~1 on the target's coordinate.
"""

from __future__ import annotations

import random

import pytest

from repro.adversaries import CommitEchoAdversary, XorAttacker
from repro.core import cr_report_from_samples, g_report_from_samples, g_star_star_report
from repro.core.announced import announce_once
from repro.faults import FaultPlan, FaultRule, get_plan, with_faults
from repro.protocols import NaiveCommitReveal, PiGBroadcast

N, T = 5, 2

#: Drop every round-1 BGW input share of honest party 3 — the consistent
#: input-omission fault (sub-threshold: one party, weaker than Byzantine).
INPUT_OMISSION = FaultPlan(
    name="input-omission",
    rules=(FaultRule(kind="drop", rounds=[1], senders=[3], tags=["bgw:theta:in"]),),
)


def xor_factory(protocol):
    return lambda: XorAttacker(protocol, corrupted_pair=[1, 2])


class TestPiGIdealBackendImmune:
    """Wire faults never touch the trusted-party mailbox."""

    @pytest.mark.parametrize(
        "plan_name", ["drop-light", "delay-light", "corrupt-light", "crash-1", "mixed"]
    )
    def test_faulted_run_identical_to_clean(self, plan_name, conformance_log):
        protocol = PiGBroadcast(N, T, backend="ideal")
        plan = get_plan(plan_name)
        inputs = [1, 0, 1, 1, 0]
        for seed in (1, 7):
            clean = protocol.announced(inputs, seed=seed)
            faulted = protocol.announced(
                inputs, seed=seed, fault_plan=plan, fault_seed=99, timeout_rounds=40
            )
            assert faulted == clean == tuple(inputs)
        conformance_log(
            protocol="pi-g", plan=plan_name, check="ideal-backend-immune", ok=True
        )

    def test_verdict_equal_under_attack(self):
        protocol = PiGBroadcast(N, T, backend="ideal")
        # Pinning fault_seed keeps the run RNG stream identical to the
        # clean run, so the executions are coin-for-coin comparable.
        faulted = with_faults(
            protocol, get_plan("drop-light"), timeout_rounds=40, fault_seed=123
        )
        rng_a, rng_b = random.Random(5), random.Random(5)
        attacker = xor_factory(protocol)
        for _ in range(10):
            clean = announce_once(protocol, [1, 0, 1, 1, 0], attacker, rng_a)
            dirty = announce_once(faulted, [1, 0, 1, 1, 0], attacker, rng_b)
            assert dirty.announced == clean.announced


class TestPiGBgwUnderDrops:
    def test_input_omission_is_consistent_substitution(self, conformance_log):
        protocol = PiGBroadcast(N, T, backend="bgw")
        inputs = [1, 0, 1, 1, 0]
        substituted = list(inputs)
        substituted[2] = 0
        for seed in (3, 9):
            faulted = protocol.run(
                inputs, seed=seed, fault_plan=INPUT_OMISSION, timeout_rounds=80
            )
            assert not faulted.timed_out
            assert len(faulted.faults) == N  # one dropped share per recipient
            announced = faulted.announced_vector()
            assert announced == protocol.run(substituted, seed=seed).announced_vector()
        conformance_log(
            protocol="pi-g", plan="input-omission", check="consistent-substitution", ok=True
        )

    def test_xor_attack_parity_invariant_survives_drops(self):
        # Under A*, ⊕W = 0 is an invariant of g's output — input
        # substitution changes W, never the invariant.
        protocol = PiGBroadcast(N, T, backend="bgw")
        faulted = with_faults(protocol, INPUT_OMISSION, timeout_rounds=80)
        attacker = xor_factory(protocol)
        rng = random.Random(13)
        for _ in range(8):
            inputs = [rng.randrange(2) for _ in range(N)]
            sample = announce_once(faulted, inputs, attacker, rng)
            w = sample.announced
            assert len(w) == N
            parity = 0
            for bit in w:
                parity ^= bit
            assert parity == 0
            # Honest, un-dropped coordinates still announce their inputs.
            assert w[3] == inputs[3] and w[4] == inputs[4]
            # The dropped party's coordinate is the substituted default.
            assert w[2] == 0

    @pytest.mark.slow
    def test_lemma64_verdict_unchanged_under_drops(self, conformance_log):
        # The headline Lemma 6.4 separation, re-measured on the degraded
        # network: G stays consistent, CR still breaks with the parity
        # predicate at gap ~p(1-p).
        protocol = PiGBroadcast(N, T, backend="bgw")
        faulted = with_faults(protocol, INPUT_OMISSION, timeout_rounds=80)
        attacker = xor_factory(protocol)
        rng = random.Random(64)
        draws = []
        for _ in range(420):
            inputs = [rng.randrange(2) for _ in range(N)]
            draws.append(announce_once(faulted, inputs, attacker, rng))
        g = g_report_from_samples(draws, N, min_condition_count=10)
        cr = cr_report_from_samples(draws[:300], N)
        assert not g.violated, f"G broke under sub-threshold drops: {g.witness}"
        assert cr.violated, "the Lemma 6.4 CR break vanished under drops"
        assert cr.gap >= 0.15
        conformance_log(
            protocol="pi-g",
            plan="input-omission",
            check="lemma64-verdict",
            ok=(not g.violated) and cr.violated,
            g_gap=g.gap,
            cr_gap=cr.gap,
        )


class TestNaiveCommitRevealStaysBroken:
    #: Delay the *other* honest parties' commits by one round; the copy
    #: attack on party 1 is untouched.
    DELAY_PLAN = FaultPlan(
        name="delay-bystanders",
        rules=(
            FaultRule(
                kind="delay", rounds=[1], senders=[2, 3], tags=["naive:commit"], delay=1
            ),
        ),
    )

    def echo_factory(self):
        return lambda: CommitEchoAdversary(copier=N, target=1)

    def test_copy_attack_gap_survives_delays(self, conformance_log):
        protocol = NaiveCommitReveal(N, T)
        faulted = with_faults(protocol, self.DELAY_PLAN, timeout_rounds=40)
        report = g_star_star_report(
            faulted,
            self.echo_factory(),
            samples_per_point=24,
            rng=random.Random(42),
            honest_assignments=[(0,) * (N - 1), (1,) + (0,) * (N - 2)],
            corrupted_assignments=[(0,)],
        )
        assert report.violated
        assert report.gap >= 0.9
        conformance_log(
            protocol="naive-commit-reveal",
            plan="delay-bystanders",
            check="cr-break-persists",
            ok=report.violated,
            gap=report.gap,
        )

    def test_bystander_coordinates_default_consistently(self):
        protocol = NaiveCommitReveal(N, T)
        execution = protocol.run(
            [1, 1, 1, 1, 1], seed=8, fault_plan=self.DELAY_PLAN, timeout_rounds=40
        )
        announced = execution.announced_vector()
        # Delayed commits arrive a round late and are ignored: slots 2 and 3
        # default to 0 for *every* honest party identically.
        assert announced[1] == 0 and announced[2] == 0
        assert announced[0] == 1 and announced[3] == 1 and announced[4] == 1
