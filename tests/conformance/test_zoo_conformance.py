"""Protocol zoo × standard fault plans: the conformance matrix.

The fast mirror of the E-FAULT experiment (``repro.experiments.faults``):
every cell of the 4-protocol × 7-plan matrix runs a handful of trials and
asserts the per-class guarantee —

* everyone completes (graceful degradation, never an exception);
* the **baseline** (empty) plan injects nothing and preserves everything;
* **mailbox** protocols (``ideal-sb``, ``pi-g`` on the ideal backend) are
  immune: agreement and input preservation under every plan;
* **naive-commit-reveal** keeps agreement under every channel-consistent
  plan (faulted coordinates default identically for all honest parties);
* **sequential** only guarantees completion — its agreement losses are
  the measured story, asserted nowhere.
"""

from __future__ import annotations

import random

import pytest

from repro.faults import STANDARD_PLANS
from repro.protocols import (
    IdealSimultaneousBroadcast,
    NaiveCommitReveal,
    PiGBroadcast,
    SequentialBroadcast,
)

N, T = 5, 2
TRIALS = 6
TIMEOUT = 10 * N + 20

PROTOCOLS = {
    "sequential": lambda: SequentialBroadcast(N, T),
    "ideal-sb": lambda: IdealSimultaneousBroadcast(N, T),
    "naive-commit-reveal": lambda: NaiveCommitReveal(N, T),
    "pi-g": lambda: PiGBroadcast(N, T, backend="ideal"),
}

MAILBOX = ("ideal-sb", "pi-g")
AGREEMENT_GATED = ("ideal-sb", "pi-g", "naive-commit-reveal")


@pytest.mark.parametrize("plan_name", sorted(STANDARD_PLANS))
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_zoo_cell(protocol_name, plan_name, conformance_log):
    protocol = PROTOCOLS[protocol_name]()
    plan = STANDARD_PLANS[plan_name]
    # str seeds hash stably (unlike hash(), which is salted per process).
    rng = random.Random(f"{protocol_name}:{plan_name}")
    agreements = 0
    for _trial in range(TRIALS):
        inputs = [rng.randrange(2) for _ in range(N)]
        execution = protocol.run(
            inputs,
            seed=rng.getrandbits(32),
            fault_plan=plan,
            fault_seed=rng.getrandbits(32),
            timeout_rounds=TIMEOUT,
        )
        outputs = [execution.outputs.get(i) for i in range(1, N + 1)]
        assert all(o is not None for o in outputs), "a party produced no output"
        agreed = all(o == outputs[0] for o in outputs)
        agreements += agreed
        preserved = tuple(outputs[0]) == tuple(inputs)
        if plan.is_empty():
            assert not execution.faults
            assert agreed and preserved
        elif protocol_name in MAILBOX:
            assert agreed and preserved
        elif protocol_name in AGREEMENT_GATED:
            assert agreed
    conformance_log(
        protocol=protocol_name,
        plan=plan_name,
        check="zoo-cell",
        trials=TRIALS,
        agreement_rate=agreements / TRIALS,
        ok=True,
    )


def test_matrix_covers_acceptance_floor():
    # The issue's acceptance bar: >= 4 protocols x >= 5 plans certified.
    assert len(PROTOCOLS) >= 4
    assert len(STANDARD_PLANS) >= 5
