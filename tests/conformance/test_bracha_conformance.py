"""Conformance for Bracha reliable broadcast under crash and omission faults.

Bracha RBC (n > 3t, no signatures) is the protocol zoo's asynchronous
member, so its conformance matrix covers both fault mechanisms:

* **crash faults** through the lockstep :class:`FaultInjector` plan
  library (send omission from a given round), exactly like the other
  single-sender broadcast protocols;
* **event-runtime omission** through the runtime's
  :class:`~repro.net.runtime.OmissionPolicy` seam, with delays drawn
  from non-degenerate models so arrivals are genuinely reordered.

The RBC contract differs from the synchronous broadcasts in one place:
reliable broadcast guarantees *totality* (everyone delivers, or no one
does), not termination.  A run in which delivery is impossible — the
sender's traffic was omitted from the start — ends via ``timeout_rounds``
with every honest party at the timeout output ``None``.
"""

from __future__ import annotations

import pytest

from repro.broadcast.bracha import BrachaBroadcast
from repro.faults import CrashFault, FaultPlan
from repro.net.adversary import Adversary, ProgramAdversary
from repro.net.message import send
from repro.net.network import run_protocol

N = 4
T = 1
SENDER = 1
VALUE = 1
TIMEOUT = 12 * N


def crash_plan(parties, at_round=1, name="crash"):
    return FaultPlan(
        name=name,
        crashes=tuple(CrashFault(party=p, at_round=at_round) for p in parties),
    )


def run_bracha(
    plan=None,
    seed=11,
    adversary=None,
    sender=SENDER,
    runtime=None,
    delay_model=None,
    omission=None,
):
    protocol = BrachaBroadcast(N, T, sender=sender)
    inputs = [VALUE if i == sender else None for i in range(1, N + 1)]
    return run_protocol(
        protocol,
        inputs,
        adversary=adversary,
        seed=seed,
        fault_plan=plan,
        timeout_rounds=TIMEOUT,
        runtime=runtime,
        delay_model=delay_model,
        omission=omission,
    )


def check_agreement(execution, excluded=(), expect=None):
    running = [i for i in range(1, N + 1) if i not in excluded]
    outputs = [execution.outputs[i] for i in running]
    assert all(o == outputs[0] for o in outputs), (
        f"honest parties disagree: { {i: execution.outputs[i] for i in running} }"
    )
    if expect is not None:
        assert outputs[0] == expect
    return outputs[0]


class TestValidity:
    def test_all_honest_deliver_sender_value(self, conformance_log):
        execution = run_bracha()
        assert not execution.timed_out
        check_agreement(execution, expect=VALUE)
        conformance_log(
            protocol="bracha", plan="baseline", check="validity", ok=True
        )

    def test_every_sender_position(self):
        for sender in range(1, N + 1):
            execution = run_bracha(sender=sender, seed=sender)
            check_agreement(execution, expect=VALUE)

    def test_resilience_bound_enforced(self):
        with pytest.raises(ValueError):
            BrachaBroadcast(3, 1, sender=1)


class TestCrashFaults:
    def test_one_crashed_relay_is_tolerated(self, conformance_log):
        crashed = (2,)
        execution = run_bracha(plan=crash_plan(crashed, name="crash-one"))
        assert not execution.timed_out
        check_agreement(execution, excluded=crashed, expect=VALUE)
        conformance_log(
            protocol="bracha", plan="crash-one", check="crash-agreement", ok=True
        )

    def test_sender_crash_immediate_delivers_nothing(self, conformance_log):
        # Nothing was ever INITed: totality holds in the empty sense, every
        # party times out undelivered.
        execution = run_bracha(plan=crash_plan((SENDER,), name="sender-crash"))
        assert execution.timed_out
        assert all(execution.outputs[i] is None for i in range(1, N + 1))
        conformance_log(
            protocol="bracha", plan="sender-crash", check="totality-empty", ok=True
        )

    def test_sender_crash_after_init_still_delivers(self, conformance_log):
        # The INIT+ECHO round already went out; echoes from the other
        # three parties form a quorum without the sender's later traffic.
        execution = run_bracha(plan=crash_plan((SENDER,), at_round=2, name="late"))
        assert not execution.timed_out
        check_agreement(execution, excluded=(SENDER,), expect=VALUE)
        conformance_log(
            protocol="bracha", plan="sender-crash-late", check="crash-validity", ok=True
        )


class TestEventRuntimeOmission:
    def test_delivers_under_reordered_arrivals(self, conformance_log):
        for spec in ("uniform:0.5,1.5", "exponential:1.0"):
            execution = run_bracha(runtime="event", delay_model=spec, seed=5)
            assert not execution.timed_out
            check_agreement(execution, expect=VALUE)
        conformance_log(
            protocol="bracha", plan="delay-reorder", check="async-validity", ok=True
        )

    def test_sender_omission_delivers_nowhere(self, conformance_log):
        execution = run_bracha(
            runtime="event", omission="drop-all:1", seed=5
        )
        assert execution.timed_out
        assert all(execution.outputs[i] is None for i in range(1, N + 1))
        conformance_log(
            protocol="bracha", plan="omit-sender", check="totality-empty", ok=True
        )

    def test_non_sender_omission_is_tolerated(self, conformance_log):
        # Party 3's sends are all lost; n - 1 = 3 parties still reach the
        # echo quorum (n+t)//2+1 = 3 and the delivery quorum 2t+1 = 3.
        execution = run_bracha(
            runtime="event", omission="drop-all:3", seed=5
        )
        assert not execution.timed_out
        check_agreement(execution, excluded=(3,), expect=VALUE)
        conformance_log(
            protocol="bracha", plan="omit-relay", check="omission-agreement", ok=True
        )

    def test_lossy_edges_with_jitter_still_agree(self, conformance_log):
        execution = run_bracha(
            runtime="event",
            delay_model="uniform:0.5,1.5",
            omission="drop-edges:2-3,3-2",
            seed=9,
        )
        assert not execution.timed_out
        check_agreement(execution, expect=VALUE)
        conformance_log(
            protocol="bracha", plan="lossy-edges", check="omission-agreement", ok=True
        )


class TestByzantineSender:
    def test_equivocating_sender_cannot_split_honest_parties(self, conformance_log):
        # The corrupted sender INITs 0 to parties 2,3 and 1 to party 4.
        # The echo quorum (n+t)//2+1 = 3 intersects every pair of quorums
        # in an honest party, so at most one value can ever be delivered —
        # either everyone agrees on one value, or everyone times out.
        def equivocate(ctx, value):
            yield [
                send(2, ("INIT", 0), tag="bracha:rbc"),
                send(3, ("INIT", 0), tag="bracha:rbc"),
                send(4, ("INIT", 1), tag="bracha:rbc"),
            ]
            return None

        for runtime in (None, "event"):
            execution = run_bracha(
                adversary=ProgramAdversary({SENDER: equivocate}),
                runtime=runtime,
                seed=13,
            )
            honest_outputs = [execution.outputs[i] for i in (2, 3, 4)]
            delivered = [o for o in honest_outputs if o is not None]
            assert len(set(delivered)) <= 1, (
                f"honest parties delivered different values: {honest_outputs}"
            )
        conformance_log(
            protocol="bracha", plan="equivocate", check="byzantine-agreement", ok=True
        )

    def test_silent_byzantine_relay_is_tolerated(self, conformance_log):
        execution = run_bracha(adversary=Adversary(corrupted=[4]), seed=3)
        assert not execution.timed_out
        check_agreement(execution, excluded=(4,), expect=VALUE)
        conformance_log(
            protocol="bracha", plan="silent-byzantine", check="agreement", ok=True
        )
