"""Conformance via the scenario DSL: combined fault-plan + event-runtime cells.

The existing conformance suites exercise the FaultPlan library and the
event runtime's delay/omission seams separately; this one drives the
*combination* through :class:`repro.scenario.Scenario` — the gap the
campaign fuzzer sweeps at scale — and certifies the two single-sender
zoo members under it:

* **Bracha RBC** (n > 3t): tolerates a crashed non-sender on top of
  non-degenerate delays (and even an omission policy silencing the same
  party); when the *sender's* traffic is omitted from the start, the
  totality contract ends every trial in a clean graceful timeout with no
  honest split;
* **phase king** (n > 4t): fully clean under a silent corrupted party on
  the degenerate event runtime (where the event engine must reproduce
  lockstep), and degrades without ever splitting honest outputs under a
  kitchen-sink cell (drop rules + a recovering crash + delays + random
  omission).

Each cell also re-checks the DSL's runtime glue directly: scenarios are
materialized with the spec's own helpers (``build_protocol`` /
``adversary_spec`` / ``run_kwargs``), not hand-built objects.
"""

from __future__ import annotations

import random

import pytest

from repro.net.network import run_protocol
from repro.scenario import Scenario, run_scenario
from repro.scenario.runner import violation_kinds

#: The per-trial RNG mixing constant (matches repro.scenario.runner).
SEED_MIX = 1_000_003


def materialized_trials(scenario):
    """Run every trial through the DSL's own materialization helpers."""
    distribution = scenario.distribution_spec()
    adversary_spec = scenario.adversary_spec()
    plan = None if scenario.faults.is_empty() else scenario.faults
    executions = []
    for trial in range(scenario.trials):
        trial_rng = random.Random(scenario.seed * SEED_MIX + trial)
        inputs = distribution.sample(scenario.n, trial_rng)
        protocol = scenario.build_protocol()
        executions.append(
            (
                inputs,
                run_protocol(
                    protocol,
                    inputs,
                    adversary=adversary_spec.build(protocol),
                    seed=trial_rng.getrandbits(48),
                    fault_plan=plan,
                    fault_seed=trial_rng.getrandbits(48),
                    timeout_rounds=scenario.timeout(),
                    timeout_output=None,
                    **scenario.run_kwargs(),
                ),
            )
        )
    return executions


class TestBrachaCombined:
    def build(self, **overrides):
        base = dict(
            protocol="bracha",
            n=4,
            t=1,
            sender=1,
            seed=7,
            trials=4,
            runtime="event",
            delay_model="uniform:0.5,1.5",
        )
        base.update(overrides)
        return Scenario.build(**base)

    def test_crashed_non_sender_under_delays(self, conformance_log):
        scenario = self.build(faults={"crashes": [{"party": 3, "at_round": 2}]})
        row = run_scenario(scenario)
        ok = not violation_kinds(row) and not row["unexpected"]
        conformance_log(
            protocol="bracha",
            plan="scenario:crash+delay",
            check="delivers despite crashed non-sender on a delayed network",
            ok=ok,
        )
        assert ok, row["violations"]

    def test_totality_when_sender_omitted(self, conformance_log):
        scenario = self.build(omission="drop-all:1")
        row = run_scenario(scenario)
        # Delivery is impossible; every trial must end in a graceful
        # timeout, never a crash and never a split among honest parties.
        ok = violation_kinds(row) == {"timeout"} and not row["unexpected"]
        for _, execution in materialized_trials(scenario):
            assert execution.timed_out
            honest_outputs = {execution.outputs.get(p) for p in execution.honest}
            assert honest_outputs == {None}
        conformance_log(
            protocol="bracha",
            plan="scenario:sender-omitted+delay",
            check="totality: all honest time out together, none deliver",
            ok=ok,
        )
        assert ok, row["violations"]

    def test_crash_combined_with_omission(self, conformance_log):
        scenario = self.build(
            omission="drop-all:3",
            faults={"crashes": [{"party": 3, "at_round": 2}]},
        )
        row = run_scenario(scenario)
        ok = not violation_kinds(row) and not row["unexpected"]
        conformance_log(
            protocol="bracha",
            plan="scenario:crash+omission+delay",
            check="redundantly silenced non-sender cannot block delivery",
            ok=ok,
        )
        assert ok, row["violations"]

    def test_agreement_on_delivered_value(self):
        scenario = self.build(faults={"crashes": [{"party": 3, "at_round": 2}]})
        for inputs, execution in materialized_trials(scenario):
            values = {execution.outputs.get(p) for p in execution.honest}
            assert values == {inputs[scenario.sender - 1]}


class TestPhaseKingCombined:
    def build(self, **overrides):
        base = dict(
            protocol="phase-king",
            n=5,
            t=1,
            sender=2,
            seed=7,
            trials=4,
            runtime="event",
        )
        base.update(overrides)
        return Scenario.build(**base)

    def test_silent_party_on_degenerate_event_runtime(self, conformance_log):
        scenario = self.build(delay_model="rush:constant:1", adversary="silent:4")
        row = run_scenario(scenario)
        # Degenerate timing must reproduce lockstep exactly, so this is a
        # fully-expected cell: every guarantee holds, nothing degrades.
        ok = not violation_kinds(row) and row["expected"] == [
            "agreement",
            "termination",
            "validity",
        ]
        conformance_log(
            protocol="phase-king",
            plan="scenario:silent+degenerate-event",
            check="silent corrupted party, event runtime == lockstep",
            ok=ok,
        )
        assert ok, row

    def test_kitchen_sink_never_splits_honest_outputs(self, conformance_log):
        scenario = self.build(
            delay_model="uniform:0.5,1.5",
            omission="random:0.05",
            faults={
                "seed": 3,
                "rules": [{"kind": "drop", "probability": 0.25, "rounds": [1, 2]}],
                "crashes": [{"party": 5, "at_round": 3, "recover_at": 5}],
            },
        )
        row = run_scenario(scenario)
        kinds = violation_kinds(row)
        # Observe-only cell: degradation (lost validity) is legitimate,
        # but honest parties must never disagree and nothing may crash.
        ok = (
            not row["unexpected"]
            and "disagree" not in kinds
            and "crash" not in kinds
        )
        conformance_log(
            protocol="phase-king",
            plan="scenario:rules+crash+delay+omission",
            check="combined degradation without honest splits or crashes",
            ok=ok,
        )
        assert ok, row["violations"]


class TestScenarioRejectsIllFormedCells:
    def test_delay_model_requires_event_runtime(self):
        from repro.errors import ScenarioError

        with pytest.raises(ScenarioError, match="runtime='event'"):
            Scenario.build(
                protocol="bracha", n=4, t=1, delay_model="uniform:0.5,1.5"
            )

    def test_resilience_bound_enforced(self):
        from repro.errors import ScenarioError

        with pytest.raises(ScenarioError, match="n > 3t"):
            Scenario.build(protocol="bracha", n=4, t=2)
