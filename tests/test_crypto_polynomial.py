"""Tests for polynomials and Lagrange interpolation."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.polynomial import (
    Polynomial,
    lagrange_coefficients_at_zero,
    lagrange_interpolate,
)
from repro.errors import InvalidParameterError, ShareError

F = PrimeField(101)

coeff_lists = st.lists(st.integers(min_value=0, max_value=100), max_size=6)


class TestPolynomialBasics:
    def test_zero_polynomial(self):
        zero = Polynomial.zero(F)
        assert zero.degree == -1
        assert zero(5).value == 0

    def test_trailing_zeros_stripped(self):
        poly = Polynomial(F, [1, 2, 0, 0])
        assert poly.degree == 1

    def test_constant(self):
        poly = Polynomial.constant(F, 42)
        assert poly.degree == 0
        assert poly(17) == F.element(42)

    def test_evaluation_horner(self):
        poly = Polynomial(F, [3, 2, 1])  # 3 + 2x + x^2
        assert poly(2) == F.element(3 + 4 + 4)

    def test_evaluate_many(self):
        poly = Polynomial(F, [1, 1])
        assert [v.value for v in poly.evaluate_many([0, 1, 2])] == [1, 2, 3]

    def test_random_degree_and_constant_term(self):
        rng = random.Random(7)
        poly = Polynomial.random(F, 3, rng, constant_term=9)
        assert poly.degree <= 3
        assert poly(0) == F.element(9)

    def test_random_negative_degree_rejected(self):
        with pytest.raises(InvalidParameterError):
            Polynomial.random(F, -1, random.Random(0))

    def test_repr(self):
        assert "Polynomial" in repr(Polynomial(F, [1, 2]))
        assert repr(Polynomial.zero(F)) == "Polynomial(0)"


class TestPolynomialArithmetic:
    @given(coeff_lists, coeff_lists, st.integers(min_value=0, max_value=100))
    def test_addition_pointwise(self, a, b, x):
        pa, pb = Polynomial(F, a), Polynomial(F, b)
        assert (pa + pb)(x) == pa(x) + pb(x)

    @given(coeff_lists, coeff_lists, st.integers(min_value=0, max_value=100))
    def test_multiplication_pointwise(self, a, b, x):
        pa, pb = Polynomial(F, a), Polynomial(F, b)
        assert (pa * pb)(x) == pa(x) * pb(x)

    @given(coeff_lists, coeff_lists, st.integers(min_value=0, max_value=100))
    def test_subtraction_pointwise(self, a, b, x):
        pa, pb = Polynomial(F, a), Polynomial(F, b)
        assert (pa - pb)(x) == pa(x) - pb(x)

    @given(coeff_lists, st.integers(min_value=0, max_value=100))
    def test_scalar_multiplication(self, a, x):
        poly = Polynomial(F, a)
        assert (poly * 3)(x) == poly(x) * 3
        assert (3 * poly)(x) == poly(x) * 3

    def test_mul_by_zero_polynomial(self):
        poly = Polynomial(F, [1, 2, 3])
        assert poly * Polynomial.zero(F) == Polynomial.zero(F)

    def test_degree_of_product(self):
        pa = Polynomial(F, [1, 1])
        pb = Polynomial(F, [1, 0, 1])
        assert (pa * pb).degree == 3

    def test_mixed_fields_rejected(self):
        other = Polynomial(PrimeField(97), [1])
        with pytest.raises(InvalidParameterError):
            Polynomial(F, [1]) + other

    def test_equality_and_hash(self):
        assert Polynomial(F, [1, 2]) == Polynomial(F, [1, 2, 0])
        assert hash(Polynomial(F, [1, 2])) == hash(Polynomial(F, [1, 2, 0]))


class TestInterpolation:
    @given(coeff_lists.filter(lambda c: len(c) >= 1))
    def test_roundtrip(self, coeffs):
        poly = Polynomial(F, coeffs)
        points = [(x, poly(x)) for x in range(len(coeffs) + 1)]
        recovered = lagrange_interpolate(F, points)
        assert recovered == poly

    def test_duplicate_x_rejected(self):
        with pytest.raises(ShareError):
            lagrange_interpolate(F, [(1, 2), (1, 3)])

    def test_single_point(self):
        poly = lagrange_interpolate(F, [(5, 9)])
        assert poly(5) == F.element(9)
        assert poly.degree <= 0

    def test_coefficients_at_zero_match_interpolation(self):
        rng = random.Random(3)
        poly = Polynomial.random(F, 4, rng)
        xs = [1, 2, 3, 4, 5]
        lambdas = lagrange_coefficients_at_zero(F, xs)
        total = F.zero()
        for lam, x in zip(lambdas, xs, strict=True):
            total = total + lam * poly(x)
        assert total == poly(0)

    def test_coefficients_duplicate_x_rejected(self):
        with pytest.raises(ShareError):
            lagrange_coefficients_at_zero(F, [1, 1, 2])

    def test_coefficients_sum_to_one(self):
        # Interpolating the constant-1 polynomial must give exactly 1.
        lambdas = lagrange_coefficients_at_zero(F, [2, 4, 6])
        total = F.zero()
        for lam in lambdas:
            total = total + lam
        assert total == F.one()
