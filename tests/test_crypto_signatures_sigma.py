"""Tests for Schnorr signatures, the PKI directory, and sigma protocols."""

import random

import pytest

from repro.crypto.commitment import PedersenParameters
from repro.crypto.group import SchnorrGroup
from repro.crypto.sigma import (
    OpeningProof,
    check_opening,
    prove_discrete_log,
    prove_opening,
    verify_discrete_log,
    verify_opening,
)
from repro.crypto.signatures import KeyDirectory, KeyPair, Signature, sign, verify
from repro.errors import InvalidParameterError, ProofError, SignatureError

GROUP = SchnorrGroup.for_security(24)
PARAMS = PedersenParameters.generate(GROUP)


class TestSignatures:
    def setup_method(self):
        self.rng = random.Random(11)
        self.keys = KeyPair.generate(GROUP, self.rng)

    def test_sign_verify_roundtrip(self):
        signature = sign(self.keys, ("msg", 1), self.rng)
        assert verify(GROUP, self.keys.public_key, ("msg", 1), signature)

    def test_wrong_message_rejected(self):
        signature = sign(self.keys, "hello", self.rng)
        assert not verify(GROUP, self.keys.public_key, "goodbye", signature)

    def test_wrong_key_rejected(self):
        other = KeyPair.generate(GROUP, self.rng)
        signature = sign(self.keys, "hello", self.rng)
        assert not verify(GROUP, other.public_key, "hello", signature)

    def test_tampered_signature_rejected(self):
        signature = sign(self.keys, "hello", self.rng)
        tampered = Signature(signature.challenge, (signature.response + 1) % GROUP.q)
        assert not verify(GROUP, self.keys.public_key, "hello", tampered)

    def test_malformed_signature_rejected_not_raised(self):
        assert not verify(GROUP, self.keys.public_key, "hello", Signature("x", "y"))

    def test_signatures_are_randomized(self):
        s1 = sign(self.keys, "m", random.Random(1))
        s2 = sign(self.keys, "m", random.Random(2))
        assert s1 != s2
        assert verify(GROUP, self.keys.public_key, "m", s1)
        assert verify(GROUP, self.keys.public_key, "m", s2)


class TestKeyDirectory:
    def setup_method(self):
        self.rng = random.Random(12)
        self.directory = KeyDirectory.generate(GROUP, 4, self.rng)

    def test_sign_and_verify_by_index(self):
        signature = self.directory.sign(2, "payload", self.rng)
        assert self.directory.verify(2, "payload", signature)
        self.directory.check(2, "payload", signature)

    def test_cross_party_verification_fails(self):
        signature = self.directory.sign(2, "payload", self.rng)
        assert not self.directory.verify(3, "payload", signature)
        with pytest.raises(SignatureError):
            self.directory.check(3, "payload", signature)

    def test_unknown_party_rejected(self):
        with pytest.raises(InvalidParameterError):
            self.directory.public_key(99)

    def test_all_parties_have_distinct_keys(self):
        keys = {int(self.directory.public_key(i)) for i in range(1, 5)}
        assert len(keys) == 4


class TestDiscreteLogProof:
    def test_roundtrip(self):
        rng = random.Random(13)
        secret = 987
        proof = prove_discrete_log(GROUP, secret, rng, context="ctx")
        assert verify_discrete_log(GROUP, GROUP.power(secret), proof, context="ctx")

    def test_wrong_statement_rejected(self):
        rng = random.Random(13)
        proof = prove_discrete_log(GROUP, 987, rng)
        assert not verify_discrete_log(GROUP, GROUP.power(988), proof)

    def test_context_binding(self):
        rng = random.Random(13)
        proof = prove_discrete_log(GROUP, 987, rng, context="round-1")
        assert not verify_discrete_log(
            GROUP, GROUP.power(987), proof, context="round-2"
        )

    def test_replayed_proof_fails_for_other_context(self):
        # The non-transferability that the Chor–Rabin protocol needs: a proof
        # bound to party 1's context does not verify for party 2's context.
        rng = random.Random(14)
        proof = prove_discrete_log(GROUP, 42, rng, context=("sid", 1))
        assert verify_discrete_log(GROUP, GROUP.power(42), proof, context=("sid", 1))
        assert not verify_discrete_log(GROUP, GROUP.power(42), proof, context=("sid", 2))


class TestOpeningProof:
    def test_roundtrip(self):
        rng = random.Random(15)
        value, blinding = 5, 777
        statement = (PARAMS.g ** value) * (PARAMS.h ** blinding)
        proof = prove_opening(PARAMS, value, blinding, rng, context="c")
        assert verify_opening(PARAMS, statement, proof, context="c")
        check_opening(PARAMS, statement, proof, context="c")

    def test_wrong_statement_rejected(self):
        rng = random.Random(15)
        proof = prove_opening(PARAMS, 5, 777, rng)
        wrong = (PARAMS.g ** 6) * (PARAMS.h ** 777)
        assert not verify_opening(PARAMS, wrong, proof)
        with pytest.raises(ProofError):
            check_opening(PARAMS, wrong, proof)

    def test_tampered_proof_rejected(self):
        rng = random.Random(15)
        statement = (PARAMS.g ** 5) * (PARAMS.h ** 777)
        proof = prove_opening(PARAMS, 5, 777, rng)
        tampered = OpeningProof(
            proof.commitment,
            (proof.response_value + 1) % GROUP.q,
            proof.response_blinding,
        )
        assert not verify_opening(PARAMS, statement, tampered)

    def test_context_binding(self):
        rng = random.Random(16)
        statement = (PARAMS.g ** 3) * (PARAMS.h ** 9)
        proof = prove_opening(PARAMS, 3, 9, rng, context="a")
        assert not verify_opening(PARAMS, statement, proof, context="b")
