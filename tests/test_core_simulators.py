"""Tests for the transcript-level Sb machinery (simulators, distinguishers)."""

import random

import pytest

from repro.adversaries import InputSubstitution, PassiveAdversary, SequentialCopier
from repro.analysis import Decision
from repro.core import HONEST
from repro.core.simulators import (
    HonestInputSimulator,
    ReplaySimulator,
    default_distinguishers,
    ideal_exec_vector,
    sb_advantage,
)
from repro.errors import ExperimentError
from repro.protocols import (
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    SequentialBroadcast,
)

N, T = 4, 1


def rng():
    return random.Random(777)


class TestIdealProcess:
    def test_honest_simulator_forwards_inputs(self):
        simulator = HonestInputSimulator()
        vector = ideal_exec_vector(
            N, (1, 0, 1, 0), corrupted=[2], simulator=simulator, rng=rng()
        )
        assert vector[0] is None  # simulated adversary output
        assert vector[1] == (1, 0, 1, 0)
        # Every party holds the same announced vector in the ideal process.
        assert len(set(vector[1:])) == 1

    def test_simulator_cannot_see_honest_inputs(self):
        """The substituted value depends only on x_B: flipping an honest
        input never changes the corrupted coordinates."""

        class Recording(HonestInputSimulator):
            seen = []

            def simulate(self, corrupted_inputs, rng_):
                Recording.seen.append(dict(corrupted_inputs))
                return super().simulate(corrupted_inputs, rng_)

        simulator = Recording()
        ideal_exec_vector(N, (0, 1, 0, 0), corrupted=[2], simulator=simulator, rng=rng())
        ideal_exec_vector(N, (1, 1, 1, 1), corrupted=[2], simulator=simulator, rng=rng())
        assert Recording.seen == [{2: 1}, {2: 1}]

    def test_invalid_honest_inputs_become_default(self):
        vector = ideal_exec_vector(
            N, (1, "junk", 0, 1), corrupted=[], simulator=HonestInputSimulator(), rng=rng()
        )
        assert vector[1] == (1, 0, 0, 1)


class TestDistinguisherFamily:
    def test_family_contains_paper_witnesses(self):
        names = {name for name, _ in default_distinguishers(N)}
        assert "parity(W)==0" in names
        assert "W[4]==x[1]" in names  # the copy detector
        assert "W[1]==W[2]" in names  # Lemma 6.4's comparator Q

    def test_distinguishers_handle_missing_outputs(self):
        for _name, fn in default_distinguishers(N):
            assert fn((0,) * N, (None, None, None, None, None)) is False


class TestSbAdvantage:
    def test_ideal_protocol_zero_advantage(self):
        protocol = IdealSimultaneousBroadcast(N, T)
        report = sb_advantage(
            protocol,
            HONEST,
            HonestInputSimulator(),
            samples_per_point=20,
            rng=rng(),
            input_vectors=[(0, 0, 0, 0), (1, 0, 1, 0), (1, 1, 1, 1)],
        )
        assert report.gap == 0.0
        assert report.decision == Decision.CONSISTENT

    def test_copier_defeats_honest_input_simulator(self):
        protocol = SequentialBroadcast(N, T)
        copier = lambda: SequentialCopier(copier=4, target=1)
        report = sb_advantage(
            protocol,
            copier,
            HonestInputSimulator(),
            samples_per_point=20,
            rng=rng(),
            input_vectors=[(1, 0, 0, 0)],
        )
        assert report.violated
        assert report.gap == 1.0
        # Several distinguishers expose the copier (parity, tracking,
        # comparator); any of them may be the recorded arg-max.
        assert "distinguisher" in report.witness

    def test_copier_defeats_replay_simulator_too(self):
        """No simulator can help: the replay simulator runs the copier on
        dummy honest inputs, so its substituted value misses the real x_1."""
        protocol = SequentialBroadcast(N, T)
        copier = lambda: SequentialCopier(copier=4, target=1)
        report = sb_advantage(
            protocol,
            copier,
            ReplaySimulator(protocol, copier),
            samples_per_point=20,
            rng=rng(),
            input_vectors=[(1, 0, 0, 0)],
        )
        assert report.violated

    def test_replay_simulator_handles_input_substitution(self):
        """Input substitution is ideal-model legal: the replay simulator
        reproduces the substituted value exactly and the advantage vanishes."""
        protocol = GennaroBroadcast(N, T, security_bits=16)
        factory = lambda: InputSubstitution(protocol, corrupted=[2], substitution=1)
        report = sb_advantage(
            protocol,
            factory,
            ReplaySimulator(protocol, factory),
            samples_per_point=15,
            rng=rng(),
            input_vectors=[(0, 0, 0, 0), (1, 0, 1, 1)],
        )
        assert not report.violated
        assert report.details["simulator"] == "ReplaySimulator"

    def test_passive_adversary_simulated_by_replay(self):
        protocol = GennaroBroadcast(N, T, security_bits=16)
        factory = lambda: PassiveAdversary(corrupted=[3])
        report = sb_advantage(
            protocol,
            factory,
            ReplaySimulator(protocol, factory),
            samples_per_point=15,
            rng=rng(),
            input_vectors=[(1, 1, 0, 0), (0, 0, 1, 1)],
        )
        assert not report.violated

    def test_sample_floor(self):
        with pytest.raises(ExperimentError):
            sb_advantage(
                IdealSimultaneousBroadcast(N, T),
                HONEST,
                HonestInputSimulator(),
                samples_per_point=1,
                rng=rng(),
            )
