"""Tests for Execution transcripts and the Exec/Announced vectors."""

import pytest

from repro.errors import ConsistencyError
from repro.net.message import BROADCAST, Message, RoundRecord
from repro.net.transcript import Execution


def make_execution(outputs, corrupted=frozenset(), rounds=None, n=3):
    return Execution(
        n=n,
        corrupted=frozenset(corrupted),
        inputs=(1, 0, 1)[:n],
        outputs=outputs,
        adversary_output="adv",
        rounds=rounds or [],
    )


class TestExecVector:
    def test_shape_and_order(self):
        execution = make_execution({1: "a", 2: "b", 3: "c"})
        assert execution.exec_vector == ("adv", "a", "b", "c")

    def test_missing_outputs_are_none(self):
        execution = make_execution({1: "a", 3: "c"}, corrupted={2})
        assert execution.exec_vector == ("adv", "a", None, "c")

    def test_honest_list_and_output_guard(self):
        execution = make_execution({1: "a", 3: "c"}, corrupted={2})
        assert execution.honest == [1, 3]
        assert execution.honest_output(1) == "a"
        with pytest.raises(ConsistencyError):
            execution.honest_output(2)


class TestAnnouncedVector:
    def test_agreeing_parties(self):
        execution = make_execution({1: (1, 0, 1), 2: (1, 0, 1), 3: (1, 0, 1)})
        assert execution.announced_vector() == (1, 0, 1)

    def test_disagreement_raises(self):
        execution = make_execution({1: (1, 0, 1), 2: (0, 0, 1), 3: (1, 0, 1)})
        with pytest.raises(ConsistencyError):
            execution.announced_vector()

    def test_corrupted_parties_excluded_from_agreement(self):
        execution = make_execution(
            {1: (1, 0, 1), 3: (1, 0, 1)}, corrupted={2}
        )
        assert execution.announced_vector() == (1, 0, 1)

    def test_none_entries_defaulted(self):
        execution = make_execution({1: (1, None, 0), 2: (1, None, 0), 3: (1, None, 0)})
        assert execution.announced_vector(default=0) == (1, 0, 0)
        assert execution.announced_vector(default=9) == (1, 9, 0)

    def test_no_outputs_raises(self):
        execution = make_execution({})
        with pytest.raises(ConsistencyError):
            execution.announced_vector()

    def test_parties_without_output_skipped(self):
        execution = make_execution({1: (1, 1, 1), 2: None, 3: (1, 1, 1)})
        assert execution.announced_vector() == (1, 1, 1)


class TestRoundAccounting:
    def build(self, message_rounds):
        rounds = []
        for index, has_messages in enumerate(message_rounds, start=1):
            messages = (
                [Message(sender=1, recipient=BROADCAST, payload="x", tag="t")]
                if has_messages
                else []
            )
            rounds.append(RoundRecord(round=index, messages=messages))
        return make_execution({1: (0, 0, 0), 2: (0, 0, 0), 3: (0, 0, 0)}, rounds=rounds)

    def test_round_count(self):
        execution = self.build([True, True, False])
        assert execution.round_count == 3

    def test_communication_rounds_trims_trailing_silence(self):
        execution = self.build([True, True, False])
        assert execution.communication_rounds == 2

    def test_communication_rounds_keeps_interior_silence(self):
        execution = self.build([True, False, True, False])
        assert execution.communication_rounds == 3

    def test_no_messages_at_all(self):
        execution = self.build([False, False])
        assert execution.communication_rounds == 0

    def test_broadcast_history_and_lookup(self):
        execution = self.build([True, False])
        assert execution.broadcast_history() == [(1, 1, "x")]
        assert len(execution.messages_in_round(1)) == 1
        assert execution.messages_in_round(2) == []
        assert execution.messages_in_round(99) == []
        assert len(execution.all_messages()) == 1
