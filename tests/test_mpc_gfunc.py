"""Tests for the leaky function g (spec, functionality, circuit)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.mpc.gfunc import (
    GFunctionality,
    build_g_circuit,
    g_field,
    g_reference,
)

bits = st.integers(min_value=0, max_value=1)


class TestGReference:
    def test_no_raised_bits_is_identity(self):
        rng = random.Random(0)
        assert g_reference([(1, 0), (0, 0), (1, 0)], rng) == (1, 0, 1)

    def test_one_raised_bit_is_identity(self):
        rng = random.Random(0)
        assert g_reference([(1, 1), (0, 0), (1, 0)], rng) == (1, 0, 1)

    def test_three_raised_bits_is_identity(self):
        rng = random.Random(0)
        assert g_reference([(1, 1), (0, 1), (1, 1)], rng) == (1, 0, 1)

    @given(st.lists(st.tuples(bits, bits), min_size=2, max_size=7), st.integers())
    @settings(max_examples=100, deadline=None)
    def test_xor_invariant_with_two_raised(self, pairs, seed):
        """Claim 6.6: with exactly two raised bits, XOR of outputs is 0...
        and in every other case the outputs equal the inputs."""
        rng = random.Random(seed)
        w = g_reference(pairs, rng)
        raised = [i for i, (_, b) in enumerate(pairs) if b == 1]
        if len(raised) == 2:
            xor = 0
            for value in w:
                xor ^= value
            assert xor == 0
        else:
            assert w == tuple(x for x, _ in pairs)

    @given(st.lists(st.tuples(bits, bits), min_size=2, max_size=7), st.integers())
    @settings(max_examples=50, deadline=None)
    def test_untouched_coordinates_pass_through(self, pairs, seed):
        rng = random.Random(seed)
        w = g_reference(pairs, rng)
        raised = [i for i, (_, b) in enumerate(pairs) if b == 1]
        rigged = set(raised[:2]) if len(raised) == 2 else set()
        for i, (x, _) in enumerate(pairs):
            if i not in rigged:
                assert w[i] == x

    def test_rigged_coordinates_use_lowest_two_indices(self):
        # Parties 2 and 4 (1-based) raise bits; they become l1 < l2.
        pairs = [(1, 0), (0, 1), (1, 0), (0, 1), (1, 0)]
        # x = 1,0,1,0,1; y = x1^x3^x5 = 1.
        seen = set()
        for seed in range(20):
            w = g_reference(pairs, random.Random(seed))
            assert w[0] == 1 and w[2] == 1 and w[4] == 1
            assert w[1] ^ w[3] == 1  # r and r^y with y=1
            seen.add(w[1])
        assert seen == {0, 1}  # r is actually random

    def test_r_is_uniform(self):
        pairs = [(0, 1), (0, 1), (0, 0)]
        ones = sum(
            g_reference(pairs, random.Random(seed))[0] for seed in range(400)
        )
        assert 140 < ones < 260

    def test_malformed_inputs_coerced(self):
        rng = random.Random(1)
        assert g_reference([None, (1, 0), ("x", "y")], rng) == (0, 1, 0)
        assert g_reference([(5, 9), (1, 0)], rng) == (0, 1)


class TestGFunctionality:
    def test_everyone_gets_same_vector(self):
        functionality = GFunctionality(4)
        outputs = functionality.evaluate(
            {1: (1, 0), 2: (0, 0), 3: (1, 0), 4: (0, 0)}, random.Random(0)
        )
        assert len(outputs) == 4
        assert len({outputs[i] for i in outputs}) == 1
        assert outputs[1] == (1, 0, 1, 0)

    def test_missing_parties_default(self):
        functionality = GFunctionality(3)
        outputs = functionality.evaluate({2: (1, 0)}, random.Random(0))
        assert outputs[1] == (0, 1, 0)


class TestGCircuit:
    def test_field_choice(self):
        assert g_field(5).modulus > 10

    def test_too_few_parties_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_g_circuit(1)

    def test_small_field_rejected(self):
        from repro.crypto.field import PrimeField

        with pytest.raises(InvalidParameterError):
            build_g_circuit(5, PrimeField(5))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_circuit_matches_reference_exhaustively(self, n):
        """For every input combination and both coin values, the circuit
        equals the reference implementation of g."""
        circuit = build_g_circuit(n)
        for xs in itertools.product((0, 1), repeat=n):
            for b_mask in itertools.product((0, 1), repeat=n):
                for coin in (0, 1):
                    inputs = {}
                    for i in range(1, n + 1):
                        inputs[(i, "x")] = xs[i - 1]
                        inputs[(i, "b")] = b_mask[i - 1]
                        inputs[(i, "rho")] = coin if i == 1 else 0

                    class FixedCoin:
                        def __init__(self, bit):
                            self.bit = bit

                        def randrange(self, _):
                            return self.bit

                    expected = g_reference(
                        list(zip(xs, b_mask, strict=True)), FixedCoin(coin)
                    )
                    got = tuple(
                        int(v) for v in circuit.evaluate(inputs)
                    )
                    assert got == expected

    def test_coin_is_xor_of_contributions(self):
        n = 3
        circuit = build_g_circuit(n)
        # Parties 1 and 2 raise bits; all x = 0 so w1 = r, w2 = r.
        base = {(i, "x"): 0 for i in range(1, n + 1)}
        base.update({(1, "b"): 1, (2, "b"): 1, (3, "b"): 0})
        for rhos in itertools.product((0, 1), repeat=n):
            inputs = dict(base)
            for i in range(1, n + 1):
                inputs[(i, "rho")] = rhos[i - 1]
            got = [int(v) for v in circuit.evaluate(inputs)]
            r = rhos[0] ^ rhos[1] ^ rhos[2]
            assert got == [r, r, 0]

    def test_multiplication_count_reasonable(self):
        circuit = build_g_circuit(5)
        assert 0 < circuit.multiplication_count < 200
