"""Adversarial behaviour of the protocol zoo.

Each protocol is exercised against the attack the paper (or our ablation)
associates with it: the sequential copy attack of Section 3.2, the
commitment copy/maul/echo attacks on commit-then-reveal, VSS misbehaviour
against CGMA, and the A* XOR attack of Claim 6.6 against Π_G.
"""

import pytest

from repro.adversaries import (
    Adversary,
    CommitEchoAdversary,
    InputFlipper,
    InputSubstitution,
    SequentialCopier,
    XorAttacker,
)
from repro.errors import InvalidParameterError
from repro.net.message import broadcast as bc
from repro.protocols import (
    CGMABroadcast,
    ChorRabinBroadcast,
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    NaiveCommitReveal,
    PiGBroadcast,
    SequentialBroadcast,
)


class TestSequentialCopyAttack:
    """Section 3.2: the i-th and n-th announced entries become equal."""

    def test_copier_tracks_target_exactly(self):
        protocol = SequentialBroadcast(4, 1)
        for x1 in (0, 1):
            for seed in range(4):
                announced = protocol.announced(
                    (x1, 1, 0, 0),
                    adversary=SequentialCopier(copier=4, target=1),
                    seed=seed,
                )
                assert announced[3] == x1
                assert announced[:3] == (x1, 1, 0)

    def test_anticorrelating_copier(self):
        protocol = SequentialBroadcast(4, 1)
        for x1 in (0, 1):
            announced = protocol.announced(
                (x1, 0, 0, 0),
                adversary=SequentialCopier(
                    copier=4, target=1, transform=lambda b: 1 - b
                ),
                seed=1,
            )
            assert announced[3] == 1 - x1

    def test_copier_must_follow_target(self):
        with pytest.raises(ValueError):
            SequentialCopier(copier=1, target=3)


class TestCommitRevealAttacks:
    def test_naive_protocol_is_broken_by_echo(self):
        """The ablation: verbatim copy + rushed reveal echo succeeds."""
        protocol = NaiveCommitReveal(4, 1)
        for x1 in (0, 1):
            announced = protocol.announced(
                (x1, 1, 0, 0),
                adversary=CommitEchoAdversary(copier=4, target=1),
                seed=2,
            )
            assert announced[3] == x1  # perfect copy

    def test_gennaro_resists_echo(self):
        """The context-bound NIZK rejects a replayed commitment."""
        protocol = GennaroBroadcast(4, 1, security_bits=16)
        for x1 in (0, 1):
            announced = protocol.announced(
                (x1, 1, 0, 0),
                adversary=CommitEchoAdversary(
                    copier=4,
                    target=1,
                    commit_tag="gen:commit",
                    reveal_tag="gen:reveal",
                ),
                seed=3,
            )
            assert announced[3] == 0  # disqualified, constant default
            assert announced[:3] == (x1, 1, 0)

    def test_chor_rabin_resists_echo(self):
        """Copied commitment passes no proof of knowledge and carries the
        wrong identity tag; the copier is announced as the default."""
        protocol = ChorRabinBroadcast(4, 1, security_bits=16)
        for x1 in (0, 1):
            announced = protocol.announced(
                (x1, 1, 0, 0),
                adversary=CommitEchoAdversary(
                    copier=4,
                    target=1,
                    commit_tag="cr:commit",
                    reveal_tag="cr:reveal",
                ),
                seed=4,
            )
            assert announced[3] == 0
            assert announced[:3] == (x1, 1, 0)

    def test_gennaro_resists_maul(self):
        """Shifting the commitment group element invalidates the proof."""
        protocol = GennaroBroadcast(4, 1, security_bits=16)

        def shift_commitment(payload):
            raw_commitment, raw_proof = payload
            return (raw_commitment * 2, raw_proof)

        announced = protocol.announced(
            (1, 1, 0, 0),
            adversary=CommitEchoAdversary(
                copier=4,
                target=1,
                commit_tag="gen:commit",
                reveal_tag="gen:reveal",
                transform_commit=shift_commitment,
            ),
            seed=5,
        )
        assert announced[3] == 0

    def test_silent_committer_defaults(self):
        for protocol in (
            GennaroBroadcast(4, 1, security_bits=16),
            ChorRabinBroadcast(4, 1, security_bits=16),
            NaiveCommitReveal(4, 1),
        ):
            announced = protocol.announced(
                (1, 1, 1, 1), adversary=Adversary(corrupted=[3]), seed=6
            )
            assert announced == (1, 1, 0, 1)


class TestCGMAAttacks:
    def test_silent_dealer_disqualified(self):
        protocol = CGMABroadcast(5, 2, security_bits=16)
        announced = protocol.announced(
            (1, 1, 1, 1, 1), adversary=Adversary(corrupted=[2]), seed=7
        )
        assert announced == (1, 0, 1, 1, 1)

    def test_commitment_copier_disqualified(self):
        """A dealer that replays party 1's commitment vector cannot produce
        consistent shares and is disqualified (announced 0), for both values
        of the victim's bit."""

        class CommitmentCopier(Adversary):
            def __init__(self):
                super().__init__(corrupted=[3])
                self._copied = None

            def act(self, round_number, rushed):
                for message in rushed[3].broadcasts(tag="cgma:1:com"):
                    if message.sender == 1:
                        self._copied = message.payload
                # Dealer 3's dealing round is 3 * 2 + 1 = 7.
                if round_number == 7 and self._copied is not None:
                    return {3: [bc(self._copied, tag="cgma:3:com")]}
                return {3: []}

        protocol = CGMABroadcast(5, 2, security_bits=16)
        for x1 in (0, 1):
            announced = protocol.announced(
                (x1, 0, 1, 0, 1), adversary=CommitmentCopier(), seed=8
            )
            assert announced[2] == 0
            assert announced[0] == x1

    def test_bad_shares_resolved_by_complaints(self):
        """A dealer that shortchanges one party must publish the share; the
        complaining party adopts it and the protocol completes."""

        class OneBadShare(Adversary):
            """Dealer 2 deals honestly except party 4 gets a corrupted share."""

            def setup(self, n, config, corrupted_inputs, rng, session=""):
                super().setup(n, config, corrupted_inputs, rng, session)
                from repro.crypto.vss import FeldmanVSS

                self.vss = FeldmanVSS(config["group"], 2, 5)
                self.dealing = self.vss.deal(1, rng)

            def act(self, round_number, rushed):
                from repro.net.message import send

                if round_number == 4:  # dealer 2's dealing round
                    drafts = [
                        bc(
                            tuple(int(c) for c in self.dealing.commitments),
                            tag="cgma:2:com",
                        )
                    ]
                    for j in (1, 3, 4, 5):
                        value = int(self.dealing.shares[j].value)
                        if j == 4:
                            value = (value + 1) % self.vss.field.modulus
                        drafts.append(send(j, value, tag="cgma:2:share"))
                    return {2: drafts}
                if round_number == 5:  # complaints are rushed to us here
                    self.complainers = {
                        m.sender
                        for m in rushed[2].broadcasts(tag="cgma:2:complain")
                    }
                    return {2: []}
                if round_number == 6:  # dealer 2's resolution round
                    published = tuple(
                        (j, int(self.dealing.shares[j].value))
                        for j in sorted(self.complainers)
                    )
                    return {2: [bc(published, tag="cgma:2:resolve")]}
                return {2: []}

        protocol = CGMABroadcast(5, 2, security_bits=16)
        announced = protocol.announced(
            (1, 1, 1, 1, 1), adversary=OneBadShare(corrupted=[2]), seed=9
        )
        assert announced == (1, 1, 1, 1, 1)

    def test_unresolved_complaint_disqualifies(self):
        """Same as above but the dealer ignores the complaint."""

        class BadShareNoResolve(Adversary):
            def setup(self, n, config, corrupted_inputs, rng, session=""):
                super().setup(n, config, corrupted_inputs, rng, session)
                from repro.crypto.vss import FeldmanVSS

                self.vss = FeldmanVSS(config["group"], 2, 5)
                self.dealing = self.vss.deal(1, rng)

            def act(self, round_number, rushed):
                from repro.net.message import send

                if round_number == 4:
                    drafts = [
                        bc(
                            tuple(int(c) for c in self.dealing.commitments),
                            tag="cgma:2:com",
                        )
                    ]
                    for j in (1, 3, 4, 5):
                        value = int(self.dealing.shares[j].value)
                        if j == 4:
                            value = (value + 1) % self.vss.field.modulus
                        drafts.append(send(j, value, tag="cgma:2:share"))
                    return {2: drafts}
                return {2: []}

        protocol = CGMABroadcast(5, 2, security_bits=16)
        announced = protocol.announced(
            (1, 1, 1, 1, 1), adversary=BadShareNoResolve(corrupted=[2]), seed=10
        )
        assert announced == (1, 0, 1, 1, 1)


class TestPiGXorAttack:
    """Claim 6.6: under A*, the announced bits always XOR to zero."""

    @pytest.mark.parametrize("backend", ["ideal", "bgw"])
    def test_xor_invariant(self, backend):
        protocol = PiGBroadcast(5, 2, backend=backend)
        attacker = XorAttacker(protocol, corrupted_pair=[2, 4])
        for seed in range(6):
            inputs = [(seed >> i) & 1 for i in range(5)]
            announced = protocol.announced(inputs, adversary=attacker, seed=seed)
            xor = 0
            for w in announced:
                xor ^= w
            assert xor == 0
            # Honest coordinates are untouched.
            assert announced[0] == inputs[0]
            assert announced[2] == inputs[2]
            assert announced[4] == inputs[4]

    def test_rigged_bits_are_random_across_seeds(self):
        protocol = PiGBroadcast(5, 2, backend="ideal")
        attacker = XorAttacker(protocol, corrupted_pair=[2, 4])
        values = set()
        for seed in range(20):
            announced = protocol.announced((0, 0, 0, 0, 0), adversary=attacker, seed=seed)
            values.add(announced[1])
        assert values == {0, 1}

    def test_attacker_needs_exactly_two_parties(self):
        protocol = PiGBroadcast(5, 2)
        with pytest.raises(InvalidParameterError):
            XorAttacker(protocol, corrupted_pair=[2])
        with pytest.raises(InvalidParameterError):
            XorAttacker(protocol, corrupted_pair=[1, 2, 3])

    def test_attacker_requires_deviation_hook(self):
        with pytest.raises(InvalidParameterError):
            XorAttacker(SequentialBroadcast(5, 2), corrupted_pair=[1, 2])


class TestInputSubstitution:
    """The ideal-model-legal deviation must work everywhere."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SequentialBroadcast(4, 1),
            lambda: IdealSimultaneousBroadcast(4, 1),
            lambda: CGMABroadcast(4, 1, security_bits=16),
            lambda: ChorRabinBroadcast(4, 1, security_bits=16),
            lambda: GennaroBroadcast(4, 1, security_bits=16),
            lambda: PiGBroadcast(4, 1, backend="ideal"),
        ],
    )
    def test_constant_substitution(self, factory):
        protocol = factory()
        announced = protocol.announced(
            (1, 1, 1, 1),
            adversary=InputSubstitution(protocol, corrupted=[2], substitution=0),
            seed=11,
        )
        assert announced == (1, 0, 1, 1)

    def test_flipper(self):
        protocol = GennaroBroadcast(4, 1, security_bits=16)
        announced = protocol.announced(
            (1, 1, 0, 1),
            adversary=InputFlipper(protocol, corrupted=[3]),
            seed=12,
        )
        assert announced == (1, 1, 1, 1)

    def test_mapping_substitution(self):
        protocol = SequentialBroadcast(4, 1)
        announced = protocol.announced(
            (1, 1, 1, 1),
            adversary=InputSubstitution(
                protocol, corrupted=[2, 3], substitution={2: 0}
            ),
            seed=13,
        )
        assert announced == (1, 0, 1, 1)


class TestInteractiveConsistencyIndependence:
    """Section 3.2's closing remark: parallel-composed broadcast — even over
    a real Byzantine broadcast substrate — provides no independence."""

    def test_honest_roundtrip_over_dolev_strong(self):
        from repro.protocols import PeaseInteractiveConsistency

        protocol = PeaseInteractiveConsistency(
            4, 1, primitive="dolev-strong", security_bits=16
        )
        assert protocol.announced((1, 0, 0, 1), seed=21) == (1, 0, 0, 1)

    def test_rushing_copier_breaks_independence(self):
        from repro.adversaries import RushedBroadcastCopier
        from repro.core import g_star_star_report
        from repro.protocols import PeaseInteractiveConsistency
        import random

        protocol = PeaseInteractiveConsistency(4, 1, primitive="ideal")
        copier = lambda: RushedBroadcastCopier(
            copier=4, target=1, source_tag="ideal:ic1", own_tag="ideal:ic4"
        )
        for x1 in (0, 1):
            announced = protocol.announced(
                (x1, 1, 0, None), adversary=copier(), seed=22
            )
            assert announced[3] == x1  # perfect correlation with party 1
        report = g_star_star_report(
            protocol,
            copier,
            samples_per_point=30,
            rng=random.Random(23),
            honest_assignments=[(0, 0, 0), (1, 0, 0)],
            corrupted_assignments=[(0,)],
        )
        assert report.violated
        assert report.gap == 1.0
