"""Tests for message types and inbox helpers."""

from repro.net.message import BROADCAST, Draft, Inbox, Message, broadcast, send


def msg(sender, recipient, payload, tag=""):
    return Message(sender=sender, recipient=recipient, payload=payload, tag=tag)


class TestDrafts:
    def test_send_creates_point_to_point_draft(self):
        draft = send(3, "hello", tag="t")
        assert draft.recipient == 3
        assert draft.payload == "hello"
        assert draft.tag == "t"

    def test_broadcast_creates_broadcast_draft(self):
        draft = broadcast("hi")
        assert draft.recipient == BROADCAST

    def test_stamping(self):
        stamped = send(2, "x").stamped(1)
        assert stamped.sender == 1
        assert stamped.recipient == 2
        assert not stamped.is_broadcast

    def test_broadcast_stamping(self):
        stamped = broadcast("x", tag="commit").stamped(4)
        assert stamped.is_broadcast
        assert stamped.tag == "commit"


class TestMessage:
    def test_addressed_to_point_to_point(self):
        m = msg(1, 2, "x")
        assert m.addressed_to(2)
        assert not m.addressed_to(3)

    def test_addressed_to_broadcast(self):
        m = msg(1, BROADCAST, "x")
        assert m.addressed_to(1)
        assert m.addressed_to(5)

    def test_frozen(self):
        import dataclasses

        m = msg(1, 2, "x")
        try:
            m.payload = "y"
            raised = False
        except dataclasses.FrozenInstanceError:
            raised = True
        assert raised


class TestInbox:
    def setup_method(self):
        self.inbox = Inbox(
            [
                msg(1, 3, "a", tag="share"),
                msg(2, 3, "b", tag="share"),
                msg(1, BROADCAST, "c", tag="commit"),
                msg(2, BROADCAST, "d", tag="open"),
                msg(1, 3, "e", tag="share"),
            ]
        )

    def test_len_and_bool(self):
        assert len(self.inbox) == 5
        assert self.inbox
        assert not Inbox()

    def test_iteration(self):
        assert [m.payload for m in self.inbox] == ["a", "b", "c", "d", "e"]

    def test_from_sender(self):
        assert [m.payload for m in self.inbox.from_sender(1)] == ["a", "c", "e"]
        assert [m.payload for m in self.inbox.from_sender(1, tag="share")] == ["a", "e"]

    def test_first_from(self):
        assert self.inbox.first_from(2).payload == "b"
        assert self.inbox.first_from(2, tag="open").payload == "d"
        assert self.inbox.first_from(9) is None

    def test_with_tag(self):
        assert [m.payload for m in self.inbox.with_tag("share")] == ["a", "b", "e"]

    def test_broadcasts(self):
        assert [m.payload for m in self.inbox.broadcasts()] == ["c", "d"]
        assert [m.payload for m in self.inbox.broadcasts(tag="commit")] == ["c"]

    def test_payload_by_sender_keeps_first(self):
        mapping = self.inbox.payload_by_sender(tag="share")
        assert mapping == {1: "a", 2: "b"}

    def test_payload_by_sender_all_tags(self):
        mapping = self.inbox.payload_by_sender()
        assert mapping == {1: "a", 2: "b"}

    def test_all_returns_tuple(self):
        assert isinstance(self.inbox.all(), tuple)
