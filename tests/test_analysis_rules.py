"""Tests for the determinism & protocol-discipline static analyzer.

One bad + one good fixture per rule, the suppression and baseline
round-trips, the JSON report schema, and the meta-test that the live
tree itself is clean modulo the checked-in baseline.
"""

import json
import subprocess
import sys
import textwrap
from collections import Counter

import pytest

from repro.analysis.cli import main as analyze_main
from repro.analysis.engine import Finding, analyze_source, module_name_for
from repro.analysis.report import (
    apply_baseline,
    build_report,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import (
    ALL_RULES,
    RULES_BY_ID,
    resolve_rules,
    rule_catalog,
)


def run_rule(rule_id, source, module=""):
    return analyze_source(
        textwrap.dedent(source), resolve_rules([rule_id]), module=module
    )


def rule_ids(findings):
    return [f.rule for f in findings]


# -- per-rule fixtures: one bad, one good --------------------------------------------


class TestDET001UnseededRandomness:
    def test_bad_ambient_module_function(self):
        findings = run_rule(
            "DET001",
            """
            import random

            def draw():
                return random.random()
            """,
        )
        assert rule_ids(findings) == ["DET001"]

    def test_bad_os_entropy(self):
        findings = run_rule(
            "DET001",
            """
            import os

            token = os.urandom(16)
            """,
        )
        assert rule_ids(findings) == ["DET001"]

    def test_bad_unseeded_random_instance(self):
        findings = run_rule(
            "DET001",
            """
            import random

            rng = random.Random()
            """,
        )
        assert rule_ids(findings) == ["DET001"]

    def test_good_seeded_stream(self):
        findings = run_rule(
            "DET001",
            """
            import random

            def draw(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
        )
        assert findings == []


class TestDET002WallClock:
    def test_bad_perf_counter(self):
        findings = run_rule(
            "DET002",
            """
            import time

            start = time.perf_counter()
            """,
            module="repro.experiments.newthing",
        )
        assert rule_ids(findings) == ["DET002"]

    def test_good_allowlisted_module(self):
        findings = run_rule(
            "DET002",
            """
            import time

            start = time.perf_counter()
            """,
            module="repro.obs.tracer",
        )
        assert findings == []


class TestDET003UnorderedIteration:
    def test_bad_for_over_set_literal(self):
        findings = run_rule(
            "DET003",
            """
            def emit(send):
                for party in {3, 1, 2}:
                    send(party)
            """,
        )
        assert rule_ids(findings) == ["DET003"]

    def test_bad_comprehension_over_set_typed_name(self):
        findings = run_rule(
            "DET003",
            """
            corrupted = set([3, 1])
            payload = [i * 2 for i in corrupted]
            """,
        )
        assert "DET003" in rule_ids(findings)

    def test_good_sorted_iteration(self):
        findings = run_rule(
            "DET003",
            """
            corrupted = set([3, 1])
            payload = [i * 2 for i in sorted(corrupted)]
            """,
        )
        assert findings == []


class TestDET004TelemetryIntoMetrics:
    def test_bad_stats_into_counter(self):
        findings = run_rule(
            "DET004",
            """
            from repro.fastpath import STATS

            def record(metrics):
                metrics.inc("crypto.pow", STATS.snapshot()["pow_calls"])
            """,
            module="repro.somewhere",
        )
        assert rule_ids(findings) == ["DET004"]

    def test_good_plain_counter(self):
        findings = run_rule(
            "DET004",
            """
            def record(metrics, n):
                metrics.inc("crypto.pow", n)
            """,
        )
        assert findings == []


class TestDET005BuiltinHash:
    def test_bad_hash_for_seed(self):
        findings = run_rule(
            "DET005",
            """
            def salt(name):
                return hash(name) & 0xFFFF
            """,
        )
        assert rule_ids(findings) == ["DET005"]

    def test_good_dunder_hash_idiom(self):
        findings = run_rule(
            "DET005",
            """
            class Element:
                def __hash__(self):
                    return hash((self.value, self.modulus))
            """,
        )
        assert findings == []


class TestART001FloatIntoCounter:
    def test_bad_float_division(self):
        findings = run_rule(
            "ART001",
            """
            def record(metrics, total, n):
                metrics.inc("avg.cost", total / n)
            """,
        )
        assert rule_ids(findings) == ["ART001"]

    def test_good_integral_increment(self):
        findings = run_rule(
            "ART001",
            """
            def record(metrics, n):
                metrics.inc("messages", n)
            """,
        )
        assert findings == []


class TestMSG001MessageSlots:
    def test_bad_message_without_slots(self):
        findings = run_rule(
            "MSG001",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class WireMessage:
                sender: int
            """,
        )
        assert rule_ids(findings) == ["MSG001"]
        assert findings[0].severity == "warning"

    def test_good_message_with_slots(self):
        findings = run_rule(
            "MSG001",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class WireMessage:
                sender: int
            """,
        )
        assert findings == []


class TestPROTO001RunHonorsTimeout:
    def test_bad_run_override_drops_timeout(self):
        findings = run_rule(
            "PROTO001",
            """
            class WrappedBroadcast:
                def setup(self, rng):
                    return None

                def program(self, ctx, value):
                    yield []

                def run(self, inputs, seed=None):
                    return execute(self, inputs, seed)
            """,
        )
        assert rule_ids(findings) == ["PROTO001"]

    def test_good_run_forwards_timeout(self):
        findings = run_rule(
            "PROTO001",
            """
            class WrappedBroadcast:
                def setup(self, rng):
                    return None

                def program(self, ctx, value):
                    yield []

                def run(self, inputs, seed=None, timeout_rounds=None):
                    return execute(self, inputs, seed, timeout_rounds)
            """,
        )
        assert findings == []


class TestENV001EnvOutsideSeam:
    def test_bad_repro_env_read(self):
        findings = run_rule(
            "ENV001",
            """
            import os

            JOBS = os.environ.get("REPRO_JOBS", "1")
            """,
            module="repro.somewhere",
        )
        assert rule_ids(findings) == ["ENV001"]

    def test_bad_subscript_read(self):
        findings = run_rule(
            "ENV001",
            """
            import os

            runtime = os.environ["REPRO_RUNTIME"]
            """,
            module="repro.somewhere",
        )
        assert rule_ids(findings) == ["ENV001"]

    def test_good_inside_seam_module(self):
        findings = run_rule(
            "ENV001",
            """
            import os

            runtime = os.environ.get("REPRO_RUNTIME")
            """,
            module="repro.net.runtime",
        )
        assert findings == []

    def test_good_non_repro_key(self):
        findings = run_rule(
            "ENV001",
            """
            import os

            home = os.environ.get("HOME", "")
            """,
            module="repro.somewhere",
        )
        assert findings == []


class TestOBS001MetricNames:
    def test_bad_uppercase_name(self):
        findings = run_rule(
            "OBS001",
            """
            def record(metrics):
                metrics.inc("Crypto.PowCalls")
            """,
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_bad_fstring_fragment(self):
        findings = run_rule(
            "OBS001",
            """
            def record(metrics, kind):
                metrics.inc(f"faults/{kind}")
            """,
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_good_dotted_name(self):
        findings = run_rule(
            "OBS001",
            """
            def record(metrics, tracer):
                metrics.inc("net.rounds")
                with tracer.span("scheduler.round"):
                    pass
            """,
        )
        assert findings == []


class TestSCN001ScenarioBypassesSchema:
    def test_bad_direct_construction(self):
        findings = run_rule(
            "SCN001",
            """
            from repro.scenario import Scenario

            def make():
                return Scenario(protocol="bracha", n=4, t=1)
            """,
            module="repro.experiments.zoo",
        )
        assert rule_ids(findings) == ["SCN001"]

    def test_bad_aliased_spec_import(self):
        findings = run_rule(
            "SCN001",
            """
            from repro.scenario.spec import Scenario as Spec

            def make():
                return Spec(protocol="sequential")
            """,
            module="repro.faults.helpers",
        )
        assert rule_ids(findings) == ["SCN001"]

    def test_good_validated_entry_points(self):
        findings = run_rule(
            "SCN001",
            """
            from repro.scenario import Scenario

            def make(data, path):
                a = Scenario.from_dict(data)
                b = Scenario.build(protocol="bracha", n=4, t=1)
                c = Scenario.load(path)
                return a, b, c
            """,
            module="repro.experiments.zoo",
        )
        assert findings == []

    def test_good_inside_scenario_package(self):
        findings = run_rule(
            "SCN001",
            """
            from repro.scenario.spec import Scenario

            def generate():
                return Scenario(protocol="sequential")
            """,
            module="repro.scenario.fuzz",
        )
        assert findings == []


class TestCRY001ModularPowOutsideCrypto:
    def test_bad_three_arg_pow_in_protocol_code(self):
        findings = run_rule(
            "CRY001",
            """
            def check_commitment(c, g, m, p):
                return c == pow(g, m, p)
            """,
            module="repro.protocols.gennaro",
        )
        assert rule_ids(findings) == ["CRY001"]

    def test_bad_raw_gmpy2_powmod(self):
        findings = run_rule(
            "CRY001",
            """
            import gmpy2

            def fast(b, e, m):
                return gmpy2.powmod(b, e, m)
            """,
            module="repro.experiments.cost",
        )
        assert rule_ids(findings) == ["CRY001"]

    def test_good_two_arg_pow_is_not_modular(self):
        findings = run_rule(
            "CRY001",
            """
            def square(x):
                return pow(x, 2)
            """,
            module="repro.distributions.base",
        )
        assert findings == []

    def test_good_inside_the_seam(self):
        findings = run_rule(
            "CRY001",
            """
            def kernel(b, e, m):
                return pow(b, e, m)
            """,
            module="repro.fastpath.kernels",
        )
        assert findings == []
        findings = run_rule(
            "CRY001",
            """
            def kernel(b, e, m):
                return pow(b, e, m)
            """,
            module="repro.crypto.backend",
        )
        assert findings == []

    def test_allow_comment_suppresses(self):
        findings = run_rule(
            "CRY001",
            """
            def crt_step(a, n, m):
                return pow(a, n, m)  # repro: allow[CRY001] non-group CRT arithmetic
            """,
            module="repro.analysis.helpers",
        )
        assert findings == []


# -- suppressions --------------------------------------------------------------------


class TestSuppressions:
    def test_inline_allow_silences_the_named_rule(self):
        findings = run_rule(
            "DET001",
            """
            import os

            token = os.urandom(16)  # repro: allow[DET001]
            """,
        )
        assert findings == []

    def test_allow_is_rule_specific(self):
        findings = run_rule(
            "DET001",
            """
            import os

            token = os.urandom(16)  # repro: allow[ENV001]
            """,
        )
        assert rule_ids(findings) == ["DET001"]

    def test_allow_several_rules_comma_separated(self):
        findings = analyze_source(
            textwrap.dedent(
                """
                import os

                token = os.urandom(16)  # repro: allow[DET001, ENV001]
                """
            ),
            resolve_rules(["DET001", "ENV001"]),
        )
        assert findings == []


# -- baseline round-trip -------------------------------------------------------------


def _finding(path="repro/x.py", rule="DET001", message="m", line=1):
    return Finding(
        rule=rule, severity="error", path=path, line=line, col=0, message=message
    )


class TestBaseline:
    def test_write_then_load_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline([_finding(), _finding(line=9)], path)
        baseline = load_baseline(path)
        assert baseline == Counter({_finding().key(): 2})

    def test_baseline_is_line_insensitive(self):
        baseline = Counter({_finding().key(): 1})
        gating, baselined, stale = apply_baseline([_finding(line=42)], baseline)
        assert gating == [] and len(baselined) == 1 and stale == []

    def test_multiplicity_budget_gates_the_extra_instance(self):
        baseline = Counter({_finding().key(): 1})
        findings = [_finding(line=1), _finding(line=2)]
        gating, baselined, stale = apply_baseline(findings, baseline)
        assert len(gating) == 1 and len(baselined) == 1 and stale == []

    def test_stale_entries_are_reported(self):
        baseline = Counter({_finding().key(): 1, "other::DET002::gone": 1})
        gating, baselined, stale = apply_baseline([_finding()], baseline)
        assert gating == [] and stale == ["other::DET002::gone"]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == Counter()

    def test_stale_baseline_fails_the_gate(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps({"version": 1, "entries": {"never/existed.py::DET001::x": 1}})
        )
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        code = analyze_main(
            [str(clean), "--baseline", str(baseline_path), "--out", "-"]
        )
        assert code == 1
        assert "stale" in capsys.readouterr().out


# -- report schema -------------------------------------------------------------------


class TestReportSchema:
    def test_json_shape(self):
        report = build_report([_finding()], files_scanned=3)
        payload = report.to_json()
        assert payload["version"] == 1
        assert payload["files_scanned"] == 3
        assert payload["summary"]["gating"] == 1
        assert payload["summary"]["baselined"] == 0
        assert payload["summary"]["by_rule"] == {"DET001": 1}
        assert payload["summary"]["stale_baseline_keys"] == []
        entry = payload["findings"][0]
        assert set(entry) == {
            "rule", "severity", "path", "line", "col", "message", "key",
        }
        assert entry["key"] == "repro/x.py::DET001::m"
        rules = {r["id"] for r in payload["rules"]}
        assert rules == set(RULES_BY_ID)

    def test_report_is_deterministic(self):
        first = build_report([_finding()], files_scanned=3).to_json()
        second = build_report([_finding()], files_scanned=3).to_json()
        assert json.dumps(first) == json.dumps(second)

    def test_catalog_covers_all_rules(self):
        catalog = rule_catalog()
        assert [entry["id"] for entry in catalog] == [r.id for r in ALL_RULES]
        for entry in catalog:
            assert entry["title"] and entry["rationale"]
            assert entry["severity"] in ("error", "warning")


class TestCli:
    def test_list_rules_exits_zero(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_unknown_rule_id_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            analyze_main(["--rules", "NOPE999", "--out", "-"])
        assert excinfo.value.code == 2

    def test_dirty_file_gates_and_writes_report(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import os\ntoken = os.urandom(8)\n")
        out = tmp_path / "report.json"
        code = analyze_main(
            [str(dirty), "--no-baseline", "--out", str(out), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["summary"]["gating"] == 1
        assert payload["findings"][0]["rule"] == "DET001"
        capsys.readouterr()

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import os\ntoken = os.urandom(8)\n")
        baseline = tmp_path / "baseline.json"
        assert (
            analyze_main(
                [str(dirty), "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        code = analyze_main(
            [str(dirty), "--baseline", str(baseline), "--out", "-"]
        )
        assert code == 0
        capsys.readouterr()


# -- the live tree -------------------------------------------------------------------


class TestLiveTree:
    def test_module_name_resolution(self):
        assert (
            module_name_for("src/repro/net/runtime.py", "src")
            == "repro.net.runtime"
        )
        assert module_name_for("src/repro/obs/__init__.py", "src") == "repro.obs"

    def test_repo_tree_is_clean_modulo_baseline(self):
        """Meta-test: the analyzer passes over the installed package."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "--out", "-"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 gating finding(s)" in proc.stdout
