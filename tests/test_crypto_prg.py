"""Tests for the PRG / PRF / random-oracle helpers."""

import pytest

from repro.crypto.prg import PRF, PRG, random_oracle, random_oracle_int
from repro.errors import InvalidParameterError


class TestRandomOracle:
    def test_deterministic(self):
        assert random_oracle("a", 1) == random_oracle("a", 1)

    def test_input_sensitivity(self):
        assert random_oracle("a", 1) != random_oracle("a", 2)
        assert random_oracle("a") != random_oracle("b")

    def test_length(self):
        assert len(random_oracle("x", length=100)) == 100
        assert len(random_oracle("x", length=1)) == 1

    def test_prefix_consistency(self):
        # Longer outputs extend shorter ones (counter-mode construction).
        short = random_oracle("x", length=16)
        long = random_oracle("x", length=64)
        assert long.startswith(short)

    def test_invalid_length(self):
        with pytest.raises(InvalidParameterError):
            random_oracle("x", length=0)

    def test_int_in_range(self):
        for modulus in (2, 3, 97, 2**61 - 1):
            value = random_oracle_int("y", modulus=modulus)
            assert 0 <= value < modulus

    def test_int_invalid_modulus(self):
        with pytest.raises(InvalidParameterError):
            random_oracle_int("y", modulus=0)

    def test_int_roughly_uniform_parity(self):
        bits = [random_oracle_int("z", i, modulus=2) for i in range(400)]
        ones = sum(bits)
        assert 140 < ones < 260


class TestPRG:
    def test_deterministic_stream(self):
        a = PRG(b"seed")
        b = PRG(b"seed")
        assert a.next_bytes(100) == b.next_bytes(100)

    def test_stream_continuation(self):
        a = PRG(b"seed")
        whole = PRG(b"seed").next_bytes(64)
        assert a.next_bytes(10) + a.next_bytes(54) == whole

    def test_different_seeds_differ(self):
        assert PRG(b"s1").next_bytes(32) != PRG(b"s2").next_bytes(32)

    def test_next_int_in_range(self):
        prg = PRG(b"seed")
        for _ in range(100):
            assert 0 <= prg.next_int(97) < 97

    def test_next_bit(self):
        prg = PRG(b"seed")
        bits = [prg.next_bit() for _ in range(200)]
        assert set(bits) == {0, 1}

    def test_zero_count(self):
        assert PRG(b"s").next_bytes(0) == b""

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            PRG(b"s").next_bytes(-1)

    def test_invalid_modulus_rejected(self):
        with pytest.raises(InvalidParameterError):
            PRG(b"s").next_int(0)


class TestPRF:
    def test_deterministic(self):
        prf = PRF(b"key")
        assert prf.evaluate("x") == PRF(b"key").evaluate("x")

    def test_key_separation(self):
        assert PRF(b"k1").evaluate("x") != PRF(b"k2").evaluate("x")

    def test_input_separation(self):
        prf = PRF(b"key")
        assert prf.evaluate("x") != prf.evaluate("y")
        assert prf.evaluate("x", 1) != prf.evaluate("x", 2)

    def test_evaluate_int_in_range(self):
        prf = PRF(b"key")
        for i in range(50):
            assert 0 <= prf.evaluate_int("ctr", i, modulus=17) < 17
