"""Fault-path tests for the BGW substrate (malformed traffic, missing shares)."""

import pytest

from repro.crypto.field import PrimeField
from repro.errors import ShareError
from repro.mpc.bgw import BGWProtocol
from repro.mpc.circuit import Circuit
from repro.net.adversary import Adversary
from repro.net.message import send
from repro.net.network import run_protocol

F = PrimeField(101)


def mul_circuit():
    circuit = Circuit(F)
    x1 = circuit.input(1, "v")
    x2 = circuit.input(2, "v")
    circuit.mark_output(circuit.mul(x1, x2))
    return circuit


class TestBGWFaults:
    def test_missing_degree_reduction_contribution_detected(self):
        """A party silent during the multiplication round is detected: the
        semi-honest degree reduction needs everyone, and the honest parties
        fail loudly rather than reconstruct garbage."""

        class SilentInMulRound(Adversary):
            def __init__(self):
                super().__init__(corrupted=[3])
                self._inner_started = False

            def act(self, round_number, rushed):
                # Participate in input sharing (round 1) by sharing 0, then
                # go silent for the multiplication round.
                if round_number == 1:
                    from repro.crypto.secret_sharing import ShamirSharing

                    sharing = ShamirSharing(F, 1, 3)
                    _, shares = sharing.share(0, self.rng)
                    return {
                        3: [
                            send(j, ((2, int(shares[j].value)),), tag="bgw:bgw:in")
                            for j in (1, 2, 3)
                        ]
                    }
                return {3: []}

        protocol = BGWProtocol(mul_circuit(), n=3, t=1)
        with pytest.raises(ShareError, match="degree reduction"):
            run_protocol(
                protocol,
                [{"v": 3}, {"v": 4}, {}],
                adversary=SilentInMulRound(),
                seed=1,
            )

    def test_malformed_share_messages_ignored(self):
        """Garbage payloads in the input round are skipped; the missing
        input wire defaults to the public constant zero."""

        class Garbage(Adversary):
            def act(self, round_number, rushed):
                if round_number == 1:
                    return {
                        2: [send(j, "garbage", tag="bgw:bgw:in") for j in (1, 2, 3)]
                    }
                # Stay honest-silent afterwards; the mul round will fail on
                # the missing contribution, so use a linear circuit here.
                return {2: []}

        circuit = Circuit(F)
        x1 = circuit.input(1, "v")
        x2 = circuit.input(2, "v")
        circuit.mark_output(circuit.add(x1, x2))
        protocol = BGWProtocol(circuit, n=3, t=1)
        execution = run_protocol(
            protocol, [{"v": 5}, {"v": 7}, {}], adversary=Garbage(corrupted=[2]), seed=2
        )
        # Party 2 never shared its input: the wire evaluates to 0.
        assert execution.outputs[1] == (5,)
        assert execution.outputs[3] == (5,)

    def test_wrong_owner_share_injection_rejected(self):
        """A corrupted party cannot inject shares for wires it does not own."""

        class Injector(Adversary):
            def act(self, round_number, rushed):
                if round_number == 1:
                    # Claim to provide gate 0 (party 1's input wire).
                    return {
                        3: [send(j, ((0, 99),), tag="bgw:bgw:in") for j in (1, 2, 3)]
                    }
                return {3: []}

        circuit = Circuit(F)
        x1 = circuit.input(1, "v")
        circuit.mark_output(circuit.scale(x1, 2))
        protocol = BGWProtocol(circuit, n=3, t=1)
        execution = run_protocol(
            protocol, [{"v": 5}, {}, {}], adversary=Injector(corrupted=[3]), seed=3
        )
        assert execution.outputs[1] == (10,)

    def test_duplicate_output_shares_deduplicated(self):
        """Only the first output share per sender counts in reconstruction."""

        class DoubleSender(Adversary):
            def __init__(self):
                super().__init__(corrupted=[3])

            def act(self, round_number, rushed):
                # Send two contradictory output shares in the output round
                # (round 2 for a linear circuit).
                if round_number == 2:
                    return {
                        3: [
                            send(j, ((0, 11),), tag="bgw:bgw:out")
                            for j in (1, 2, 3)
                        ]
                        + [
                            send(j, ((0, 77),), tag="bgw:bgw:out")
                            for j in (1, 2, 3)
                        ]
                    }
                if round_number == 1:
                    from repro.crypto.secret_sharing import ShamirSharing

                    sharing = ShamirSharing(F, 1, 3)
                    _, shares = sharing.share(0, self.rng)
                    return {
                        3: [
                            send(j, ((2, int(shares[j].value)),), tag="bgw:bgw:in")
                            for j in (1, 2, 3)
                        ]
                    }
                return {3: []}

        circuit = Circuit(F)
        x1 = circuit.input(1, "v")
        x2 = circuit.input(2, "v")
        circuit.mark_output(circuit.add(x1, x2))
        protocol = BGWProtocol(circuit, n=3, t=1)
        # The run completes; honest parties agree (reconstruction takes t+1
        # = 2 shares, the honest ones are consistent).
        execution = run_protocol(
            protocol, [{"v": 5}, {"v": 7}, {}], adversary=DoubleSender(), seed=4
        )
        assert execution.outputs[1] == execution.outputs[2]
