"""Tests for the canonical byte encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import serialization
from repro.serialization import encode, encode_many


simple_values = st.one_of(
    st.integers(min_value=-(10**30), max_value=10**30),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.booleans(),
    st.none(),
)

nested_values = st.recursive(
    simple_values,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


class TestEncodeBasics:
    def test_none(self):
        assert encode(None) == b"n"

    def test_booleans_distinct_from_ints(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_int_sign_encoded(self):
        assert encode(5) != encode(-5)

    def test_zero(self):
        assert encode(0).startswith(b"i")

    def test_str_vs_bytes_distinct(self):
        assert encode("abc") != encode(b"abc")

    def test_bytearray_same_as_bytes(self):
        assert encode(bytearray(b"xy")) == encode(b"xy")

    def test_tuple_and_list_equal(self):
        assert encode((1, 2)) == encode([1, 2])

    def test_dict_key_order_irrelevant(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode(object())

    def test_unsupported_nested_type_raises(self):
        with pytest.raises(TypeError):
            encode([1, {1: object()}])

    def test_encode_many_is_tuple_encoding(self):
        assert encode_many(1, "a") == encode((1, "a"))

    def test_length_prefix_width(self):
        assert serialization._LEN_BYTES == 8


class TestEncodeInjectivity:
    @given(nested_values, nested_values)
    def test_distinct_values_distinct_encodings(self, left, right):
        if left != right:
            assert encode(left) != encode(right)

    @given(nested_values)
    def test_deterministic(self, value):
        assert encode(value) == encode(value)

    def test_concatenation_ambiguity_avoided(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert encode(("ab", "c")) != encode(("a", "bc"))

    def test_nesting_ambiguity_avoided(self):
        assert encode([[1], 2]) != encode([1, [2]])

    def test_empty_containers_distinct(self):
        assert encode([]) != encode({})
        assert encode([]) != encode("")
        assert encode("") != encode(b"")
