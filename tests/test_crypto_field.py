"""Tests for prime fields and primality utilities."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.field import (
    FieldElement,
    PrimeField,
    is_probable_prime,
    next_prime,
)
from repro.errors import InvalidParameterError

F97 = PrimeField(97)
F7 = PrimeField(7)

f97_ints = st.integers(min_value=-500, max_value=500)


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 97, 101, 7919, 2**31 - 1])
    def test_known_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 9, 91, 561, 1105, 2**32])
    def test_known_composites(self, composite):
        # 561 and 1105 are Carmichael numbers.
        assert not is_probable_prime(composite)

    def test_negative_not_prime(self):
        assert not is_probable_prime(-7)

    def test_next_prime(self):
        assert next_prime(90) == 97
        assert next_prime(97) == 97
        assert next_prime(2) == 2
        assert next_prime(0) == 2

    def test_next_prime_large(self):
        p = next_prime(10**12)
        assert is_probable_prime(p)
        assert p >= 10**12


class TestFieldConstruction:
    def test_rejects_composite_modulus(self):
        with pytest.raises(InvalidParameterError):
            PrimeField(15)

    def test_rejects_small_modulus(self):
        with pytest.raises(InvalidParameterError):
            PrimeField(1)

    def test_equality_by_modulus(self):
        assert PrimeField(97) == F97
        assert PrimeField(97) != F7

    def test_hashable(self):
        assert len({PrimeField(97), PrimeField(97), F7}) == 2

    def test_element_reduction(self):
        assert F7.element(10).value == 3
        assert F7.element(-1).value == 6

    def test_cross_field_coercion_rejected(self):
        with pytest.raises(InvalidParameterError):
            F97.element(F7.element(3))

    def test_contains(self):
        assert F7.element(1) in F7
        assert F97.element(1) not in F7

    def test_elements_iterator(self):
        values = [e.value for e in F7.elements()]
        assert values == list(range(7))


class TestFieldArithmetic:
    @given(f97_ints, f97_ints)
    def test_addition_commutes(self, a, b):
        assert F97.element(a) + F97.element(b) == F97.element(b) + F97.element(a)

    @given(f97_ints, f97_ints, f97_ints)
    def test_distributivity(self, a, b, c):
        x, y, z = F97.element(a), F97.element(b), F97.element(c)
        assert x * (y + z) == x * y + x * z

    @given(f97_ints)
    def test_additive_inverse(self, a):
        x = F97.element(a)
        assert (x + (-x)).value == 0

    @given(f97_ints.filter(lambda v: v % 97 != 0))
    def test_multiplicative_inverse(self, a):
        x = F97.element(a)
        assert (x * x.inverse()).value == 1

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            F97.zero().inverse()

    def test_division(self):
        assert F7.element(6) / F7.element(2) == F7.element(3)

    def test_right_operators_with_ints(self):
        assert 1 + F7.element(2) == F7.element(3)
        assert 1 - F7.element(2) == F7.element(6)
        assert 3 * F7.element(3) == F7.element(2)
        assert 6 / F7.element(2) == F7.element(3)

    @given(f97_ints, st.integers(min_value=0, max_value=200))
    def test_pow_matches_repeated_multiplication(self, a, e):
        x = F97.element(a)
        expected = F97.one()
        for _ in range(e % 12):
            expected = expected * x
        assert x ** (e % 12) == expected

    def test_negative_power_is_inverse_power(self):
        x = F97.element(5)
        assert x ** -2 == (x.inverse()) ** 2

    def test_fermat_little_theorem(self):
        for value in range(1, 7):
            assert F7.element(value) ** 6 == F7.one()

    def test_int_and_bool_conversion(self):
        assert int(F7.element(3)) == 3
        assert bool(F7.element(3))
        assert not bool(F7.zero())

    def test_random_elements_in_range(self):
        rng = random.Random(1)
        for _ in range(50):
            assert 0 <= F97.random(rng).value < 97
            assert 1 <= F97.random_nonzero(rng).value < 97

    def test_repr_mentions_modulus(self):
        assert "97" in repr(F97.element(5))
        assert "GF(97)" == repr(F97)

    def test_equality_against_int(self):
        assert F7.element(3) == 3
        assert F7.element(3) == 10  # reduced mod 7
        assert F7.element(3) != 4

    def test_elements_are_hashable_values(self):
        assert len({F7.element(3), F7.element(10)}) == 1
