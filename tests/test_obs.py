"""Tests for the observability layer: tracer, metrics, runtime, exports."""

import json

import pytest

from repro import serialization
from repro.obs import (
    NOOP_TRACER,
    Histogram,
    Metrics,
    NoopTracer,
    Tracer,
    jsonable,
    payload_size,
    read_jsonl,
    runtime,
)


class TestMetrics:
    def test_counter_math(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.inc("a")
        metrics.inc("a", 3)
        metrics.inc("b", 0.5)
        assert metrics.get("a") == 5
        assert metrics.get("b") == 0.5
        assert metrics.get("missing") == 0
        assert metrics.get("missing", default=-1) == -1

    def test_histogram_statistics(self):
        metrics = Metrics()
        for value in (4, 1, 7):
            metrics.observe("h", value)
        snap = metrics.snapshot()["histograms"]["h"]
        assert snap["count"] == 3
        assert snap["sum"] == 12
        assert snap["min"] == 1
        assert snap["max"] == 7
        assert snap["mean"] == 4

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.snapshot() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_counters_with_prefix(self):
        metrics = Metrics()
        metrics.inc("net.messages.sent.party.1", 2)
        metrics.inc("net.messages.sent.party.2", 3)
        metrics.inc("net.rounds")
        per_party = metrics.counters_with_prefix("net.messages.sent.party.")
        assert per_party == {
            "net.messages.sent.party.1": 2,
            "net.messages.sent.party.2": 3,
        }

    def test_merge(self):
        first, second = Metrics(), Metrics()
        first.inc("a", 2)
        first.observe("h", 1)
        second.inc("a", 3)
        second.inc("b")
        second.observe("h", 5)
        first.merge(second)
        assert first.get("a") == 5
        assert first.get("b") == 1
        merged = first.histograms["h"]
        assert merged.count == 2 and merged.min == 1 and merged.max == 5

    def test_snapshot_is_json_serializable(self):
        metrics = Metrics()
        metrics.inc("x", 2)
        metrics.observe("y", 1.5)
        json.dumps(metrics.snapshot())

    def test_write_json(self, tmp_path):
        metrics = Metrics()
        metrics.inc("net.rounds", 7)
        path = tmp_path / "metrics.json"
        metrics.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["net.rounds"] == 7


class TestPayloadSize:
    def test_matches_canonical_encoding(self):
        for payload in (0, "hi", (1, "x", b"y"), {"k": [1, 2]}, None, True):
            assert payload_size(payload) == len(serialization.encode(payload))

    def test_unencodable_payload_falls_back(self):
        class Weird:
            pass

        assert payload_size(Weird()) > 0


class TestJsonable:
    def test_structures(self):
        value = {"t": (1, 2), "s": frozenset([3, 1]), "b": b"\x01", 5: "key"}
        converted = jsonable(value)
        assert converted == {"t": [1, 2], "s": [1, 3], "b": "01", "5": "key"}
        json.dumps(converted)

    def test_fallback_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert jsonable(Opaque()) == "<opaque>"


class TestTracer:
    def test_span_nesting_paths_and_depths(self):
        tracer = Tracer()
        with tracer.span("outer", n=2):
            assert tracer.current_depth == 1
            with tracer.span("inner"):
                assert tracer.current_depth == 2
                tracer.event("tick", round=1)
        assert tracer.current_depth == 0
        spans = tracer.spans()
        # Children close before parents.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["path"] == "outer/inner" and inner["depth"] == 1
        assert outer["path"] == "outer" and outer["depth"] == 0
        assert outer["attrs"] == {"n": 2}
        (event,) = tracer.events("tick")
        assert event["path"] == "outer/inner"
        assert event["attrs"] == {"round": 1}

    def test_span_timing_is_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert 0 <= outer["start"] <= inner["start"]
        assert inner["end"] <= outer["end"]
        assert inner["duration"] <= outer["duration"]

    def test_span_late_attributes_and_errors(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set(items=3)
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("boom")
        ok, broken = tracer.spans()
        assert ok["attrs"] == {"items": 3}
        assert broken["attrs"]["error"] == "ValueError"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", n=3):
            tracer.event("round", number=1, sizes=(4, 5))
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        assert read_jsonl(path) == tracer.records
        # Each line is standalone JSON.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(tracer.records)
        for line in lines:
            json.loads(line)

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        Tracer().write_jsonl(path)
        assert path.read_text() == ""
        assert read_jsonl(path) == []


class TestNoopTracer:
    def test_truly_noop(self):
        tracer = NoopTracer()
        with tracer.span("anything", big=list(range(3))) as span:
            span.set(more=1)
            tracer.event("event", x=1)
        assert tracer.records == ()
        assert tracer.spans() == [] and tracer.events() == []
        assert tracer.to_jsonl() == ""
        assert not tracer.enabled

    def test_shared_instance_has_no_state(self):
        with NOOP_TRACER.span("a"):
            with NOOP_TRACER.span("b"):
                NOOP_TRACER.event("c")
        assert NOOP_TRACER.records == ()


class TestRuntime:
    def test_defaults_are_off(self):
        assert runtime.metrics is None
        assert runtime.tracer is NOOP_TRACER
        assert not runtime.tracer.enabled

    def test_observed_installs_and_restores(self):
        tracer, metrics = Tracer(), Metrics()
        with runtime.observed(tracer=tracer, metrics=metrics) as (tr, m):
            assert tr is tracer and m is metrics
            assert runtime.tracer is tracer and runtime.metrics is metrics
        assert runtime.tracer is NOOP_TRACER and runtime.metrics is None

    def test_observed_defaults_to_fresh_metrics(self):
        with runtime.observed() as (tr, m):
            assert tr is NOOP_TRACER
            assert isinstance(m, Metrics)
            assert runtime.metrics is m
        assert runtime.metrics is None

    def test_observed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with runtime.observed(metrics=Metrics()):
                raise RuntimeError("boom")
        assert runtime.metrics is None and runtime.tracer is NOOP_TRACER

    def test_nested_observation_is_scoped(self):
        with runtime.observed(metrics=Metrics()) as (_, outer):
            outer_seen = runtime.metrics
            with runtime.observed(metrics=Metrics()) as (_, inner):
                runtime.metrics.inc("only.inner")
            assert runtime.metrics is outer_seen
            assert inner.get("only.inner") == 1
            assert outer.get("only.inner") == 0

    def test_install_uninstall(self):
        metrics = Metrics()
        runtime.install(new_metrics=metrics)
        try:
            assert runtime.metrics is metrics
            assert runtime.tracer is NOOP_TRACER
        finally:
            runtime.uninstall()
        assert runtime.metrics is None


class TestEndToEnd:
    """The obs layer observing a real protocol execution."""

    def _run(self):
        from repro.protocols import GennaroBroadcast

        protocol = GennaroBroadcast(4, 1, security_bits=16)
        return protocol.run([1, 0, 1, 0], seed=11)

    def test_execution_observed(self):
        tracer = Tracer()
        with runtime.observed(tracer=tracer, metrics=Metrics()) as (_, metrics):
            execution = self._run()
        assert metrics.get("net.rounds") == execution.round_count
        assert metrics.get("net.messages.sent") == len(execution.all_messages())
        assert metrics.get("crypto.group.exp") > 0
        (span,) = tracer.spans("scheduler.run")
        assert span["attrs"]["n"] == 4
        assert span["attrs"]["rounds"] == execution.round_count
        assert span["duration"] > 0
        (seed_event,) = tracer.events("run_protocol.seed")
        assert seed_event["attrs"]["seed"] == 11
        assert seed_event["attrs"]["defaulted"] is False

    def test_unobserved_execution_records_nothing(self):
        probe = Metrics()
        execution = self._run()
        assert runtime.metrics is None
        assert probe.counters == {}
        assert execution.seed == 11

    def test_observed_runs_do_not_change_results(self):
        baseline = self._run()
        with runtime.observed(metrics=Metrics()):
            observed = self._run()
        assert observed.outputs == baseline.outputs
        assert [r.messages for r in observed.rounds] == [
            r.messages for r in baseline.rounds
        ]


class TestMergeFoldEdgeCases:
    """Satellite coverage for the cross-process reduction paths: the
    parallel engine folds worker registries into the coordinator's, so the
    degenerate shapes (empty shards, partial counter sets, unbounded
    histograms, deep span trees) must all merge exactly."""

    def test_merge_empty_into_populated(self):
        target = Metrics()
        target.inc("a", 2)
        target.observe("h", 1.0)
        before = target.snapshot()
        target.merge(Metrics())
        assert target.snapshot() == before

    def test_merge_populated_into_empty(self):
        source = Metrics()
        source.inc("a", 2)
        source.observe("h", 1.0)
        target = Metrics()
        target.merge(source)
        assert target.snapshot() == source.snapshot()

    def test_merge_empty_into_empty(self):
        target = Metrics()
        target.merge(Metrics())
        assert target.snapshot() == {"counters": {}, "histograms": {}}

    def test_merge_mismatched_counter_sets(self):
        left = Metrics()
        left.inc("only.left", 1)
        left.inc("shared", 2)
        right = Metrics()
        right.inc("only.right", 4)
        right.inc("shared", 8)
        left.merge(right)
        assert left.counters == {"only.left": 1, "only.right": 4, "shared": 10}

    def test_merge_histogram_with_unset_bounds(self):
        # An empty histogram has min/max None; merging it either way must
        # not clobber real bounds or invent fake zeros.
        empty = Metrics()
        empty.histograms["h"] = Histogram()
        full = Metrics()
        full.observe("h", -3.0)
        full.observe("h", 7.0)
        full.merge(empty)
        assert full.histograms["h"].min == -3.0
        assert full.histograms["h"].max == 7.0
        assert full.histograms["h"].count == 2
        empty.merge(full)
        assert empty.histograms["h"].min == -3.0
        assert empty.histograms["h"].max == 7.0

    def test_merge_histogram_bounds_tighten(self):
        left = Metrics()
        left.observe("h", 5.0)
        right = Metrics()
        right.observe("h", -1.0)
        right.observe("h", 11.0)
        left.merge(right)
        snap = left.histograms["h"].snapshot()
        assert snap == {"count": 3, "sum": 15.0, "min": -1.0, "max": 11.0, "mean": 5.0}

    def test_merge_is_associative_over_shards(self):
        def shard(seed):
            metrics = Metrics()
            metrics.inc("ops", seed)
            metrics.observe("h", float(seed))
            return metrics

        one_by_one = Metrics()
        for seed in (1, 2, 3):
            one_by_one.merge(shard(seed))
        paired = Metrics()
        left, right = shard(1), shard(2)
        left.merge(right)
        paired.merge(left)
        paired.merge(shard(3))
        assert one_by_one.snapshot() == paired.snapshot()

    def test_reset_clears_everything(self):
        metrics = Metrics()
        metrics.inc("a", 3)
        metrics.observe("h", 1.0)
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "histograms": {}}
        metrics.inc("a")
        assert metrics.get("a") == 1

    def test_fold_empty_records_is_noop(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.fold([])
        assert len(tracer.records) == 1  # just the root span

    def test_fold_into_empty_tracer_keeps_paths(self):
        worker = Tracer()
        with worker.span("trial"):
            worker.event("tick")
        coordinator = Tracer()
        coordinator.fold(worker.records)
        # Folding at the coordinator's root leaves worker paths untouched.
        assert [r.get("path") for r in coordinator.records] == ["trial", "trial"]

    def test_fold_reroots_deeply_nested_spans(self):
        worker = Tracer()
        with worker.span("a"):
            with worker.span("b"):
                with worker.span("c"):
                    worker.event("leaf")
        coordinator = Tracer()
        with coordinator.span("experiment"):
            with coordinator.span("shard"):
                coordinator.fold(worker.records)
        leaf = coordinator.events("leaf")[0]
        assert leaf["path"] == "experiment/shard/a/b/c"
        span_c = [r for r in coordinator.spans() if r["name"] == "c"][0]
        assert span_c["depth"] == worker.spans("c")[0]["depth"] + 2
        # Worker records at the worker's root land exactly at the
        # coordinator's current path.
        span_a = [r for r in coordinator.spans() if r["name"] == "a"][0]
        assert span_a["path"] == "experiment/shard/a"

    def test_fold_events_without_depth(self):
        coordinator = Tracer()
        with coordinator.span("root"):
            coordinator.fold([{"type": "event", "name": "bare", "path": "", "ts": 0.0}])
        folded = coordinator.events("bare")[0]
        assert folded["path"] == "root"
        assert "depth" not in folded

    def test_fold_does_not_mutate_source_records(self):
        worker = Tracer()
        with worker.span("inner"):
            pass
        original = json.dumps(worker.records, sort_keys=True)
        coordinator = Tracer()
        with coordinator.span("outer"):
            coordinator.fold(worker.records)
        assert json.dumps(worker.records, sort_keys=True) == original
