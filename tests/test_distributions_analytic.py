"""Tests for the exact CR/G gap computations and estimator convergence."""

import random

import pytest

from repro.core import HONEST, cr_report, g_report
from repro.distributions import (
    all_equal,
    bernoulli_product,
    near_product_mixture,
    parity,
    singleton,
    uniform,
)
from repro.distributions.analytic import (
    cr_achievability_floor,
    exact_cr_gap,
    exact_g_gap,
    g_achievability_floor,
)
from repro.errors import DistributionError
from repro.net.adversary import PassiveAdversary
from repro.protocols import IdealSimultaneousBroadcast


class TestExactCRGap:
    def test_products_have_zero_floor(self):
        for distribution in (uniform(4), bernoulli_product([0.2, 0.7, 0.5, 0.5])):
            gap, _ = exact_cr_gap(distribution)
            assert gap == pytest.approx(0.0, abs=1e-12)

    def test_singletons_have_zero_floor(self):
        gap, _ = exact_cr_gap(singleton([1, 0, 1]))
        assert gap == pytest.approx(0.0, abs=1e-12)

    def test_all_equal_floor_is_quarter(self):
        """P(x1=0)P(x2=0) - P(both 0) = 0.25 - 0.5 -> gap 0.25."""
        gap, witness = exact_cr_gap(all_equal(4))
        assert gap == pytest.approx(0.25)
        assert "W[" in witness or "parity" in witness

    def test_parity_floor_is_quarter(self):
        gap, witness = exact_cr_gap(parity(4))
        assert gap == pytest.approx(0.25)
        assert "parity" in witness

    def test_mixture_floor_scales_with_delta(self):
        small = cr_achievability_floor(near_product_mixture(4, delta=0.05))
        large = cr_achievability_floor(near_product_mixture(4, delta=0.4))
        assert small < 0.05
        assert large > 0.08
        assert small < large

    def test_coordinate_restriction(self):
        gap, witness = exact_cr_gap(all_equal(3), coordinates=[2])
        assert gap == pytest.approx(0.25)
        assert "coordinate 2" in witness
        with pytest.raises(DistributionError):
            exact_cr_gap(all_equal(3), coordinates=[9])


class TestExactGGap:
    def test_vacuous_without_corruption(self):
        gap, witness = exact_g_gap(uniform(3), corrupted=[])
        assert gap == 0.0 and "vacuous" in witness

    def test_products_have_zero_floor(self):
        gap, _ = exact_g_gap(bernoulli_product([0.3, 0.5, 0.8]), corrupted=[2])
        assert gap == pytest.approx(0.0, abs=1e-12)

    def test_all_equal_floor_is_one(self):
        gap, witness = exact_g_gap(all_equal(4), corrupted=[4])
        assert gap == pytest.approx(1.0)
        assert "coordinate 4" in witness

    def test_parity_floor_is_one(self):
        # The last coordinate is determined by the other three.
        assert g_achievability_floor(parity(4), corrupted=[1]) == pytest.approx(1.0)

    def test_mixture_floor(self):
        gap, _ = exact_g_gap(near_product_mixture(4, delta=0.3), corrupted=[4])
        assert 0.5 < gap < 1.0

    def test_validation(self):
        with pytest.raises(DistributionError):
            exact_g_gap(uniform(3), corrupted=[7])
        with pytest.raises(DistributionError):
            exact_g_gap(uniform(3), corrupted=[1, 2, 3])


class TestEstimatorConvergence:
    """The sampled estimators converge to the exact floors on the ideal
    protocol — validating estimator and floor against each other."""

    def test_cr_estimator_converges(self):
        distribution = all_equal(4)
        exact, _ = exact_cr_gap(distribution)
        report = cr_report(
            IdealSimultaneousBroadcast(4, 1),
            distribution,
            HONEST,
            samples=2000,
            rng=random.Random(42),
        )
        assert report.gap == pytest.approx(exact, abs=0.04)

    def test_g_estimator_converges(self):
        distribution = near_product_mixture(4, delta=0.3)
        exact, _ = exact_g_gap(distribution, corrupted=[4])
        report = g_report(
            IdealSimultaneousBroadcast(4, 1),
            distribution,
            lambda: PassiveAdversary(corrupted=[4]),
            samples=3000,
            rng=random.Random(43),
            min_condition_count=100,
        )
        assert report.gap == pytest.approx(exact, abs=0.08)

    def test_exact_floor_lower_bounds_any_protocol(self):
        """Lemma 5.2 analytically: the measured CR gap of any correct
        protocol is at least the distribution's floor (within noise)."""
        distribution = parity(4)
        floor = cr_achievability_floor(distribution)
        report = cr_report(
            IdealSimultaneousBroadcast(4, 1),
            distribution,
            HONEST,
            samples=1500,
            rng=random.Random(44),
        )
        assert report.gap >= floor - 0.05
