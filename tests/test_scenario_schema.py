"""Schema validation + CLI bad-input behaviour for scenarios and fault plans.

Every user-supplied structured input — scenario files, ``--faults`` plans
— must fail with a field-by-field diagnosis naming the offending key,
never a stack trace from deep inside the injector or runtime.  These
tests pin the diagnosis text users actually see.
"""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenario import Scenario
from repro.scenario.cli import main as campaign_main
from repro.scenario.schema import (
    fault_plan_errors,
    load_fault_plan,
    load_structured,
    scenario_errors,
    validate_scenario_dict,
)


def problems_of(data):
    return "\n".join(scenario_errors(data))


class TestScenarioSchema:
    def test_empty_mapping_is_the_default_scenario(self):
        assert scenario_errors({"protocol": "sequential"}) == []

    def test_non_mapping_rejected(self):
        assert scenario_errors(["not", "a", "dict"]) == [
            "scenario: expected a mapping, got list"
        ]

    def test_unknown_key_is_named(self):
        assert "scenario.protocl: unknown key" in problems_of(
            {"protocol": "sequential", "protocl": "typo"}
        )

    def test_unknown_protocol_lists_the_zoo(self):
        message = problems_of({"protocol": "quantum"})
        assert "scenario.protocol: expected one of" in message
        assert "'sequential'" in message and "'bracha'" in message

    def test_resilience_bound_names_the_protocol(self):
        assert "n > 3t" in problems_of({"protocol": "bracha", "n": 4, "t": 2})

    def test_threshold_and_range_checks(self):
        message = problems_of(
            {"protocol": "sequential", "n": 1, "t": -1, "trials": 0}
        )
        assert "scenario.n: must be >= 2" in message
        assert "scenario.t: must be >= 0" in message
        assert "scenario.trials: must be >= 1" in message

    def test_sender_rejected_for_parallel_broadcast(self):
        assert "no designated sender" in problems_of(
            {"protocol": "sequential", "sender": 2}
        )

    def test_network_knobs_require_event_runtime(self):
        message = problems_of(
            {"protocol": "sequential", "delay_model": "constant:1"}
        )
        assert "scenario.delay_model: only meaningful with runtime='event'" in message

    def test_bad_delay_spec_is_diagnosed(self):
        message = problems_of(
            {
                "protocol": "sequential",
                "runtime": "event",
                "delay_model": "warp:9",
            }
        )
        assert "scenario.delay_model:" in message

    def test_adversary_out_of_threshold(self):
        message = problems_of(
            {"protocol": "sequential", "t": 1, "adversary": "silent:2,3"}
        )
        assert "scenario.adversary:" in message

    def test_crash_party_out_of_range(self):
        message = problems_of(
            {
                "protocol": "sequential",
                "n": 3,
                "t": 1,
                "faults": {"crashes": [{"party": 9}]},
            }
        )
        assert "scenario.faults.crashes[0].party: 9 out of range for n=3" in message

    def test_defaults_mirror_the_dataclass(self):
        # The schema's assumed defaults must equal the dataclass defaults:
        # a canonical to_dict() (which omits defaults) has to re-validate.
        scenario = Scenario.build(protocol="bracha", n=7, t=2)
        assert scenario_errors(json.loads(scenario.canonical())) == []

    def test_validate_scenario_dict_raises_with_all_problems(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario_dict({"protocol": "quantum", "n": 1})
        message = str(excinfo.value)
        assert "scenario.protocol" in message and "scenario.n" in message


class TestFaultPlanSchema:
    def test_clean_plan(self):
        assert fault_plan_errors({"rules": [{"kind": "drop"}]}) == []

    def test_bad_kind_lists_known_kinds(self):
        message = "\n".join(
            fault_plan_errors({"rules": [{"kind": "dropp"}]}, field="plan")
        )
        assert "plan.rules[0].kind: expected one of" in message
        assert "'drop'" in message

    def test_unknown_key_negative_seed_bad_probability(self):
        message = "\n".join(
            fault_plan_errors(
                {
                    "extra": True,
                    "seed": -1,
                    "rules": [{"kind": "drop", "probability": 2.0}],
                },
                field="plan",
            )
        )
        assert "plan.extra: unknown key" in message
        assert "plan.seed: must be >= 0" in message
        assert "plan.rules[0].probability: expected a number in [0, 1]" in message

    def test_crash_requires_party_and_ordered_recovery(self):
        message = "\n".join(
            fault_plan_errors(
                {"crashes": [{}, {"party": 1, "at_round": 3, "recover_at": 2}]},
            )
        )
        assert "faults.crashes[0].party: required" in message
        assert "faults.crashes[1].recover_at: must be after at_round" in message


class TestStructuredLoading:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_structured(str(tmp_path / "nope.json"))

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError, match="is not valid JSON"):
            load_structured(str(path))

    def test_yaml_by_extension(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "plan.yaml"
        path.write_text("rules:\n- kind: drop\n  probability: 0.5\n")
        plan = load_fault_plan(str(path))
        assert len(plan.rules) == 1

    def test_load_fault_plan_diagnoses_fields(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"rules": [{"kind": "dropp"}], "seed": -2}))
        with pytest.raises(ScenarioError) as excinfo:
            load_fault_plan(str(path))
        message = str(excinfo.value)
        assert "plan.rules[0].kind" in message and "plan.seed" in message


class TestExperimentsFaultsFlag:
    """--faults on the experiments CLI: schema errors become parser errors."""

    def test_malformed_plan_is_a_clean_cli_error(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"rules": [{"kind": "dropp"}]}))
        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["E-FAULT", "--faults", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--faults" in err
        assert "plan.rules[0].kind: expected one of" in err

    def test_unreadable_plan_is_a_clean_cli_error(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit) as excinfo:
            experiments_main(
                ["E-FAULT", "--faults", str(tmp_path / "missing.json")]
            )
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err


class TestCampaignValidateSubcommand:
    def test_reports_problems_per_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"protocol": "bracha", "n": 4, "t": 2}))
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"protocol": "sequential"}))
        code = campaign_main(["validate", str(bad), str(good)])
        out = capsys.readouterr().out
        assert code == 1
        assert f"{bad}: INVALID" in out
        assert "n > 3t" in out
        assert f"{good}: ok" in out

    def test_exec_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"protocol": "quantum"}))
        with pytest.raises(SystemExit) as excinfo:
            campaign_main(["exec", str(path)])
        assert excinfo.value.code == 2
        assert "scenario.protocol" in capsys.readouterr().err

    def test_shrink_rejects_clean_scenario(self, tmp_path, capsys):
        path = tmp_path / "clean.json"
        path.write_text(json.dumps({"protocol": "sequential"}))
        with pytest.raises(SystemExit) as excinfo:
            campaign_main(["shrink", str(path)])
        assert excinfo.value.code == 2
        assert "no violation to shrink" in capsys.readouterr().err

    def test_run_rejects_bad_budget_and_jobs(self, capsys):
        with pytest.raises(SystemExit):
            campaign_main(["--budget", "0"])
        assert "--budget must be >= 1" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            campaign_main(["--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err
