"""Property-based tests for the event runtime (hypothesis).

Three invariants, each quantified over random seeds and parameters:

* **replay** — every delay draw comes from a seeded per-edge stream, so
  the same (seed, model) always reproduces the same draws;
* **determinism** — a full event-runtime execution (delivery order,
  transcripts, outputs) is a pure function of (seed, delay model);
* **degeneracy** — with the default ``RushDelay(ConstantDelay(1))``
  timing, the event engine *is* the lockstep scheduler: announced
  vectors, transcripts, and round counts coincide on the protocol zoo.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import run_protocol
from repro.net.runtime import (
    ConstantDelay,
    EventClock,
    ExponentialDelay,
    RushDelay,
    UniformDelay,
    delay_model_from_spec,
)
from repro.protocols import (
    IdealSimultaneousBroadcast,
    PiGBroadcast,
    SequentialBroadcast,
)

@pytest.fixture(autouse=True, scope="module")
def _clean_runtime_env():
    """The lockstep legs below must really be lockstep, even when the CI
    runtime matrix exports REPRO_RUNTIME=event globally.  Module-scoped
    (hypothesis forbids function-scoped fixtures under @given)."""
    import os

    keys = ("REPRO_RUNTIME", "REPRO_DELAY_MODEL", "REPRO_OMISSION")
    saved = {key: os.environ.pop(key, None) for key in keys}
    yield
    for key, value in saved.items():
        if value is not None:
            os.environ[key] = value


N, T = 4, 1

seeds = st.integers(min_value=0, max_value=2**32 - 1)
input_vectors = st.lists(
    st.integers(min_value=0, max_value=1), min_size=N, max_size=N
)
edges = st.tuples(
    st.integers(min_value=1, max_value=N), st.integers(min_value=1, max_value=N)
)
delay_specs = st.sampled_from(
    [
        "constant:1",
        "constant:0.25",
        "uniform:0.5,1.5",
        "uniform:0.1,3.0",
        "exponential:1.0",
        "rush:uniform:0.5,1.5",
    ]
)

FAST_FACTORIES = [
    lambda: SequentialBroadcast(N, T),
    lambda: IdealSimultaneousBroadcast(N, T),
    lambda: PiGBroadcast(N, T, backend="ideal"),
]


class TestSeededDrawsReplay:
    @given(seed=seeds, edge=edges, spec=delay_specs)
    @settings(max_examples=40, deadline=None)
    def test_edge_delay_draws_replay_identically(self, seed, edge, spec):
        sender, recipient = edge
        model = delay_model_from_spec(spec)
        first = [
            model.edge_delay(sender, recipient, EventClock(seed).edge_rng(sender, recipient))
            for _ in range(1)
        ]
        clock_a, clock_b = EventClock(seed), EventClock(seed)
        draws_a = [
            model.edge_delay(sender, recipient, clock_a.edge_rng(sender, recipient))
            for _ in range(8)
        ]
        draws_b = [
            model.edge_delay(sender, recipient, clock_b.edge_rng(sender, recipient))
            for _ in range(8)
        ]
        assert draws_a == draws_b
        assert draws_a[0] == first[0]

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_schedule_order_breaks_ties_deterministically(self, seed):
        clock_a, clock_b = EventClock(seed), EventClock(seed)
        for clock in (clock_a, clock_b):
            for item in range(10):
                clock.schedule(1.0, item)
        assert clock_a.advance() == clock_b.advance()


class TestDeliveryOrderDeterminism:
    @given(seed=seeds, bits=input_vectors, spec=delay_specs)
    @settings(max_examples=12, deadline=None)
    def test_execution_is_a_function_of_seed_and_model(self, seed, bits, spec):
        protocol = SequentialBroadcast(N, T)
        runs = [
            run_protocol(
                protocol,
                list(bits),
                seed=seed,
                runtime="event",
                delay_model=spec,
                timeout_rounds=40,
                timeout_output=tuple([0] * N),
            )
            for _ in range(2)
        ]
        assert runs[0].outputs == runs[1].outputs
        assert runs[0].rounds == runs[1].rounds
        assert runs[0].timed_out == runs[1].timed_out


class TestLockstepDegeneracy:
    @given(
        seed=seeds,
        bits=input_vectors,
        factory_index=st.integers(min_value=0, max_value=len(FAST_FACTORIES) - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_default_event_timing_equals_lockstep(self, seed, bits, factory_index):
        protocol = FAST_FACTORIES[factory_index]()
        lockstep = run_protocol(protocol, list(bits), seed=seed)
        event = run_protocol(protocol, list(bits), seed=seed, runtime="event")
        assert event.outputs == lockstep.outputs
        assert event.rounds == lockstep.rounds
        assert event.round_count == lockstep.round_count
        assert event.adversary_output == lockstep.adversary_output

    @given(seed=seeds, bits=input_vectors)
    @settings(max_examples=15, deadline=None)
    def test_explicit_rush_constant_is_the_same_degenerate_point(self, seed, bits):
        protocol = SequentialBroadcast(N, T)
        lockstep = run_protocol(protocol, list(bits), seed=seed)
        event = run_protocol(
            protocol,
            list(bits),
            seed=seed,
            runtime="event",
            delay_model=RushDelay(ConstantDelay(1.0)),
        )
        assert event.outputs == lockstep.outputs
        assert event.rounds == lockstep.rounds


class TestModelSanity:
    @given(seed=seeds, low=st.floats(min_value=0.0, max_value=2.0), width=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_uniform_draws_stay_in_bounds(self, seed, low, width):
        model = UniformDelay(low, low + width)
        rng = EventClock(seed).edge_rng(1, 2)
        for _ in range(16):
            draw = model.edge_delay(1, 2, rng)
            assert low <= draw <= low + width + 1e-12

    @given(seed=seeds, mean=st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_exponential_draws_are_positive(self, seed, mean):
        model = ExponentialDelay(mean)
        rng = EventClock(seed).edge_rng(2, 1)
        for _ in range(16):
            assert model.edge_delay(2, 1, rng) > 0


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
