"""Tests for the pluggable network runtime (repro.net.runtime / .event).

Covers the seam itself (selection, env vars, validation), the delay and
omission model vocabulary, the deterministic :class:`EventClock`, the
event scheduler's progress guards, and — the load-bearing part — the
regression pinning the paper's rushing-attack verdicts when the rushing
adversary is re-derived as the :class:`RushDelay` delay-model point.
"""

import pytest

from repro.adversaries import CommitEchoAdversary, SequentialCopier
from repro.errors import InvalidParameterError, NetworkError
from repro.net import run_protocol
from repro.net.event import EventScheduler, IDLE_BATCH_LIMIT
from repro.net.message import broadcast
from repro.net.runtime import (
    ConstantDelay,
    DropAll,
    DropEdges,
    EventClock,
    ExponentialDelay,
    MIN_EDGE_DELAY,
    NoOmission,
    RandomDrop,
    RushDelay,
    RuntimeConfig,
    UniformDelay,
    apply_runtime_env,
    capture_runtime_env,
    delay_model_from_spec,
    omission_from_spec,
    resolve_runtime,
    scheduler_class,
)
from repro.net.scheduler import Scheduler
from repro.protocols import GennaroBroadcast, NaiveCommitReveal, SequentialBroadcast


@pytest.fixture(autouse=True)
def _clean_runtime_env(monkeypatch):
    """This file tests explicit runtime selection; the CI runtime matrix
    exports REPRO_RUNTIME globally, so neutralize it here."""
    for key in ("REPRO_RUNTIME", "REPRO_DELAY_MODEL", "REPRO_OMISSION"):
        monkeypatch.delenv(key, raising=False)


class EchoProtocol:
    def __init__(self, n):
        self.n = n

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        inbox = yield [broadcast(value, tag="val")]
        heard = inbox.payload_by_sender(tag="val")
        return tuple(heard.get(i) for i in range(1, ctx.n + 1))


class NeverTerminates:
    def __init__(self):
        self.n = 2

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        while True:
            yield []


class ChattyForever:
    """Keeps broadcasting forever — traffic never stops, the queue never drains."""

    def __init__(self):
        self.n = 2

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        while True:
            yield [broadcast("again", tag="x")]


# -- delay models -------------------------------------------------------------------


class TestDelayModels:
    def test_constant(self):
        model = ConstantDelay(2.5)
        assert model.edge_delay(1, 2, None) == 2.5
        assert model.spec() == {"model": "constant", "ticks": 2.5}
        with pytest.raises(InvalidParameterError):
            ConstantDelay(0)

    def test_uniform_bounds(self):
        import random

        model = UniformDelay(0.5, 1.5)
        rng = random.Random(1)
        draws = [model.edge_delay(1, 2, rng) for _ in range(200)]
        assert all(0.5 <= d <= 1.5 for d in draws)
        assert len(set(draws)) > 1
        with pytest.raises(InvalidParameterError):
            UniformDelay(2.0, 1.0)

    def test_exponential_positive(self):
        import random

        model = ExponentialDelay(mean=0.7)
        rng = random.Random(2)
        draws = [model.edge_delay(1, 2, rng) for _ in range(200)]
        assert all(d > 0 for d in draws)
        with pytest.raises(InvalidParameterError):
            ExponentialDelay(0)

    def test_rush_marks_only_honest_to_corrupted_edges(self):
        model = RushDelay()
        corrupted = frozenset({3})
        assert model.rushes(1, 3, corrupted)
        assert not model.rushes(3, 1, corrupted)  # adversary edges deliver last
        assert not model.rushes(1, 2, corrupted)
        assert not model.rushes(3, 3, corrupted)

    def test_rush_defaults_to_one_round_base(self):
        model = RushDelay()
        assert isinstance(model.base, ConstantDelay)
        assert model.edge_delay(1, 2, None) == 1.0

    def test_spec_parsing(self):
        assert delay_model_from_spec(None) is None
        model = delay_model_from_spec("uniform:0.5,1.5")
        assert isinstance(model, UniformDelay)
        assert (model.low, model.high) == (0.5, 1.5)
        nested = delay_model_from_spec("rush:uniform:0.25,2.0")
        assert isinstance(nested, RushDelay)
        assert isinstance(nested.base, UniformDelay)
        passthrough = ConstantDelay(3.0)
        assert delay_model_from_spec(passthrough) is passthrough
        with pytest.raises(InvalidParameterError):
            delay_model_from_spec("warp:9")
        with pytest.raises(InvalidParameterError):
            delay_model_from_spec("uniform:fast,slow")


class TestOmissionPolicies:
    def test_drop_all_by_sender(self):
        policy = DropAll(1)
        assert policy.omits(1, 2, None, None)
        assert not policy.omits(2, 1, None, None)

    def test_drop_edges_directed(self):
        policy = DropEdges([(1, 2)])
        assert policy.omits(1, 2, None, None)
        assert not policy.omits(2, 1, None, None)

    def test_random_drop_is_seeded(self):
        import random

        policy = RandomDrop(0.5)
        first = [policy.omits(1, 2, None, random.Random(9)) for _ in range(1)]
        second = [policy.omits(1, 2, None, random.Random(9)) for _ in range(1)]
        assert first == second
        with pytest.raises(InvalidParameterError):
            RandomDrop(1.5)

    def test_spec_parsing(self):
        assert omission_from_spec(None) is None
        assert omission_from_spec("none") is None
        policy = omission_from_spec("drop-all:1,3")
        assert isinstance(policy, DropAll)
        assert policy.parties == frozenset({1, 3})
        edges = omission_from_spec("drop-edges:1-2,3-4")
        assert isinstance(edges, DropEdges)
        assert edges.edges == frozenset({(1, 2), (3, 4)})
        rnd = omission_from_spec("random:0.25")
        assert isinstance(rnd, RandomDrop)
        assert rnd.probability == 0.25
        assert isinstance(NoOmission(), NoOmission)
        with pytest.raises(InvalidParameterError):
            omission_from_spec("teleport:1")


# -- the clock ----------------------------------------------------------------------


class TestEventClock:
    def test_orders_by_time_then_schedule_order(self):
        clock = EventClock(seed=1)
        clock.schedule(2.0, "late")
        clock.schedule(1.0, "early-a")
        clock.schedule(1.0, "early-b")
        time, items = clock.advance()
        assert time == pytest.approx(1.0)
        assert items == ["early-a", "early-b"]  # schedule order, not heap noise
        time, items = clock.advance()
        assert time == pytest.approx(2.0)
        assert items == ["late"]
        assert clock.advance() is None
        assert clock.empty

    def test_zero_delay_is_clamped_strictly_forward(self):
        clock = EventClock(seed=1)
        arrival = clock.schedule(0.0, "x")
        assert arrival > clock.now
        assert arrival - clock.now >= MIN_EDGE_DELAY

    def test_edge_streams_are_independent_and_replayable(self):
        a = EventClock(seed=42)
        b = EventClock(seed=42)
        assert a.edge_rng(1, 2).random() == b.edge_rng(1, 2).random()
        # Distinct edges own distinct streams (directionally, too).
        c = EventClock(seed=42)
        assert c.edge_rng(1, 2).random() != c.edge_rng(2, 1).random()

    def test_tick_advances_without_deliveries(self):
        clock = EventClock(seed=0)
        clock.tick()
        assert clock.now == pytest.approx(1.0)
        assert len(clock) == 0


# -- runtime selection --------------------------------------------------------------


class TestResolveRuntime:
    def test_default_is_lockstep(self):
        config = resolve_runtime()
        assert config.kind == "lockstep"
        assert scheduler_class("lockstep") is Scheduler
        assert scheduler_class("event") is EventScheduler

    def test_env_variable_selects_runtime(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME", "event")
        monkeypatch.setenv("REPRO_DELAY_MODEL", "uniform:0.5,1.5")
        monkeypatch.setenv("REPRO_OMISSION", "drop-all:2")
        config = resolve_runtime()
        assert config.kind == "event"
        assert isinstance(config.delay_model, UniformDelay)
        assert isinstance(config.omission, DropAll)

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME", "event")
        assert resolve_runtime("lockstep").kind == "lockstep"

    def test_config_passthrough(self):
        config = RuntimeConfig(kind="event", delay_model=ConstantDelay(2.0))
        assert resolve_runtime(config) is config

    def test_event_default_delay_model_is_rushing_round(self):
        resolved = RuntimeConfig(kind="event").resolved_delay_model()
        assert isinstance(resolved, RushDelay)
        assert isinstance(resolved.base, ConstantDelay)

    def test_lockstep_rejects_event_only_knobs(self):
        with pytest.raises(InvalidParameterError):
            resolve_runtime("lockstep", delay_model="uniform:0.5,1.5")
        with pytest.raises(InvalidParameterError):
            resolve_runtime("lockstep", omission="drop-all:1")
        with pytest.raises(InvalidParameterError):
            resolve_runtime("lockstep", max_events=10)

    def test_unknown_runtime_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_runtime("quantum")

    def test_env_capture_roundtrip(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME", "event")
        monkeypatch.delenv("REPRO_DELAY_MODEL", raising=False)
        captured = capture_runtime_env()
        assert captured == {"REPRO_RUNTIME": "event"}
        monkeypatch.setenv("REPRO_RUNTIME", "lockstep")
        monkeypatch.setenv("REPRO_DELAY_MODEL", "uniform:0.5,1.5")
        apply_runtime_env(captured)
        assert capture_runtime_env() == {"REPRO_RUNTIME": "event"}


# -- the event scheduler ------------------------------------------------------------


class TestEventSchedulerEquivalence:
    """Under the default RushDelay(ConstantDelay(1)) the event engine is lockstep."""

    def test_echo_matches_lockstep_exactly(self):
        lockstep = run_protocol(EchoProtocol(3), [10, 20, 30], seed=1)
        event = run_protocol(EchoProtocol(3), [10, 20, 30], seed=1, runtime="event")
        assert event.runtime == "event" and lockstep.runtime == "lockstep"
        assert event.outputs == lockstep.outputs
        assert event.rounds == lockstep.rounds
        assert event.round_count == lockstep.round_count

    def test_execution_records_runtime(self):
        assert run_protocol(EchoProtocol(2), [1, 2], seed=1).runtime == "lockstep"

    def test_event_runtime_is_replay_identical(self):
        first = run_protocol(
            EchoProtocol(3), [1, 0, 1], seed=7, runtime="event",
            delay_model="uniform:0.5,1.5",
        )
        second = run_protocol(
            EchoProtocol(3), [1, 0, 1], seed=7, runtime="event",
            delay_model="uniform:0.5,1.5",
        )
        assert first.outputs == second.outputs
        assert first.rounds == second.rounds


class TestEventSchedulerGuards:
    def test_silent_stall_raises_without_timeout(self):
        # A protocol that never sends can never receive an event: the
        # queue-drained guard must fire long before max_rounds.
        with pytest.raises(NetworkError):
            run_protocol(
                NeverTerminates(), [None, None], seed=1,
                runtime="event", max_rounds=10_000,
            )

    def test_silent_stall_finalizes_under_timeout(self):
        execution = run_protocol(
            NeverTerminates(), [None, None], seed=1,
            runtime="event", timeout_rounds=IDLE_BATCH_LIMIT + 5,
            timeout_output="gave-up",
        )
        assert execution.timed_out
        assert execution.outputs == {1: "gave-up", 2: "gave-up"}

    def test_event_budget_guard(self):
        with pytest.raises(NetworkError):
            run_protocol(
                ChattyForever(), [None, None], seed=1,
                runtime="event", max_events=50,
            )

    def test_omission_starves_echo(self):
        # Drop everything party 1 sends: party 2 never hears it.
        execution = run_protocol(
            EchoProtocol(2), [5, 6], seed=1,
            runtime="event", omission="drop-all:1",
            timeout_rounds=6, timeout_output=None,
        )
        assert execution.outputs[2] == (None, 6)


class TestRushDelayRegression:
    """The paper's rushing-attack verdicts, reproduced as a delay-model point.

    These assertions are copies of the lockstep attack tests in
    ``tests/test_protocols_attacks.py`` run under ``runtime="event"``: the
    event engine with :class:`RushDelay` timing must reach the exact same
    verdicts (attack succeeds / protocol resists) the lockstep rushing
    scheduler reaches.
    """

    def test_sequential_copier_still_succeeds(self):
        protocol = SequentialBroadcast(4, 1)
        for x1 in (0, 1):
            lockstep = protocol.announced(
                (x1, 1, 0, 0), adversary=SequentialCopier(copier=4, target=1), seed=2
            )
            event = protocol.announced(
                (x1, 1, 0, 0),
                adversary=SequentialCopier(copier=4, target=1),
                seed=2,
                runtime="event",
            )
            assert event == lockstep
            assert event[3] == x1  # the copy attack still lands

    def test_commit_echo_still_breaks_naive_commit_reveal(self):
        protocol = NaiveCommitReveal(4, 1)
        for x1 in (0, 1):
            announced = protocol.announced(
                (x1, 1, 0, 0),
                adversary=CommitEchoAdversary(copier=4, target=1),
                seed=2,
                runtime="event",
            )
            assert announced[3] == x1

    def test_gennaro_still_resists_echo(self):
        protocol = GennaroBroadcast(4, 1, security_bits=16)
        announced = protocol.announced(
            (1, 1, 0, 0),
            adversary=CommitEchoAdversary(
                copier=4, target=1, commit_tag="gen:commit", reveal_tag="gen:reveal"
            ),
            seed=3,
            runtime="event",
        )
        assert announced[3] == 0  # disqualified, constant default
        assert announced[:3] == (1, 1, 0)

    def test_without_rushing_the_echo_attack_fails(self):
        # Control: take the rushing edge away (plain constant delays, the
        # adversary hears everything one batch late) and the reveal echo
        # misses its window — the verdict flips, proving RushDelay is what
        # carries the paper's adversary model, not the event engine itself.
        protocol = NaiveCommitReveal(4, 1)
        announced = protocol.announced(
            (1, 1, 0, 0),
            adversary=CommitEchoAdversary(copier=4, target=1),
            seed=2,
            runtime="event",
            delay_model=ConstantDelay(1.0),
            timeout_rounds=20,
        )
        assert announced[3] == 0  # no copy: the echo arrived too late
