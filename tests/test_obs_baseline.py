"""Regression-surface tests: canonical snapshots, compare semantics, obs CLI."""

import copy
import json

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.obs import baseline
from repro.obs.__main__ import main as obs_main


def _snapshot(counters=None, histograms=None, timings=None, passed=True):
    return {
        "passed": passed,
        "counters": counters or {},
        "histograms": histograms or {},
        "timings": timings or {},
    }


def _doc(experiments):
    return {"schema": baseline.SCHEMA_VERSION, "config": {}, "experiments": experiments}


class TestCanonicalSnapshot:
    def test_is_timing_name(self):
        assert baseline.is_timing_name("wall_seconds")
        assert baseline.is_timing_name("setup.elapsed")
        assert baseline.is_timing_name("io.seconds.total")
        assert not baseline.is_timing_name("net.messages.sent")
        assert not baseline.is_timing_name("crypto.group.exp")
        # Substrings must not trigger: "wallace" is not wall-clock.
        assert not baseline.is_timing_name("wallace.count")

    def test_from_artifact_dict(self):
        artifact = {
            "passed": True,
            "metrics": {
                "wall_seconds": 1.25,
                "counters": {"net.rounds": 30, "trial.wall_seconds": 0.5},
                "histograms": {"round.messages": {"count": 4, "sum": 12.0}},
            },
        }
        snap = baseline.canonical_snapshot(artifact)
        assert snap["passed"] is True
        assert snap["counters"] == {"net.rounds": 30}
        assert snap["histograms"] == {"round.messages": {"count": 4, "sum": 12.0}}
        assert snap["timings"] == {"wall_seconds": 1.25}

    def test_from_experiment_result(self):
        result = run_experiment("E-RND", ExperimentConfig(scale=0.05), jobs=1)
        snap = baseline.canonical_snapshot(result)
        assert snap["passed"] is True
        assert snap["counters"], "expected deterministic counters"
        assert all(not baseline.is_timing_name(n) for n in snap["counters"])
        assert "wall_seconds" in snap["timings"]

    def test_snapshot_is_deterministic_across_runs(self):
        config = ExperimentConfig(scale=0.05)
        first = baseline.canonical_snapshot(run_experiment("E-RND", config, jobs=1))
        second = baseline.canonical_snapshot(run_experiment("E-RND", config, jobs=1))
        first.pop("timings")
        second.pop("timings")
        assert first == second


class TestCompare:
    def test_identical_ok(self):
        doc = _doc({"E-X": _snapshot(counters={"net.rounds": 3})})
        report = baseline.compare(doc, {"E-X": _snapshot(counters={"net.rounds": 3})})
        assert report.ok
        assert report.compared == 1
        assert "ok: 1 experiment(s)" in report.render()

    def test_counter_drift(self):
        doc = _doc({"E-X": _snapshot(counters={"net.rounds": 3})})
        report = baseline.compare(doc, {"E-X": _snapshot(counters={"net.rounds": 4})})
        assert not report.ok
        assert any("net.rounds" in drift for drift in report.drifts)
        assert "DRIFT" in report.render()

    def test_vanished_and_new_counters(self):
        doc = _doc({"E-X": _snapshot(counters={"a": 1, "b": 2})})
        report = baseline.compare(doc, {"E-X": _snapshot(counters={"b": 2, "c": 3})})
        assert not report.ok
        assert any("a vanished" in drift for drift in report.drifts)
        assert any("c is new" in drift for drift in report.drifts)

    def test_missing_and_extra_experiments(self):
        doc = _doc({"E-X": _snapshot()})
        report = baseline.compare(doc, {"E-Y": _snapshot()})
        assert not report.ok
        assert any("E-X: missing" in drift for drift in report.drifts)
        assert any("E-Y: not in the baseline" in drift for drift in report.drifts)

    def test_passed_flip_is_a_drift(self):
        doc = _doc({"E-X": _snapshot(passed=True)})
        report = baseline.compare(doc, {"E-X": _snapshot(passed=False)})
        assert not report.ok

    def test_histogram_drift(self):
        doc = _doc({"E-X": _snapshot(histograms={"h": {"count": 2, "sum": 4.0}})})
        report = baseline.compare(
            doc, {"E-X": _snapshot(histograms={"h": {"count": 2, "sum": 5.0}})}
        )
        assert not report.ok

    def test_nan_equal_counters_do_not_drift(self):
        doc = _doc({"E-X": _snapshot(counters={"odd": float("nan")})})
        report = baseline.compare(
            doc, {"E-X": _snapshot(counters={"odd": float("nan")})}
        )
        assert report.ok

    def test_timing_band_is_advisory_by_default(self):
        doc = _doc({"E-X": _snapshot(timings={"wall_seconds": 1.0})})
        fresh = {"E-X": _snapshot(timings={"wall_seconds": 10.0})}
        report = baseline.compare(doc, fresh, timing_tolerance=4.0)
        assert report.ok
        assert report.timing_notes
        assert "advisory" in report.render()

    def test_strict_timings_gate(self):
        doc = _doc({"E-X": _snapshot(timings={"wall_seconds": 1.0})})
        fresh = {"E-X": _snapshot(timings={"wall_seconds": 10.0})}
        report = baseline.compare(doc, fresh, timing_tolerance=4.0, strict_timings=True)
        assert not report.ok
        assert "gating" in report.render()

    def test_timing_inside_band_is_silent(self):
        doc = _doc({"E-X": _snapshot(timings={"wall_seconds": 1.0})})
        fresh = {"E-X": _snapshot(timings={"wall_seconds": 0.5})}
        report = baseline.compare(doc, fresh)
        assert report.ok
        assert not report.timing_notes

    def test_tolerance_below_one_rejected(self):
        with pytest.raises(ValueError):
            baseline.compare(_doc({}), {}, timing_tolerance=0.5)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        doc = _doc({"E-X": _snapshot(counters={"a": 1})})
        path = str(tmp_path / "base.json")
        baseline.save(doc, path)
        assert baseline.load(path) == doc

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema": 999, "experiments": {}}))
        with pytest.raises(ValueError, match="schema"):
            baseline.load(str(path))


class TestCommittedBaseline:
    def test_committed_baseline_loads(self):
        doc = baseline.load()
        assert set(doc["experiments"]) == set(baseline.PINNED_EXPERIMENTS)
        assert doc["config"]["scale"] == baseline.PINNED_SCALE
        for snap in doc["experiments"].values():
            assert snap["passed"] is True
            assert snap["counters"]


class TestObsCLIBaselineDiff:
    @pytest.fixture(scope="class")
    def captured(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("baseline") / "base.json"
        code = obs_main(["baseline", "E-RND", "--out", str(path), "--scale", "0.05"])
        assert code == 0
        return str(path)

    def test_diff_against_own_capture_passes(self, captured):
        # diff re-runs at the config recorded inside the baseline document.
        code = obs_main(["diff", "--baseline", captured])
        assert code == 0

    def test_diff_flags_tampered_baseline(self, captured, tmp_path, capsys):
        doc = baseline.load(captured)
        tampered = copy.deepcopy(doc)
        experiment = next(iter(tampered["experiments"]))
        counters = tampered["experiments"][experiment]["counters"]
        counters[next(iter(counters))] += 1
        tampered_path = str(tmp_path / "tampered.json")
        baseline.save(tampered, tampered_path)
        code = obs_main(["diff", "--baseline", tampered_path])
        assert code == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_diff_from_json_artifacts(self, captured, tmp_path):
        from repro.experiments.__main__ import main as experiments_main

        artifacts = tmp_path / "artifacts"
        experiments_main(["E-RND", "--scale", "0.05", "--jobs", "1", "--json", str(artifacts)])
        code = obs_main(["diff", "--baseline", captured, "--from", str(artifacts)])
        assert code == 0

    def test_report_renders_key_counters(self, captured, capsys):
        code = obs_main(["report", "--baseline", captured])
        assert code == 0
        out = capsys.readouterr().out
        assert "net.rounds" in out
        assert "fastpath" in out
