"""Tests for Schnorr groups and deterministic parameter generation."""

import random

import pytest

from repro.crypto.field import is_probable_prime
from repro.crypto.group import (
    MAX_SECURITY_BITS,
    MIN_SECURITY_BITS,
    SchnorrGroup,
    safe_prime_parameters,
)
from repro.errors import InvalidParameterError

GROUP = SchnorrGroup.for_security(24)


class TestParameterGeneration:
    @pytest.mark.parametrize("bits", [16, 24, 32])
    def test_safe_prime_shape(self, bits):
        p, q = safe_prime_parameters(bits)
        assert p == 2 * q + 1
        assert is_probable_prime(p)
        assert is_probable_prime(q)
        assert q.bit_length() == bits

    def test_deterministic(self):
        assert safe_prime_parameters(24) == safe_prime_parameters(24)

    def test_distinct_levels_distinct_groups(self):
        assert safe_prime_parameters(16) != safe_prime_parameters(24)

    @pytest.mark.parametrize("bits", [MIN_SECURITY_BITS - 1, MAX_SECURITY_BITS + 1])
    def test_out_of_range_rejected(self, bits):
        with pytest.raises(InvalidParameterError):
            safe_prime_parameters(bits)

    def test_group_constructor_validates(self):
        with pytest.raises(InvalidParameterError):
            SchnorrGroup(10, 4)  # not primes / not safe-prime shape
        with pytest.raises(InvalidParameterError):
            SchnorrGroup(23, 7)  # p != 2q+1


class TestGroupStructure:
    def test_generator_has_order_q(self):
        g = GROUP.generator
        assert g ** GROUP.q == GROUP.identity()
        assert g != GROUP.identity()

    def test_membership(self):
        assert GROUP.is_member(int(GROUP.generator))
        assert not GROUP.is_member(0)
        assert not GROUP.is_member(GROUP.p)

    def test_element_rejects_non_members(self):
        # p - 1 has order 2, not q, so it is not a subgroup member.
        with pytest.raises(InvalidParameterError):
            GROUP.element(GROUP.p - 1)

    def test_exponent_arithmetic(self):
        g = GROUP.generator
        assert (g ** 5) * (g ** 7) == g ** 12
        assert (g ** 5).inverse() == g ** (GROUP.q - 5)
        assert (g ** 5) / (g ** 3) == g ** 2

    def test_exponent_reduction_mod_q(self):
        g = GROUP.generator
        assert g ** (GROUP.q + 3) == g ** 3

    def test_power_of_identity_exponent(self):
        assert GROUP.power(0) == GROUP.identity()

    def test_mixing_groups_rejected(self):
        other = SchnorrGroup.for_security(16)
        with pytest.raises(InvalidParameterError):
            GROUP.generator * other.generator

    def test_random_element_is_member(self):
        rng = random.Random(5)
        for _ in range(20):
            element = GROUP.random_element(rng)
            assert GROUP.is_member(int(element))

    def test_hash_to_element_member_and_deterministic(self):
        h1 = GROUP.hash_to_element(b"seed")
        h2 = GROUP.hash_to_element(b"seed")
        h3 = GROUP.hash_to_element(b"other")
        assert h1 == h2
        assert h1 != h3
        assert GROUP.is_member(int(h1))

    def test_equality_and_hash(self):
        same = SchnorrGroup.for_security(24)
        assert same == GROUP
        assert hash(same) == hash(GROUP)
        assert GROUP.generator == same.generator

    def test_exponent_field_modulus(self):
        assert GROUP.exponent_field.modulus == GROUP.q

    def test_repr(self):
        assert "SchnorrGroup" in repr(GROUP)
        assert "GroupElement" in repr(GROUP.generator)
