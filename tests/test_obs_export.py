"""Exporter tests: Chrome trace JSON, Prometheus text, timelines, obs CLI."""

import json

import pytest

from repro.obs import Metrics, Tracer, export
from repro.obs.__main__ import main as obs_main
from repro.protocols import CGMABroadcast, NaiveCommitReveal


@pytest.fixture
def traced_records():
    tracer = Tracer()
    with tracer.span("experiment", id="E-X"):
        with tracer.span("trial", seed=1):
            tracer.event("round", number=0)
    return tracer.records


class TestChromeTrace:
    def test_structure(self, traced_records):
        trace = export.chrome_trace(traced_records, process_name="unit")
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert meta[0]["args"]["name"] == "unit"
        assert {span["name"] for span in spans} == {"experiment", "trial"}
        assert instants[0]["name"] == "round"
        assert instants[0]["args"] == {"number": 0}
        for span in spans:
            assert span["dur"] >= 0
            assert span["tid"] == 1

    def test_shard_records_get_their_own_thread(self, traced_records):
        shard = [dict(record, shard=True) for record in traced_records]
        trace = export.chrome_trace(shard)
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] in ("X", "i")}
        assert tids == {2}

    def test_write_is_valid_json(self, traced_records, tmp_path):
        path = tmp_path / "trace.json"
        export.write_chrome_trace(path, traced_records)
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == 4  # 1 meta + 2 spans + 1 instant


class TestPrometheus:
    def test_sanitize_metric_name(self):
        assert export.sanitize_metric_name("net.bytes.sent") == "repro_net_bytes_sent"
        assert export.sanitize_metric_name("a-b c", namespace="") == "a_b_c"
        assert export.sanitize_metric_name("9lives", namespace="") == "_9lives"

    def test_split_labels(self):
        base, labels = export.split_labels("net.bytes.sent.party.3")
        assert base == "net.bytes.sent.by_party"
        assert labels == {"party": "3"}
        assert export.split_labels("crypto.group.exp") == ("crypto.group.exp", {})

    def test_counters_histograms_and_gauges(self):
        metrics = Metrics()
        metrics.inc("net.messages.sent", 12)
        metrics.inc("net.bytes.sent.party.1", 100)
        metrics.inc("net.bytes.sent.party.2", 250)
        metrics.observe("round.messages", 3)
        metrics.observe("round.messages", 5)
        text = export.prometheus_text(metrics, extra_gauges={"fastpath.enabled": 1.0})
        samples = export.parse_prometheus_text(text)
        assert samples["repro_net_messages_sent_total"] == 12
        assert samples['repro_net_bytes_sent_by_party_total{party="1"}'] == 100
        assert samples['repro_net_bytes_sent_by_party_total{party="2"}'] == 250
        assert samples["repro_round_messages_count"] == 2
        assert samples["repro_round_messages_sum"] == 8
        assert samples["repro_round_messages_min"] == 3
        assert samples["repro_round_messages_max"] == 5
        assert samples["repro_round_messages_mean"] == 4
        assert samples["repro_fastpath_enabled"] == 1
        assert "# TYPE repro_net_messages_sent_total counter" in text
        assert "# TYPE repro_fastpath_enabled gauge" in text

    def test_empty_registry_renders_empty(self):
        assert export.prometheus_text(Metrics()) == ""

    def test_metrics_from_snapshot_round_trip(self):
        metrics = Metrics()
        metrics.inc("a.b", 7)
        metrics.observe("h", 2.0)
        metrics.observe("h", 4.0)
        snap = metrics.snapshot()
        rebuilt = export.metrics_from_snapshot(snap["counters"], snap["histograms"])
        assert rebuilt.snapshot() == snap

    def test_fastpath_gauges_surface_process_telemetry(self):
        # Generate some kernel traffic so the counters are non-trivial.
        NaiveCommitReveal(3, 1).run([1, 0, 1], seed=2)
        gauges = export.fastpath_gauges()
        assert gauges["fastpath.enabled"] in (0.0, 1.0)
        assert any(name.startswith("fastpath.caches.") for name in gauges)
        assert all(isinstance(value, float) for value in gauges.values())


class TestTimeline:
    @pytest.fixture(scope="class")
    def execution(self):
        return NaiveCommitReveal(4, 1).run([1, 0, 1, 0], seed=5)

    def test_text_timeline(self, execution):
        text = export.timeline(execution)
        assert text.startswith("execution: n=4")
        assert "round 1" in text
        assert " -> " in text

    def test_max_rounds_truncates(self, execution):
        text = export.timeline(execution, max_rounds=1)
        assert "more round(s)" in text
        assert "round 2 |" not in text

    def test_faulty_execution_shows_faults_inline(self):
        from repro.faults import FaultPlan, FaultRule

        plan = FaultPlan(
            name="droppy", seed=1, rules=(FaultRule(kind="drop", probability=0.5),)
        )
        execution = CGMABroadcast(4, 1, security_bits=16).run(
            [1, 0, 1, 0], seed=5, fault_plan=plan
        )
        assert execution.faults
        text = export.timeline(execution)
        assert "  ! drop" in text

    def test_html_timeline(self, execution):
        html = export.timeline_html(execution, title="unit <test>")
        assert html.startswith("<!doctype html>")
        assert "unit &lt;test&gt;" in html
        assert "<table>" in html
        assert "→" in html


class TestObsCLI:
    def test_export_writes_all_artifacts(self, tmp_path):
        code = obs_main(
            [
                "export",
                "E-RND",
                "--out",
                str(tmp_path),
                "--scale",
                "0.05",
                "--protocol",
                "sequential",
            ]
        )
        assert code == 0
        names = {path.name for path in tmp_path.iterdir()}
        assert "trace_chrome.json" in names
        assert "E-RND.prom" in names
        assert "E-RND.metrics.json" in names
        assert "timeline_sequential.txt" in names
        assert "timeline_sequential.html" in names
        with open(tmp_path / "trace_chrome.json", encoding="utf-8") as handle:
            trace = json.load(handle)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        with open(tmp_path / "E-RND.prom", encoding="utf-8") as handle:
            samples = export.parse_prometheus_text(handle.read())
        assert any(name.startswith("repro_fastpath") for name in samples)
        assert any(name.startswith("repro_crypto") or name.startswith("repro_net") for name in samples)
