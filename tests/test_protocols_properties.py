"""Property-based tests: Definition 3.1 invariants across the protocol zoo.

Hypothesis drives random inputs, seeds, corruption patterns and adversary
behaviours through every protocol, checking the two parallel-broadcast
properties (consistency, correctness) plus protocol-specific invariants.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import InputSubstitution, PassiveAdversary
from repro.net.adversary import Adversary
from repro.protocols import (
    CGMABroadcast,
    CGMAParallelDealing,
    ChorRabinBroadcast,
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    PiGBroadcast,
    SequentialBroadcast,
)
from repro.protocols.multibit import MultiBitBroadcast

N, T = 4, 1

input_vectors = st.lists(
    st.integers(min_value=0, max_value=1), min_size=N, max_size=N
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

FAST_FACTORIES = [
    lambda: SequentialBroadcast(N, T),
    lambda: IdealSimultaneousBroadcast(N, T),
    lambda: PiGBroadcast(N, T, backend="ideal"),
]
CRYPTO_FACTORIES = [
    lambda: CGMABroadcast(N, T, security_bits=16),
    lambda: CGMAParallelDealing(N, T, security_bits=16),
    lambda: ChorRabinBroadcast(N, T, security_bits=16),
    lambda: GennaroBroadcast(N, T, security_bits=16),
]


class TestHonestInvariants:
    @given(inputs=input_vectors, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_fast_protocols_announce_inputs(self, inputs, seed):
        for factory in FAST_FACTORIES:
            protocol = factory()
            execution = protocol.run(inputs, seed=seed)
            announced = execution.announced_vector()
            assert announced == tuple(inputs)  # correctness
            vectors = {tuple(execution.outputs[i]) for i in execution.honest}
            assert len(vectors) == 1  # consistency

    @given(inputs=input_vectors, seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_crypto_protocols_announce_inputs(self, inputs, seed):
        for factory in CRYPTO_FACTORIES:
            protocol = factory()
            assert protocol.announced(inputs, seed=seed) == tuple(inputs)


class TestAdversarialInvariants:
    @given(
        inputs=input_vectors,
        corrupted=st.integers(min_value=1, max_value=N),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=10, deadline=None)
    def test_silent_corruption_never_breaks_honest_coordinates(
        self, inputs, corrupted, seed
    ):
        """Whatever one party withholds, honest announced values survive."""
        for factory in FAST_FACTORIES + [lambda: GennaroBroadcast(N, T, security_bits=16)]:
            protocol = factory()
            execution = protocol.run(
                inputs, adversary=Adversary(corrupted=[corrupted]), seed=seed
            )
            announced = execution.announced_vector()
            for party in range(1, N + 1):
                if party != corrupted:
                    assert announced[party - 1] == inputs[party - 1]
            # Consistency among the honest parties always holds.
            vectors = {tuple(execution.outputs[i]) for i in execution.honest}
            assert len(vectors) == 1

    @given(
        inputs=input_vectors,
        substituted=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=10, deadline=None)
    def test_input_substitution_announces_substituted_value(
        self, inputs, substituted, seed
    ):
        protocol = GennaroBroadcast(N, T, security_bits=16)
        announced = protocol.announced(
            inputs,
            adversary=InputSubstitution(protocol, corrupted=[2], substitution=substituted),
            seed=seed,
        )
        assert announced[1] == substituted
        assert announced[0] == inputs[0]

    @given(
        inputs=input_vectors,
        pair=st.sampled_from([(1, 2), (1, 3), (2, 4), (3, 4)]),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_pig_xor_invariant_for_any_corrupted_pair(self, inputs, pair, seed):
        """Claim 6.6 quantified over corrupted pairs and inputs."""
        from repro.adversaries import XorAttacker

        protocol = PiGBroadcast(N, T, backend="ideal")
        announced = protocol.announced(
            inputs, adversary=XorAttacker(protocol, corrupted_pair=list(pair)), seed=seed
        )
        xor = 0
        for bit in announced:
            xor ^= bit
        assert xor == 0
        for party in range(1, N + 1):
            if party not in pair:
                assert announced[party - 1] == inputs[party - 1]


class TestMultiBit:
    @given(
        values=st.lists(st.integers(min_value=0, max_value=15), min_size=N, max_size=N),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=15, deadline=None)
    def test_roundtrip(self, values, seed):
        broadcast = MultiBitBroadcast(lambda: SequentialBroadcast(N, T), bits=4)
        assert broadcast.announced(values, seed=seed) == tuple(values)

    def test_value_range_validated(self):
        from repro.errors import InvalidParameterError

        broadcast = MultiBitBroadcast(lambda: SequentialBroadcast(N, T), bits=2)
        with pytest.raises(InvalidParameterError):
            broadcast.announced([4, 0, 0, 0])
        with pytest.raises(InvalidParameterError):
            broadcast.announced([0, 0])

    def test_bits_validated(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            MultiBitBroadcast(lambda: SequentialBroadcast(N, T), bits=0)

    def test_none_values_default_to_zero(self):
        broadcast = MultiBitBroadcast(lambda: SequentialBroadcast(N, T), bits=3)
        assert broadcast.announced([5, None, 3, 1], seed=1) == (5, 0, 3, 1)

    def test_adversary_factory_receives_positions(self):
        positions = []

        def factory(position):
            positions.append(position)
            return None

        broadcast = MultiBitBroadcast(lambda: SequentialBroadcast(N, T), bits=3)
        broadcast.announced([1, 2, 3, 4], adversary_factory=factory, seed=1)
        assert positions == [2, 1, 0]  # MSB first


class TestCrashFaults:
    """Failure injection: parties that crash mid-protocol."""

    class CrashAt(Adversary):
        """Run the honest program, then go silent from a given round on."""

        def __init__(self, party, crash_round, protocol):
            super().__init__(corrupted=[party])
            self.party = party
            self.crash_round = crash_round
            self._inner = PassiveAdversary(corrupted=[party])
            self._protocol = protocol

        def setup(self, n, config, corrupted_inputs, rng, session=""):
            super().setup(n, config, corrupted_inputs, rng, session)
            self._inner.set_program_factory(self._protocol.program)
            self._inner.setup(n, config, corrupted_inputs, rng, session)

        def act(self, round_number, rushed):
            outbox = self._inner.act(round_number, rushed)
            if round_number >= self.crash_round:
                return {self.party: []}
            return outbox

    @pytest.mark.parametrize("crash_round", [1, 2])
    def test_gennaro_crash_mid_protocol(self, crash_round):
        """A party crashing before/after commit is announced as default,
        and honest coordinates survive."""
        protocol = GennaroBroadcast(N, T, security_bits=16)
        adversary = self.CrashAt(party=3, crash_round=crash_round, protocol=protocol)
        announced = protocol.announced((1, 1, 1, 1), adversary=adversary, seed=9)
        assert announced[0] == 1 and announced[1] == 1 and announced[3] == 1
        assert announced[2] in (0, 1)  # committed-then-crashed may still open as 0

    @pytest.mark.parametrize("crash_round", [1, 4, 7, 10])
    def test_cgma_crash_any_phase(self, crash_round):
        """CGMA disqualifies or reconstructs around a crashed party; honest
        values are always announced and consistency holds."""
        protocol = CGMABroadcast(5, 2, security_bits=16)
        adversary = self.CrashAt(party=2, crash_round=crash_round, protocol=protocol)
        execution = protocol.run((1, 1, 1, 1, 1), adversary=adversary, seed=10)
        announced = execution.announced_vector()
        for party in (1, 3, 4, 5):
            assert announced[party - 1] == 1
        vectors = {tuple(execution.outputs[i]) for i in execution.honest}
        assert len(vectors) == 1

    def test_cgma_crash_after_dealing_still_reconstructs(self):
        """If the dealer crashes *after* its dealing completed, the other
        parties reconstruct its value from their shares (round 3·(2-1)+3+1)."""
        protocol = CGMABroadcast(5, 2, security_bits=16)
        adversary = self.CrashAt(party=2, crash_round=7, protocol=protocol)
        announced = protocol.announced((1, 1, 1, 1, 1), adversary=adversary, seed=11)
        assert announced == (1, 1, 1, 1, 1)
