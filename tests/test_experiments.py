"""Tests for the experiment harness: registry, config, CLI, cheap experiments.

The heavyweight experiments are exercised end-to-end by the benchmark
suite; here we pin the harness machinery and run the cheap experiments at
tiny scale.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    REGISTRY,
    TITLES,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.experiments.__main__ import main as cli_main

EXPECTED_IDS = {
    "E-FIG1",
    "E-C56",
    "E-L52",
    "E-L54",
    "E-L61",
    "E-L62",
    "E-P63",
    "E-L64",
    "E-C66",
    "E-RND",
    "E-COST",
    "E-TRD",
    "E-ABL",
    "E-APB",
    "E-FAULT",
}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(REGISTRY) == EXPECTED_IDS
        assert set(TITLES) == EXPECTED_IDS

    def test_titles_nonempty(self):
        assert all(TITLES[i] for i in TITLES)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("E-NOPE")


class TestConfig:
    def test_rng_deterministic_per_salt(self):
        config = ExperimentConfig(seed=1)
        assert config.rng(5).random() == config.rng(5).random()
        assert config.rng(5).random() != config.rng(6).random()

    def test_samples_scaling_and_floor(self):
        config = ExperimentConfig(scale=0.1)
        assert config.samples(1000) == 100
        assert config.samples(1000, floor=500) == 500

    def test_budget_scaled(self):
        config = ExperimentConfig(scale=0.5)
        budget = config.budget()
        assert budget.distribution_samples == 200


class TestResultRendering:
    def test_render_includes_status_and_notes(self):
        result = ExperimentResult(
            experiment_id="E-X",
            title="demo",
            table="t",
            passed=True,
            notes=["something"],
        )
        text = result.render()
        assert "[E-X]" in text and "PASS" in text and "note: something" in text

    def test_render_mismatch(self):
        result = ExperimentResult("E-X", "demo", "t", passed=False)
        assert "MISMATCH" in result.render()


class TestCheapExperiments:
    def test_claim56(self):
        result = run_experiment("E-C56", ExperimentConfig(scale=0.05))
        assert result.passed
        assert result.data["monotone"]

    def test_claim66(self):
        result = run_experiment("E-C66", ExperimentConfig(scale=0.05))
        assert result.passed
        assert result.data["all_zero"]

    def test_rounds(self):
        result = run_experiment("E-RND", ExperimentConfig(scale=0.05))
        assert result.passed
        assert result.data["rounds"]["gennaro"] == {4: 2, 6: 2, 8: 2}

    def test_ablation(self):
        result = run_experiment("E-ABL", ExperimentConfig(scale=0.05))
        assert result.passed


class TestCLI:
    def test_cli_runs_selected_experiment(self, capsys):
        code = cli_main(["E-C56", "--scale", "0.05"])
        captured = capsys.readouterr()
        assert code == 0
        assert "E-C56" in captured.out
        assert "PASS" in captured.out

    def test_cli_scale_and_seed_flags(self, capsys):
        code = cli_main(["E-RND", "--scale", "0.05", "--seed", "7"])
        assert code == 0

    def test_cli_unknown_experiment_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["E-NOPE"])
        assert excinfo.value.code == 2
        assert "E-NOPE" in capsys.readouterr().err
