"""Tests for repro.faults: plans, the injector, and the scheduler hooks."""

import random

import pytest

from repro.errors import InvalidParameterError, NetworkError
from repro.faults import (
    STANDARD_PLANS,
    CrashFault,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FaultyScheduler,
    corrupt_payload,
    get_plan,
    with_faults,
)
from repro.net.adversary import Adversary, NO_ADVERSARY
from repro.net.message import BROADCAST, Message, broadcast, send
from repro.net.network import run_protocol
from repro.obs import Metrics, Tracer, runtime as obs_runtime
from repro.protocols.naive_commit_reveal import NaiveCommitReveal
from repro.protocols.sequential import SequentialBroadcast


def msg(sender=1, recipient=2, payload="x", tag="t"):
    return Message(sender=sender, recipient=recipient, payload=payload, tag=tag)


class EchoProtocol:
    """Round 1: everyone broadcasts its input.  Round 2: output what was heard."""

    def __init__(self, n):
        self.n = n

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        inbox = yield [broadcast(value, tag="val")]
        heard = inbox.payload_by_sender(tag="val")
        return tuple(heard.get(i) for i in range(1, ctx.n + 1))


class ForeverProtocol:
    """Programs that never return — the timeout test subject."""

    def __init__(self, n):
        self.n = n

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        while True:
            yield [send(1 + ctx.party_id % ctx.n, value, tag="loop")]


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="explode")

    def test_probability_range(self):
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="drop", probability=1.5)
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="drop", probability=-0.1)

    def test_delay_and_copies_bounds(self):
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="delay", delay=0)
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="duplicate", copies=0)

    def test_corrupt_mode_checked(self):
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="corrupt", mode="sparkle")

    def test_filters_normalized_to_tuples(self):
        rule = FaultRule(kind="drop", senders=[1, 2], tags=["a"])
        assert rule.senders == (1, 2)
        assert rule.tags == ("a",)
        assert rule.receivers is None


class TestFaultRuleMatching:
    def test_wildcards_match_everything(self):
        rule = FaultRule(kind="drop")
        assert rule.matches(1, msg())
        assert rule.matches(99, msg(recipient=BROADCAST))

    def test_each_filter_restricts(self):
        rule = FaultRule(kind="drop", rounds=[2], senders=[1], receivers=[2], tags=["t"])
        assert rule.matches(2, msg())
        assert not rule.matches(3, msg())
        assert not rule.matches(2, msg(sender=4))
        assert not rule.matches(2, msg(recipient=5))
        assert not rule.matches(2, msg(tag="other"))

    def test_broadcasts_never_match_explicit_receivers(self):
        # Broadcast faults are all-or-nothing: targeting a subset of a
        # broadcast's receivers would desynchronise honest views.
        rule = FaultRule(kind="drop", receivers=[1, 2, 3])
        assert not rule.matches(1, msg(recipient=BROADCAST))
        wildcard = FaultRule(kind="drop")
        assert wildcard.matches(1, msg(recipient=BROADCAST))


class TestCrashFault:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CrashFault(party=0)
        with pytest.raises(InvalidParameterError):
            CrashFault(party=1, at_round=0)
        with pytest.raises(InvalidParameterError):
            CrashFault(party=1, at_round=3, recover_at=3)

    def test_active_window(self):
        crash = CrashFault(party=2, at_round=2, recover_at=4)
        assert [crash.active(r) for r in (1, 2, 3, 4)] == [False, True, True, False]

    def test_permanent_crash(self):
        crash = CrashFault(party=1, at_round=3)
        assert not crash.active(2)
        assert crash.active(1000)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.crashed_parties == ()

    def test_crashed_parties_sorted_unique(self):
        plan = FaultPlan(
            crashes=(CrashFault(party=3), CrashFault(party=1), CrashFault(party=3, at_round=5))
        )
        assert plan.crashed_parties == (1, 3)

    def test_injector_seed_salting(self):
        plan = FaultPlan(seed=7)
        assert plan.injector_seed(0) != plan.injector_seed(1)
        assert plan.injector_seed(5) == FaultPlan(seed=7).injector_seed(5)

    def test_json_round_trip(self):
        plan = FaultPlan(
            name="rt",
            seed=99,
            rules=(
                FaultRule(kind="drop", senders=[1], probability=0.5),
                FaultRule(kind="delay", delay=2, rounds=[1, 3]),
                FaultRule(kind="duplicate", copies=3),
                FaultRule(kind="corrupt", mode="flip", tags=["x"]),
            ),
            crashes=(CrashFault(party=2, at_round=2, recover_at=4),),
        )
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = get_plan("mixed")
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_library_names_consistent(self):
        for name, plan in STANDARD_PLANS.items():
            assert plan.name == name
        with pytest.raises(KeyError):
            get_plan("no-such-plan")


class TestCorruptPayload:
    def test_flip_inverts_bits(self):
        rng = random.Random(0)
        assert corrupt_payload(0, rng, mode="flip") == 1
        assert corrupt_payload(1, rng, mode="flip") == 0

    def test_flip_falls_back_to_garbage(self):
        rng = random.Random(0)
        mangled = corrupt_payload(("tuple", 1), rng, mode="flip")
        assert mangled[0] == "faults:corrupted"

    def test_garbage_is_tagged_junk(self):
        rng = random.Random(0)
        mangled = corrupt_payload(5, rng)
        assert mangled[0] == "faults:corrupted"


class TestFaultInjector:
    def test_empty_plan_is_identity(self):
        injector = FaultInjector(FaultPlan())
        traffic = [msg(), msg(sender=2)]
        assert injector.apply(1, traffic) == traffic
        assert injector.records == []

    def test_drop(self):
        plan = FaultPlan(rules=(FaultRule(kind="drop", senders=[1]),))
        injector = FaultInjector(plan)
        out = injector.apply(1, [msg(sender=1), msg(sender=2)])
        assert [m.sender for m in out] == [2]
        assert [r.kind for r in injector.records] == ["drop"]

    def test_delay_releases_later(self):
        plan = FaultPlan(rules=(FaultRule(kind="delay", delay=2, rounds=[1]),))
        injector = FaultInjector(plan)
        delayed = msg(payload="late")
        assert injector.apply(1, [delayed]) == []
        assert injector.undelivered == 1
        assert injector.apply(2, []) == []
        assert injector.apply(3, []) == [delayed]
        assert injector.undelivered == 0

    def test_duplicate(self):
        plan = FaultPlan(rules=(FaultRule(kind="duplicate", copies=2),))
        injector = FaultInjector(plan)
        out = injector.apply(1, [msg()])
        assert len(out) == 3
        assert len(set(id(m) for m in out)) <= 3 and all(m == out[0] for m in out)

    def test_corrupt_rewrites_payload(self):
        plan = FaultPlan(rules=(FaultRule(kind="corrupt", mode="flip", tags=["bit"]),))
        injector = FaultInjector(plan)
        out = injector.apply(1, [msg(payload=1, tag="bit"), msg(payload=1, tag="other")])
        assert out[0].payload == 0
        assert out[1].payload == 1

    def test_crash_suppresses_sender_in_window(self):
        plan = FaultPlan(crashes=(CrashFault(party=1, at_round=2, recover_at=3),))
        injector = FaultInjector(plan)
        assert len(injector.apply(1, [msg(sender=1)])) == 1
        assert injector.apply(2, [msg(sender=1), msg(sender=2)])[0].sender == 2
        assert len(injector.apply(3, [msg(sender=1)])) == 1
        assert [r.kind for r in injector.records] == ["crash"]

    def test_probability_is_seed_deterministic(self):
        plan = FaultPlan(seed=11, rules=(FaultRule(kind="drop", probability=0.5),))
        traffic = [msg(sender=i) for i in range(1, 9)]
        first = FaultInjector(plan, salt=3).apply(1, traffic)
        second = FaultInjector(plan, salt=3).apply(1, traffic)
        assert first == second
        assert 0 < len(first) < len(traffic)

    def test_metrics_and_tracer_recording(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="drop", senders=[1]),),
            crashes=(CrashFault(party=2, at_round=1),),
        )
        tracer = Tracer()
        with obs_runtime.observed(tracer=tracer, metrics=Metrics()) as (_, metrics):
            injector = FaultInjector(plan)
            injector.apply(1, [msg(sender=1), msg(sender=2)])
        assert metrics.get("faults.injected") == 2
        assert metrics.get("faults.dropped") == 1
        assert metrics.get("faults.crashed") == 1
        kinds = [e["attrs"]["kind"] for e in tracer.events("fault.inject")]
        assert sorted(kinds) == ["crash", "drop"]


class TestSchedulerIntegration:
    def test_execution_records_faults(self):
        protocol = EchoProtocol(3)
        plan = FaultPlan(rules=(FaultRule(kind="drop", senders=[2]),))
        execution = run_protocol(protocol, [10, 20, 30], seed=1, fault_plan=plan)
        assert execution.faults and all(r.kind == "drop" for r in execution.faults)
        # Party 2's broadcast vanished for everyone, including itself.
        for i in (1, 2, 3):
            assert execution.outputs[i] == (10, None, 30)

    def test_no_plan_leaves_execution_clean(self):
        execution = run_protocol(EchoProtocol(3), [1, 2, 3], seed=1)
        assert execution.faults == []
        assert not execution.timed_out

    def test_faults_strike_before_rushing(self):
        class PeekAdversary(Adversary):
            def __init__(self):
                super().__init__(corrupted=[3])
                self.rushed_senders = []

            def act(self, round_number, rushed):
                self.rushed_senders.extend(m.sender for m in rushed[3])
                return {3: []}

        adversary = PeekAdversary()
        plan = FaultPlan(rules=(FaultRule(kind="drop", senders=[1]),))
        run_protocol(EchoProtocol(3), [1, 2, 3], adversary=adversary, seed=1, fault_plan=plan)
        # Party 1's broadcast was dropped before the rushing view was built.
        assert 1 not in adversary.rushed_senders
        assert 2 in adversary.rushed_senders

    def test_timeout_fallback_instead_of_network_error(self):
        protocol = ForeverProtocol(3)
        with pytest.raises(NetworkError):
            run_protocol(protocol, [0, 0, 0], seed=1, max_rounds=20)
        execution = run_protocol(
            protocol, [0, 0, 0], seed=1, max_rounds=20,
            timeout_rounds=5, timeout_output="gave-up",
        )
        assert execution.timed_out
        assert execution.outputs == {1: "gave-up", 2: "gave-up", 3: "gave-up"}
        assert execution.round_count == 5

    def test_timeout_output_callable(self):
        execution = run_protocol(
            ForeverProtocol(2), [0, 0], seed=1,
            timeout_rounds=3, timeout_output=lambda i: ("default", i),
        )
        assert execution.outputs == {1: ("default", 1), 2: ("default", 2)}

    def test_protocol_run_timeout_defaults_bits(self):
        # ParallelBroadcastProtocol.run threads the paper's default bit
        # vector as the degraded output.
        protocol = SequentialBroadcast(4, 1)
        plan = FaultPlan(crashes=(CrashFault(party=1, at_round=1),))
        execution = protocol.run([1, 0, 1, 0], seed=2, fault_plan=plan, timeout_rounds=2)
        assert execution.timed_out
        for i in (1, 2, 3, 4):
            assert execution.outputs[i] == (0, 0, 0, 0)

    def test_timeout_metric(self):
        with obs_runtime.observed(metrics=Metrics()) as (_, metrics):
            run_protocol(ForeverProtocol(2), [0, 0], seed=1, timeout_rounds=3,
                         timeout_output=None)
        assert metrics.get("net.timeouts") == 1

    def test_faulty_scheduler_wrapper(self):
        protocol = EchoProtocol(3)
        rng = random.Random(5)
        plan = FaultPlan(rules=(FaultRule(kind="drop", senders=[3]),))
        scheduler = FaultyScheduler(
            n=3,
            program_factory=protocol.program,
            inputs=[7, 8, 9],
            adversary=Adversary(corrupted=()),
            rng=rng,
            plan=plan,
        )
        execution = scheduler.run()
        assert execution.outputs[1] == (7, 8, None)

    def test_with_faults_proxy(self):
        plan = FaultPlan(crashes=(CrashFault(party=2, at_round=1),))
        faulted = with_faults(NaiveCommitReveal(4, 1), plan, timeout_rounds=30)
        assert faulted.n == 4 and faulted.name == "naive-commit-reveal"
        announced = faulted.announced([1, 1, 1, 1], seed=3)
        # Party 2's commit never hit the wire; everyone defaults its slot.
        assert announced == (1, 0, 1, 1)


class TestAdversaryRngSeeding:
    def test_rng_is_none_until_setup(self):
        adversary = Adversary(corrupted=[1])
        assert adversary.rng is None
        adversary.setup(n=3, config=None, corrupted_inputs={1: 0}, rng=random.Random(9))
        assert adversary.rng is not None

    def test_scheduler_threads_execution_seed(self):
        class RngRecorder(Adversary):
            def setup(self, **kwargs):
                super().setup(**kwargs)
                self.first_draw = self.rng.getrandbits(32)

        first = RngRecorder(corrupted=[2])
        second = RngRecorder(corrupted=[2])
        third = RngRecorder(corrupted=[2])
        run_protocol(EchoProtocol(3), [1, 2, 3], adversary=first, seed=4)
        run_protocol(EchoProtocol(3), [1, 2, 3], adversary=second, seed=4)
        run_protocol(EchoProtocol(3), [1, 2, 3], adversary=third, seed=5)
        assert first.first_draw == second.first_draw
        assert first.first_draw != third.first_draw

    def test_no_adversary_unchanged(self):
        assert NO_ADVERSARY.corrupted == frozenset()
