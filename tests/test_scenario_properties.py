"""Property-based tests for the scenario DSL and shrinker (hypothesis).

Quantified over the campaign fuzzer's own output — every scenario a
campaign can generate is, by construction, a fair sample of the DSL:

* **round-trip identity** — ``to_dict``/``from_dict`` and the JSON (and
  YAML, when pyyaml is present) serializations are lossless, and the
  canonical form / ``scenario_id`` are stable across round trips;
* **validity by construction** — everything the fuzzer generates passes
  the schema with zero recorded problems;
* **shrinker fixpoint** — shrinking is idempotent (the minimal scenario
  shrinks to itself), deterministic (same input, same minimal), and
  predicate-preserving (the minimal still satisfies the predicate it was
  shrunk under).  Predicates here are cheap structural ones, so the
  properties run hundreds of cases without executing any protocol; the
  end-to-end "shrink a real violation" path is covered by
  ``tests/test_scenario_runner.py``.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import Scenario, generate_scenario, scenario_errors
from repro.scenario.shrink import shrink_scenario

seeds = st.integers(min_value=0, max_value=2**32 - 1)
indices = st.integers(min_value=0, max_value=9999)

scenarios = st.builds(generate_scenario, seeds, indices)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenarios)
    def test_dict_round_trip_is_identity(self, scenario):
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.canonical() == scenario.canonical()
        assert rebuilt.scenario_id() == scenario.scenario_id()

    @settings(max_examples=60, deadline=None)
    @given(scenarios)
    def test_json_round_trip_is_identity(self, scenario):
        rebuilt = Scenario.loads(scenario.dumps())
        assert rebuilt == scenario

    @settings(max_examples=30, deadline=None)
    @given(scenarios)
    def test_yaml_round_trip_is_identity(self, scenario):
        pytest.importorskip("yaml")
        rebuilt = Scenario.loads(scenario.dumps(format="yaml"), format="yaml")
        assert rebuilt == scenario

    @settings(max_examples=60, deadline=None)
    @given(scenarios)
    def test_canonical_omits_defaults(self, scenario):
        data = json.loads(scenario.canonical())
        defaults = {
            f.name: f.default for f in dataclasses.fields(Scenario) if f.init
        }
        for key, value in data.items():
            if key in ("protocol", "faults", "name"):
                continue
            assert value != defaults[key], (
                f"canonical form carries default {key}={value!r}"
            )


class TestFuzzerOutputValidates:
    @settings(max_examples=100, deadline=None)
    @given(seeds, indices)
    def test_generated_scenarios_are_schema_clean(self, seed, index):
        scenario = generate_scenario(seed, index)
        assert scenario_errors(scenario.to_dict()) == []

    @settings(max_examples=50, deadline=None)
    @given(seeds, indices)
    def test_generation_is_pure(self, seed, index):
        first = generate_scenario(seed, index)
        second = generate_scenario(seed, index)
        assert first.canonical() == second.canonical()


#: Cheap structural predicates a shrink must preserve — each one mimics a
#: violation signature that depends on one scenario dimension.
PREDICATES = [
    ("always", lambda s: True),
    ("event-runtime", lambda s: s.runtime == "event"),
    ("has-faults", lambda s: not s.faults.is_empty()),
    ("has-crashes", lambda s: bool(s.faults.crashes)),
    ("copier", lambda s: s.adversary_spec().copier_pair is not None),
    ("large-n", lambda s: s.n >= 4),
]

predicate_items = st.sampled_from(PREDICATES)


class TestShrinkerFixpoint:
    @settings(max_examples=40, deadline=None)
    @given(scenarios, predicate_items)
    def test_shrink_preserves_predicate(self, scenario, item):
        _, predicate = item
        if not predicate(scenario):
            return
        minimal, _ = shrink_scenario(scenario, predicate)
        assert predicate(minimal)

    @settings(max_examples=40, deadline=None)
    @given(scenarios, predicate_items)
    def test_shrink_is_idempotent(self, scenario, item):
        _, predicate = item
        if not predicate(scenario):
            return
        minimal, _ = shrink_scenario(scenario, predicate)
        again, steps = shrink_scenario(minimal, predicate)
        assert steps == 0
        assert again.canonical() == minimal.canonical()

    @settings(max_examples=30, deadline=None)
    @given(scenarios, predicate_items)
    def test_shrink_is_deterministic(self, scenario, item):
        _, predicate = item
        if not predicate(scenario):
            return
        first, _ = shrink_scenario(scenario, predicate)
        second, _ = shrink_scenario(scenario, predicate)
        assert first.canonical() == second.canonical()

    @settings(max_examples=25, deadline=None)
    @given(scenarios)
    def test_unconstrained_shrink_reaches_the_floor(self, scenario):
        minimal, _ = shrink_scenario(scenario, lambda s: True)
        # With nothing to preserve, everything reducible must go.
        assert minimal.faults.is_empty()
        assert minimal.runtime == "lockstep"
        assert minimal.adversary == "none"
        assert minimal.trials == 1
        assert minimal.n == 2 and minimal.t == 0
        assert minimal.seed == 0 and minimal.name == ""
