"""Tests for the sub-protocol composition combinators."""

import pytest

from repro.errors import ProtocolError
from repro.net.compose import idle_rounds, run_in_lockstep
from repro.net.message import send
from repro.net.network import run_protocol


def echo_sub(ctx, partner, value, instance):
    """Send a value to the partner, return what the partner sent."""
    inbox = yield [send(partner, value, tag=f"echo:{instance}")]
    message = inbox.first_from(partner, tag=f"echo:{instance}")
    return message.payload if message else None


class LockstepEcho:
    """Each party runs two parallel echo sub-protocols with both neighbours."""

    def __init__(self, n=3):
        self.n = n

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        others = ctx.others()
        subs = {
            other: echo_sub(ctx, other, (ctx.party_id, value), instance=f"{min(ctx.party_id, other)}-{max(ctx.party_id, other)}")
            for other in others
        }
        results = yield from run_in_lockstep(subs)
        return results


class TestRunInLockstep:
    def test_parallel_subprotocols_complete_in_one_round_set(self):
        execution = run_protocol(LockstepEcho(3), ["a", "b", "c"], seed=1)
        assert execution.outputs[1] == {2: (2, "b"), 3: (3, "c")}
        assert execution.outputs[2] == {1: (1, "a"), 3: (3, "c")}
        # Both sub-protocols ran in the same 1 communication round.
        assert execution.communication_rounds == 1

    def test_mixed_durations(self):
        """A short sub finishes early while a long one keeps the group alive."""

        def short(ctx):
            yield []
            return "short-done"

        def long(ctx):
            yield []
            yield []
            yield []
            return "long-done"

        class Mixed:
            n = 2

            def setup(self, rng):
                return None

            def program(self, ctx, value):
                results = yield from run_in_lockstep(
                    {"s": short(ctx), "l": long(ctx)}
                )
                return results

        execution = run_protocol(Mixed(), [None, None], seed=2)
        assert execution.outputs[1] == {"s": "short-done", "l": "long-done"}

    def test_immediately_finished_sub(self):
        def instant(ctx):
            return "now"
            yield  # pragma: no cover - makes this a generator

        def one_round(ctx):
            yield []
            return "later"

        class Mixed:
            n = 2

            def setup(self, rng):
                return None

            def program(self, ctx, value):
                results = yield from run_in_lockstep(
                    {"a": instant(ctx), "b": one_round(ctx)}
                )
                return results

        execution = run_protocol(Mixed(), [None, None], seed=3)
        assert execution.outputs[1] == {"a": "now", "b": "later"}

    def test_final_round_drafts_are_flushed(self):
        """Drafts produced in the same round a sub finishes still get sent."""

        def talker(ctx):
            yield [send(2 if ctx.party_id == 1 else 1, "late", tag="flush")]
            return "ok"

        class Flush:
            n = 2

            def setup(self, rng):
                return None

            def program(self, ctx, value):
                results = yield from run_in_lockstep({"t": talker(ctx)})
                return results["t"]

        execution = run_protocol(Flush(), [None, None], seed=4)
        sent = [m for m in execution.all_messages() if m.tag == "flush"]
        assert len(sent) == 2

    def test_bad_draft_type_rejected(self):
        def bad(ctx):
            yield ["not-a-draft"]
            return None

        class Bad:
            n = 2

            def setup(self, rng):
                return None

            def program(self, ctx, value):
                results = yield from run_in_lockstep({"x": bad(ctx)})
                return results

        with pytest.raises(ProtocolError):
            run_protocol(Bad(), [None, None], seed=5)

    def test_nested_lockstep(self):
        def leaf(ctx, label):
            yield []
            return label

        class Nested:
            n = 2

            def setup(self, rng):
                return None

            def program(self, ctx, value):
                inner = run_in_lockstep(
                    {"a": leaf(ctx, "a"), "b": leaf(ctx, "b")}
                )
                results = yield from run_in_lockstep({"inner": inner, "c": leaf(ctx, "c")})
                return results

        execution = run_protocol(Nested(), [None, None], seed=6)
        assert execution.outputs[1] == {"inner": {"a": "a", "b": "b"}, "c": "c"}


class TestIdleRounds:
    def test_idle_counts_rounds(self):
        class Idler:
            n = 2

            def setup(self, rng):
                return None

            def program(self, ctx, value):
                yield from idle_rounds(3)
                return "done"

        execution = run_protocol(Idler(), [None, None], seed=7)
        assert execution.outputs[1] == "done"
        assert execution.round_count == 4  # 3 idle + 1 termination round
