"""The fastpath contract: same bits, fewer cycles.

Three layers of defence for the ``repro.fastpath`` kernels:

* **property tests** (hypothesis) — each kernel against its naive
  reference over adversarial inputs: negative / oversized exponents,
  non-subgroup bases, degenerate sizes;
* **counter identity** — the ambient ``crypto.*`` metrics recorded with
  the fastpath on must equal those recorded with it off, operation by
  operation (measured-cost artifacts embed these counters verbatim);
* **integration equivalence** — scheduler bucketing vs the per-party
  scan it replaced, warm-state export/replay, and a parallel-engine
  smoke run.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.crypto.commitment import PedersenCommitment, PedersenParameters
from repro.crypto.field import PrimeField
from repro.crypto.group import (
    SchnorrGroup,
    cached_safe_primes,
    seed_safe_primes,
)
from repro.crypto.polynomial import lagrange_coefficients_at_zero
from repro.crypto.vss import FeldmanVSS, PedersenVSS
from repro.net.message import Message
from repro.net.scheduler import bucket_by_recipient
from repro.obs import Metrics
from repro.obs import runtime as _obs_runtime
from repro.parallel import ExperimentEngine
from repro.parallel.warmup import apply_warm_state, export_warm_state, prewarm

SECURITY_LEVELS = (16, 24, 48)
GROUPS = {bits: SchnorrGroup.for_security(bits) for bits in SECURITY_LEVELS}


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test starts cold so promotion/warm-up behaviour is its own."""
    fastpath.clear_caches()
    yield
    fastpath.clear_caches()


# -- kernel properties ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    bits=st.sampled_from(SECURITY_LEVELS),
    base_seed=st.integers(min_value=2, max_value=2**64),
    exponent=st.integers(min_value=-(2**80), max_value=2**80),
)
def test_pow_mod_matches_builtin_pow(bits, base_seed, exponent):
    group = GROUPS[bits]
    base = base_seed % group.p or 2
    reduced = group.normalize_exponent(exponent)
    expected = pow(base, reduced, group.p)
    # Repeat past the promotion threshold so both the cold path and the
    # windowed table path are exercised on the same inputs.
    for _ in range(fastpath.kernels.PROMOTION_THRESHOLD + 2):
        assert fastpath.pow_mod(group.p, group.q, base, reduced) == expected


@settings(max_examples=40, deadline=None)
@given(
    bits=st.sampled_from(SECURITY_LEVELS),
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=2, max_value=2**64),
            st.integers(min_value=0, max_value=2**64),
        ),
        min_size=0,
        max_size=7,
    ),
)
def test_multi_pow_matches_product_of_pows(bits, pairs):
    group = GROUPS[bits]
    bases = [b % group.p or 2 for b, _ in pairs]
    exponents = [e % group.q for _, e in pairs]
    expected = 1
    for base, exponent in zip(bases, exponents, strict=True):
        expected = (expected * pow(base, exponent, group.p)) % group.p
    assert fastpath.multi_pow(group.p, bases, exponents) == expected


@settings(max_examples=40, deadline=None)
@given(
    bits=st.sampled_from(SECURITY_LEVELS),
    values=st.lists(st.integers(min_value=1, max_value=2**64), min_size=1, max_size=6),
    x=st.integers(min_value=0, max_value=2**64),
)
def test_vss_expected_matches_naive_product(bits, values, x):
    """Includes non-subgroup commitment values and x >= q: the kernel must
    agree with the naive loop (which reduces each x-power mod q) exactly."""
    group = GROUPS[bits]
    commitment_values = [v % group.p or 2 for v in values]
    expected = 1
    x_power = 1
    for value in commitment_values:
        expected = (expected * pow(value, x_power, group.p)) % group.p
        x_power = (x_power * x) % group.q
    assert fastpath.vss_expected(group.p, group.q, commitment_values, x) == expected


@settings(max_examples=30, deadline=None)
@given(
    bits=st.sampled_from(SECURITY_LEVELS),
    xs=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=8, unique=True),
)
def test_cached_lagrange_matches_uncached(bits, xs):
    field = GROUPS[bits].exponent_field
    with fastpath.disabled():
        reference = lagrange_coefficients_at_zero(field, xs)
    first = lagrange_coefficients_at_zero(field, xs)  # fills the memo
    second = lagrange_coefficients_at_zero(field, xs)  # hits the memo
    assert first == reference
    assert second == reference


def test_lagrange_cache_hit_charges_identical_field_muls():
    field = PrimeField(GROUPS[24].q)
    xs = [1, 2, 3, 4, 5]
    with _obs_runtime.observed(metrics=Metrics()) as (_, cold):
        lagrange_coefficients_at_zero(field, xs)
    with _obs_runtime.observed(metrics=Metrics()) as (_, warm):
        lagrange_coefficients_at_zero(field, xs)
    assert cold.snapshot()["counters"] == warm.snapshot()["counters"]
    m = len(xs)
    assert warm.snapshot()["counters"]["crypto.field.mul"] == 2 * m * m - m


# -- exponent normalization (satellite b) --------------------------------------------


def test_exponent_normalization_negative_and_oversized():
    group = GROUPS[24]
    g = group.generator
    assert g ** -1 == g ** (group.q - 1)
    assert g ** (group.q + 5) == g**5
    assert g**0 == group.identity()
    assert group.power(-3) == group.power(group.q - 3)
    element = group.exponent_field.element(7)
    assert g**element == g**7  # FieldElement exponents normalize too
    with fastpath.disabled():
        assert g ** -1 == g ** (group.q - 1)
        assert g ** (group.q + 5) == g**5


def test_power_and_dunder_pow_agree():
    group = GROUPS[16]
    for exponent in (-5, 0, 3, group.q - 1, group.q, group.q + 11, 2 * group.q + 7):
        assert group.power(exponent) == group.generator**exponent


# -- counter identity: fastpath on == fastpath off -----------------------------------


def _crypto_workload(bits):
    rng = random.Random(1234)
    group = SchnorrGroup.for_security(bits)
    params = PedersenParameters.generate(group)
    scheme = PedersenCommitment(params)
    values = {}
    commitment, opening = scheme.commit(41, rng)
    values["verify"] = scheme.verify(commitment, opening)
    feldman = FeldmanVSS(group, threshold=2, parties=5)
    dealing = feldman.deal(17, rng)
    values["feldman"] = [
        feldman.verify_share(dealing.commitments, share)
        for share in dealing.shares.values()
    ]
    values["feldman_secret"] = feldman.reconstruct(
        dealing.commitments, dealing.shares.values()
    ).value
    pedersen = PedersenVSS(params, threshold=2, parties=5)
    pdealing = pedersen.deal(23, rng)
    values["pedersen"] = [
        pedersen.verify_share(pdealing.commitments, share)
        for share in pdealing.shares.values()
    ]
    values["pedersen_secret"] = pedersen.reconstruct(
        pdealing.commitments, pdealing.shares.values()
    ).value
    values["commitment"] = commitment.value
    values["commitments"] = [c.value for c in dealing.commitments]
    return values


def test_counters_and_values_identical_fastpath_on_off():
    with _obs_runtime.observed(metrics=Metrics()) as (_, fast_metrics):
        fast_values = _crypto_workload(24)
    fastpath.clear_caches()
    with fastpath.disabled():
        with _obs_runtime.observed(metrics=Metrics()) as (_, naive_metrics):
            naive_values = _crypto_workload(24)
    assert fast_values == naive_values
    assert fast_metrics.snapshot() == naive_metrics.snapshot()


def test_fastpath_stats_stay_out_of_ambient_metrics():
    """Topology-dependent telemetry must never leak into artifact counters."""
    with _obs_runtime.observed(metrics=Metrics()) as (_, metrics):
        _crypto_workload(16)
    assert not any(
        key.startswith("fastpath.") for key in metrics.snapshot()["counters"]
    )
    assert fastpath.stats()["counters"]  # ...but the local registry saw traffic


def test_reset_stats_snapshots_then_clears():
    """reset_stats() brackets one workload in a long-lived process: it
    returns the pre-clear snapshot and empties only the counters — the
    kernel caches (and their warmth) survive."""
    _crypto_workload(16)
    assert fastpath.stats()["counters"]
    warm_caches = fastpath.cache_sizes()
    before = fastpath.reset_stats()
    assert before["counters"]  # the snapshot captured the traffic...
    assert not fastpath.stats()["counters"]  # ...and the registry is clean
    assert fastpath.cache_sizes() == warm_caches  # caches untouched
    _crypto_workload(16)
    bracketed = fastpath.stats()["counters"]
    assert bracketed  # fresh traffic lands in the cleared registry
    for name, value in bracketed.items():
        assert value <= before["counters"].get(name, float("inf")) + value


# -- scheduler bucketing -------------------------------------------------------------


def test_bucket_by_recipient_matches_naive_scan():
    rng = random.Random(7)
    messages = [
        Message(
            sender=rng.randrange(1, 8),
            recipient=rng.choice([-1, 1, 2, 3, 4, 5, 6, 7]),
            payload=i,
        )
        for i in range(200)
    ]
    recipients = {2, 5, 7}
    buckets = bucket_by_recipient(messages, recipients)
    assert set(buckets) == recipients
    for party in recipients:
        assert buckets[party] == [m for m in messages if m.addressed_to(party)]


def test_bucket_by_recipient_empty_cases():
    assert bucket_by_recipient([], {1, 2}) == {1: [], 2: []}
    broadcast = Message(sender=1, recipient=-1, payload="x")
    assert bucket_by_recipient([broadcast], set()) == {}


def test_message_slots_reject_stray_attributes():
    message = Message(sender=1, recipient=2, payload="p")
    with pytest.raises((AttributeError, TypeError)):
        message.extra = 1  # type: ignore[attr-defined]


# -- warm-state export / replay ------------------------------------------------------


def test_warm_state_round_trip():
    prewarm([16, 24])
    payload = export_warm_state()
    assert {bits for bits, _, _ in payload["safe_primes"]} >= {16, 24}
    assert payload["tables"]  # generator + pedersen h tables resident
    before = set(cached_safe_primes())
    fastpath.clear_caches()
    apply_warm_state(payload)
    assert set(cached_safe_primes()) == before
    assert set(fastpath.cached_table_keys()) == set(payload["tables"])


def test_seed_safe_primes_ignores_malformed_entries():
    seed_safe_primes([(999, 36, 17)])  # p != 2q + 1: silently dropped
    seed_safe_primes([(999, 35, 17)])  # q.bit_length() != 999: silently dropped
    assert all(bits != 999 for bits, _, _ in cached_safe_primes())


def _square(x):
    return x * x


def test_engine_parallel_map_matches_serial():
    with ExperimentEngine(jobs=2) as engine:
        assert engine.map(_square, [(i,) for i in range(12)]) == [
            i * i for i in range(12)
        ]
        # Pool persists across map calls on the same engine.
        assert engine.map(_square, [(i,) for i in range(5)]) == [
            i * i for i in range(5)
        ]
