"""Scenario runner + campaign integration: detection, shrinking, determinism.

The paper's Section 3.2 attack — a rushing copier echoing the target's
commitment through naive commit-reveal — is the standing known violation
here: it must be *detected* (the cross-trial ``copy`` kind), *classified*
(cell dirty, but breaching no expected guarantee, since independence is
never promised by naive CR), and *shrunk* to the same minimal scenario on
every run.  Campaign runs must be bit-identical between ``--jobs 1`` and
``--jobs N`` and across interrupt/resume, artifact for artifact.
"""

import json
import os

import pytest

from repro.errors import ScenarioError
from repro.scenario import (
    Campaign,
    Scenario,
    expected_guarantees,
    run_scenario,
    shrink_violation,
)
from repro.scenario.campaign import DIRTY_ADVERSARIES
from repro.scenario.runner import MIN_COPY_TRIALS, cell_key, violation_kinds


def commit_echo_scenario(**overrides):
    """The paper's Section 3.2 commit-echo attack as a scenario."""
    base = dict(
        protocol="naive-commit-reveal",
        n=5,
        t=2,
        adversary="commit-echo:5,1",
        trials=4,
        seed=11,
    )
    base.update(overrides)
    return Scenario.build(**base)


class TestExpectedGuarantees:
    def test_mailbox_protocols_promise_through_wire_faults(self):
        scenario = Scenario.build(
            protocol="ideal-sb",
            faults={"rules": [{"kind": "drop", "probability": 1.0}]},
        )
        assert expected_guarantees(scenario) == {
            "agreement",
            "termination",
            "validity",
        }

    def test_wire_faults_void_promises_for_real_protocols(self):
        scenario = Scenario.build(
            protocol="naive-commit-reveal",
            faults={"rules": [{"kind": "drop", "probability": 0.1}]},
        )
        assert expected_guarantees(scenario) == frozenset()

    def test_degenerate_event_timing_keeps_promises(self):
        clean = Scenario.build(
            protocol="bracha", n=4, t=1, runtime="event", delay_model="constant:1"
        )
        assert expected_guarantees(clean) == {
            "agreement",
            "termination",
            "validity",
        }

    def test_omission_and_real_delays_are_observe_only(self):
        lossy = Scenario.build(
            protocol="bracha", n=4, t=1, runtime="event", omission="drop-all:2"
        )
        delayed = Scenario.build(
            protocol="bracha",
            n=4,
            t=1,
            runtime="event",
            delay_model="uniform:0.5,1.5",
        )
        assert expected_guarantees(lossy) == frozenset()
        assert expected_guarantees(delayed) == frozenset()

    def test_corrupt_sender_voids_rbc_liveness_and_validity(self):
        bracha = Scenario.build(
            protocol="bracha", n=4, t=1, sender=1, adversary="silent:1"
        )
        assert expected_guarantees(bracha) == {"agreement"}
        # Phase king's fixed round structure terminates regardless.
        king = Scenario.build(
            protocol="phase-king", n=5, t=1, sender=2, adversary="silent:2"
        )
        assert expected_guarantees(king) == {"agreement", "termination"}


class TestRunScenario:
    def test_clean_scenario_is_clean_and_deterministic(self):
        scenario = Scenario.build(protocol="sequential", trials=3, seed=5)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first["verdict"] == "clean"
        assert first["unexpected"] == []
        assert first == second

    def test_commit_echo_fires_the_copy_violation(self):
        row = run_scenario(commit_echo_scenario())
        assert violation_kinds(row) == {"copy"}
        # Independence is never *promised* for naive CR, so the cell is
        # dirty (a positive control) but not an unexpected breach.
        assert row["unexpected"] == []
        assert row["cell"].split("|")[1] in DIRTY_ADVERSARIES

    def test_copy_detector_needs_minimum_trials(self):
        row = run_scenario(commit_echo_scenario(trials=MIN_COPY_TRIALS - 1))
        assert "copy" not in violation_kinds(row)

    def test_cell_key_axes(self):
        scenario = Scenario.build(
            protocol="bracha",
            n=4,
            t=1,
            runtime="event",
            omission="random:0.1",
            faults={"crashes": [{"party": 2, "at_round": 1}]},
        )
        assert cell_key(scenario) == "bracha|none|crashes|event-lossy"


class TestShrinkKnownViolation:
    """The acceptance bar: naive-CR × commit-echo shrinks deterministically."""

    EXPECTED_MINIMAL = {
        "adversary": "commit-echo:5,1",
        "protocol": "naive-commit-reveal",
        "t": 1,
        "trials": 3,
    }

    def test_shrinks_to_the_known_minimal(self):
        minimal, row, steps = shrink_violation(commit_echo_scenario())
        assert json.loads(minimal.canonical()) == self.EXPECTED_MINIMAL
        assert violation_kinds(row) == {"copy"}
        assert steps > 0

    def test_shrink_is_reproducible_and_idempotent(self):
        scenario = commit_echo_scenario()
        first, _, first_steps = shrink_violation(scenario)
        second, _, second_steps = shrink_violation(scenario)
        assert first.canonical() == second.canonical()
        assert first_steps == second_steps
        again, _, again_steps = shrink_violation(first)
        assert again_steps == 0
        assert again.canonical() == first.canonical()

    def test_shrinking_a_clean_scenario_is_an_error(self):
        clean = Scenario.build(protocol="sequential")
        with pytest.raises(ScenarioError, match="no violation"):
            shrink_violation(clean)


SEED = 99
BUDGET = 16
BATCH = 5


def run_campaign(tmp_path, tag, jobs=1, budget=BUDGET, shrink_limit=0, resume=True):
    out_dir = str(tmp_path / tag)
    campaign = Campaign(
        seed=SEED,
        budget=budget,
        jobs=jobs,
        out_dir=out_dir,
        report_path=os.path.join(out_dir, "CAMPAIGN.json"),
        batch=BATCH,
        shrink_limit=shrink_limit,
    )
    report = campaign.run(resume=resume)
    return campaign, report


def artifact_bytes(out_dir):
    """Every JSON artifact in a campaign directory, by name."""
    return {
        name: open(os.path.join(out_dir, name), "rb").read()
        for name in sorted(os.listdir(out_dir))
        if name.endswith(".json") or name.endswith(".jsonl")
    }


class TestCampaign:
    def test_serial_and_parallel_are_bit_identical(self, tmp_path):
        serial, _ = run_campaign(tmp_path, "serial", jobs=1)
        parallel, _ = run_campaign(tmp_path, "parallel", jobs=2)
        assert artifact_bytes(serial.out_dir) == artifact_bytes(parallel.out_dir)

    def test_resume_matches_an_uninterrupted_run(self, tmp_path):
        # An "interrupted" campaign: half the budget, then the full one
        # picks the checkpoint up; artifacts must match a fresh full run.
        interrupted, _ = run_campaign(tmp_path, "resumed", budget=BUDGET // 2)
        resumed, _ = run_campaign(tmp_path, "resumed")
        assert resumed.out_dir == interrupted.out_dir
        fresh, _ = run_campaign(tmp_path, "fresh")
        assert artifact_bytes(resumed.out_dir) == artifact_bytes(fresh.out_dir)

    def test_resume_skips_completed_indices(self, tmp_path):
        campaign, _ = run_campaign(tmp_path, "skip", budget=6)
        before = open(campaign.checkpoint_path, encoding="utf-8").read()
        campaign.run(resume=True)  # nothing pending: no new checkpoint rows
        after = open(campaign.checkpoint_path, encoding="utf-8").read()
        assert after == before

    def test_checkpoint_tolerates_a_truncated_line(self, tmp_path):
        campaign, _ = run_campaign(tmp_path, "trunc", budget=6)
        with open(campaign.checkpoint_path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "truncated')  # crash mid-append
        rows = campaign.load_checkpoint()
        assert sorted(rows) == list(range(6))

    def test_report_shape_and_expected_clean_cells(self, tmp_path):
        campaign, report = run_campaign(tmp_path, "report")
        assert report["schema"] == "campaign/v1"
        assert report["campaign"] == {
            "seed": SEED,
            "budget": BUDGET,
            "completed": BUDGET,
        }
        assert report["totals"]["scenarios"] == BUDGET
        # The campaign's failure signal: no cell may breach a guarantee
        # the conservative model promised.
        assert report["totals"]["unexpected"] == 0
        on_disk = json.load(open(os.path.join(campaign.out_dir, "CAMPAIGN.json")))
        assert on_disk == report

    def test_shrink_limit_produces_minimal_repro_artifacts(self, tmp_path):
        campaign, report = run_campaign(
            tmp_path, "shrunk", budget=6, shrink_limit=1
        )
        violators = [entry["id"] for entry in report["violating"]]
        if not violators:
            pytest.skip("no violator in this budget window")
        assert len(report["shrunk"]) == 1
        entry = report["shrunk"][0]
        assert entry["id"] == violators[0]
        names = set(os.listdir(campaign.out_dir))
        assert f"{entry['id']}.json" in names
        assert f"{entry['id']}.outcome.json" in names
        assert f"{entry['id']}.min.json" in names
        assert f"{entry['id']}.min.outcome.json" in names
        assert f"{entry['id']}.trace.jsonl" in names
        minimal = Scenario.load(os.path.join(campaign.out_dir, f"{entry['id']}.min.json"))
        assert violation_kinds(run_scenario(minimal))
