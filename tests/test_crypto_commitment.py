"""Tests for hash, Pedersen and trapdoor commitments."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commitment import (
    HashCommitment,
    Opening,
    PedersenCommitment,
    PedersenParameters,
    TrapdoorCommitment,
)
from repro.crypto.group import SchnorrGroup
from repro.errors import CommitmentError, InvalidParameterError

GROUP = SchnorrGroup.for_security(24)
PARAMS = PedersenParameters.generate(GROUP)


class TestHashCommitment:
    def test_roundtrip(self):
        scheme = HashCommitment()
        commitment, opening = scheme.commit(("vote", 1), random.Random(0))
        assert scheme.verify(commitment, opening)
        assert scheme.check(commitment, opening) == ("vote", 1)

    def test_wrong_value_rejected(self):
        scheme = HashCommitment()
        commitment, opening = scheme.commit(5, random.Random(0))
        forged = Opening(6, opening.randomness)
        assert not scheme.verify(commitment, forged)
        with pytest.raises(CommitmentError):
            scheme.check(commitment, forged)

    def test_wrong_nonce_rejected(self):
        scheme = HashCommitment()
        commitment, opening = scheme.commit(5, random.Random(0))
        assert not scheme.verify(commitment, Opening(5, b"\x00" * 32))

    def test_hiding_commitments_differ_across_randomness(self):
        scheme = HashCommitment()
        c1, _ = scheme.commit(5, random.Random(1))
        c2, _ = scheme.commit(5, random.Random(2))
        assert c1 != c2

    def test_tag_separates_domains(self):
        rng = random.Random(0)
        c1, opening = HashCommitment("a").commit(5, rng)
        assert not HashCommitment("b").verify(c1, opening)


class TestPedersenCommitment:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, value, seed):
        scheme = PedersenCommitment(PARAMS)
        commitment, opening = scheme.commit(value, random.Random(seed))
        assert scheme.verify(commitment, opening)
        assert scheme.check(commitment, opening) == value % GROUP.q

    def test_binding_to_value(self):
        scheme = PedersenCommitment(PARAMS)
        commitment, opening = scheme.commit(7, random.Random(0))
        assert not scheme.verify(commitment, Opening(8, opening.randomness))

    def test_binding_to_randomness(self):
        scheme = PedersenCommitment(PARAMS)
        commitment, opening = scheme.commit(7, random.Random(0))
        assert not scheme.verify(
            commitment, Opening(7, (opening.randomness + 1) % GROUP.q)
        )

    def test_homomorphism(self):
        scheme = PedersenCommitment(PARAMS)
        rng = random.Random(3)
        c1, o1 = scheme.commit(4, rng)
        c2, o2 = scheme.commit(9, rng)
        combined = scheme.combine(c1, c2)
        joint_opening = Opening(
            (o1.value + o2.value) % GROUP.q,
            (o1.randomness + o2.randomness) % GROUP.q,
        )
        assert scheme.verify(combined, joint_opening)

    def test_value_reduced_mod_q(self):
        scheme = PedersenCommitment(PARAMS)
        assert scheme.commit_with_randomness(GROUP.q + 3, 5) == scheme.commit_with_randomness(3, 5)

    def test_malformed_opening_returns_false(self):
        scheme = PedersenCommitment(PARAMS)
        commitment, _ = scheme.commit(7, random.Random(0))
        assert not scheme.verify(commitment, Opening("junk", "junk"))


class TestTrapdoorCommitment:
    def test_requires_trapdoor_or_rng(self):
        with pytest.raises(InvalidParameterError):
            TrapdoorCommitment(GROUP)

    def test_trapdoor_range_validated(self):
        with pytest.raises(InvalidParameterError):
            TrapdoorCommitment(GROUP, trapdoor=0)
        with pytest.raises(InvalidParameterError):
            TrapdoorCommitment(GROUP, trapdoor=GROUP.q)

    def test_honest_use_matches_pedersen(self):
        scheme = TrapdoorCommitment(GROUP, rng=random.Random(0))
        commitment, opening = scheme.commit(3, random.Random(1))
        assert scheme.verify(commitment, opening)

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivocation(self, original, target):
        scheme = TrapdoorCommitment(GROUP, trapdoor=12345)
        commitment, opening = scheme.commit(original, random.Random(9))
        equivocated = scheme.equivocate(opening, target)
        assert equivocated.value == target % GROUP.q
        assert scheme.verify(commitment, equivocated)

    def test_equivocated_opening_differs(self):
        scheme = TrapdoorCommitment(GROUP, trapdoor=777)
        commitment, opening = scheme.commit(0, random.Random(2))
        equivocated = scheme.equivocate(opening, 1)
        assert equivocated.randomness != opening.randomness
        assert scheme.verify(commitment, opening)
        assert scheme.verify(commitment, equivocated)
