"""Honest-execution properties of every parallel broadcast protocol.

Definition 3.1's consistency and correctness, plus the round-complexity
shapes the paper attributes to each construction.
"""

import itertools

import pytest

from repro.errors import InvalidParameterError
from repro.net.adversary import PassiveAdversary
from repro.protocols import (
    CGMABroadcast,
    CGMAParallelDealing,
    CGMAPedersen,
    ChorRabinBroadcast,
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    NaiveCommitReveal,
    PiGBroadcast,
    SequentialBroadcast,
    ThetaProtocol,
)

N, T = 4, 1

PROTOCOL_FACTORIES = [
    pytest.param(lambda: SequentialBroadcast(N, T), id="sequential"),
    pytest.param(lambda: IdealSimultaneousBroadcast(N, T), id="ideal-sb"),
    pytest.param(lambda: CGMABroadcast(N, T, security_bits=16), id="cgma"),
    pytest.param(lambda: CGMAParallelDealing(N, T, security_bits=16), id="cgma-par"),
    pytest.param(lambda: CGMAPedersen(N, T, security_bits=16), id="cgma-pedersen"),
    pytest.param(lambda: ChorRabinBroadcast(N, T, security_bits=16), id="chor-rabin"),
    pytest.param(lambda: GennaroBroadcast(N, T, security_bits=16), id="gennaro"),
    pytest.param(lambda: PiGBroadcast(N, T, backend="ideal"), id="pi-g-ideal"),
    pytest.param(lambda: PiGBroadcast(N, T, backend="bgw"), id="pi-g-bgw"),
    pytest.param(lambda: NaiveCommitReveal(N, T), id="naive"),
]


@pytest.mark.parametrize("factory", PROTOCOL_FACTORIES)
class TestHonestExecutions:
    def test_announced_equals_inputs(self, factory):
        protocol = factory()
        for inputs in [(0, 0, 0, 0), (1, 1, 1, 1), (1, 0, 1, 0), (0, 1, 1, 0)]:
            assert protocol.announced(inputs, seed=3) == inputs

    def test_consistency_across_parties(self, factory):
        protocol = factory()
        execution = protocol.run((1, 0, 0, 1), seed=4)
        vectors = {tuple(execution.outputs[i]) for i in execution.honest}
        assert len(vectors) == 1

    def test_passive_corruption_preserves_announced(self, factory):
        protocol = factory()
        announced = protocol.announced(
            (1, 0, 1, 1), adversary=PassiveAdversary(corrupted=[2]), seed=5
        )
        assert announced == (1, 0, 1, 1)

    def test_deterministic_under_seed(self, factory):
        protocol = factory()
        assert protocol.announced((1, 0, 0, 1), seed=6) == protocol.announced(
            (1, 0, 0, 1), seed=6
        )

    def test_non_bit_inputs_coerced_to_default(self, factory):
        protocol = factory()
        announced = protocol.announced((1, "garbage", 0, 1), seed=7)
        assert announced == (1, 0, 0, 1)


class TestRoundComplexity:
    """The shape data behind the paper's efficiency narrative (Section 1)."""

    def rounds(self, protocol, n):
        execution = protocol.run([i % 2 for i in range(n)], seed=8)
        return execution.communication_rounds

    def test_sequential_is_linear(self):
        assert self.rounds(SequentialBroadcast(4, 1), 4) == 4
        assert self.rounds(SequentialBroadcast(8, 1), 8) == 8

    def test_cgma_is_linear(self):
        r4 = self.rounds(CGMABroadcast(4, 1, security_bits=16), 4)
        r8 = self.rounds(CGMABroadcast(8, 1, security_bits=16), 8)
        assert r4 == 3 * 4 + 1
        assert r8 == 3 * 8 + 1

    def test_cgma_parallel_ablation_is_constant(self):
        r4 = self.rounds(CGMAParallelDealing(4, 1, security_bits=16), 4)
        r8 = self.rounds(CGMAParallelDealing(8, 1, security_bits=16), 8)
        assert r4 == r8 == 4  # 3 dealing rounds + 1 reveal

    def test_chor_rabin_is_logarithmic(self):
        r4 = self.rounds(ChorRabinBroadcast(4, 1, security_bits=16), 4)
        r8 = self.rounds(ChorRabinBroadcast(8, 1, security_bits=16), 8)
        r16 = self.rounds(ChorRabinBroadcast(16, 1, security_bits=16), 16)
        # 1 commit + 3·ceil(log2 n) + 1 complain + 1 reveal
        assert r4 == 1 + 3 * 2 + 2
        assert r8 == 1 + 3 * 3 + 2
        assert r16 == 1 + 3 * 4 + 2

    def test_gennaro_is_constant(self):
        assert self.rounds(GennaroBroadcast(4, 1, security_bits=16), 4) == 2
        assert self.rounds(GennaroBroadcast(8, 1, security_bits=16), 8) == 2

    def test_ideal_has_no_traffic(self):
        assert self.rounds(IdealSimultaneousBroadcast(4, 1), 4) == 0


class TestConstructorValidation:
    def test_cgma_requires_honest_majority(self):
        with pytest.raises(InvalidParameterError):
            CGMABroadcast(4, 2)

    def test_chor_rabin_requires_honest_majority(self):
        with pytest.raises(InvalidParameterError):
            ChorRabinBroadcast(4, 2)

    def test_theta_backend_validation(self):
        with pytest.raises(InvalidParameterError):
            ThetaProtocol(4, 1, backend="quantum")
        with pytest.raises(InvalidParameterError):
            ThetaProtocol(4, 2, backend="bgw")

    def test_small_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            SequentialBroadcast(1, 0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            SequentialBroadcast(4, 4)
        with pytest.raises(InvalidParameterError):
            SequentialBroadcast(4, -1)


class TestTheta:
    def test_honest_identity_when_no_bits_raised(self):
        protocol = ThetaProtocol(4, 1, backend="ideal")
        inputs = [(1, 0), (0, 0), (1, 0), (0, 0)]
        execution = protocol.run(inputs, seed=9)
        assert execution.outputs[1] == (1, 0, 1, 0)

    def test_two_raised_bits_forces_xor_zero(self):
        for backend in ("ideal", "bgw"):
            protocol = ThetaProtocol(4, 1, backend=backend)
            inputs = [(1, 1), (0, 1), (1, 0), (0, 0)]
            for seed in range(5):
                execution = protocol.run(inputs, seed=seed)
                w = execution.outputs[1]
                assert w[2] == 1 and w[3] == 0  # untouched coordinates
                assert (w[0] ^ w[1] ^ w[2] ^ w[3]) == 0

    def test_backends_agree_on_deterministic_cases(self):
        inputs = [(1, 0), (0, 0), (1, 0), (1, 0)]
        ideal = ThetaProtocol(4, 1, backend="ideal").run(inputs, seed=1).outputs[1]
        bgw = ThetaProtocol(4, 1, backend="bgw").run(inputs, seed=2).outputs[1]
        assert ideal == bgw == (1, 0, 1, 1)

    def test_pair_coercion(self):
        protocol = ThetaProtocol(3, 1, backend="ideal")
        execution = protocol.run([1, (1, 0), "junk"], seed=10)
        assert execution.outputs[1] == (1, 1, 0)
