"""Tests for the crypto backend seam, RLC batch kernels, and shm tables.

Three layers of the PR-10 perf work, each with its own contract:

* :mod:`repro.crypto.backend` — backend resolution (env / explicit /
  auto), the pool-shard capture seam, and the bit-identical equivalence
  of every backend on adversarial inputs (hypothesis-driven; the gmpy2
  leg auto-skips when the accelerator is not installed);
* :mod:`repro.fastpath.batch` — combiner determinism and the soundness
  property the batch verifiers rest on: a single corrupted item in a
  batch of m is rejected, and the public ``verify_batch`` /
  ``verify_shares`` wrappers return exactly the per-item verdict lists;
* :mod:`repro.parallel.shm` — publish/attach/release round trip for the
  shared-memory warm-table export.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.crypto import backend
from repro.crypto.commitment import PedersenCommitment, PedersenParameters
from repro.crypto.group import SchnorrGroup
from repro.crypto.vss import FeldmanVSS, PedersenVSS
from repro.errors import InvalidParameterError
from repro.fastpath import (
    COMBINER_BITS,
    combiner_coefficients,
    feldman_batch_verify,
    pedersen_batch_verify,
    pedersen_vss_batch_verify,
)
from repro.parallel import shm

needs_gmpy2 = pytest.mark.skipif(
    not backend.gmpy2_available(), reason="gmpy2 not installed"
)

odd_moduli = st.integers(min_value=3, max_value=1 << 80).map(lambda n: n | 1)
any_ints = st.integers(min_value=-(1 << 80), max_value=1 << 80)
exponents = st.integers(min_value=0, max_value=1 << 80)


# -- resolution ----------------------------------------------------------------------


class TestResolution:
    def test_python_always_available(self):
        assert "python" in backend.available_backends()
        assert backend.resolve_backend("python").name == "python"

    def test_auto_prefers_gmpy2_when_importable(self):
        expected = "gmpy2" if backend.gmpy2_available() else "python"
        assert backend.resolve_backend("auto").name == expected

    def test_none_consults_the_environment(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_BACKEND, "python")
        assert backend.resolve_backend(None).name == "python"
        monkeypatch.delenv(backend.ENV_BACKEND)
        assert backend.resolve_backend(None).name in backend.available_backends()

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError):
            backend.resolve_backend("numba")

    def test_gmpy2_without_gmpy2_raises(self):
        if backend.gmpy2_available():
            pytest.skip("gmpy2 installed; the failure leg is unreachable")
        with pytest.raises(InvalidParameterError):
            backend.resolve_backend("gmpy2")

    def test_using_scopes_and_restores(self):
        before = backend.active().name
        with backend.using("python") as active:
            assert active.name == "python"
            assert backend.active() is active
        assert backend.active().name == before


class TestCaptureSeam:
    def test_round_trip(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_BACKEND, "python")
        captured = backend.capture_backend_env()
        assert captured == {backend.ENV_BACKEND: "python"}
        monkeypatch.delenv(backend.ENV_BACKEND)
        backend.apply_backend_env(captured)
        assert backend.active().name == "python"

    def test_empty_capture_pops_and_redetects(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_BACKEND, "python")
        backend.apply_backend_env({})
        assert backend.ENV_BACKEND not in __import__("os").environ
        assert backend.active().name in backend.available_backends()

    def test_unknown_keys_are_ignored(self, monkeypatch):
        monkeypatch.delenv(backend.ENV_BACKEND, raising=False)
        backend.apply_backend_env(
            {"REPRO_RUNTIME": "event", backend.ENV_BACKEND: "python"}
        )
        assert backend.active().name == "python"


# -- cross-backend equivalence -------------------------------------------------------


class TestPythonBackendEquivalence:
    @given(base=any_ints, exponent=exponents, modulus=odd_moduli)
    @settings(max_examples=120, deadline=None)
    def test_powmod_matches_builtin(self, base, exponent, modulus):
        ours = backend.resolve_backend("python").powmod(base, exponent, modulus)
        assert int(ours) == pow(base, exponent, modulus)

    @given(value=any_ints, modulus=odd_moduli)
    @settings(max_examples=120, deadline=None)
    def test_invert_matches_builtin(self, value, modulus):
        ref = backend.resolve_backend("python")
        try:
            expected = pow(value, -1, modulus)
        except ValueError:
            with pytest.raises(ValueError):
                ref.invert(value, modulus)
            return
        assert int(ref.invert(value, modulus)) == expected

    @given(value=any_ints)
    @settings(max_examples=60, deadline=None)
    def test_wrap_unwrap_round_trip(self, value):
        ref = backend.resolve_backend("python")
        assert ref.unwrap(ref.wrap(value)) == value


@needs_gmpy2
class TestGmpy2BackendEquivalence:
    @given(base=any_ints, exponent=exponents, modulus=odd_moduli)
    @settings(max_examples=120, deadline=None)
    def test_powmod_bit_identical(self, base, exponent, modulus):
        fast = backend.resolve_backend("gmpy2")
        assert int(fast.powmod(base, exponent, modulus)) == pow(
            base, exponent, modulus
        )

    @given(value=any_ints, modulus=odd_moduli)
    @settings(max_examples=120, deadline=None)
    def test_invert_bit_identical(self, value, modulus):
        fast = backend.resolve_backend("gmpy2")
        try:
            expected = pow(value, -1, modulus)
        except ValueError:
            with pytest.raises(ValueError):
                fast.invert(value, modulus)
            return
        assert int(fast.invert(value, modulus)) == expected

    @given(value=any_ints)
    @settings(max_examples=60, deadline=None)
    def test_wrap_unwrap_round_trip(self, value):
        fast = backend.resolve_backend("gmpy2")
        assert fast.unwrap(fast.wrap(value)) == value

    def test_mixed_arithmetic_is_exact(self):
        # The property that makes a mid-run backend switch safe: cached
        # mpz table rows compose with plain ints without value drift.
        fast = backend.resolve_backend("gmpy2")
        p = (1 << 61) - 1
        wrapped = fast.wrap(123456789)
        assert int(wrapped * 987654321 % p) == 123456789 * 987654321 % p

    def test_group_operations_identical_across_backends(self):
        group = SchnorrGroup.for_security(48)
        rng = random.Random(11)
        exps = [group.random_exponent(rng) for _ in range(8)]
        with backend.using("python"):
            want = [(group.power(e)).value for e in exps]
        with backend.using("gmpy2"):
            got = [(group.power(e)).value for e in exps]
        assert got == want


class TestMultiPowStrategies:
    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_product(self, data):
        # Covers both code paths: <= 4 bases (subset ladder) and > 4
        # bases (bucket method), on every available backend.
        modulus = data.draw(odd_moduli)
        count = data.draw(st.integers(min_value=0, max_value=12))
        bases = data.draw(
            st.lists(any_ints, min_size=count, max_size=count)
        )
        exps = data.draw(
            st.lists(exponents, min_size=count, max_size=count)
        )
        want = 1 % modulus
        for b, e in zip(bases, exps, strict=True):
            want = want * pow(b, e, modulus) % modulus
        for name in backend.available_backends():
            with backend.using(name):
                assert fastpath.multi_pow(modulus, bases, exps) == want

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            fastpath.multi_pow(101, [2, 3], [4])


# -- combiner + batch soundness ------------------------------------------------------


class TestCombiner:
    def test_deterministic_and_in_range(self):
        payload = [17, 23, 99, 2**64 + 5]
        first = combiner_coefficients(b"test", payload, 40)
        second = combiner_coefficients(b"test", payload, 40)
        assert first == second
        assert all(1 <= g <= 2**COMBINER_BITS for g in first)

    def test_binds_payload_and_domain(self):
        payload = [17, 23, 99]
        base = combiner_coefficients(b"test", payload, 8)
        assert combiner_coefficients(b"test", [17, 23, 100], 8) != base
        assert combiner_coefficients(b"other", payload, 8) != base

    def test_rng_override(self):
        reference = random.Random(7)
        want = [1 + reference.getrandbits(COMBINER_BITS) for _ in range(5)]
        assert combiner_coefficients(b"test", [1], 5, rng=random.Random(7)) == want


@pytest.fixture(scope="module")
def batch_setup():
    group = SchnorrGroup.for_security(48)
    params = PedersenParameters.generate(group)
    return group, params


class TestBatchSoundness:
    M = 16

    def test_pedersen_single_corruption_rejected(self, batch_setup):
        group, params = batch_setup
        rng = random.Random(3)
        scheme = PedersenCommitment(params)
        pairs = [scheme.commit(rng.randrange(group.q), rng) for _ in range(self.M)]
        commitments = [c.value for c, _ in pairs]
        values = [o.value % group.q for _, o in pairs]
        randomness = [o.randomness % group.q for _, o in pairs]
        assert pedersen_batch_verify(
            group.p, group.q, params.g.value, params.h.value,
            commitments, values, randomness,
        )
        for bad_index in range(self.M):
            corrupted = list(values)
            corrupted[bad_index] = (corrupted[bad_index] + 1) % group.q
            assert not pedersen_batch_verify(
                group.p, group.q, params.g.value, params.h.value,
                commitments, corrupted, randomness,
            ), f"corruption at index {bad_index} slipped through"

    def test_feldman_single_corruption_rejected(self, batch_setup):
        group, _ = batch_setup
        rng = random.Random(5)
        vss = FeldmanVSS(group, threshold=3, parties=self.M)
        dealing = vss.deal(rng.randrange(group.q), rng)
        xs = list(range(1, self.M + 1))
        values = [
            group.normalize_exponent(dealing.shares[x].value.value) for x in xs
        ]
        commitments = [c.value for c in dealing.commitments]
        assert feldman_batch_verify(
            group.p, group.q, group.generator.value, commitments, xs, values
        )
        corrupted = list(values)
        corrupted[7] = (corrupted[7] + 1) % group.q
        assert not feldman_batch_verify(
            group.p, group.q, group.generator.value, commitments, xs, corrupted
        )

    def test_pedersen_vss_single_corruption_rejected(self, batch_setup):
        group, params = batch_setup
        rng = random.Random(9)
        vss = PedersenVSS(params, threshold=3, parties=self.M)
        dealing = vss.deal(rng.randrange(group.q), rng)
        xs = list(range(1, self.M + 1))
        values = [
            group.normalize_exponent(dealing.shares[x].value.value) for x in xs
        ]
        blinds = [
            group.normalize_exponent(dealing.shares[x].blinding.value) for x in xs
        ]
        commitments = [c.value for c in dealing.commitments]
        assert pedersen_vss_batch_verify(
            group.p, group.q, params.g.value, params.h.value,
            commitments, xs, values, blinds,
        )
        corrupted = list(blinds)
        corrupted[0] = (corrupted[0] + 1) % group.q
        assert not pedersen_vss_batch_verify(
            group.p, group.q, params.g.value, params.h.value,
            commitments, xs, values, corrupted,
        )

    def test_soundness_over_random_combiners(self, batch_setup):
        # The RLC argument itself: for a fixed corrupted batch, a random
        # combiner accepts with probability ~2**-COMBINER_BITS — 200
        # independent draws must all reject.
        group, params = batch_setup
        rng = random.Random(13)
        scheme = PedersenCommitment(params)
        pairs = [scheme.commit(rng.randrange(group.q), rng) for _ in range(8)]
        commitments = [c.value for c, _ in pairs]
        values = [o.value % group.q for _, o in pairs]
        randomness = [o.randomness % group.q for _, o in pairs]
        values[3] = (values[3] + 1) % group.q
        for trial in range(200):
            assert not pedersen_batch_verify(
                group.p, group.q, params.g.value, params.h.value,
                commitments, values, randomness,
                rng=random.Random(trial),
            )

    def test_empty_batches_accept(self, batch_setup):
        group, params = batch_setup
        assert pedersen_batch_verify(
            group.p, group.q, params.g.value, params.h.value, [], [], []
        )
        assert feldman_batch_verify(
            group.p, group.q, group.generator.value, [], [], []
        )

    def test_length_mismatch_raises(self, batch_setup):
        group, params = batch_setup
        with pytest.raises(ValueError):
            pedersen_batch_verify(
                group.p, group.q, params.g.value, params.h.value, [1], [1], []
            )


class TestBatchedVerdictEquivalence:
    """The public wrappers must agree with per-item loops, verdict by verdict."""

    def test_pedersen_verify_batch(self, batch_setup):
        group, params = batch_setup
        rng = random.Random(21)
        scheme = PedersenCommitment(params)
        pairs = [scheme.commit(rng.randrange(group.q), rng) for _ in range(12)]
        # Corrupt two openings and break a third with a non-integer value.
        pairs[2] = (pairs[2][0], type(pairs[2][1])(pairs[2][1].value + 1,
                                                  pairs[2][1].randomness))
        pairs[5] = (pairs[5][0], type(pairs[5][1])(pairs[5][1].value,
                                                   pairs[5][1].randomness + 3))
        pairs[9] = (pairs[9][0], type(pairs[9][1])("junk", pairs[9][1].randomness))
        want = [scheme.verify(c, o) for c, o in pairs]
        assert scheme.verify_batch(pairs) == want
        assert want.count(False) == 3

    def test_feldman_verify_shares(self, batch_setup):
        group, _ = batch_setup
        rng = random.Random(23)
        vss = FeldmanVSS(group, threshold=2, parties=10)
        dealing = vss.deal(rng.randrange(group.q), rng)
        shares = [dealing.shares[x] for x in range(1, 11)]
        bad = shares[4]
        shares[4] = type(bad)(x=bad.x, value=bad.value + bad.value.field.one())
        want = [vss.verify_share(dealing.commitments, s) for s in shares]
        assert vss.verify_shares(dealing.commitments, shares) == want
        assert want.count(False) == 1

    def test_pedersen_vss_verify_shares(self, batch_setup):
        group, params = batch_setup
        rng = random.Random(27)
        vss = PedersenVSS(params, threshold=2, parties=10)
        dealing = vss.deal(rng.randrange(group.q), rng)
        shares = [dealing.shares[x] for x in range(1, 11)]
        bad = shares[7]
        shares[7] = type(bad)(
            x=bad.x, value=bad.value, blinding=bad.blinding + bad.blinding.field.one()
        )
        want = [vss.verify_share(dealing.commitments, s) for s in shares]
        assert vss.verify_shares(dealing.commitments, shares) == want
        assert want.count(False) == 1

    def test_disabled_fastpath_falls_back_to_per_item(self, batch_setup):
        group, params = batch_setup
        rng = random.Random(29)
        scheme = PedersenCommitment(params)
        pairs = [scheme.commit(rng.randrange(group.q), rng) for _ in range(6)]
        with fastpath.disabled():
            assert scheme.verify_batch(pairs) == [True] * 6


# -- shared-memory warm tables -------------------------------------------------------


class TestShmTables:
    def _sample_tables(self):
        group = SchnorrGroup.for_security(48)
        fastpath.clear_caches()
        fastpath.ensure_table(group.p, group.q, group.generator.value)
        tables = fastpath.export_tables()
        assert tables
        return tables

    def test_publish_attach_round_trip(self):
        tables = self._sample_tables()
        published = shm.publish_tables(tables)
        if published is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            attached = shm.attach_tables(published.descriptor())
            assert attached == tables
        finally:
            shm.release_tables(published)

    def test_release_is_idempotent_and_unlinks(self):
        published = shm.publish_tables(self._sample_tables())
        if published is None:
            pytest.skip("shared memory unavailable on this platform")
        descriptor = published.descriptor()
        shm.release_tables(published)
        shm.release_tables(published)
        assert shm.attach_tables(descriptor) is None

    def test_attach_garbage_descriptor_returns_none(self):
        assert shm.attach_tables({"name": "repro-nonexistent", "size": 64}) is None
        assert shm.attach_tables({}) is None

    def test_empty_tables_not_published(self):
        assert shm.publish_tables({}) is None

    def test_install_round_trip_rebuilds_nothing(self):
        tables = self._sample_tables()
        before = fastpath.stats().get("fastpath.table.builds", 0)
        fastpath.clear_caches()
        for (p, base), rows in tables.items():
            assert fastpath.install_table(p, base, rows)
        assert fastpath.export_tables() == tables
        assert fastpath.stats().get("fastpath.table.builds", 0) == before
