"""Tests for the circuit IR and the boolean circuit builder."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import PrimeField
from repro.errors import InvalidParameterError
from repro.mpc.builder import CircuitBuilder
from repro.mpc.circuit import Circuit

F = PrimeField(101)

bits = st.integers(min_value=0, max_value=1)


def evaluate_single(builder, inputs):
    return [int(v) for v in builder.build().evaluate(inputs)]


class TestCircuitCore:
    def test_input_reuse(self):
        circuit = Circuit(F)
        a = circuit.input(1, "x")
        b = circuit.input(1, "x")
        assert a == b
        assert circuit.input(2, "x") != a

    def test_arg_range_validated(self):
        circuit = Circuit(F)
        with pytest.raises(InvalidParameterError):
            circuit.add(0, 1)

    def test_output_range_validated(self):
        circuit = Circuit(F)
        with pytest.raises(InvalidParameterError):
            circuit.mark_output(0)

    def test_basic_arithmetic_evaluation(self):
        circuit = Circuit(F)
        x = circuit.input(1, "x")
        y = circuit.input(2, "y")
        s = circuit.add(x, y)
        d = circuit.sub(x, y)
        p = circuit.mul(x, y)
        k = circuit.scale(x, 7)
        c = circuit.const(9)
        for gate in (s, d, p, k, c):
            circuit.mark_output(gate)
        values = circuit.evaluate({(1, "x"): 5, (2, "y"): 3})
        assert [int(v) for v in values] == [8, 2, 15, 35, 9]

    def test_missing_inputs_default_zero(self):
        circuit = Circuit(F)
        x = circuit.input(1, "x")
        circuit.mark_output(x)
        assert int(circuit.evaluate({})[0]) == 0

    def test_multiplication_count_and_layers(self):
        circuit = Circuit(F)
        a = circuit.input(1, "a")
        b = circuit.input(2, "b")
        ab = circuit.mul(a, b)       # layer 1
        c = circuit.add(ab, a)       # linear
        abc = circuit.mul(ab, c)     # layer 2
        d = circuit.mul(a, b)        # layer 1 again
        circuit.mark_output(abc)
        assert circuit.multiplication_count == 3
        layers = circuit.multiplication_layers()
        assert layers == [[ab, d], [abc]]

    def test_inputs_of(self):
        circuit = Circuit(F)
        circuit.input(1, "x")
        circuit.input(1, "y")
        circuit.input(2, "x")
        assert [name for name, _ in circuit.inputs_of(1)] == ["x", "y"]
        assert len(circuit.inputs_of(3)) == 0


class TestBuilderBooleans:
    @given(bits, bits)
    @settings(max_examples=8, deadline=None)
    def test_xor_and_or_not(self, a, b):
        builder = CircuitBuilder(F)
        wa = builder.input(1, "a")
        wb = builder.input(2, "b")
        builder.output(builder.bit_xor(wa, wb))
        builder.output(builder.bit_and(wa, wb))
        builder.output(builder.bit_or(wa, wb))
        builder.output(builder.bit_not(wa))
        values = evaluate_single(builder, {(1, "a"): a, (2, "b"): b})
        assert values == [a ^ b, a & b, a | b, 1 - a]

    @given(st.lists(bits, min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_xor_all(self, values):
        builder = CircuitBuilder(F)
        wires = [builder.input(i + 1, "v") for i in range(len(values))]
        builder.output(builder.xor_all(wires))
        inputs = {(i + 1, "v"): v for i, v in enumerate(values)}
        expected = 0
        for v in values:
            expected ^= v
        assert evaluate_single(builder, inputs) == [expected]

    def test_xor_all_empty(self):
        builder = CircuitBuilder(F)
        builder.output(builder.xor_all([]))
        assert evaluate_single(builder, {}) == [0]

    @given(bits, st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9))
    @settings(max_examples=15, deadline=None)
    def test_select(self, cond, x, y):
        builder = CircuitBuilder(F)
        wc = builder.input(1, "c")
        wx = builder.input(2, "x")
        wy = builder.input(3, "y")
        builder.output(builder.select(wc, wx, wy))
        values = evaluate_single(
            builder, {(1, "c"): cond, (2, "x"): x, (3, "y"): y}
        )
        assert values == [x if cond else y]

    def test_equals_const_full_range(self):
        for target in range(5):
            builder = CircuitBuilder(F)
            w = builder.input(1, "v")
            builder.output(builder.equals_const(w, target, 4))
            for value in range(5):
                got = evaluate_single(builder, {(1, "v"): value})
                assert got == [1 if value == target else 0]

    def test_equals_const_validation(self):
        builder = CircuitBuilder(F)
        w = builder.input(1, "v")
        with pytest.raises(InvalidParameterError):
            builder.equals_const(w, 6, 5000)  # range exceeds field
        with pytest.raises(InvalidParameterError):
            builder.equals_const(w, 7, 5)  # target outside range

    def test_equals_const_trivial_range(self):
        builder = CircuitBuilder(F)
        w = builder.input(1, "v")
        builder.output(builder.equals_const(w, 0, 0))
        assert evaluate_single(builder, {(1, "v"): 0}) == [1]

    def test_prefix_products(self):
        builder = CircuitBuilder(F)
        wires = [builder.input(i, "v") for i in (1, 2, 3)]
        for wire in builder.prefix_products(wires):
            builder.output(wire)
        values = evaluate_single(
            builder, {(1, "v"): 2, (2, "v"): 3, (3, "v"): 4}
        )
        assert values == [2, 6, 24]

    def test_sum_empty(self):
        builder = CircuitBuilder(F)
        builder.output(builder.sum([]))
        assert evaluate_single(builder, {}) == [0]
