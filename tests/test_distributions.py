"""Tests for distributions, ensembles and the Section 5 classes."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    ALL,
    PHI,
    PSI_C,
    PSI_L,
    SINGLETON,
    UNIFORM,
    Distribution,
    Ensemble,
    all_equal,
    all_singletons,
    bernoulli_product,
    claim_56_witnesses,
    empirical_distribution,
    estimate_local_independence_gap,
    leaky_singleton,
    near_product_mixture,
    noisy_copy,
    parity,
    representatives,
    singleton,
    uniform,
)
from repro.errors import DistributionError


class TestDistributionCore:
    def test_validation(self):
        with pytest.raises(DistributionError):
            Distribution(2, {(0, 0): 0.4})  # does not sum to 1
        with pytest.raises(DistributionError):
            Distribution(2, {(0, 2): 1.0})  # not a bit vector
        with pytest.raises(DistributionError):
            Distribution(2, {(0,): 1.0})  # wrong length
        with pytest.raises(DistributionError):
            Distribution(0, {(): 1.0})

    def test_normalization(self):
        d = Distribution(1, {(0,): 0.5000001, (1,): 0.5})
        assert abs(sum(d.probs.values()) - 1.0) < 1e-12

    def test_sampling_matches_table(self):
        d = bernoulli_product([0.2, 0.8])
        rng = random.Random(0)
        counts = {}
        for _ in range(4000):
            v = d.sample(rng)
            counts[v] = counts.get(v, 0) + 1
        assert abs(counts.get((0, 1), 0) / 4000 - 0.64) < 0.04
        assert abs(counts.get((1, 0), 0) / 4000 - 0.04) < 0.02

    def test_marginal(self):
        d = parity(3)
        m = d.marginal([1])
        assert m.probability((0,)) == pytest.approx(0.5)
        m12 = d.marginal([1, 2])
        assert m12.probability((1, 1)) == pytest.approx(0.25)

    def test_marginal_order_respected(self):
        d = bernoulli_product([0.9, 0.1])
        assert d.marginal([2, 1]).probability((1, 0)) == pytest.approx(0.1 * 0.1)

    def test_marginal_range_validated(self):
        with pytest.raises(DistributionError):
            uniform(2).marginal([3])

    def test_conditional(self):
        d = parity(3)
        c = d.conditional({1: 0, 2: 0})
        assert c.probability((0, 0, 0)) == pytest.approx(1.0)

    def test_conditional_zero_mass_rejected(self):
        with pytest.raises(DistributionError):
            all_equal(2).conditional({1: 0, 2: 1})

    def test_join(self):
        left = singleton([1])
        right = uniform(1)
        joined = left.join(right)
        assert joined.n == 2
        assert joined.probability((1, 0)) == pytest.approx(0.5)
        assert joined.probability((0, 0)) == 0.0

    def test_tv_distance(self):
        assert uniform(2).tv_distance(uniform(2)) == 0.0
        assert singleton([0, 0]).tv_distance(singleton([1, 1])) == 1.0
        assert parity(2).tv_distance(uniform(2)) == pytest.approx(0.5)

    def test_tv_dimension_mismatch(self):
        with pytest.raises(DistributionError):
            uniform(2).tv_distance(uniform(3))

    def test_entropy(self):
        assert uniform(3).shannon_entropy() == pytest.approx(3.0)
        assert singleton([1, 0]).shannon_entropy() == pytest.approx(0.0)
        assert all_equal(4).shannon_entropy() == pytest.approx(1.0)

    def test_is_trivial(self):
        assert singleton([1, 1]).is_trivial()
        assert not uniform(2).is_trivial()


class TestGapComputations:
    def test_products_have_zero_gaps(self):
        for d in (uniform(3), bernoulli_product([0.2, 0.7, 0.5]), singleton([0, 1, 0])):
            assert d.product_gap() == pytest.approx(0.0, abs=1e-9)
            assert d.local_independence_gap() == pytest.approx(0.0, abs=1e-9)

    def test_all_equal_has_large_gaps(self):
        d = all_equal(3)
        assert d.product_gap() > 0.3
        assert d.local_independence_gap() == pytest.approx(0.5)

    def test_parity_marginals_uniform_but_conditionals_pinned(self):
        d = parity(3)
        # Every single coordinate is uniform...
        for c in (1, 2, 3):
            assert d.marginal([c]).probability((1,)) == pytest.approx(0.5)
        # ...but conditioning on the others determines it completely.
        assert d.local_independence_gap() == pytest.approx(0.5)
        assert d.product_gap() == pytest.approx(0.5)

    def test_near_product_mixture_separates_psi_l_from_psi_c(self):
        d = near_product_mixture(4, delta=0.1)
        assert d.product_gap() < 0.15            # close to product: inside Psi_C
        # Conditioning amplifies the small TV gap by an order of magnitude:
        # P(x1=1 | rest=111) ≈ 0.65 while the marginal stays at 0.5.
        assert d.local_independence_gap() > 0.1  # clearly outside Psi_L
        assert d.local_independence_gap() > d.product_gap()

    def test_noisy_copy_gap_scales_with_noise(self):
        strong = noisy_copy(3, flip_probability=0.0)
        weak = noisy_copy(3, flip_probability=0.4)
        assert strong.local_independence_gap() > weak.local_independence_gap()

    def test_leaky_singleton_shape(self):
        d = leaky_singleton(4, free_coordinate=2, rest=[1, 0, 1], p=0.3)
        assert d.probability((1, 1, 0, 1)) == pytest.approx(0.3)
        assert d.probability((1, 0, 0, 1)) == pytest.approx(0.7)
        # It is locally independent (one free coordinate, rest constant).
        assert d.local_independence_gap() == pytest.approx(0.0, abs=1e-9)

    def test_leaky_singleton_validation(self):
        with pytest.raises(DistributionError):
            leaky_singleton(3, free_coordinate=5, rest=[0, 0])
        with pytest.raises(DistributionError):
            leaky_singleton(3, free_coordinate=1, rest=[0])
        with pytest.raises(DistributionError):
            leaky_singleton(3, free_coordinate=1, rest=[0, 0], p=0.0)


class TestClasses:
    def test_chain_on_uniform(self):
        d = uniform(3)
        assert not SINGLETON.contains(d)
        assert UNIFORM.contains(d)
        assert PHI.contains(d)
        assert PSI_L.contains(d)
        assert PSI_C.contains(d)
        assert ALL.contains(d)

    def test_chain_on_singletons(self):
        for d in all_singletons(3):
            assert SINGLETON.contains(d)
            assert PSI_L.contains(d)
            assert PSI_C.contains(d)

    def test_biased_product_in_psi_l_not_uniform(self):
        d = bernoulli_product([0.3, 0.5, 0.5])
        assert not UNIFORM.contains(d)
        assert not SINGLETON.contains(d)
        assert PSI_L.contains(d)

    def test_mixture_in_psi_c_not_psi_l(self):
        d = near_product_mixture(4, delta=0.1)
        assert PSI_C.contains(d)
        assert not PSI_L.contains(d)

    def test_parity_outside_psi_c(self):
        d = parity(4)
        assert not PSI_C.contains(d)
        assert not PSI_L.contains(d)
        assert ALL.contains(d)

    def test_all_equal_outside_psi_c(self):
        assert not PSI_C.contains(all_equal(4))

    def test_claim_56_witnesses_certify_strict_chain(self):
        """Claim 5.6: Singleton, Uniform ⊊ D(G) ⊊ D(CR) ⊊ D(Sb)."""
        report = claim_56_witnesses(4)
        w = report["Singleton ⊊ D(G)"]
        assert w["psi_l"] and not w["singleton"]
        w = report["Uniform ⊊ D(G)"]
        assert w["psi_l"] and not w["uniform"]
        w = report["D(G) ⊊ D(CR)"]
        assert w["psi_c"] and not w["psi_l"]
        w = report["D(CR) ⊊ D(Sb)"]
        assert w["all"] and not w["psi_c"]

    def test_representatives_belong_to_their_classes(self):
        reps = representatives(4)
        for d in reps["D(G)"]:
            assert PSI_L.contains(d)
        for d in reps["D(CR)"]:
            assert PSI_C.contains(d)
        for d in reps["Singleton"]:
            assert SINGLETON.contains(d)


class TestEnsembles:
    def test_constant_ensemble(self):
        e = Ensemble.constant(uniform(3))
        assert e.at(16) is e.at(64)
        assert e.n == 3

    def test_varying_ensemble(self):
        e = Ensemble("shrinking-mixture", 3, lambda k: near_product_mixture(3, delta=1.0 / k))
        assert e.at(10).product_gap() > e.at(100).product_gap()

    def test_dimension_check(self):
        e = Ensemble("bad", 4, lambda k: uniform(3))
        with pytest.raises(DistributionError):
            e.at(16)


class TestEmpiricalTesters:
    def test_empirical_distribution_converges(self):
        d = bernoulli_product([0.3, 0.7])
        rng = random.Random(5)
        empirical = empirical_distribution(d.sample, 2, 4000, rng)
        assert empirical.tv_distance(d) < 0.05

    def test_empirical_local_gap_separates(self):
        rng = random.Random(6)
        low = estimate_local_independence_gap(uniform(3).sample, 3, 2000, rng)
        high = estimate_local_independence_gap(all_equal(3).sample, 3, 2000, rng)
        assert low < 0.15
        assert high > 0.4

    def test_sampler_length_validated(self):
        rng = random.Random(7)
        with pytest.raises(DistributionError):
            empirical_distribution(lambda r: (0, 1), 3, 10, rng)

    def test_sample_count_validated(self):
        rng = random.Random(8)
        with pytest.raises(DistributionError):
            empirical_distribution(uniform(2).sample, 2, 0, rng)
