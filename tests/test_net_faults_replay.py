"""Replay guarantees for faulted executions (satellite of the faults PR).

A faulted run must be reproducible from its recipe alone: the same
(protocol, seed, plan, fault salt) tuple yields the same round records,
the same outputs, the same injected-fault log, and the same metrics
counters — including when the plan took a JSON round trip through disk,
which is exactly what ``--faults PLAN.json`` does.
"""

import dataclasses

from repro.faults import CrashFault, FaultPlan, FaultRule
from repro.obs import Metrics, runtime as obs_runtime
from repro.protocols.naive_commit_reveal import NaiveCommitReveal
from repro.protocols.sequential import SequentialBroadcast

PLAN = FaultPlan(
    name="replay",
    seed=0xBEEF,
    rules=(
        FaultRule(kind="drop", probability=0.2),
        FaultRule(kind="delay", delay=1, probability=0.2),
        FaultRule(kind="corrupt", probability=0.1),
    ),
    crashes=(CrashFault(party=2, at_round=2, recover_at=4),),
)

INPUTS = [1, 0, 1, 0, 1]


def run_once(plan, seed=7, fault_seed=13):
    protocol = SequentialBroadcast(5, 2)
    with obs_runtime.observed(metrics=Metrics()) as (_, metrics):
        execution = protocol.run(
            INPUTS, seed=seed, fault_plan=plan, fault_seed=fault_seed, timeout_rounds=60
        )
    return execution, metrics.snapshot()


def test_same_recipe_same_execution():
    first, first_metrics = run_once(PLAN)
    second, second_metrics = run_once(PLAN)
    assert first.outputs == second.outputs
    assert first.rounds == second.rounds
    assert first.faults == second.faults
    assert first.timed_out == second.timed_out
    assert first_metrics == second_metrics
    # The plan actually fired (otherwise the test proves nothing).
    assert first.faults


def test_fault_records_are_structured():
    execution, metrics = run_once(PLAN)
    for record in execution.faults:
        assert record.kind in ("drop", "delay", "corrupt", "crash")
        assert 1 <= record.sender <= 5
    by_kind = {}
    for record in execution.faults:
        by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
    counters = metrics["counters"]
    assert counters["faults.injected"] == len(execution.faults)
    names = {
        "drop": "faults.dropped",
        "delay": "faults.delayed",
        "corrupt": "faults.corrupted",
        "crash": "faults.crashed",
    }
    for kind, count in by_kind.items():
        assert counters[names[kind]] == count


def test_plan_json_round_trip_replays_identically():
    reloaded = FaultPlan.loads(PLAN.dumps())
    assert reloaded == PLAN
    direct, direct_metrics = run_once(PLAN)
    replayed, replayed_metrics = run_once(reloaded)
    assert replayed.outputs == direct.outputs
    assert replayed.rounds == direct.rounds
    assert replayed.faults == direct.faults
    assert replayed_metrics == direct_metrics


def test_plan_file_round_trip_replays_identically(tmp_path):
    path = tmp_path / "plan.json"
    PLAN.dump(str(path))
    direct, _ = run_once(PLAN)
    replayed, _ = run_once(FaultPlan.load(str(path)))
    assert replayed.faults == direct.faults
    assert replayed.outputs == direct.outputs


def test_different_fault_seed_different_pattern():
    first, _ = run_once(PLAN, fault_seed=13)
    second, _ = run_once(PLAN, fault_seed=14)
    assert first.faults != second.faults


def test_different_run_seed_same_fault_salt_streams_are_independent():
    # The injector draws only from its own salted RNG, so changing the
    # execution seed leaves the *pattern* of probabilistic draws intact
    # for identical traffic shapes (sequential sends the same message
    # skeleton regardless of seed).
    first, _ = run_once(PLAN, seed=7)
    second, _ = run_once(PLAN, seed=8)
    first_sites = [(r.round, r.kind, r.sender) for r in first.faults]
    second_sites = [(r.round, r.kind, r.sender) for r in second.faults]
    assert first_sites == second_sites


def test_execution_fault_fields_survive_replace():
    execution, _ = run_once(PLAN)
    clone = dataclasses.replace(execution)
    assert clone.faults == execution.faults
    assert clone.timed_out == execution.timed_out


def test_commit_reveal_replay():
    protocol = NaiveCommitReveal(4, 1)
    plan = FaultPlan(seed=3, rules=(FaultRule(kind="drop", probability=0.3),))
    runs = [
        protocol.run([1, 1, 0, 0], seed=21, fault_plan=plan, fault_seed=5)
        for _ in range(2)
    ]
    assert runs[0].outputs == runs[1].outputs
    assert runs[0].faults == runs[1].faults
