"""Tests for running broadcast-channel protocols over point-to-point links."""

import pytest

from repro.broadcast.emulation import OverPointToPoint
from repro.net.adversary import Adversary, PassiveAdversary
from repro.protocols import (
    CGMABroadcast,
    GennaroBroadcast,
    NaiveCommitReveal,
    SequentialBroadcast,
)

N, T = 4, 1


class TestHonestEmulation:
    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(lambda: SequentialBroadcast(N, T), id="sequential"),
            pytest.param(lambda: GennaroBroadcast(N, T, security_bits=16), id="gennaro"),
            pytest.param(lambda: NaiveCommitReveal(N, T), id="naive"),
            pytest.param(lambda: CGMABroadcast(N, T, security_bits=16), id="cgma"),
        ],
    )
    def test_announced_matches_channel_version(self, factory):
        inner = factory()
        wrapped = OverPointToPoint(inner, security_bits=16)
        for inputs in [(1, 0, 1, 0), (0, 0, 0, 0), (1, 1, 1, 1)]:
            assert wrapped.announced(inputs, seed=5) == inputs

    def test_name_and_parameters_propagate(self):
        wrapped = OverPointToPoint(GennaroBroadcast(N, T, security_bits=16))
        assert wrapped.n == N and wrapped.t == T
        assert wrapped.name == "gennaro/p2p"

    def test_round_inflation_factor(self):
        """Each broadcast-channel round costs a (t+1)-round window."""
        inner = GennaroBroadcast(N, T, security_bits=16)
        channel = inner.run((1, 0, 1, 0), seed=6)
        wrapped = OverPointToPoint(inner, security_bits=16)
        emulated = wrapped.run((1, 0, 1, 0), seed=6)
        assert channel.communication_rounds == 2
        assert emulated.communication_rounds == 2 * (T + 1)

    def test_no_broadcast_channel_traffic(self):
        """The emulated execution uses point-to-point messages only."""
        wrapped = OverPointToPoint(GennaroBroadcast(N, T, security_bits=16))
        execution = wrapped.run((1, 0, 1, 0), seed=7)
        assert all(not m.is_broadcast for m in execution.all_messages())

    def test_message_blowup_is_quadratic(self):
        wrapped = OverPointToPoint(SequentialBroadcast(N, T), security_bits=16)
        execution = wrapped.run((1, 0, 1, 0), seed=8)
        channel = SequentialBroadcast(N, T).run((1, 0, 1, 0), seed=8)
        assert len(execution.all_messages()) > len(channel.all_messages()) * (N - 1)


class TestEmulationUnderFaults:
    def test_silent_party_announced_default(self):
        wrapped = OverPointToPoint(GennaroBroadcast(N, T, security_bits=16))
        execution = wrapped.run(
            (1, 1, 1, 1), adversary=Adversary(corrupted=[3]), seed=9
        )
        announced = execution.announced_vector()
        assert announced == (1, 1, 0, 1)
        vectors = {tuple(execution.outputs[i]) for i in execution.honest}
        assert len(vectors) == 1

    def test_passive_corruption_transparent(self):
        wrapped = OverPointToPoint(GennaroBroadcast(N, T, security_bits=16))
        announced = wrapped.announced(
            (1, 0, 1, 1), adversary=PassiveAdversary(corrupted=[2]), seed=10
        )
        assert announced == (1, 0, 1, 1)

    def test_equivocating_ds_sender_delivers_nothing(self):
        """A corrupted party equivocating inside the emulation window is
        resolved by Dolev-Strong to the default: honest parties agree it
        announced nothing."""
        from repro.net.message import send as p2p_send

        class WindowEquivocator(Adversary):
            """Sends two different signed bundles to different parties in
            window 1 (the Gennaro commit round)."""

            def act(self, round_number, rushed):
                if round_number != 1:
                    return {3: []}
                directory = self.config["directory"]
                drafts = []
                for j, fake in ((1, "foo"), (2, "bar"), (4, "foo")):
                    bundle = ((f"gen:commit", fake),)
                    signature = directory.sign(
                        3, ("em1:3", bundle), self.rng
                    )
                    drafts.append(
                        p2p_send(j, (bundle, ((3, signature),)), tag="ds:em1:3")
                    )
                return {3: drafts}

        wrapped = OverPointToPoint(GennaroBroadcast(N, T, security_bits=16))
        execution = wrapped.run(
            (1, 1, 1, 1), adversary=WindowEquivocator(corrupted=[3]), seed=11
        )
        announced = execution.announced_vector()
        assert announced[2] == 0  # equivocation resolved to default
        assert announced[0] == announced[1] == announced[3] == 1
        vectors = {tuple(execution.outputs[i]) for i in execution.honest}
        assert len(vectors) == 1
