"""Tests for the broadcast substrate: validity, agreement, fault tolerance."""

import random

import pytest

from repro.broadcast.dolev_strong import DolevStrongBroadcast
from repro.broadcast.eig import EIGBroadcast
from repro.broadcast.ideal import IdealBroadcast
from repro.broadcast.interactive_consistency import InteractiveConsistency
from repro.broadcast.phase_king import PhaseKingBroadcast, PhaseKingConsensus
from repro.errors import InvalidParameterError
from repro.net.adversary import Adversary, ProgramAdversary
from repro.net.message import send
from repro.net.network import run_protocol


def outputs_agree(execution):
    values = [execution.outputs[i] for i in execution.honest]
    return all(v == values[0] for v in values)


class TestIdealBroadcast:
    def test_honest_delivery(self):
        protocol = IdealBroadcast(n=4, sender=2)
        execution = run_protocol(protocol, [None, "v", None, None], seed=1)
        assert all(execution.outputs[i] == "v" for i in range(1, 5))
        assert execution.round_count <= 2

    def test_silent_sender_defaults(self):
        protocol = IdealBroadcast(n=3, sender=2)
        execution = run_protocol(
            protocol, [None, "v", None], adversary=Adversary(corrupted=[2]), seed=1
        )
        assert execution.outputs[1] == 0
        assert execution.outputs[3] == 0

    def test_sender_out_of_range(self):
        with pytest.raises(ValueError):
            IdealBroadcast(n=3, sender=4)


class TestDolevStrong:
    def test_honest_sender_validity(self):
        protocol = DolevStrongBroadcast(n=4, t=1, sender=1)
        execution = run_protocol(protocol, ["m", None, None, None], seed=2)
        assert all(execution.outputs[i] == "m" for i in range(1, 5))

    def test_runs_t_plus_one_rounds(self):
        for t in (1, 2):
            protocol = DolevStrongBroadcast(n=4, t=t, sender=1)
            execution = run_protocol(protocol, ["m", None, None, None], seed=2)
            # Parties decide only after round t+1 (plus the scheduler's one
            # trailing silent round); honest traffic may stop earlier.
            assert execution.round_count == t + 2
            assert execution.communication_rounds <= t + 1

    def test_silent_sender_decides_default(self):
        protocol = DolevStrongBroadcast(n=4, t=1, sender=2)
        execution = run_protocol(
            protocol,
            [None, "m", None, None],
            adversary=Adversary(corrupted=[2]),
            seed=3,
        )
        assert all(execution.outputs[i] == 0 for i in (1, 3, 4))

    def test_equivocating_sender_agreement(self):
        """A corrupted sender sends different signed values to different parties;
        honest parties still agree (on the default, having seen two values)."""

        def equivocator(ctx, value):
            directory = ctx.config["directory"]
            drafts = []
            for j in ctx.others():
                faked = f"v{j}"
                signature = directory.sign(ctx.party_id, ("bc", faked), ctx.rng)
                chain = ((ctx.party_id, signature),)
                drafts.append(send(j, (faked, chain), tag="ds:bc"))
            yield drafts
            yield []
            return None

        protocol = DolevStrongBroadcast(n=4, t=1, sender=1)
        execution = run_protocol(
            protocol,
            [None, None, None, None],
            adversary=ProgramAdversary({1: equivocator}),
            seed=4,
        )
        assert outputs_agree(execution)
        assert execution.outputs[2] == 0

    def test_forged_chain_rejected(self):
        """A corrupted relay cannot inject a value the sender never signed."""

        def injector(ctx, value):
            directory = ctx.config["directory"]
            # Sign a bogus value with its own key only (no sender signature).
            signature = directory.sign(ctx.party_id, ("bc", "bogus"), ctx.rng)
            chain = ((ctx.party_id, signature),)
            yield [send(j, ("bogus", chain), tag="ds:bc") for j in ctx.others()]
            yield []
            return None

        protocol = DolevStrongBroadcast(n=4, t=1, sender=1)
        execution = run_protocol(
            protocol,
            ["good", None, None, None],
            adversary=ProgramAdversary({3: injector}),
            seed=5,
        )
        # Party 1 (sender, honest) and the other honest parties agree on "good".
        assert execution.outputs[2] == "good"
        assert execution.outputs[4] == "good"

    def test_duplicate_signer_chain_rejected(self):
        from repro.broadcast.dolev_strong import _chain_valid
        from repro.crypto.group import SchnorrGroup
        from repro.crypto.signatures import KeyDirectory

        group = SchnorrGroup.for_security(24)
        rng = random.Random(0)
        directory = KeyDirectory.generate(group, 3, rng)
        sig1 = directory.sign(1, ("bc", "v"), rng)
        chain = ((1, sig1), (1, sig1))
        assert not _chain_valid(directory, "bc", 1, "v", chain, minimum=2)

    def test_chain_must_start_with_sender(self):
        from repro.broadcast.dolev_strong import _chain_valid
        from repro.crypto.group import SchnorrGroup
        from repro.crypto.signatures import KeyDirectory

        group = SchnorrGroup.for_security(24)
        rng = random.Random(0)
        directory = KeyDirectory.generate(group, 3, rng)
        sig2 = directory.sign(2, ("bc", "v"), rng)
        assert not _chain_valid(directory, "bc", 1, "v", ((2, sig2),), minimum=1)


class TestEIG:
    def test_honest_sender_validity(self):
        protocol = EIGBroadcast(n=4, t=1, sender=3)
        execution = run_protocol(protocol, [None, None, 1, None], seed=6)
        assert all(execution.outputs[i] == 1 for i in range(1, 5))

    def test_requires_n_over_3(self):
        with pytest.raises(ValueError):
            EIGBroadcast(n=3, t=1, sender=1)

    def test_silent_sender_defaults(self):
        protocol = EIGBroadcast(n=4, t=1, sender=2)
        execution = run_protocol(
            protocol,
            [None, 1, None, None],
            adversary=Adversary(corrupted=[2]),
            seed=7,
        )
        assert all(execution.outputs[i] == 0 for i in (1, 3, 4))

    def test_equivocating_sender_agreement(self):
        """Sender says 1 to some parties, 0 to others; honest parties agree."""

        def equivocator(ctx, value):
            drafts = []
            for j in range(1, 5):
                bit = 1 if j <= 2 else 0
                drafts.append(send(j, ((ctx.party_id,), bit), tag="eig:bc"))
            yield drafts
            yield []
            return None

        protocol = EIGBroadcast(n=4, t=1, sender=1)
        execution = run_protocol(
            protocol,
            [None, None, None, None],
            adversary=ProgramAdversary({1: equivocator}),
            seed=8,
        )
        assert outputs_agree(execution)

    def test_lying_relay_does_not_break_agreement(self):
        def liar_relay(ctx, value):
            inbox = yield []
            # Learn the sender's value, then relay the flipped bit.
            message = inbox.first_from(1, tag="eig:bc")
            heard = message.payload[1] if message else 0
            flipped = 1 - heard
            yield [
                send(j, ((1, ctx.party_id), flipped), tag="eig:bc")
                for j in range(1, 5)
            ]
            return None

        protocol = EIGBroadcast(n=4, t=1, sender=1)
        execution = run_protocol(
            protocol,
            [1, None, None, None],
            adversary=ProgramAdversary({3: liar_relay}),
            seed=9,
        )
        assert outputs_agree(execution)
        # With an honest sender and t=1 < n/3, validity must hold.
        assert execution.outputs[2] == 1


class TestPhaseKing:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            PhaseKingBroadcast(n=4, t=1, sender=1)
        with pytest.raises(ValueError):
            PhaseKingConsensus(n=4, t=1)

    def test_consensus_all_same_input(self):
        protocol = PhaseKingConsensus(n=5, t=1)
        execution = run_protocol(protocol, [1, 1, 1, 1, 1], seed=10)
        assert all(execution.outputs[i] == 1 for i in range(1, 6))

    def test_consensus_agreement_mixed_inputs(self):
        protocol = PhaseKingConsensus(n=5, t=1)
        execution = run_protocol(protocol, [1, 0, 1, 0, 1], seed=11)
        assert outputs_agree(execution)

    def test_consensus_with_byzantine_party(self):
        def chaotic(ctx, value):
            for phase in (1, 2):
                # Send conflicting exchange values to different parties.
                yield [send(j, j % 2, tag=f"pk:pk:x{phase}") for j in range(1, 6)]
                yield []
            return None

        protocol = PhaseKingConsensus(n=5, t=1)
        execution = run_protocol(
            protocol,
            [1, 1, 1, 1, 0],
            adversary=ProgramAdversary({5: chaotic}),
            seed=12,
        )
        assert outputs_agree(execution)
        # Validity: all honest parties started with 1.
        assert execution.outputs[1] == 1

    def test_broadcast_validity(self):
        protocol = PhaseKingBroadcast(n=5, t=1, sender=2)
        execution = run_protocol(protocol, [None, 1, None, None, None], seed=13)
        assert all(execution.outputs[i] == 1 for i in range(1, 6))

    def test_broadcast_equivocating_sender(self):
        def equivocator(ctx, value):
            yield [send(j, j % 2, tag="pk:bc:send") for j in range(1, 6)]
            # Behave silently afterwards.
            for _ in range(4):
                yield []
            return None

        protocol = PhaseKingBroadcast(n=5, t=1, sender=1)
        execution = run_protocol(
            protocol,
            [None] * 5,
            adversary=ProgramAdversary({1: equivocator}),
            seed=14,
        )
        assert outputs_agree(execution)


class TestInteractiveConsistency:
    def test_ideal_primitive_roundtrip(self):
        protocol = InteractiveConsistency(n=4, t=1, primitive="ideal")
        execution = run_protocol(protocol, [1, 0, 1, 0], seed=15)
        for i in range(1, 5):
            assert execution.outputs[i] == (1, 0, 1, 0)

    def test_dolev_strong_primitive(self):
        protocol = InteractiveConsistency(n=4, t=1, primitive="dolev-strong")
        execution = run_protocol(protocol, [1, 0, 0, 1], seed=16)
        for i in range(1, 5):
            assert execution.outputs[i] == (1, 0, 0, 1)

    def test_eig_primitive_with_corruption(self):
        protocol = InteractiveConsistency(n=4, t=1, primitive="eig")
        execution = run_protocol(
            protocol, [1, 0, 1, 1], adversary=Adversary(corrupted=[2]), seed=17
        )
        assert outputs_agree(execution)
        vector = execution.outputs[1]
        assert vector[0] == 1 and vector[2] == 1 and vector[3] == 1
        assert vector[1] == 0  # silent corrupted sender -> default

    def test_phase_king_primitive(self):
        protocol = InteractiveConsistency(n=5, t=1, primitive="phase-king")
        execution = run_protocol(protocol, [1, 1, 0, 0, 1], seed=18)
        assert outputs_agree(execution)
        assert execution.outputs[1] == (1, 1, 0, 0, 1)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(InvalidParameterError):
            InteractiveConsistency(n=4, t=1, primitive="carrier-pigeon")

    def test_bound_validation(self):
        with pytest.raises(InvalidParameterError):
            InteractiveConsistency(n=3, t=1, primitive="eig")
        with pytest.raises(InvalidParameterError):
            InteractiveConsistency(n=4, t=1, primitive="phase-king")

    def test_no_independence_copy_attack(self):
        """Section 3.2: parallel broadcast alone does not give independence.

        A rushing adversary corrupting party 4 reads party 1's round-1
        broadcast and echoes it as its own input in the same round.
        """
        from repro.net.adversary import Adversary
        from repro.net.message import broadcast as bc_draft

        class Copier(Adversary):
            def act(self, round_number, rushed):
                if round_number != 1:
                    return {4: []}
                seen = rushed[4].broadcasts(tag="ideal:ic1")
                copied = seen[0].payload if seen else 0
                return {4: [bc_draft(copied, tag="ideal:ic4")]}

        for x1 in (0, 1):
            protocol = InteractiveConsistency(n=4, t=1, primitive="ideal")
            execution = run_protocol(
                protocol,
                [x1, 1, 0, None],
                adversary=Copier(corrupted=[4]),
                seed=19,
            )
            vector = execution.outputs[1]
            assert vector[3] == x1  # perfectly correlated with party 1
