"""Edge-case tests for the artifact differ (repro.experiments.diffjson)."""

import json
import math
import os

from repro.experiments.diffjson import _equal, compare_dirs, main, strip_wall_clock


def write_artifact(directory, name, payload):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, name), "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


RESULT = {
    "experiment_id": "E-X",
    "passed": True,
    "data": {"gap": 0.25, "rows": [[1, 2], [3, 4]]},
    "metrics": {"wall_seconds": 1.23, "counters": {"net.rounds": 7}},
}


class TestEqual:
    def test_nan_equals_nan(self):
        assert _equal(float("nan"), float("nan"))
        assert _equal({"gap": float("nan")}, {"gap": float("nan")})
        assert _equal([float("nan"), 1.0], [float("nan"), 1.0])

    def test_nan_not_equal_to_number(self):
        assert not _equal(float("nan"), 0.0)
        assert not _equal(0.0, float("nan"))

    def test_plain_values(self):
        assert _equal(1, 1.0)
        assert not _equal({"a": 1}, {"a": 2})
        assert not _equal({"a": 1}, {"b": 1})
        assert not _equal([1], [1, 2])


class TestCompareDirs:
    def test_identical_dirs(self, tmp_path):
        for d in ("a", "b"):
            write_artifact(tmp_path / d, "E-X.json", RESULT)
        assert compare_dirs(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_wall_clock_ignored(self, tmp_path):
        write_artifact(tmp_path / "a", "E-X.json", RESULT)
        fast = json.loads(json.dumps(RESULT))
        fast["metrics"]["wall_seconds"] = 0.01
        write_artifact(tmp_path / "b", "E-X.json", fast)
        assert compare_dirs(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_nan_gap_estimates_do_not_diverge(self, tmp_path):
        # An inconclusive estimator records gap = NaN; json.dump writes the
        # (non-standard but round-tripping) NaN literal.  Two identical
        # artifacts with NaN gaps must compare clean.
        nan_result = json.loads(json.dumps(RESULT))
        nan_result["data"]["gap"] = float("nan")
        for d in ("a", "b"):
            write_artifact(tmp_path / d, "E-X.json", nan_result)
        assert compare_dirs(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_missing_artifact_reported(self, tmp_path):
        write_artifact(tmp_path / "a", "E-X.json", RESULT)
        write_artifact(tmp_path / "a", "E-Y.json", RESULT)
        write_artifact(tmp_path / "b", "E-X.json", RESULT)
        diffs = compare_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert len(diffs) == 1 and "E-Y.json" in diffs[0]

    def test_missing_key_reported_with_path(self, tmp_path):
        write_artifact(tmp_path / "a", "E-X.json", RESULT)
        short = json.loads(json.dumps(RESULT))
        del short["data"]["gap"]
        write_artifact(tmp_path / "b", "E-X.json", short)
        diffs = compare_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert diffs == ["E-X.json.data.gap: only in first"]

    def test_nested_list_divergence_pinpointed(self, tmp_path):
        write_artifact(tmp_path / "a", "E-X.json", RESULT)
        mutated = json.loads(json.dumps(RESULT))
        mutated["data"]["rows"][1][0] = 99
        write_artifact(tmp_path / "b", "E-X.json", mutated)
        diffs = compare_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert diffs == ["E-X.json.data.rows[1][0]: 3 != 99"]

    def test_empty_dirs_compare_clean(self, tmp_path):
        os.makedirs(tmp_path / "a")
        os.makedirs(tmp_path / "b")
        assert compare_dirs(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_non_json_files_ignored(self, tmp_path):
        write_artifact(tmp_path / "a", "E-X.json", RESULT)
        write_artifact(tmp_path / "b", "E-X.json", RESULT)
        (tmp_path / "a" / "notes.txt").write_text("scratch")
        assert compare_dirs(str(tmp_path / "a"), str(tmp_path / "b")) == []


class TestStripWallClock:
    def test_strips_only_wall_clock(self):
        stripped = strip_wall_clock(RESULT)
        assert "wall_seconds" not in stripped["metrics"]
        assert stripped["metrics"]["counters"] == {"net.rounds": 7}
        assert RESULT["metrics"]["wall_seconds"] == 1.23  # original untouched

    def test_tolerates_missing_metrics(self):
        assert strip_wall_clock({"data": {}}) == {"data": {}}
        assert strip_wall_clock({"metrics": None}) == {"metrics": None}


class TestMain:
    def test_exit_codes(self, tmp_path, capsys):
        write_artifact(tmp_path / "a", "E-X.json", RESULT)
        write_artifact(tmp_path / "b", "E-X.json", RESULT)
        assert main([str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        mutated = json.loads(json.dumps(RESULT))
        mutated["passed"] = False
        write_artifact(tmp_path / "b", "E-X.json", mutated)
        assert main([str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out


def test_nan_literal_round_trips():
    # Guard the assumption the NaN tests rest on: Python's json module
    # writes NaN and reads it back as float('nan') by default.
    assert math.isnan(json.loads(json.dumps(float("nan"))))
