"""Tests specific to the Pedersen-VSS CGMA ablation and protocol base helpers."""

import pytest

from repro.adversaries import Adversary
from repro.errors import InvalidParameterError
from repro.net.message import broadcast as bc
from repro.net.message import send
from repro.protocols import CGMAPedersen, coerce_bit
from repro.protocols.base import ParallelBroadcastProtocol


class TestCoerceBit:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (1, 1), (True, 1), (False, 0), (2, 0), (-1, 0), ("x", 0), (None, 0)],
    )
    def test_coercion(self, value, expected):
        assert coerce_bit(value) == expected

    def test_custom_default(self):
        assert coerce_bit("junk", default=None) is None
        assert coerce_bit(1, default=None) == 1


class TestBaseValidation:
    def test_n_and_t_validated(self):
        with pytest.raises(InvalidParameterError):
            ParallelBroadcastProtocol(1, 0)
        with pytest.raises(InvalidParameterError):
            ParallelBroadcastProtocol(3, 3)

    def test_program_abstract(self):
        protocol = ParallelBroadcastProtocol(3, 1)
        with pytest.raises(NotImplementedError):
            protocol.program(None, 0)

    def test_repr(self):
        assert "n=3" in repr(ParallelBroadcastProtocol(3, 1))


class TestCGMAPedersen:
    def test_honest_roundtrip(self):
        protocol = CGMAPedersen(5, 2, security_bits=16)
        for inputs in [(1, 0, 1, 1, 0), (0, 0, 0, 0, 0), (1, 1, 1, 1, 1)]:
            assert protocol.announced(inputs, seed=1) == inputs

    def test_silent_dealer_disqualified(self):
        protocol = CGMAPedersen(5, 2, security_bits=16)
        announced = protocol.announced(
            (1, 1, 1, 1, 1), adversary=Adversary(corrupted=[3]), seed=2
        )
        assert announced == (1, 1, 0, 1, 1)

    def test_share_serialization_is_pair(self):
        protocol = CGMAPedersen(5, 2, security_bits=16)
        execution = protocol.run((1, 0, 1, 1, 0), seed=3)
        share_messages = [
            m for m in execution.messages_in_round(1) if m.tag == "cgma:1:share"
        ]
        assert share_messages
        for message in share_messages:
            value, blinding = message.payload
            assert isinstance(value, int) and isinstance(blinding, int)

    def test_commitments_hide_dealt_bit_perfectly(self):
        """With Pedersen VSS the commitment to the secret is not g^s: the
        same public commitment vector structure arises for either bit."""
        protocol = CGMAPedersen(5, 2, security_bits=16)
        execution = protocol.run((1, 0, 1, 1, 0), seed=4)
        group = execution.config["group"]
        commitments = [
            m.payload
            for m in execution.messages_in_round(1)
            if m.tag == "cgma:1:com"
        ][0]
        # Feldman would put g^1 at index 0 for a dealt 1; Pedersen must not.
        assert commitments[0] != int(group.generator)

    def test_bad_share_complaint_resolution_with_pairs(self):
        """A corrupted Pedersen dealer that shortchanges a party and then
        resolves the complaint correctly survives."""

        class BadShareResolver(Adversary):
            def setup(self, n, config, corrupted_inputs, rng, session=""):
                super().setup(n, config, corrupted_inputs, rng, session)
                from repro.crypto.commitment import PedersenParameters
                from repro.crypto.vss import PedersenVSS

                parameters = PedersenParameters.generate(
                    config["group"], seed=b"cgma-pedersen"
                )
                self.vss = PedersenVSS(parameters, 2, 5)
                self.dealing = self.vss.deal(1, rng)
                self.complainers = set()

            def _serialize(self, share):
                return (int(share.value), int(share.blinding))

            def act(self, round_number, rushed):
                if round_number == 4:  # dealer 2's dealing round
                    drafts = [
                        bc(
                            tuple(int(c) for c in self.dealing.commitments),
                            tag="cgma:2:com",
                        )
                    ]
                    for j in (1, 3, 4, 5):
                        payload = self._serialize(self.dealing.shares[j])
                        if j == 4:
                            payload = (payload[0] + 1, payload[1])  # corrupt one
                        drafts.append(send(j, payload, tag="cgma:2:share"))
                    return {2: drafts}
                if round_number == 5:
                    self.complainers = {
                        m.sender
                        for m in rushed[2].broadcasts(tag="cgma:2:complain")
                    }
                    return {2: []}
                if round_number == 6:
                    published = tuple(
                        (j, self._serialize(self.dealing.shares[j]))
                        for j in sorted(self.complainers)
                    )
                    return {2: [bc(published, tag="cgma:2:resolve")]}
                return {2: []}

        protocol = CGMAPedersen(5, 2, security_bits=16)
        announced = protocol.announced(
            (1, 1, 1, 1, 1), adversary=BadShareResolver(corrupted=[2]), seed=5
        )
        assert announced == (1, 1, 1, 1, 1)

    def test_malformed_share_payload_triggers_complaint(self):
        """Garbage share payloads parse to None and are complained about."""

        class GarbageShares(Adversary):
            def setup(self, n, config, corrupted_inputs, rng, session=""):
                super().setup(n, config, corrupted_inputs, rng, session)
                from repro.crypto.commitment import PedersenParameters
                from repro.crypto.vss import PedersenVSS

                parameters = PedersenParameters.generate(
                    config["group"], seed=b"cgma-pedersen"
                )
                self.vss = PedersenVSS(parameters, 2, 5)
                self.dealing = self.vss.deal(1, rng)

            def act(self, round_number, rushed):
                if round_number == 4:
                    drafts = [
                        bc(
                            tuple(int(c) for c in self.dealing.commitments),
                            tag="cgma:2:com",
                        )
                    ]
                    drafts += [
                        send(j, "not-a-share", tag="cgma:2:share")
                        for j in (1, 3, 4, 5)
                    ]
                    return {2: drafts}
                return {2: []}  # never resolves the complaints

        protocol = CGMAPedersen(5, 2, security_bits=16)
        announced = protocol.announced(
            (1, 1, 1, 1, 1), adversary=GarbageShares(corrupted=[2]), seed=6
        )
        assert announced == (1, 0, 1, 1, 1)
