"""Tests for BGW evaluation and the trusted-party ideal process."""

import random

import pytest

from repro.crypto.field import PrimeField
from repro.errors import InvalidParameterError, ProtocolError
from repro.mpc.bgw import BGWProtocol, bgw_evaluate
from repro.mpc.builder import CircuitBuilder
from repro.mpc.circuit import Circuit
from repro.mpc.gfunc import GFunctionality, build_g_circuit, g_reference
from repro.mpc.ideal import (
    FSBFunctionality,
    TrustedPartyMailbox,
    TrustedPartyProtocol,
)
from repro.net.adversary import Adversary, PassiveAdversary, ProgramAdversary
from repro.net.network import run_protocol

F = PrimeField(101)


def product_circuit():
    """out = x1 * x2 + x3 over GF(101)."""
    circuit = Circuit(F)
    x1 = circuit.input(1, "v")
    x2 = circuit.input(2, "v")
    x3 = circuit.input(3, "v")
    circuit.mark_output(circuit.add(circuit.mul(x1, x2), x3))
    return circuit


class TestBGWBasics:
    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError):
            BGWProtocol(product_circuit(), n=4, t=2)

    def test_linear_only_circuit(self):
        circuit = Circuit(F)
        x1 = circuit.input(1, "v")
        x2 = circuit.input(2, "v")
        circuit.mark_output(circuit.add(circuit.scale(x1, 3), x2))
        protocol = BGWProtocol(circuit, n=3, t=1)
        execution = run_protocol(
            protocol, [{"v": 5}, {"v": 7}, {}], seed=1
        )
        for i in (1, 2, 3):
            assert execution.outputs[i] == (22,)

    def test_multiplication(self):
        protocol = BGWProtocol(product_circuit(), n=3, t=1)
        execution = run_protocol(
            protocol, [{"v": 6}, {"v": 7}, {"v": 9}], seed=2
        )
        for i in (1, 2, 3):
            assert execution.outputs[i] == ((6 * 7 + 9) % 101,)

    def test_results_identical_across_parties_and_seeds(self):
        protocol = BGWProtocol(product_circuit(), n=5, t=2)
        for seed in range(3):
            execution = run_protocol(
                protocol,
                [{"v": 2}, {"v": 3}, {"v": 4}, {}, {}],
                seed=seed,
            )
            values = {execution.outputs[i] for i in range(1, 6)}
            assert values == {(10,)}

    def test_missing_input_defaults_to_zero(self):
        protocol = BGWProtocol(product_circuit(), n=3, t=1)
        execution = run_protocol(protocol, [{}, {"v": 7}, {"v": 9}], seed=3)
        assert execution.outputs[1] == (9,)

    def test_round_complexity_scales_with_mul_depth(self):
        # depth-2 multiplication chain: ((x1*x2)*x3)
        circuit = Circuit(F)
        x1 = circuit.input(1, "v")
        x2 = circuit.input(2, "v")
        x3 = circuit.input(3, "v")
        circuit.mark_output(circuit.mul(circuit.mul(x1, x2), x3))
        protocol = BGWProtocol(circuit, n=3, t=1)
        execution = run_protocol(
            protocol, [{"v": 2}, {"v": 3}, {"v": 4}], seed=4
        )
        assert execution.outputs[1] == (24,)
        # input round + 2 mul rounds + output round
        assert execution.communication_rounds == 4

    def test_passive_corruption_does_not_change_result(self):
        protocol = BGWProtocol(product_circuit(), n=5, t=2)
        execution = run_protocol(
            protocol,
            [{"v": 2}, {"v": 3}, {"v": 4}, {}, {}],
            adversary=PassiveAdversary(corrupted=[4, 5]),
            seed=5,
        )
        for i in (1, 2, 3):
            assert execution.outputs[i] == (10,)

    def test_privacy_of_shares(self):
        """t shares leak nothing: party 3's view of party 1's input share is
        statistically independent of the input (sampled check)."""
        circuit = Circuit(F)
        x1 = circuit.input(1, "v")
        x2 = circuit.input(2, "v")
        circuit.mark_output(circuit.add(x1, x2))
        samples = 300
        parity_rate = {}
        for secret in (0, 50):
            parity_ones = 0
            for seed in range(samples):
                protocol = BGWProtocol(circuit, n=3, t=1)
                execution = run_protocol(
                    protocol, [{"v": secret}, {"v": 1}, {}], seed=seed
                )
                share_messages = [
                    m
                    for m in execution.messages_in_round(1)
                    if m.sender == 1 and m.recipient == 3
                ]
                value = share_messages[0].payload[0][1]
                parity_ones += value % 2
            parity_rate[secret] = parity_ones / samples
        # The parity of a uniform share is (nearly) unbiased regardless of
        # the secret; a leak would show up as a gap between the two rates.
        assert abs(parity_rate[0] - parity_rate[50]) < 0.12


class TestBGWOnG:
    @pytest.mark.parametrize("b_mask", [(0, 0, 0), (1, 1, 0), (1, 0, 1)])
    def test_g_circuit_end_to_end(self, b_mask):
        n = 3
        circuit = build_g_circuit(n)
        protocol = BGWProtocol(circuit, n=n, t=1)
        xs = (1, 0, 1)
        inputs = [
            {"x": xs[i], "b": b_mask[i], "rho": 0} for i in range(n)
        ]
        execution = run_protocol(protocol, inputs, seed=6)
        w = execution.outputs[1]
        raised = [i for i in range(n) if b_mask[i] == 1]
        if len(raised) == 2:
            assert (w[0] ^ w[1] ^ w[2]) == 0
        else:
            assert w == xs

    def test_g_circuit_random_coin_via_rho(self):
        n = 3
        circuit = build_g_circuit(n)
        protocol = BGWProtocol(circuit, n=n, t=1)
        inputs = [
            {"x": 0, "b": 1, "rho": 1},
            {"x": 0, "b": 1, "rho": 0},
            {"x": 0, "b": 0, "rho": 1},
        ]
        execution = run_protocol(protocol, inputs, seed=7)
        # r = 1^0^1 = 0, y = x3 = 0 -> w = (0, 0, 0)
        assert execution.outputs[1] == (0, 0, 0)


class TestTrustedParty:
    def test_fsb_roundtrip(self):
        protocol = TrustedPartyProtocol(FSBFunctionality(4))
        execution = run_protocol(protocol, [1, 0, 1, 1], seed=8)
        for i in range(1, 5):
            assert execution.outputs[i] == (1, 0, 1, 1)

    def test_silent_corrupted_party_defaults(self):
        protocol = TrustedPartyProtocol(FSBFunctionality(3))
        execution = run_protocol(
            protocol, [1, 1, 1], adversary=Adversary(corrupted=[2]), seed=9
        )
        assert execution.outputs[1] == (1, 0, 1)

    def test_no_network_traffic(self):
        protocol = TrustedPartyProtocol(FSBFunctionality(3))
        execution = run_protocol(protocol, [1, 0, 1], seed=10)
        assert execution.all_messages() == []

    def test_double_submit_rejected(self):
        mailbox = TrustedPartyMailbox(FSBFunctionality(2), random.Random(0))
        mailbox.submit(1, 1)
        with pytest.raises(ProtocolError):
            mailbox.submit(1, 0)

    def test_submit_after_freeze_ignored(self):
        mailbox = TrustedPartyMailbox(FSBFunctionality(2), random.Random(0))
        mailbox.submit(1, 1)
        assert mailbox.result(1) == (1, 0)
        mailbox.submit(2, 1)  # too late; silently ignored
        assert mailbox.result(2) == (1, 0)
        assert mailbox.frozen

    def test_early_peek_cannot_choose_input(self):
        """A corrupted program that reads the result before submitting gets
        the early view but its own input is frozen to the default."""

        def peeker(ctx, value):
            mailbox = ctx.config["mailbox"]
            peeked = mailbox.result(ctx.party_id)
            mailbox.submit(ctx.party_id, 1 - peeked[0])  # try to anti-correlate
            yield []
            return mailbox.result(ctx.party_id)

        protocol = TrustedPartyProtocol(FSBFunctionality(3))
        execution = run_protocol(
            protocol,
            [1, 1, None],
            adversary=ProgramAdversary({3: peeker}),
            seed=11,
        )
        # Party 3's announced value is the default 0, not the adaptive 1-x1.
        assert execution.outputs[1] == (1, 1, 0)

    def test_g_functionality_trusted_party(self):
        protocol = TrustedPartyProtocol(GFunctionality(4))
        execution = run_protocol(
            protocol, [(1, 0), (0, 0), (1, 0), (0, 0)], seed=12
        )
        assert execution.outputs[2] == (1, 0, 1, 0)
