"""Tests for the statistics, trend and table-rendering helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BernoulliEstimate,
    Decision,
    TrendVerdict,
    assess_trend,
    decide,
    empirical_tv,
    hoeffding_halfwidth,
    render_figure1,
    render_table,
)
from repro.errors import ExperimentError


class TestHoeffding:
    def test_halfwidth_decreases_with_samples(self):
        assert hoeffding_halfwidth(100) > hoeffding_halfwidth(1000)

    def test_known_value(self):
        # sqrt(ln(200)/200) for 99% confidence at n=100.
        expected = math.sqrt(math.log(2 / 0.01) / (2 * 100))
        assert hoeffding_halfwidth(100, 0.99) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            hoeffding_halfwidth(0)
        with pytest.raises(ExperimentError):
            hoeffding_halfwidth(10, confidence=1.0)

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_halfwidth_positive(self, n):
        assert hoeffding_halfwidth(n) > 0


class TestBernoulliEstimate:
    def test_estimate_and_bounds(self):
        estimate = BernoulliEstimate(successes=30, samples=100)
        assert estimate.estimate == pytest.approx(0.3)
        assert 0.0 <= estimate.lower < estimate.estimate < estimate.upper <= 1.0

    def test_bounds_clamped(self):
        assert BernoulliEstimate(0, 10).lower == 0.0
        assert BernoulliEstimate(10, 10).upper == 1.0


class TestDecide:
    def test_violated(self):
        assert decide(gap=0.5, error=0.05) == Decision.VIOLATED

    def test_consistent(self):
        assert decide(gap=0.01, error=0.02) == Decision.CONSISTENT

    def test_inconclusive(self):
        # Large estimate, but the error bar straddles the threshold.
        assert decide(gap=0.14, error=0.05) == Decision.INCONCLUSIVE

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            decide(gap=-0.1, error=0.0)

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=0.2),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_returns_a_decision(self, gap, error):
        assert decide(gap, error) in set(Decision)


class TestEmpiricalTV:
    def test_identical(self):
        assert empirical_tv({"a": 5, "b": 5}, 10, {"a": 50, "b": 50}, 100) == 0.0

    def test_disjoint(self):
        assert empirical_tv({"a": 10}, 10, {"b": 10}, 10) == pytest.approx(1.0)

    def test_half(self):
        assert empirical_tv({"a": 10}, 10, {"a": 5, "b": 5}, 10) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            empirical_tv({}, 0, {"a": 1}, 1)


class TestTrend:
    def test_violated_trend(self):
        verdict = assess_trend(
            {16: 0.4, 24: 0.42, 32: 0.39},
            {16: 0.05, 24: 0.05, 32: 0.05},
        )
        assert verdict.decision == Decision.VIOLATED

    def test_consistent_trend(self):
        verdict = assess_trend(
            {16: 0.02, 24: 0.015, 32: 0.01},
            {16: 0.02, 24: 0.02, 32: 0.02},
        )
        assert verdict.decision == Decision.CONSISTENT

    def test_growth_makes_inconclusive(self):
        verdict = assess_trend(
            {16: 0.0, 24: 0.02, 32: 0.06},
            {16: 0.005, 24: 0.005, 32: 0.005},
        )
        assert verdict.decision == Decision.INCONCLUSIVE

    def test_mixed_is_inconclusive(self):
        verdict = assess_trend({16: 0.4, 32: 0.01}, {16: 0.05, 32: 0.05})
        assert verdict.decision == Decision.INCONCLUSIVE

    def test_validation(self):
        with pytest.raises(ExperimentError):
            assess_trend({}, {})
        with pytest.raises(ExperimentError):
            assess_trend({16: 0.1}, {24: 0.1})

    def test_gaps_recorded_sorted(self):
        verdict = assess_trend({32: 0.4, 16: 0.45}, {32: 0.01, 16: 0.01})
        assert [k for k, _ in verdict.gaps] == [16, 32]


class TestTables:
    def test_render_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "long-name" in text
        # name column is padded to len("long-name") = 9 plus two spaces.
        assert lines[2].index("value") == 11

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_render_figure1(self):
        text = render_figure1(
            {
                ("Sb", "CR"): {"class": "D(CR)", "holds": True},
                ("G", "CR"): {"class": "D(G)", "holds": False, "note": "Pi_G"},
            }
        )
        assert "==>" in text
        assert "=/=>" in text
        assert "Pi_G" in text
