"""Shamir secret sharing over GF(p).

A (t, n) sharing hides a secret in the constant term of a random degree-t
polynomial; any t+1 shares reconstruct, any t reveal nothing.  Party i
holds the evaluation at x = i (1-based, so x = 0 is reserved for the
secret itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..errors import InvalidParameterError, ShareError
from .field import FieldElement, IntoElement, PrimeField
from .polynomial import Polynomial, lagrange_coefficients_at_zero


@dataclass(frozen=True)
class Share:
    """One party's share: the evaluation point x and the value f(x)."""

    x: int
    value: FieldElement


class ShamirSharing:
    """A (threshold, n) Shamir scheme over a given prime field."""

    def __init__(self, field: PrimeField, threshold: int, parties: int):
        if parties < 1:
            raise InvalidParameterError("need at least one party")
        if not 0 <= threshold < parties:
            raise InvalidParameterError(
                f"threshold must be in [0, parties), got t={threshold}, n={parties}"
            )
        if field.modulus <= parties:
            raise InvalidParameterError(
                f"field modulus {field.modulus} too small for {parties} parties"
            )
        self.field = field
        self.threshold = threshold
        self.parties = parties

    def share(self, secret: IntoElement, rng) -> Tuple[Polynomial, Dict[int, Share]]:
        """Share a secret; returns the dealing polynomial and per-party shares.

        The polynomial is returned so verifiable schemes (VSS) can commit to
        its coefficients; plain callers should discard it.
        """
        polynomial = Polynomial.random(
            self.field, self.threshold, rng, constant_term=self.field.element(secret)
        )
        shares = {
            i: Share(i, polynomial(i)) for i in range(1, self.parties + 1)
        }
        return polynomial, shares

    def reconstruct(self, shares: Iterable[Share]) -> FieldElement:
        """Reconstruct the secret from at least threshold+1 shares."""
        share_list = list(shares)
        if len({s.x for s in share_list}) != len(share_list):
            raise ShareError("duplicate shares supplied")
        if len(share_list) < self.threshold + 1:
            raise ShareError(
                f"need {self.threshold + 1} shares, got {len(share_list)}"
            )
        subset = share_list[: self.threshold + 1]
        coefficients = lagrange_coefficients_at_zero(
            self.field, [s.x for s in subset]
        )
        secret = self.field.zero()
        for coefficient, share in zip(coefficients, subset, strict=True):
            secret = secret + coefficient * share.value
        return secret

    def reconstruct_with_errors(self, shares: Sequence[Share]) -> FieldElement:
        """Reconstruct while checking global consistency of all shares.

        All supplied shares must lie on a single degree-<=threshold
        polynomial; otherwise a :class:`ShareError` is raised.  (This is the
        error-detection — not correction — mode used by protocols that have
        already filtered shares through commitments.)
        """
        from .polynomial import lagrange_interpolate

        if len(shares) < self.threshold + 1:
            raise ShareError("not enough shares")
        polynomial = lagrange_interpolate(
            self.field, [(s.x, s.value) for s in shares[: self.threshold + 1]]
        )
        for share in shares:
            if polynomial(share.x) != share.value:
                raise ShareError(f"share at x={share.x} is inconsistent")
        if polynomial.degree > self.threshold:
            raise ShareError("shares define a polynomial of excessive degree")
        return polynomial(0)

    def add_shares(self, left: Share, right: Share) -> Share:
        """Locally add two shares of different secrets (linear homomorphism)."""
        if left.x != right.x:
            raise ShareError("cannot add shares at different evaluation points")
        return Share(left.x, left.value + right.value)

    def scale_share(self, share: Share, scalar: IntoElement) -> Share:
        return Share(share.x, share.value * self.field.element(scalar))
