"""Verifiable secret sharing: Feldman and Pedersen variants.

VSS is the engine of the CGMA-style simultaneous broadcast protocol [7]:
each sender deals its input verifiably *before* any value is revealed, so
a rushing adversary learns nothing it can correlate with.

* Feldman VSS publishes ``g^{a_j}`` for every coefficient of the dealing
  polynomial — computationally hiding (discrete log), perfectly binding.
* Pedersen VSS publishes ``g^{a_j} h^{b_j}`` using a companion polynomial —
  perfectly hiding, computationally binding.

Both expose ``deal`` / ``verify_share`` / ``reconstruct``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .. import fastpath
from ..errors import InvalidParameterError, ShareError
from ..obs import runtime as _obs
from .commitment import PedersenParameters
from .field import FieldElement
from .group import GroupElement, SchnorrGroup
from .polynomial import lagrange_coefficients_at_zero
from .secret_sharing import ShamirSharing, Share


#: Minimum batch size before the RLC batch-verification path kicks in;
#: below this the per-item fastpath is at least as fast.
BATCH_MIN_SHARES = 3


def _expected_from_commitments(
    group: SchnorrGroup, commitments: Sequence[GroupElement], x: int
) -> GroupElement:
    """``prod_j commitments[j] ** (x**j mod q)`` with mirrored cost counters.

    The naive loop performs one exponentiation and one multiplication per
    commitment; the fastpath kernel computes the identical product in one
    pass (Horner / shared ladder), so the logical counts are charged here
    in bulk to keep measured-cost artifacts bit-identical.
    """
    if _obs.metrics is not None:
        _obs.metrics.inc("crypto.group.exp", len(commitments))
        _obs.metrics.inc("crypto.group.mul", len(commitments))
    value = fastpath.vss_expected(
        group.p, group.q, [c.value for c in commitments], x
    )
    return GroupElement(group, value)


@dataclass(frozen=True)
class FeldmanDealing:
    """Public commitments plus the private per-party shares of one dealing."""

    commitments: Tuple[GroupElement, ...]
    shares: Dict[int, Share]


@dataclass(frozen=True)
class PedersenShare:
    """A Pedersen VSS share: evaluations of both the value and blinding polynomials."""

    x: int
    value: FieldElement
    blinding: FieldElement


@dataclass(frozen=True)
class PedersenDealing:
    commitments: Tuple[GroupElement, ...]
    shares: Dict[int, PedersenShare]


class FeldmanVSS:
    """Feldman verifiable secret sharing over a Schnorr group."""

    def __init__(self, group: SchnorrGroup, threshold: int, parties: int):
        self.group = group
        self.field = group.exponent_field
        self.sharing = ShamirSharing(self.field, threshold, parties)
        self.threshold = threshold
        self.parties = parties

    def deal(self, secret: int, rng) -> FeldmanDealing:
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.vss.deals")
        polynomial, shares = self.sharing.share(secret, rng)
        coefficients = list(polynomial.coefficients)
        # Pad so the commitment vector always has threshold+1 entries even if
        # trailing coefficients happen to be zero.
        while len(coefficients) < self.threshold + 1:
            coefficients.append(self.field.zero())
        commitments = tuple(self.group.power(c.value) for c in coefficients)
        return FeldmanDealing(commitments=commitments, shares=shares)

    def verify_share(self, commitments: Sequence[GroupElement], share: Share) -> bool:
        """Check g^{f(i)} against the committed coefficients."""
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.vss.shares_verified")
        if len(commitments) != self.threshold + 1:
            if _obs.metrics is not None:
                _obs.metrics.inc("crypto.vss.shares_rejected")
            return False
        if fastpath.enabled():
            expected = _expected_from_commitments(self.group, commitments, share.x)
        else:
            expected = self.group.identity()
            x_power = 1
            for commitment in commitments:
                expected = expected * (commitment ** x_power)
                x_power = (x_power * share.x) % self.group.q
        ok = self.group.power(share.value.value) == expected
        if not ok and _obs.metrics is not None:
            _obs.metrics.inc("crypto.vss.shares_rejected")
        return ok

    def verify_shares(
        self, commitments: Sequence[GroupElement], shares: Sequence[Share]
    ) -> List[bool]:
        """Per-share verdicts, batched: one RLC multi-exp instead of m checks.

        Equivalent to ``[self.verify_share(commitments, s) for s in shares]``
        including the mirrored ``crypto.*`` counter totals — batching is a
        cost optimization, not a semantics change.  A batch *accept* vouches
        for every share (soundness error ~2**-COMBINER_BITS, see
        :mod:`repro.fastpath.batch`); a batch *reject* falls back to silent
        per-item kernel checks so the individual verdicts are exact.
        """
        shares = list(shares)
        count = len(shares)
        if (
            count < BATCH_MIN_SHARES
            or not fastpath.enabled()
            or len(commitments) != self.threshold + 1
        ):
            return [self.verify_share(commitments, s) for s in shares]
        group = self.group
        generator = group.generator.value
        commitment_values = [c.value for c in commitments]
        values = [group.normalize_exponent(s.value.value) for s in shares]
        xs = [s.x for s in shares]
        if fastpath.feldman_batch_verify(
            group.p, group.q, generator, commitment_values, xs, values
        ):
            verdicts = [True] * count
        else:
            verdicts = [
                fastpath.pow_mod(group.p, group.q, generator, value)
                == fastpath.vss_expected(group.p, group.q, commitment_values, x)
                for x, value in zip(xs, values, strict=True)
            ]
        if _obs.metrics is not None:
            # Mirror the naive per-share cost: threshold+2 exponentiations
            # and threshold+1 multiplications each, plus the verdict counters.
            _obs.metrics.inc("crypto.vss.shares_verified", count)
            _obs.metrics.inc("crypto.group.exp", count * (self.threshold + 2))
            _obs.metrics.inc("crypto.group.mul", count * (self.threshold + 1))
            rejected = verdicts.count(False)
            if rejected:
                _obs.metrics.inc("crypto.vss.shares_rejected", rejected)
        return verdicts

    def commitment_to_secret(self, commitments: Sequence[GroupElement]) -> GroupElement:
        """The implied commitment g^s to the shared secret (x = 0)."""
        if not commitments:
            raise InvalidParameterError("empty commitment vector")
        return commitments[0]

    def reconstruct(
        self, commitments: Sequence[GroupElement], shares: Iterable[Share]
    ) -> FieldElement:
        """Reconstruct from shares, discarding any that fail verification."""
        shares = list(shares)
        verdicts = self.verify_shares(commitments, shares)
        valid = [s for s, ok in zip(shares, verdicts, strict=True) if ok]
        seen = {}
        for share in valid:
            seen.setdefault(share.x, share)
        unique = list(seen.values())
        if len(unique) < self.threshold + 1:
            raise ShareError(
                f"only {len(unique)} valid shares; need {self.threshold + 1}"
            )
        return self.sharing.reconstruct(unique)


class PedersenVSS:
    """Pedersen verifiable secret sharing (perfectly hiding)."""

    def __init__(
        self,
        parameters: PedersenParameters,
        threshold: int,
        parties: int,
    ):
        self.parameters = parameters
        self.group = parameters.group
        self.field = self.group.exponent_field
        self.sharing = ShamirSharing(self.field, threshold, parties)
        self.threshold = threshold
        self.parties = parties

    def deal(self, secret: int, rng) -> PedersenDealing:
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.vss.deals")
        value_poly, value_shares = self.sharing.share(secret, rng)
        blind_poly, blind_shares = self.sharing.share(self.field.random(rng), rng)
        value_coeffs = list(value_poly.coefficients)
        blind_coeffs = list(blind_poly.coefficients)
        while len(value_coeffs) < self.threshold + 1:
            value_coeffs.append(self.field.zero())
        while len(blind_coeffs) < self.threshold + 1:
            blind_coeffs.append(self.field.zero())
        commitments = tuple(
            (self.parameters.g ** a.value) * (self.parameters.h ** b.value)
            for a, b in zip(value_coeffs, blind_coeffs, strict=True)
        )
        shares = {
            i: PedersenShare(
                x=i, value=value_shares[i].value, blinding=blind_shares[i].value
            )
            for i in range(1, self.parties + 1)
        }
        return PedersenDealing(commitments=commitments, shares=shares)

    def verify_share(
        self, commitments: Sequence[GroupElement], share: PedersenShare
    ) -> bool:
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.vss.shares_verified")
        if len(commitments) != self.threshold + 1:
            if _obs.metrics is not None:
                _obs.metrics.inc("crypto.vss.shares_rejected")
            return False
        if fastpath.enabled():
            expected = _expected_from_commitments(self.group, commitments, share.x)
            # g**value * h**blinding through the fixed-base kernel; mirror
            # the naive cost of two exponentiations and one multiplication.
            if _obs.metrics is not None:
                _obs.metrics.inc("crypto.group.exp", 2)
                _obs.metrics.inc("crypto.group.mul")
            actual = GroupElement(
                self.group,
                fastpath.pedersen_commit(
                    self.group.p,
                    self.group.q,
                    self.parameters.g.value,
                    self.parameters.h.value,
                    self.group.normalize_exponent(share.value.value),
                    self.group.normalize_exponent(share.blinding.value),
                ),
            )
        else:
            expected = self.group.identity()
            x_power = 1
            for commitment in commitments:
                expected = expected * (commitment ** x_power)
                x_power = (x_power * share.x) % self.group.q
            actual = (self.parameters.g ** share.value.value) * (
                self.parameters.h ** share.blinding.value
            )
        ok = actual == expected
        if not ok and _obs.metrics is not None:
            _obs.metrics.inc("crypto.vss.shares_rejected")
        return ok

    def verify_shares(
        self, commitments: Sequence[GroupElement], shares: Sequence[PedersenShare]
    ) -> List[bool]:
        """Per-share verdicts via RLC batching (see :meth:`FeldmanVSS.verify_shares`)."""
        shares = list(shares)
        count = len(shares)
        if (
            count < BATCH_MIN_SHARES
            or not fastpath.enabled()
            or len(commitments) != self.threshold + 1
        ):
            return [self.verify_share(commitments, s) for s in shares]
        group = self.group
        g = self.parameters.g.value
        h = self.parameters.h.value
        commitment_values = [c.value for c in commitments]
        values = [group.normalize_exponent(s.value.value) for s in shares]
        blindings = [group.normalize_exponent(s.blinding.value) for s in shares]
        xs = [s.x for s in shares]
        if fastpath.pedersen_vss_batch_verify(
            group.p, group.q, g, h, commitment_values, xs, values, blindings
        ):
            verdicts = [True] * count
        else:
            verdicts = [
                fastpath.pedersen_commit(group.p, group.q, g, h, value, blinding)
                == fastpath.vss_expected(group.p, group.q, commitment_values, x)
                for x, value, blinding in zip(xs, values, blindings, strict=True)
            ]
        if _obs.metrics is not None:
            # Mirror the naive per-share cost: threshold+3 exponentiations
            # and threshold+2 multiplications each, plus the verdict counters.
            _obs.metrics.inc("crypto.vss.shares_verified", count)
            _obs.metrics.inc("crypto.group.exp", count * (self.threshold + 3))
            _obs.metrics.inc("crypto.group.mul", count * (self.threshold + 2))
            rejected = verdicts.count(False)
            if rejected:
                _obs.metrics.inc("crypto.vss.shares_rejected", rejected)
        return verdicts

    def reconstruct(
        self, commitments: Sequence[GroupElement], shares: Iterable[PedersenShare]
    ) -> FieldElement:
        shares = list(shares)
        verdicts = self.verify_shares(commitments, shares)
        valid = [s for s, ok in zip(shares, verdicts, strict=True) if ok]
        seen = {}
        for share in valid:
            seen.setdefault(share.x, share)
        unique = list(seen.values())
        if len(unique) < self.threshold + 1:
            raise ShareError(
                f"only {len(unique)} valid shares; need {self.threshold + 1}"
            )
        subset = unique[: self.threshold + 1]
        coefficients = lagrange_coefficients_at_zero(self.field, [s.x for s in subset])
        secret = self.field.zero()
        for coefficient, share in zip(coefficients, subset, strict=True):
            secret = secret + coefficient * share.value
        return secret
