"""Cryptographic substrate: fields, groups, commitments, sharing, VSS, signatures.

Everything is implemented from scratch on top of ``hashlib`` and Python
integers.  Parameters are deterministic per security level ``k`` so runs
are reproducible; see :mod:`repro.crypto.group`.
"""

from .commitment import (
    HashCommitment,
    Opening,
    PedersenCommitment,
    PedersenParameters,
    TrapdoorCommitment,
)
from .field import FieldElement, PrimeField, is_probable_prime, next_prime
from .group import GroupElement, SchnorrGroup, safe_prime_parameters
from .polynomial import (
    Polynomial,
    lagrange_coefficients_at_zero,
    lagrange_interpolate,
)
from .prg import PRF, PRG, random_oracle, random_oracle_int
from .secret_sharing import ShamirSharing, Share
from .sigma import (
    OpeningProof,
    SchnorrProof,
    check_opening,
    prove_discrete_log,
    prove_opening,
    verify_discrete_log,
    verify_opening,
)
from .signatures import KeyDirectory, KeyPair, Signature, sign, verify
from .vss import FeldmanDealing, FeldmanVSS, PedersenDealing, PedersenShare, PedersenVSS

__all__ = [
    "FieldElement",
    "PrimeField",
    "is_probable_prime",
    "next_prime",
    "GroupElement",
    "SchnorrGroup",
    "safe_prime_parameters",
    "Polynomial",
    "lagrange_coefficients_at_zero",
    "lagrange_interpolate",
    "PRG",
    "PRF",
    "random_oracle",
    "random_oracle_int",
    "HashCommitment",
    "Opening",
    "PedersenCommitment",
    "PedersenParameters",
    "TrapdoorCommitment",
    "ShamirSharing",
    "Share",
    "KeyDirectory",
    "KeyPair",
    "Signature",
    "sign",
    "verify",
    "SchnorrProof",
    "OpeningProof",
    "prove_discrete_log",
    "verify_discrete_log",
    "prove_opening",
    "verify_opening",
    "check_opening",
    "FeldmanVSS",
    "FeldmanDealing",
    "PedersenVSS",
    "PedersenDealing",
    "PedersenShare",
]
