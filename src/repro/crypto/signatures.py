"""Schnorr signatures and a simple PKI directory.

Dolev--Strong authenticated broadcast needs unforgeable signatures with a
public-key infrastructure known to all parties.  We implement textbook
Schnorr signatures over the library's Schnorr groups with a Fiat--Shamir
challenge from the random oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..errors import InvalidParameterError, SignatureError
from .group import GroupElement, SchnorrGroup
from .prg import random_oracle_int


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature (challenge, response)."""

    challenge: int
    response: int


@dataclass(frozen=True)
class KeyPair:
    group: SchnorrGroup
    secret_key: int
    public_key: GroupElement

    @classmethod
    def generate(cls, group: SchnorrGroup, rng) -> "KeyPair":
        secret = rng.randrange(1, group.q)
        return cls(group=group, secret_key=secret, public_key=group.power(secret))


def sign(keypair: KeyPair, message: Any, rng) -> Signature:
    """Sign a canonically-encodable message."""
    group = keypair.group
    nonce = rng.randrange(1, group.q)
    commitment = group.power(nonce)
    challenge = random_oracle_int(
        "schnorr-sig",
        group.p,
        int(keypair.public_key),
        int(commitment),
        message,
        modulus=group.q,
    )
    response = (nonce + challenge * keypair.secret_key) % group.q
    return Signature(challenge=challenge, response=response)


def verify(
    group: SchnorrGroup, public_key: GroupElement, message: Any, signature: Signature
) -> bool:
    """Verify a Schnorr signature; never raises for malformed signatures."""
    try:
        challenge = int(signature.challenge) % group.q
        response = int(signature.response) % group.q
    except (TypeError, ValueError, AttributeError):
        return False
    # Recompute R = g^s * y^{-c} and check the challenge matches.
    commitment = group.power(response) * (public_key ** challenge).inverse()
    expected = random_oracle_int(
        "schnorr-sig",
        group.p,
        int(public_key),
        int(commitment),
        message,
        modulus=group.q,
    )
    return expected == challenge


class KeyDirectory:
    """A PKI: party index -> key pair, with lookup of public keys.

    Built once at protocol setup; honest parties only ever see public keys
    of other parties, but the directory also stores secret keys so the
    simulation can hand each party its own signing key.
    """

    def __init__(self, group: SchnorrGroup):
        self.group = group
        self._keys: Dict[int, KeyPair] = {}

    @classmethod
    def generate(cls, group: SchnorrGroup, parties: int, rng) -> "KeyDirectory":
        directory = cls(group)
        for index in range(1, parties + 1):
            directory._keys[index] = KeyPair.generate(group, rng)
        return directory

    def keypair(self, party: int) -> KeyPair:
        try:
            return self._keys[party]
        except KeyError:
            raise InvalidParameterError(f"no key registered for party {party}") from None

    def public_key(self, party: int) -> GroupElement:
        return self.keypair(party).public_key

    def sign(self, party: int, message: Any, rng) -> Signature:
        return sign(self.keypair(party), message, rng)

    def verify(self, party: int, message: Any, signature: Signature) -> bool:
        return verify(self.group, self.public_key(party), message, signature)

    def check(self, party: int, message: Any, signature: Signature) -> None:
        if not self.verify(party, message, signature):
            raise SignatureError(f"invalid signature attributed to party {party}")
