"""Schnorr groups: prime-order subgroups of Z_p^* with deterministic setup.

A :class:`SchnorrGroup` is the order-q subgroup of Z_p^* where p = 2q + 1 is
a safe prime.  The discrete-log problem in this subgroup is the hardness
assumption behind the Pedersen commitments, Feldman VSS, Schnorr signatures
and sigma protocols built on top.

Parameters are generated *deterministically* from the security parameter k
(the bit length of q), so every run of the library agrees on the group for
a given k and results stay reproducible.  Small k values (24--64 bits) keep
simulation runs fast; they are simulation-grade, not deployment-grade, and
the library measures "negligible in k" as a trend across several k values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .. import fastpath
from ..errors import InvalidParameterError
from ..obs import runtime as _obs
from . import backend as _backend
from .field import PrimeField, is_probable_prime

MIN_SECURITY_BITS = 8
MAX_SECURITY_BITS = 512


def _candidate_stream(bits: int, label: bytes):
    """Deterministic stream of odd ``bits``-bit candidates derived from a label."""
    counter = 0
    while True:
        digest = hashlib.sha256(label + counter.to_bytes(8, "big")).digest()
        value = int.from_bytes(digest * ((bits // 256) + 1), "big")
        value &= (1 << bits) - 1
        value |= (1 << (bits - 1)) | 1  # force exact bit length and oddness
        yield value
        counter += 1


# Explicit dicts rather than functools.lru_cache so the parallel engine can
# snapshot a warm process's parameters and seed them into pool workers
# (repro.parallel.warmup) without re-running the prime search per worker.
_SAFE_PRIME_CACHE: Dict[int, Tuple[int, int]] = {}
_GROUP_CACHE: Dict[int, "SchnorrGroup"] = {}


def safe_prime_parameters(security_bits: int) -> Tuple[int, int]:
    """Return (p, q) with p = 2q + 1, both prime, q of ``security_bits`` bits.

    Deterministic in ``security_bits``.
    """
    cached = _SAFE_PRIME_CACHE.get(security_bits)
    if cached is not None:
        return cached
    if not MIN_SECURITY_BITS <= security_bits <= MAX_SECURITY_BITS:
        raise InvalidParameterError(
            f"security_bits must be in [{MIN_SECURITY_BITS}, {MAX_SECURITY_BITS}]"
        )
    label = b"simbcast-safe-prime-v1:" + str(security_bits).encode()
    for q in _candidate_stream(security_bits, label):
        if not is_probable_prime(q):
            continue
        p = 2 * q + 1
        if is_probable_prime(p):
            _SAFE_PRIME_CACHE[security_bits] = (p, q)
            return p, q
    raise AssertionError("unreachable: candidate stream is infinite")


def cached_safe_primes() -> List[Tuple[int, int, int]]:
    """Every (security_bits, p, q) this process has computed (warm-state export)."""
    return [(bits, p, q) for bits, (p, q) in sorted(_SAFE_PRIME_CACHE.items())]


def seed_safe_primes(entries: Iterable[Tuple[int, int, int]]) -> None:
    """Install parameters computed elsewhere (pool-worker warm start).

    Entries are re-verified cheaply (shape only, not primality — the prime
    search is deterministic, so a well-formed entry from a peer process is
    the same one this process would derive).
    """
    for bits, p, q in entries:
        if p == 2 * q + 1 and q.bit_length() == bits:
            _SAFE_PRIME_CACHE.setdefault(bits, (p, q))


def clear_parameter_caches() -> None:
    """Drop the memoized parameters and groups (test isolation hook)."""
    _SAFE_PRIME_CACHE.clear()
    _GROUP_CACHE.clear()


@dataclass(frozen=True)
class GroupElement:
    """An element of a :class:`SchnorrGroup` (a quadratic residue mod p)."""

    group: "SchnorrGroup"
    value: int

    def __mul__(self, other: "GroupElement") -> "GroupElement":
        self.group._check_member(other)
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.group.mul")
        return GroupElement(self.group, (self.value * other.value) % self.group.p)

    def __pow__(self, exponent) -> "GroupElement":
        group = self.group
        exp = group.normalize_exponent(exponent)
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.group.exp")
        if fastpath.enabled():
            return GroupElement(group, fastpath.pow_mod(group.p, group.q, self.value, exp))
        return GroupElement(group, int(_backend.active().powmod(self.value, exp, group.p)))

    def inverse(self) -> "GroupElement":
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.group.inv")
        return GroupElement(self.group, _backend.active().invert(self.value, self.group.p))

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        return self * other.inverse()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GroupElement)
            and self.group.p == other.group.p
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.group.p, self.value))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"GroupElement({self.value} mod {self.group.p})"


class SchnorrGroup:
    """The order-q subgroup of Z_p^* for a safe prime p = 2q + 1."""

    __slots__ = ("p", "q", "_generator_value", "exponent_field")

    def __init__(self, p: int, q: int):
        if p != 2 * q + 1:
            raise InvalidParameterError("p must equal 2q + 1")
        if not (is_probable_prime(p) and is_probable_prime(q)):
            raise InvalidParameterError("p and q must both be prime")
        self.p = p
        self.q = q
        self.exponent_field = PrimeField(q, check_prime=False)
        self._generator_value = self._find_generator()

    @classmethod
    def for_security(cls, security_bits: int) -> "SchnorrGroup":
        """Deterministically build the canonical group for a security level.

        Memoized per process: the group is immutable and construction
        re-runs two Miller--Rabin certifications, which protocols would
        otherwise pay on every instantiation.
        """
        group = _GROUP_CACHE.get(security_bits)
        if group is None:
            p, q = safe_prime_parameters(security_bits)
            group = _GROUP_CACHE[security_bits] = cls(p, q)
        return group

    def _find_generator(self) -> int:
        # Any quadratic residue != 1 generates the order-q subgroup since q
        # is prime.  Square successive small integers until one works.
        for base in range(2, 1000):
            candidate = pow(base, 2, self.p)
            if candidate != 1:
                return candidate
        raise InvalidParameterError("could not find a generator (p too small)")

    # -- elements ---------------------------------------------------------------

    @property
    def generator(self) -> GroupElement:
        return GroupElement(self, self._generator_value)

    def identity(self) -> GroupElement:
        return GroupElement(self, 1)

    def element(self, value: int) -> GroupElement:
        """Wrap an integer already known to be a subgroup member."""
        reduced = value % self.p
        if not self.is_member(reduced):
            raise InvalidParameterError(f"{value} is not in the order-{self.q} subgroup")
        return GroupElement(self, reduced)

    def is_member(self, value: int) -> bool:
        return 0 < value < self.p and int(_backend.active().powmod(value, self.q, self.p)) == 1

    def normalize_exponent(self, exponent) -> int:
        """Reduce any exponent-like value (int, FieldElement, negative, >= q)
        into the canonical range ``[0, q)``.

        This is the *single* normalization point shared by
        :meth:`GroupElement.__pow__`, :meth:`power`, and every fastpath
        kernel, so the two public exponentiation entry points can never
        disagree about how out-of-range exponents are interpreted.
        """
        return int(exponent) % self.q

    def power(self, exponent) -> GroupElement:
        """g ** exponent for the canonical generator."""
        return self.generator ** exponent

    def random_exponent(self, rng) -> int:
        return rng.randrange(self.q)

    def random_element(self, rng) -> GroupElement:
        return self.power(self.random_exponent(rng))

    def hash_to_element(self, seed: bytes) -> GroupElement:
        """Derive a subgroup element from a seed with unknown discrete log.

        Used to produce the independent second generator ``h`` for Pedersen
        commitments: nobody knows log_g(h) because h is a hash output.
        """
        counter = 0
        while True:
            digest = hashlib.sha256(b"simbcast-h2g:" + seed + counter.to_bytes(4, "big"))
            candidate = int.from_bytes(digest.digest(), "big") % self.p
            squared = pow(candidate, 2, self.p)
            if squared != 1 and squared != 0:
                return GroupElement(self, squared)
            counter += 1

    def _check_member(self, element: GroupElement) -> None:
        if element.group.p != self.p:
            raise InvalidParameterError("mixing elements of different groups")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SchnorrGroup) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("SchnorrGroup", self.p))

    def __repr__(self) -> str:
        return f"SchnorrGroup(p={self.p}, q={self.q})"
