"""Commitment schemes: hash-based, Pedersen, and trapdoor (equivocable).

Three schemes with one interface, because the simultaneous-broadcast
protocols differ in which flavour they need:

* :class:`HashCommitment` — computationally hiding and binding in the
  random-oracle model; what the Chor--Rabin-style protocol uses.
* :class:`PedersenCommitment` — perfectly hiding, computationally binding
  under discrete log; used by Pedersen VSS.
* :class:`TrapdoorCommitment` — a Pedersen commitment whose setup exposes
  the trapdoor ``log_g(h)``; the simulator for the Gennaro-style CRS
  protocol uses the trapdoor to equivocate.

A commitment is a pair (commit message, opening); ``verify`` checks an
opening against a commit message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from .. import fastpath
from ..errors import CommitmentError, InvalidParameterError
from ..obs import runtime as _obs
from .group import GroupElement, SchnorrGroup
from .prg import random_oracle

NONCE_BYTES = 32

#: Minimum batch size before the RLC batch-verification path kicks in.
BATCH_MIN_OPENINGS = 3


@dataclass(frozen=True)
class Opening:
    """The de-commitment data: the committed value and the randomness."""

    value: Any
    randomness: Any


class HashCommitment:
    """Random-oracle commitment: C = H(tag, value, nonce)."""

    def __init__(self, tag: str = "hash-commit"):
        self.tag = tag

    def commit(self, value: Any, rng) -> Tuple[bytes, Opening]:
        nonce = bytes(rng.getrandbits(8) for _ in range(NONCE_BYTES))
        commitment = random_oracle(self.tag, value, nonce)
        return commitment, Opening(value, nonce)

    def verify(self, commitment: bytes, opening: Opening) -> bool:
        expected = random_oracle(self.tag, opening.value, opening.randomness)
        return expected == commitment

    def check(self, commitment: bytes, opening: Opening) -> Any:
        """Verify and return the committed value, raising on mismatch."""
        if not self.verify(commitment, opening):
            raise CommitmentError("hash commitment failed to verify")
        return opening.value


@dataclass(frozen=True)
class PedersenParameters:
    """Public parameters (group, g, h) with log_g(h) unknown."""

    group: SchnorrGroup
    g: GroupElement
    h: GroupElement

    @classmethod
    def generate(cls, group: SchnorrGroup, seed: bytes = b"pedersen") -> "PedersenParameters":
        return cls(group=group, g=group.generator, h=group.hash_to_element(seed))


class PedersenCommitment:
    """Pedersen commitment C = g^m * h^r over a Schnorr group."""

    def __init__(self, parameters: PedersenParameters):
        self.parameters = parameters

    @property
    def group(self) -> SchnorrGroup:
        return self.parameters.group

    def commit(self, value: int, rng) -> Tuple[GroupElement, Opening]:
        message = int(value) % self.group.q
        randomness = self.group.random_exponent(rng)
        return self.commit_with_randomness(message, randomness), Opening(message, randomness)

    def commit_with_randomness(self, value: int, randomness: int) -> GroupElement:
        params = self.parameters
        group = self.group
        if fastpath.enabled():
            # Same value as the naive path below, via the fixed-base tables
            # for g and h; mirror its logical cost (two exponentiations and
            # one multiplication) so cost artifacts stay identical.
            if _obs.metrics is not None:
                _obs.metrics.inc("crypto.group.exp", 2)
                _obs.metrics.inc("crypto.group.mul")
            return GroupElement(
                group,
                fastpath.pedersen_commit(
                    group.p,
                    group.q,
                    params.g.value,
                    params.h.value,
                    group.normalize_exponent(value),
                    group.normalize_exponent(randomness),
                ),
            )
        return (params.g ** (int(value) % group.q)) * (params.h ** (randomness % group.q))

    def verify(self, commitment: GroupElement, opening: Opening) -> bool:
        try:
            expected = self.commit_with_randomness(opening.value, opening.randomness)
        except (TypeError, ValueError):
            return False
        return expected == commitment

    def verify_batch(
        self, pairs: Sequence[Tuple[GroupElement, Opening]]
    ) -> List[bool]:
        """Per-pair verdicts, batched: one RLC multi-exp instead of m commits.

        Equivalent to ``[self.verify(c, o) for c, o in pairs]`` including
        the mirrored ``crypto.*`` counter totals.  A batch accept vouches
        for every pair (soundness error ~2**-COMBINER_BITS, see
        :mod:`repro.fastpath.batch`); a batch reject falls back to silent
        per-item kernel checks for exact individual verdicts.
        """
        pairs = list(pairs)
        count = len(pairs)
        if count < BATCH_MIN_OPENINGS or not fastpath.enabled():
            return [self.verify(commitment, opening) for commitment, opening in pairs]
        group = self.group
        params = self.parameters
        verdicts: List[Optional[bool]] = [None] * count
        batchable: List[Tuple[int, int, int, int]] = []
        for index, (commitment, opening) in enumerate(pairs):
            try:
                value = group.normalize_exponent(opening.value)
                randomness = group.normalize_exponent(opening.randomness)
            except (TypeError, ValueError):
                verdicts[index] = False
                continue
            batchable.append((index, commitment.value, value, randomness))
        if batchable:
            _, commitments, values, randoms = (list(c) for c in zip(*batchable, strict=True))
            if fastpath.pedersen_batch_verify(
                group.p, group.q, params.g.value, params.h.value,
                commitments, values, randoms,
            ):
                for index, _, _, _ in batchable:
                    verdicts[index] = True
            else:
                for index, commitment, value, randomness in batchable:
                    verdicts[index] = commitment == fastpath.pedersen_commit(
                        group.p, group.q, params.g.value, params.h.value,
                        value, randomness,
                    )
        if _obs.metrics is not None:
            # Mirror the naive per-pair cost of commit_with_randomness
            # (two exponentiations and one multiplication each).
            _obs.metrics.inc("crypto.group.exp", 2 * count)
            _obs.metrics.inc("crypto.group.mul", count)
        return [bool(v) for v in verdicts]

    def check(self, commitment: GroupElement, opening: Opening) -> int:
        if not self.verify(commitment, opening):
            raise CommitmentError("Pedersen commitment failed to verify")
        return opening.value

    def combine(self, left: GroupElement, right: GroupElement) -> GroupElement:
        """Homomorphic combination: Com(m1, r1) * Com(m2, r2) = Com(m1+m2, r1+r2)."""
        return left * right


class TrapdoorCommitment(PedersenCommitment):
    """A Pedersen commitment with a known trapdoor t = log_g(h).

    With the trapdoor one can open a commitment to *any* value:
    given C = g^m h^r and a target m', choose r' = r + (m - m') / t.
    The honest interface is identical to :class:`PedersenCommitment`.
    """

    def __init__(self, group: SchnorrGroup, trapdoor: Optional[int] = None, rng=None):
        if trapdoor is None:
            if rng is None:
                raise InvalidParameterError("either trapdoor or rng must be given")
            trapdoor = rng.randrange(1, group.q)
        if not 0 < trapdoor < group.q:
            raise InvalidParameterError("trapdoor must be in (0, q)")
        parameters = PedersenParameters(
            group=group, g=group.generator, h=group.power(trapdoor)
        )
        super().__init__(parameters)
        self.trapdoor = trapdoor

    def equivocate(self, opening: Opening, new_value: int) -> Opening:
        """Produce an opening of the same commitment to ``new_value``."""
        q = self.group.q
        delta = (int(opening.value) - int(new_value)) % q
        new_randomness = (opening.randomness + delta * pow(self.trapdoor, -1, q)) % q
        return Opening(int(new_value) % q, new_randomness)
