"""The crypto backend seam: pure-python reference vs gmpy2 acceleration.

Every modular-arithmetic primitive the hot paths touch — exponentiation,
inversion, the wrapped big-int type the fixed-base tables hold — routes
through one process-global :class:`CryptoBackend`.  Two backends exist:

* ``"python"`` — CPython's built-in ``pow`` / ``int`` arithmetic.  The
  reference implementation and the default when gmpy2 is absent.
* ``"gmpy2"`` — GMP via :mod:`gmpy2` when the interpreter has it:
  ``powmod`` / ``invert`` and ``mpz``-typed table entries, which makes
  every multiplication in the windowed-exponentiation and multi-exp
  ladders a GMP call instead of a CPython big-int one.

Both backends compute *bit-identical* integers — ``int(gmpy2.powmod(b,
e, m)) == pow(b, e, m)`` for all inputs — so switching backends can
never move an artifact; the CI backend matrix and the diffjson gates
hold this empirically, and ``tests/test_crypto_backend.py`` holds it
property-by-property.  The seam is therefore *outside* the determinism
contract (like ``REPRO_FASTPATH``) but still captured into pool shards
(like ``REPRO_RUNTIME``) so a worker's telemetry describes the same
configuration the coordinator ran.

Selection: ``resolve_backend(None)`` consults ``REPRO_CRYPTO_BACKEND``
(``python`` | ``gmpy2`` | ``auto``), defaulting to ``auto`` — gmpy2 when
importable, python otherwise.  ``--crypto-backend`` on the experiments
and campaign CLIs writes the same variable so pool shards inherit it
through :func:`capture_backend_env` / :func:`apply_backend_env`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..errors import InvalidParameterError

#: The environment variable the seam reads (and the CLIs write).
ENV_BACKEND = "REPRO_CRYPTO_BACKEND"

#: Accepted spellings for the env/CLI value.
BACKEND_CHOICES = ("auto", "python", "gmpy2")


class CryptoBackend:
    """The primitive-arithmetic interface both backends implement.

    ``wrap`` converts an ``int`` into the backend's native big-int type
    (identity for python, ``mpz`` for gmpy2) — table entries and ladder
    accumulators are held wrapped so inner-loop multiplications stay
    native.  Every public kernel unwraps back to ``int`` at its boundary
    (:func:`repro.fastpath.kernels`), so nothing outside the kernels
    ever observes a backend-native type.
    """

    name = "abstract"

    def wrap(self, value: int) -> Any:
        raise NotImplementedError

    def unwrap(self, value: Any) -> int:
        return int(value)

    def powmod(self, base: Any, exponent: int, modulus: int) -> Any:
        raise NotImplementedError

    def invert(self, value: int, modulus: int) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PythonBackend(CryptoBackend):
    """CPython built-ins: the reference semantics every backend must match."""

    name = "python"

    def wrap(self, value: int) -> int:
        return value

    def powmod(self, base: Any, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def invert(self, value: int, modulus: int) -> int:
        return pow(value, -1, modulus)


class Gmpy2Backend(CryptoBackend):
    """GMP arithmetic via :mod:`gmpy2` (constructed only when importable)."""

    name = "gmpy2"

    def __init__(self) -> None:
        import gmpy2  # deferred: only resolve_backend("gmpy2") pays the import

        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz

    def wrap(self, value: int) -> Any:
        return self._mpz(value)

    def powmod(self, base: Any, exponent: int, modulus: int) -> Any:
        return self._gmpy2.powmod(base, exponent, modulus)

    def invert(self, value: int, modulus: int) -> int:
        return int(self._gmpy2.invert(value, modulus))


def gmpy2_available() -> bool:
    """Whether the interpreter can import :mod:`gmpy2` at all."""
    try:
        import gmpy2  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> List[str]:
    """The backend names this interpreter can actually instantiate."""
    names = ["python"]
    if gmpy2_available():
        names.append("gmpy2")
    return names


def _build(name: str) -> CryptoBackend:
    if name == "python":
        return PythonBackend()
    if name == "gmpy2":
        try:
            return Gmpy2Backend()
        except ImportError:
            raise InvalidParameterError(
                "crypto backend 'gmpy2' requested but gmpy2 is not importable;"
                " install it or use REPRO_CRYPTO_BACKEND=python"
            ) from None
    raise InvalidParameterError(
        f"unknown crypto backend {name!r}; known: {sorted(BACKEND_CHOICES)}"
    )


def resolve_backend(name: Optional[str] = None) -> CryptoBackend:
    """Normalize a backend choice (explicit, env, or auto) to an instance.

    ``None`` consults ``REPRO_CRYPTO_BACKEND``; ``"auto"`` (the default)
    picks gmpy2 when importable and python otherwise — auto-detection is
    safe because the backends are bit-identical by contract.
    """
    if name is None:
        name = os.environ.get(ENV_BACKEND, "auto")
    name = str(name).strip().lower() or "auto"
    if name == "auto":
        name = "gmpy2" if gmpy2_available() else "python"
    return _build(name)


#: The process-global active backend, resolved lazily on first use so
#: ``apply_backend_env`` in a pool worker can still redirect it.
_ACTIVE: Optional[CryptoBackend] = None


def active() -> CryptoBackend:
    """The backend every kernel call in this process routes through."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_backend()
    return _ACTIVE


def configure(name: Optional[str]) -> CryptoBackend:
    """Switch the process-global backend (``None``/``"auto"`` re-detects).

    Existing fixed-base tables keep their old entries — mixed ``int`` /
    ``mpz`` arithmetic is exact either way, so a mid-run switch degrades
    only performance, never values.
    """
    global _ACTIVE
    _ACTIVE = resolve_backend(name)
    return _ACTIVE


@contextmanager
def using(name: str) -> Iterator[CryptoBackend]:
    """Scope with a specific backend active (A/B benchmarks, tests)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolve_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# -- the pool-shard capture seam -----------------------------------------------------


def capture_backend_env() -> Dict[str, str]:
    """Snapshot the backend-selection environment (shard task payloads).

    Mirrors :func:`repro.net.runtime.capture_runtime_env`: the parallel
    engine ships this with every shard so workers resolve the
    coordinator's backend even under ``spawn``.
    """
    if ENV_BACKEND in os.environ:
        return {ENV_BACKEND: os.environ[ENV_BACKEND]}
    return {}


def apply_backend_env(env: Dict[str, str]) -> None:
    """Install a captured backend environment and re-resolve the backend."""
    if ENV_BACKEND in env:
        os.environ[ENV_BACKEND] = env[ENV_BACKEND]
    else:
        os.environ.pop(ENV_BACKEND, None)
    configure(None)
