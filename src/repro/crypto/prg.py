"""Hash-based PRG, PRF and random oracle.

All symmetric-style randomness in the library flows through these helpers,
which are deterministic functions of their seeds/keys.  They are built on
SHA-256 in counter mode — simulation-grade constructions that keep the
whole system reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Any

from .. import serialization
from ..errors import InvalidParameterError
from ..obs import runtime as _obs


def random_oracle(*values: Any, length: int = 32) -> bytes:
    """A domain-separated random oracle over canonically encoded inputs."""
    if length <= 0:
        raise InvalidParameterError("length must be positive")
    seed = serialization.encode_many(*values)
    output = bytearray()
    counter = 0
    while len(output) < length:
        block = hashlib.sha256(
            b"simbcast-ro:" + counter.to_bytes(8, "big") + seed
        ).digest()
        output.extend(block)
        counter += 1
    if _obs.metrics is not None:
        _obs.metrics.inc("crypto.ro.calls")
        _obs.metrics.inc("crypto.hash.blocks", counter)
    return bytes(output[:length])


def random_oracle_int(*values: Any, modulus: int) -> int:
    """Random-oracle output reduced into ``range(modulus)``.

    Uses 64 extra bits before reduction so the bias is below 2^-64.
    """
    if modulus <= 0:
        raise InvalidParameterError("modulus must be positive")
    width = (modulus.bit_length() + 7) // 8 + 8
    return int.from_bytes(random_oracle(*values, length=width), "big") % modulus


class PRG:
    """A deterministic pseudo-random generator expanding a byte seed."""

    def __init__(self, seed: bytes):
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = bytearray()

    def next_bytes(self, count: int) -> bytes:
        if count < 0:
            raise InvalidParameterError("count must be non-negative")
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.prg.calls")
        while len(self._buffer) < count:
            block = hashlib.sha256(
                b"simbcast-prg:" + self._counter.to_bytes(8, "big") + self._seed
            ).digest()
            self._buffer.extend(block)
            self._counter += 1
            if _obs.metrics is not None:
                _obs.metrics.inc("crypto.hash.blocks")
        output = bytes(self._buffer[:count])
        del self._buffer[:count]
        return output

    def next_int(self, modulus: int) -> int:
        if modulus <= 0:
            raise InvalidParameterError("modulus must be positive")
        width = (modulus.bit_length() + 7) // 8 + 8
        return int.from_bytes(self.next_bytes(width), "big") % modulus

    def next_bit(self) -> int:
        return self.next_bytes(1)[0] & 1


class PRF:
    """A keyed pseudo-random function F_k(x) built from the random oracle."""

    def __init__(self, key: bytes):
        self._key = bytes(key)

    def evaluate(self, *inputs: Any, length: int = 32) -> bytes:
        return random_oracle("prf", self._key, tuple(inputs), length=length)

    def evaluate_int(self, *inputs: Any, modulus: int) -> int:
        return random_oracle_int("prf", self._key, tuple(inputs), modulus=modulus)
