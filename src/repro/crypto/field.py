"""Prime fields GF(p) and primality utilities.

The protocols in this library do arithmetic over two kinds of prime fields:

* small fields (p > 2n) used by the BGW secure-evaluation substrate, and
* large fields (the exponent group Z_q of a Schnorr group) used by the
  commitment and VSS layers.

Field elements are immutable value objects supporting the usual operator
protocol, so protocol code reads like the maths in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..errors import InvalidParameterError
from ..obs import runtime as _obs

IntoElement = Union["FieldElement", int]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def is_probable_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller--Rabin primality test with deterministic witness schedule.

    The witnesses are derived deterministically from the candidate so the
    whole library stays reproducible without a global RNG.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    # Write candidate - 1 = 2^s * d with d odd.
    d = candidate - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for i in range(rounds):
        witness = (_SMALL_PRIMES[i % len(_SMALL_PRIMES)] + i * 7919) % (candidate - 3) + 2
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def next_prime(floor: int) -> int:
    """Return the smallest prime >= ``floor``."""
    candidate = max(2, floor)
    if candidate % 2 == 0 and candidate != 2:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2 if candidate > 2 else 1
    return candidate


class PrimeField:
    """The finite field GF(p) for a prime modulus p."""

    __slots__ = ("modulus",)

    def __init__(self, modulus: int, check_prime: bool = True):
        if modulus < 2:
            raise InvalidParameterError(f"field modulus must be >= 2, got {modulus}")
        if check_prime and not is_probable_prime(modulus):
            raise InvalidParameterError(f"field modulus {modulus} is not prime")
        self.modulus = modulus

    # -- element construction -------------------------------------------------

    def element(self, value: IntoElement) -> "FieldElement":
        """Coerce ``value`` into this field (reducing integers mod p)."""
        if isinstance(value, FieldElement):
            if value.field is not self and value.field.modulus != self.modulus:
                raise InvalidParameterError(
                    f"element of GF({value.field.modulus}) used in GF({self.modulus})"
                )
            return FieldElement(self, value.value)
        return FieldElement(self, value % self.modulus)

    def zero(self) -> "FieldElement":
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        return FieldElement(self, 1)

    def random(self, rng) -> "FieldElement":
        """Sample a uniform element using ``rng`` (a ``random.Random``)."""
        return FieldElement(self, rng.randrange(self.modulus))

    def random_nonzero(self, rng) -> "FieldElement":
        return FieldElement(self, rng.randrange(1, self.modulus))

    def elements(self) -> Iterator["FieldElement"]:
        """Iterate over all field elements (only sensible for small fields)."""
        for value in range(self.modulus):
            yield FieldElement(self, value)

    # -- identity --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"GF({self.modulus})"

    def __contains__(self, item: object) -> bool:
        return isinstance(item, FieldElement) and item.field == self


@dataclass(frozen=True)
class FieldElement:
    """An immutable element of a :class:`PrimeField`."""

    field: PrimeField
    value: int

    def _coerce(self, other: IntoElement) -> "FieldElement":
        return self.field.element(other)

    def __add__(self, other: IntoElement) -> "FieldElement":
        rhs = self._coerce(other)
        return FieldElement(self.field, (self.value + rhs.value) % self.field.modulus)

    __radd__ = __add__

    def __sub__(self, other: IntoElement) -> "FieldElement":
        rhs = self._coerce(other)
        return FieldElement(self.field, (self.value - rhs.value) % self.field.modulus)

    def __rsub__(self, other: IntoElement) -> "FieldElement":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: IntoElement) -> "FieldElement":
        rhs = self._coerce(other)
        if _obs.metrics is not None:
            _obs.metrics.inc("crypto.field.mul")
        return FieldElement(self.field, (self.value * rhs.value) % self.field.modulus)

    __rmul__ = __mul__

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, (-self.value) % self.field.modulus)

    def inverse(self) -> "FieldElement":
        if self.value == 0:
            raise ZeroDivisionError("0 has no inverse in a field")
        return FieldElement(self.field, pow(self.value, -1, self.field.modulus))

    def __truediv__(self, other: IntoElement) -> "FieldElement":
        return self * self._coerce(other).inverse()

    def __rtruediv__(self, other: IntoElement) -> "FieldElement":
        return self._coerce(other) / self

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FieldElement(self.field, pow(self.value, exponent, self.field.modulus))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        if isinstance(other, FieldElement):
            return self.field == other.field and self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.value))

    def __int__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:
        return f"{self.value} (mod {self.field.modulus})"
