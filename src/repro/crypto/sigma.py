"""Sigma protocols and Fiat--Shamir non-interactive proofs of knowledge.

The Chor--Rabin-style protocol has parties prove *knowledge* of their
committed values before anything is revealed; that is what rules out the
copy-attack (a copier cannot prove knowledge of a value it only saw a
commitment to).  We implement:

* the Schnorr proof of knowledge of a discrete log (interactive 3-move
  messages plus a Fiat--Shamir compiler), and
* a proof of knowledge of a Pedersen commitment opening (Okamoto-style
  two-base Schnorr).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ProofError
from .commitment import PedersenParameters
from .group import GroupElement, SchnorrGroup
from .prg import random_oracle_int


@dataclass(frozen=True)
class SchnorrProof:
    """Non-interactive proof of knowledge of x with y = g^x."""

    commitment: GroupElement
    response: int


def prove_discrete_log(
    group: SchnorrGroup, secret: int, rng, context: Any = ""
) -> SchnorrProof:
    """Prove knowledge of ``secret`` for the statement y = g^secret.

    ``context`` is bound into the challenge (session id, party id, ...) to
    prevent cross-context replay — the simultaneity property of the
    Chor--Rabin protocol relies on proofs being non-transferable.
    """
    nonce = rng.randrange(1, group.q)
    commitment = group.power(nonce)
    statement = group.power(secret)
    challenge = _challenge(group, "dlog", statement, commitment, context)
    response = (nonce + challenge * (secret % group.q)) % group.q
    return SchnorrProof(commitment=commitment, response=response)


def verify_discrete_log(
    group: SchnorrGroup, statement: GroupElement, proof: SchnorrProof, context: Any = ""
) -> bool:
    try:
        challenge = _challenge(group, "dlog", statement, proof.commitment, context)
        left = group.power(proof.response)
        right = proof.commitment * (statement ** challenge)
    except (TypeError, ValueError, AttributeError):
        return False
    return left == right


@dataclass(frozen=True)
class OpeningProof:
    """Proof of knowledge of (m, r) with C = g^m h^r (Okamoto protocol)."""

    commitment: GroupElement
    response_value: int
    response_blinding: int


def prove_opening(
    parameters: PedersenParameters,
    value: int,
    blinding: int,
    rng,
    context: Any = "",
) -> OpeningProof:
    group = parameters.group
    nonce_value = rng.randrange(1, group.q)
    nonce_blinding = rng.randrange(1, group.q)
    commitment = (parameters.g ** nonce_value) * (parameters.h ** nonce_blinding)
    statement = (parameters.g ** (value % group.q)) * (parameters.h ** (blinding % group.q))
    challenge = _challenge(group, "opening", statement, commitment, context)
    return OpeningProof(
        commitment=commitment,
        response_value=(nonce_value + challenge * (value % group.q)) % group.q,
        response_blinding=(nonce_blinding + challenge * (blinding % group.q)) % group.q,
    )


def verify_opening(
    parameters: PedersenParameters,
    statement: GroupElement,
    proof: OpeningProof,
    context: Any = "",
) -> bool:
    group = parameters.group
    try:
        challenge = _challenge(group, "opening", statement, proof.commitment, context)
        left = (parameters.g ** proof.response_value) * (
            parameters.h ** proof.response_blinding
        )
        right = proof.commitment * (statement ** challenge)
    except (TypeError, ValueError, AttributeError):
        return False
    return left == right


def check_opening(
    parameters: PedersenParameters,
    statement: GroupElement,
    proof: OpeningProof,
    context: Any = "",
) -> None:
    if not verify_opening(parameters, statement, proof, context):
        raise ProofError("proof of commitment opening failed to verify")


def _challenge(
    group: SchnorrGroup, tag: str, statement: GroupElement, commitment: GroupElement, context: Any
) -> int:
    return random_oracle_int(
        "sigma",
        tag,
        group.p,
        int(statement),
        int(commitment),
        context,
        modulus=group.q,
    )
