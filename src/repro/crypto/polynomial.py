"""Polynomials over GF(p) with Lagrange interpolation.

These are the backbone of Shamir secret sharing, Feldman/Pedersen VSS and
the BGW degree-reduction step.  Polynomials are immutable, represented by
their coefficient tuple in increasing-degree order with no trailing zeros
(so the zero polynomial has an empty coefficient tuple and degree -1).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from .. import fastpath
from ..errors import InvalidParameterError, ShareError
from ..obs import runtime as _obs
from .field import FieldElement, IntoElement, PrimeField


class Polynomial:
    """An immutable polynomial over a :class:`PrimeField`."""

    __slots__ = ("field", "coefficients")

    def __init__(self, field: PrimeField, coefficients: Iterable[IntoElement]):
        coeffs = tuple(field.element(c) for c in coefficients)
        while coeffs and coeffs[-1].value == 0:
            coeffs = coeffs[:-1]
        self.field = field
        self.coefficients: Tuple[FieldElement, ...] = coeffs

    # -- constructors ----------------------------------------------------------

    @classmethod
    def zero(cls, field: PrimeField) -> "Polynomial":
        return cls(field, ())

    @classmethod
    def constant(cls, field: PrimeField, value: IntoElement) -> "Polynomial":
        return cls(field, (value,))

    @classmethod
    def random(
        cls,
        field: PrimeField,
        degree: int,
        rng,
        constant_term: IntoElement = None,
    ) -> "Polynomial":
        """Sample a uniform polynomial of exactly the given degree bound.

        If ``constant_term`` is provided it is fixed as the coefficient of
        x^0 (this is how Shamir sharing hides a secret).
        """
        if degree < 0:
            raise InvalidParameterError("degree must be non-negative")
        coefficients = [field.random(rng) for _ in range(degree + 1)]
        if constant_term is not None:
            coefficients[0] = field.element(constant_term)
        return cls(field, coefficients)

    # -- basic queries ----------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def __call__(self, point: IntoElement) -> FieldElement:
        """Evaluate by Horner's rule."""
        x = self.field.element(point)
        result = self.field.zero()
        for coefficient in reversed(self.coefficients):
            result = result * x + coefficient
        return result

    def evaluate_many(self, points: Sequence[IntoElement]) -> Tuple[FieldElement, ...]:
        return tuple(self(point) for point in points)

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_same_field(other)
        length = max(len(self.coefficients), len(other.coefficients))
        coeffs = []
        for i in range(length):
            a = self.coefficients[i] if i < len(self.coefficients) else self.field.zero()
            b = other.coefficients[i] if i < len(other.coefficients) else self.field.zero()
            coeffs.append(a + b)
        return Polynomial(self.field, coeffs)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_same_field(other)
        return self + (other * self.field.element(-1))

    def __mul__(self, other) -> "Polynomial":
        if isinstance(other, Polynomial):
            self._check_same_field(other)
            if not self.coefficients or not other.coefficients:
                return Polynomial.zero(self.field)
            coeffs = [self.field.zero()] * (len(self.coefficients) + len(other.coefficients) - 1)
            for i, a in enumerate(self.coefficients):
                for j, b in enumerate(other.coefficients):
                    coeffs[i + j] = coeffs[i + j] + a * b
            return Polynomial(self.field, coeffs)
        scalar = self.field.element(other)
        return Polynomial(self.field, [c * scalar for c in self.coefficients])

    __rmul__ = __mul__

    def _check_same_field(self, other: "Polynomial") -> None:
        if self.field != other.field:
            raise InvalidParameterError("polynomials over different fields")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and self.field == other.field
            and self.coefficients == other.coefficients
        )

    def __hash__(self) -> int:
        return hash((self.field.modulus, tuple(c.value for c in self.coefficients)))

    def __repr__(self) -> str:
        if not self.coefficients:
            return "Polynomial(0)"
        terms = " + ".join(
            f"{c.value}x^{i}" if i else str(c.value)
            for i, c in enumerate(self.coefficients)
        )
        return f"Polynomial({terms} over GF({self.field.modulus}))"


def lagrange_interpolate(
    field: PrimeField,
    points: Sequence[Tuple[IntoElement, IntoElement]],
) -> Polynomial:
    """Return the unique polynomial of degree < len(points) through ``points``.

    Raises:
        ShareError: if two points share an x-coordinate.
    """
    xs = [field.element(x) for x, _ in points]
    ys = [field.element(y) for _, y in points]
    if len({x.value for x in xs}) != len(xs):
        raise ShareError("duplicate x-coordinates in interpolation points")
    result = Polynomial.zero(field)
    for i, (xi, yi) in enumerate(zip(xs, ys, strict=True)):
        basis = Polynomial.constant(field, 1)
        denominator = field.one()
        for j, xj in enumerate(xs):
            if i == j:
                continue
            basis = basis * Polynomial(field, [-xj.value, 1])
            denominator = denominator * (xi - xj)
        result = result + basis * (yi / denominator)
    return result


def lagrange_coefficients_at_zero(
    field: PrimeField, xs: Sequence[IntoElement]
) -> Tuple[FieldElement, ...]:
    """Lagrange coefficients lambda_i with sum_i lambda_i * f(x_i) = f(0).

    Used for Shamir reconstruction and BGW degree reduction without building
    the full interpolating polynomial.  Coefficient sets are memoized per
    ``(modulus, frozen point tuple)`` — reconstruction calls the same point
    sets over and over (every party, every dealing) — and a cache hit
    charges the ``crypto.field.mul`` counter with exactly the naive loop's
    multiplication count (``2m^2 - m`` for ``m`` points: two per ordered
    pair plus one division each) so measured-cost artifacts are identical
    with or without the cache.
    """
    points = [field.element(x) for x in xs]
    if len({p.value for p in points}) != len(points):
        raise ShareError("duplicate x-coordinates")
    key = tuple(p.value for p in points)
    use_cache = fastpath.enabled()
    if use_cache:
        cached = fastpath.lagrange_cache_get(field.modulus, key)
        if cached is not None:
            if _obs.metrics is not None:
                m = len(points)
                _obs.metrics.inc("crypto.field.mul", 2 * m * m - m)
            return tuple(FieldElement(field, value) for value in cached)
    coefficients = []
    for i, xi in enumerate(points):
        numerator = field.one()
        denominator = field.one()
        for j, xj in enumerate(points):
            if i == j:
                continue
            numerator = numerator * (-xj)
            denominator = denominator * (xi - xj)
        coefficients.append(numerator / denominator)
    if use_cache:
        fastpath.lagrange_cache_put(
            field.modulus, key, tuple(c.value for c in coefficients)
        )
    return tuple(coefficients)
