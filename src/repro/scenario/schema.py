"""Schema validation for the declarative scenario DSL (ROADMAP item 4).

A scenario (and its embedded fault plan) travels as a plain JSON/YAML
mapping; this module is the single place that decides whether such a
mapping is well-formed *before* any runtime object is built from it.
Validation is hand-rolled rather than delegated to ``jsonschema`` so the
package stays dependency-free and the error messages can name the exact
field and constraint that failed — the property the ``--faults`` CLI path
and the campaign fuzzer both rely on (malformed plans used to die deep
inside :class:`repro.faults.injector.FaultInjector` with a stack trace
instead of a diagnosis).

Two surfaces:

* :func:`validate_fault_plan_dict` / :func:`load_fault_plan` — the
  ``examples/faultplan.json`` shape (also embedded in scenarios under the
  ``"faults"`` key);
* :func:`validate_scenario_dict` — the full :class:`repro.scenario.Scenario`
  shape, including the cross-field constraints (protocol resilience
  bounds, adversary applicability, event-runtime-only knobs).

Every validator collects *all* problems and raises one
:class:`repro.errors.ScenarioError` whose message lists them, one per
line, as ``<field>: <what is wrong>``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from ..errors import InvalidParameterError, ScenarioError
from ..faults.plan import CORRUPT_MODES, KINDS, FaultPlan

#: Keys a fault-plan mapping may carry.
FAULT_PLAN_KEYS = ("name", "seed", "rules", "crashes")

#: Keys a fault-rule mapping may carry.
FAULT_RULE_KEYS = (
    "kind", "rounds", "senders", "receivers", "tags",
    "probability", "delay", "copies", "mode",
)

#: Keys a crash-fault mapping may carry.
CRASH_KEYS = ("party", "at_round", "recover_at")

#: Keys a scenario mapping may carry (the DSL surface).
SCENARIO_KEYS = (
    "name", "protocol", "n", "t", "security_bits", "sender", "seed",
    "trials", "timeout_rounds", "distribution", "adversary", "runtime",
    "delay_model", "omission", "faults",
)

#: Upper bound on per-scenario trials — campaigns get breadth from many
#: scenarios, not depth from any single one.
MAX_TRIALS = 64


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_int(
    errors: List[str],
    field: str,
    value: Any,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> Optional[int]:
    if not _is_int(value):
        errors.append(f"{field}: expected an integer, got {value!r}")
        return None
    if minimum is not None and value < minimum:
        errors.append(f"{field}: must be >= {minimum}, got {value}")
        return None
    if maximum is not None and value > maximum:
        errors.append(f"{field}: must be <= {maximum}, got {value}")
        return None
    return value


def _check_int_list(errors: List[str], field: str, value: Any) -> None:
    if not isinstance(value, (list, tuple)):
        errors.append(f"{field}: expected a list of integers, got {value!r}")
        return
    for index, item in enumerate(value):
        if not _is_int(item):
            errors.append(f"{field}[{index}]: expected an integer, got {item!r}")


def _check_unknown_keys(
    errors: List[str], field: str, data: Dict[str, Any], known: tuple
) -> None:
    for key in sorted(set(data) - set(known)):
        errors.append(f"{field}.{key}: unknown key (known keys: {', '.join(known)})")


# -- fault plans --------------------------------------------------------------------


def _validate_rule(errors: List[str], field: str, data: Any) -> None:
    if not isinstance(data, dict):
        errors.append(f"{field}: expected a mapping, got {data!r}")
        return
    _check_unknown_keys(errors, field, data, FAULT_RULE_KEYS)
    kind = data.get("kind")
    if kind not in KINDS:
        errors.append(
            f"{field}.kind: expected one of {list(KINDS)}, got {kind!r}"
        )
    for key in ("rounds", "senders", "receivers"):
        if key in data:
            _check_int_list(errors, f"{field}.{key}", data[key])
    if "tags" in data and not (
        isinstance(data["tags"], (list, tuple))
        and all(isinstance(tag, str) for tag in data["tags"])
    ):
        errors.append(f"{field}.tags: expected a list of strings, got {data['tags']!r}")
    probability = data.get("probability", 1.0)
    if not isinstance(probability, (int, float)) or isinstance(probability, bool) or not (
        0.0 <= probability <= 1.0
    ):
        errors.append(
            f"{field}.probability: expected a number in [0, 1], got {probability!r}"
        )
    if kind == "delay":
        _check_int(errors, f"{field}.delay", data.get("delay", 1), minimum=1)
    if kind == "duplicate":
        _check_int(errors, f"{field}.copies", data.get("copies", 1), minimum=1)
    if kind == "corrupt" and data.get("mode", "garbage") not in CORRUPT_MODES:
        errors.append(
            f"{field}.mode: expected one of {list(CORRUPT_MODES)},"
            f" got {data.get('mode')!r}"
        )


def _validate_crash(errors: List[str], field: str, data: Any) -> None:
    if not isinstance(data, dict):
        errors.append(f"{field}: expected a mapping, got {data!r}")
        return
    _check_unknown_keys(errors, field, data, CRASH_KEYS)
    if "party" not in data:
        errors.append(f"{field}.party: required (1-based party id)")
    else:
        _check_int(errors, f"{field}.party", data["party"], minimum=1)
    at_round = _check_int(errors, f"{field}.at_round", data.get("at_round", 1), minimum=1)
    recover = data.get("recover_at")
    if recover is not None:
        recover = _check_int(errors, f"{field}.recover_at", recover, minimum=2)
        if recover is not None and at_round is not None and recover <= at_round:
            errors.append(
                f"{field}.recover_at: must be after at_round"
                f" ({recover} <= {at_round})"
            )


def fault_plan_errors(data: Any, field: str = "faults") -> List[str]:
    """All schema problems of a fault-plan mapping (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"{field}: expected a mapping, got {type(data).__name__}"]
    _check_unknown_keys(errors, field, data, FAULT_PLAN_KEYS)
    if "name" in data and not isinstance(data["name"], str):
        errors.append(f"{field}.name: expected a string, got {data['name']!r}")
    if "seed" in data:
        _check_int(errors, f"{field}.seed", data["seed"], minimum=0)
    for key, validator in (("rules", _validate_rule), ("crashes", _validate_crash)):
        if key not in data:
            continue
        if not isinstance(data[key], list):
            errors.append(f"{field}.{key}: expected a list, got {data[key]!r}")
            continue
        for index, item in enumerate(data[key]):
            validator(errors, f"{field}.{key}[{index}]", item)
    return errors


def validate_fault_plan_dict(data: Any, field: str = "faults") -> Dict[str, Any]:
    """Validate a fault-plan mapping, raising :class:`ScenarioError` on problems."""
    errors = fault_plan_errors(data, field=field)
    if errors:
        raise ScenarioError(
            "invalid fault plan:\n  " + "\n  ".join(errors)
        )
    return data


def load_fault_plan(path: str) -> FaultPlan:
    """Load and schema-validate a fault-plan file (JSON, or YAML by extension).

    This is the ``--faults`` CLI entry point: a malformed plan fails here
    with a field-by-field diagnosis instead of deep inside the injector.
    """
    data = load_structured(path)
    validate_fault_plan_dict(data, field="plan")
    return FaultPlan.from_dict(data)


# -- structured file loading (JSON with optional YAML) ------------------------------

#: File extensions parsed as YAML (needs the optional pyyaml package).
YAML_EXTENSIONS = (".yaml", ".yml")


def load_structured(path: str) -> Any:
    """Parse a JSON or YAML file into plain data, with readable errors."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ScenarioError(f"cannot read {path!r}: {exc}") from None
    if os.path.splitext(path)[1].lower() in YAML_EXTENSIONS:
        return parse_yaml(text, source=path)
    try:
        return json.loads(text)
    except ValueError as exc:
        raise ScenarioError(f"{path!r} is not valid JSON: {exc}") from None


def parse_yaml(text: str, source: str = "<string>") -> Any:
    """Parse YAML text, gated on the optional pyyaml dependency."""
    try:
        import yaml
    except ImportError:
        raise ScenarioError(
            f"{source!r} is YAML but the optional pyyaml package is not"
            " installed; use the JSON form instead"
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"{source!r} is not valid YAML: {exc}") from None


def dump_yaml(data: Any) -> str:
    """Serialize plain data as canonical (sorted-key) YAML."""
    try:
        import yaml
    except ImportError:
        raise ScenarioError(
            "YAML output needs the optional pyyaml package; use JSON instead"
        ) from None
    return yaml.safe_dump(data, sort_keys=True, default_flow_style=False)


# -- scenarios ----------------------------------------------------------------------


def scenario_errors(data: Any) -> List[str]:
    """All schema problems of a scenario mapping (empty list = valid).

    Field checks first, then the cross-field constraints that need the
    registry (protocol resilience bounds, adversary applicability,
    event-only network knobs, fault-plan party ranges).
    """
    # Imported here: the registry imports protocol/runtime modules, which
    # must not load just to import this module's fault-plan validators.
    from .registry import (
        ADVERSARIES,
        PROTOCOLS,
        parse_adversary,
        parse_distribution,
    )
    from ..net.runtime import delay_model_from_spec, omission_from_spec

    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"scenario: expected a mapping, got {type(data).__name__}"]
    _check_unknown_keys(errors, "scenario", data, SCENARIO_KEYS)

    if "name" in data and not isinstance(data["name"], str):
        errors.append(f"scenario.name: expected a string, got {data['name']!r}")

    protocol = data.get("protocol")
    spec = None
    if not isinstance(protocol, str) or protocol not in PROTOCOLS:
        errors.append(
            f"scenario.protocol: expected one of {sorted(PROTOCOLS)},"
            f" got {protocol!r}"
        )
    else:
        spec = PROTOCOLS[protocol]

    # Defaults here must mirror the Scenario dataclass defaults exactly,
    # or a canonical to_dict() round trip could validate differently.
    n = _check_int(errors, "scenario.n", data.get("n", 5), minimum=2)
    t = _check_int(errors, "scenario.t", data.get("t", 2), minimum=0)
    if n is not None and t is not None:
        if t >= n:
            errors.append(f"scenario.t: must be < n, got t={t}, n={n}")
        elif spec is not None:
            problem = spec.check_resilience(n, t)
            if problem:
                errors.append(f"scenario.protocol: {problem}")
    _check_int(errors, "scenario.security_bits", data.get("security_bits", 24), minimum=8)
    _check_int(errors, "scenario.seed", data.get("seed", 0), minimum=0)
    _check_int(errors, "scenario.trials", data.get("trials", 4), minimum=1, maximum=MAX_TRIALS)
    if data.get("timeout_rounds") is not None:
        _check_int(errors, "scenario.timeout_rounds", data["timeout_rounds"], minimum=1)

    sender = data.get("sender", 1)
    sender = _check_int(errors, "scenario.sender", sender, minimum=1)
    if spec is not None and n is not None and sender is not None:
        if spec.single_sender and sender > n:
            errors.append(f"scenario.sender: {sender} out of range for n={n}")
        if not spec.single_sender and "sender" in data:
            errors.append(
                f"scenario.sender: protocol {protocol!r} has no designated"
                " sender (parallel broadcast)"
            )

    distribution = data.get("distribution", "uniform")
    if not isinstance(distribution, str):
        errors.append(
            f"scenario.distribution: expected a spec string, got {distribution!r}"
        )
    elif n is not None:
        try:
            parse_distribution(distribution, n)
        except (ScenarioError, InvalidParameterError, ValueError) as exc:
            errors.append(f"scenario.distribution: {exc}")

    adversary = data.get("adversary", "none")
    if not isinstance(adversary, str):
        errors.append(f"scenario.adversary: expected a spec string, got {adversary!r}")
    elif n is not None and t is not None and spec is not None:
        try:
            parsed = parse_adversary(adversary)
            problem = parsed.check(protocol, n, t)
            if problem:
                errors.append(f"scenario.adversary: {problem}")
        except (ScenarioError, InvalidParameterError, ValueError) as exc:
            errors.append(f"scenario.adversary: {exc}")
    elif adversary.split(":", 1)[0] not in ADVERSARIES:
        errors.append(
            f"scenario.adversary: unknown kind {adversary.split(':', 1)[0]!r};"
            f" known: {sorted(ADVERSARIES)}"
        )

    runtime = data.get("runtime", "lockstep")
    if runtime not in ("lockstep", "event"):
        errors.append(
            f"scenario.runtime: expected 'lockstep' or 'event', got {runtime!r}"
        )
    for key, parser in (("delay_model", delay_model_from_spec), ("omission", omission_from_spec)):
        value = data.get(key, "")
        if not value:
            continue
        if runtime != "event":
            errors.append(
                f"scenario.{key}: only meaningful with runtime='event'"
                " (the lockstep engine's timing is fixed by the paper's model)"
            )
        try:
            parser(value)
        except InvalidParameterError as exc:
            errors.append(f"scenario.{key}: {exc}")

    faults = data.get("faults", {})
    errors.extend(fault_plan_errors(faults, field="scenario.faults"))
    if isinstance(faults, dict) and n is not None:
        for index, crash in enumerate(faults.get("crashes", []) or []):
            if isinstance(crash, dict) and _is_int(crash.get("party")) and crash["party"] > n:
                errors.append(
                    f"scenario.faults.crashes[{index}].party:"
                    f" {crash['party']} out of range for n={n}"
                )
    return errors


def validate_scenario_dict(data: Any) -> Dict[str, Any]:
    """Validate a scenario mapping, raising :class:`ScenarioError` on problems."""
    errors = scenario_errors(data)
    if errors:
        raise ScenarioError("invalid scenario:\n  " + "\n  ".join(errors))
    return data
