"""Minimal-counterexample shrinking for violating scenarios.

Given a scenario whose outcome row contains a conformance violation, the
shrinker searches for the *smallest* scenario that still reproduces the
violation's signature (its set of violation kinds).  The search is greedy
dimension-wise deletion: a fixed, deterministic candidate order tries the
big deletions first (drop the whole fault plan, clear the network knobs,
drop the adversary), then element-wise deletions (individual fault rules
and crashes), then parameter reductions (trials, ``n``, ``t``, seed).
The first candidate the predicate accepts becomes the new current
scenario and the pass restarts; the fixpoint — a full pass with no
accepted candidate — is the minimal repro.

Because the candidate order is fixed and :func:`repro.scenario.runner
.run_scenario` is a pure function of the scenario, shrinking is itself
deterministic: the same violating scenario reduces to the same minimal
scenario in every process, under every ``--jobs`` setting, on every
machine.  Candidates are constructed through :meth:`Scenario.from_dict`,
so an edit that would leave the schema (say, shrinking ``n`` below a
resilience bound) is skipped rather than ever executed.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..errors import ScenarioError
from .runner import run_scenario, violation_kinds
from .spec import Scenario

#: Hard bound on shrink passes — each accepted candidate strictly shrinks
#: the scenario, so real searches converge in far fewer.
MAX_PASSES = 200


def _try_build(data: Dict[str, Any], changes: Dict[str, Any]) -> Optional[Scenario]:
    """The candidate constructor: apply edits, validate, or return None."""
    candidate = copy.deepcopy(data)
    for key, value in changes.items():
        if value is None:
            candidate.pop(key, None)
        else:
            candidate[key] = value
    try:
        return Scenario.from_dict(candidate)
    except ScenarioError:
        return None


def _without_index(items: List[Any], index: int) -> List[Any]:
    return [item for position, item in enumerate(items) if position != index]


def _candidates(scenario: Scenario) -> Iterator[Optional[Scenario]]:
    """Every one-step reduction of ``scenario``, in fixed deterministic order."""
    data = scenario.to_dict()
    faults = data.get("faults") or {}
    rules = list(faults.get("rules") or [])
    crashes = list(faults.get("crashes") or [])

    # Whole-dimension deletions first: each one discharges a lot at once.
    yield _try_build(data, {"faults": None})
    yield _try_build(data, {"runtime": None, "delay_model": None, "omission": None})
    yield _try_build(data, {"omission": None})
    yield _try_build(data, {"delay_model": None})
    yield _try_build(data, {"adversary": None})

    # Element-wise deletions inside the fault plan.
    for index in range(len(rules)):
        remaining = dict(faults)
        remaining["rules"] = _without_index(rules, index)
        if not remaining["rules"]:
            del remaining["rules"]
        yield _try_build(data, {"faults": remaining or None})
    for index in range(len(crashes)):
        remaining = dict(faults)
        remaining["crashes"] = _without_index(crashes, index)
        if not remaining["crashes"]:
            del remaining["crashes"]
        yield _try_build(data, {"faults": remaining or None})

    # Parameter reductions (strictly decreasing, or the fixpoint loop
    # would oscillate between candidates instead of converging).
    if scenario.trials > 1:
        yield _try_build(data, {"trials": 1})
    if scenario.trials > 3:
        yield _try_build(data, {"trials": 3})
    yield _try_build(data, {"distribution": None})
    if scenario.n > 2:
        # Shrinking n may force t below the resilience bound with it;
        # invalid (n-1, t') pairs fail schema validation and are skipped.
        for smaller_t in range(min(scenario.t, scenario.n - 3), -1, -1):
            yield _try_build(data, {"n": scenario.n - 1, "t": smaller_t})
    if scenario.t > 0:
        yield _try_build(data, {"t": scenario.t - 1})
    yield _try_build(data, {"sender": None})
    yield _try_build(data, {"timeout_rounds": None})
    yield _try_build(data, {"security_bits": None})
    yield _try_build(data, {"seed": None})
    yield _try_build(data, {"name": None})


def shrink_scenario(
    scenario: Scenario,
    predicate: Callable[[Scenario], bool],
    max_passes: int = MAX_PASSES,
) -> Tuple[Scenario, int]:
    """Greedily shrink ``scenario`` while ``predicate`` stays true.

    Returns ``(minimal, steps)`` where ``steps`` counts accepted
    reductions.  ``predicate(scenario)`` is assumed true on entry; the
    result is the deterministic fixpoint of the candidate order in
    :func:`_candidates`.
    """
    current = scenario
    steps = 0
    for _ in range(max_passes):
        accepted = False
        current_canonical = current.canonical()
        for candidate in _candidates(current):
            if candidate is None or candidate.canonical() == current_canonical:
                continue
            if predicate(candidate):
                current = candidate
                steps += 1
                accepted = True
                break
        if not accepted:
            break
    return current, steps


def signature_predicate(signature: FrozenSet[str]) -> Callable[[Scenario], bool]:
    """True iff a scenario still exhibits every violation kind in ``signature``."""

    def predicate(candidate: Scenario) -> bool:
        return signature <= violation_kinds(run_scenario(candidate))

    return predicate


def shrink_violation(
    scenario: Scenario, row: Optional[Dict[str, Any]] = None
) -> Tuple[Scenario, Dict[str, Any], int]:
    """Shrink a violating scenario to its minimal repro.

    ``row`` is the scenario's outcome row if already computed; the
    violation signature is taken from it.  Returns the minimal scenario,
    its outcome row, and the number of accepted shrink steps.  Raises
    :class:`ScenarioError` when the scenario has no violation to preserve.
    """
    if row is None:
        row = run_scenario(scenario)
    signature = violation_kinds(row)
    if not signature:
        raise ScenarioError(
            f"scenario {scenario.scenario_id()} has no violation to shrink"
        )
    minimal, steps = shrink_scenario(scenario, signature_predicate(signature))
    return minimal, run_scenario(minimal), steps
