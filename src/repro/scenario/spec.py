"""The declarative :class:`Scenario` spec — the DSL's core value type.

A scenario names *everything* one seeded execution cell needs: a
protocol-zoo member, parameters ``(n, t, k)``, an input-distribution
class, an adversary strategy, a :class:`repro.faults.FaultPlan`, a
network runtime with optional delay/omission models, a trial count, and a
seed.  It is a superset of ``examples/faultplan.json`` (the plan rides
along under the ``"faults"`` key) and a pure description: cheap to hash,
serialize, ship to pool workers, and shrink.

Entry points — the *only* supported ways to obtain a ``Scenario``:

* :meth:`Scenario.from_dict` / :meth:`Scenario.build` — validate a
  mapping / keyword set against :mod:`repro.scenario.schema`;
* :meth:`Scenario.loads` / :meth:`Scenario.load` — parse JSON (or YAML,
  by extension) and validate;
* the campaign fuzzer (:mod:`repro.scenario.fuzz`) and shrinker
  (:mod:`repro.scenario.shrink`), which construct through the above.

Direct dataclass construction skips the cross-field schema checks and is
flagged by analyzer rule SCN001 outside this package — the DSL stays the
single entry point, so "it validated" is an invariant every downstream
consumer (campaign runner, corpus, CI gates) may assume.

Canonical form: :meth:`to_dict` omits every field at its default, and
:meth:`canonical` renders sorted-key compact JSON — two scenarios are
semantically equal iff their canonical strings match, and
:meth:`scenario_id` (a short content hash) names corpus entries stably
across processes and Python versions.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

from ..faults.plan import FaultPlan
from . import schema
from .registry import (
    PROTOCOLS,
    AdversarySpec,
    DistributionSpec,
    build_protocol,
    parse_adversary,
    parse_distribution,
)

#: Default per-scenario trial count — breadth over depth (see schema.MAX_TRIALS).
DEFAULT_TRIALS = 4


@dataclass(frozen=True)
class Scenario:
    """One fully specified, seedable execution cell.  See the module docstring."""

    protocol: str
    n: int = 5
    t: int = 2
    name: str = ""
    security_bits: int = 24
    sender: int = 1
    seed: int = 0
    trials: int = DEFAULT_TRIALS
    timeout_rounds: Optional[int] = None
    distribution: str = "uniform"
    adversary: str = "none"
    runtime: str = "lockstep"
    delay_model: str = ""
    omission: str = ""
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self):
        # Normalization only — cross-field validation belongs to the DSL
        # entry points (from_dict/build/loads/load), which is what rule
        # SCN001 enforces for out-of-package constructors.
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))

    # -- construction (the validated entry points) --------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """The canonical constructor: schema-validate, then build."""
        schema.validate_scenario_dict(data)
        kwargs = dict(data)
        if "faults" in kwargs:
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        return cls(**kwargs)

    @classmethod
    def build(cls, **kwargs: Any) -> "Scenario":
        """Keyword-argument sugar over :meth:`from_dict` (same validation)."""
        faults = kwargs.get("faults")
        if isinstance(faults, FaultPlan):
            kwargs["faults"] = faults.to_dict()
        return cls.from_dict(kwargs)

    # -- canonical serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical mapping: every field at its default is omitted."""
        data: Dict[str, Any] = {"protocol": self.protocol}
        for spec_field in fields(self):
            if spec_field.name in ("protocol", "faults"):
                continue
            value = getattr(self, spec_field.name)
            default = spec_field.default
            if value != default:
                data[spec_field.name] = value
        if not self.faults.is_empty() or self.faults.seed or self.faults.name:
            data["faults"] = self.faults.to_dict()
        return data

    @classmethod
    def loads(cls, text: str, format: str = "json") -> "Scenario":
        if format == "yaml":
            data = schema.parse_yaml(text)
        else:
            try:
                data = json.loads(text)
            except ValueError as exc:
                raise schema.ScenarioError(f"not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "Scenario":
        """Load a scenario file; ``.yaml``/``.yml`` parse as YAML."""
        data = schema.load_structured(path)
        if not isinstance(data, dict):
            raise schema.ScenarioError(
                f"{path!r}: expected a scenario mapping, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    def dumps(self, format: str = "json") -> str:
        if format == "yaml":
            return schema.dump_yaml(self.to_dict())
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def dump(self, path: str) -> None:
        format = (
            "yaml"
            if os.path.splitext(path)[1].lower() in schema.YAML_EXTENSIONS
            else "json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps(format=format))

    def canonical(self) -> str:
        """Sorted-key compact JSON: the scenario's equality witness."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def scenario_id(self) -> str:
        """A short, process-independent content hash (corpus file names)."""
        digest = hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()
        return digest[:12]

    # -- runtime materialization ---------------------------------------------------

    @property
    def spec_info(self):
        """The registry entry for this scenario's protocol."""
        return PROTOCOLS[self.protocol]

    def build_protocol(self) -> Any:
        """A fresh protocol instance at this scenario's parameters."""
        return build_protocol(
            self.protocol, self.n, self.t, self.security_bits, self.sender
        )

    def adversary_spec(self) -> AdversarySpec:
        return parse_adversary(self.adversary)

    def distribution_spec(self) -> DistributionSpec:
        return parse_distribution(self.distribution, self.n)

    def timeout(self) -> int:
        """The graceful deadline: explicit, or the zoo's 12n + 20 default."""
        return (
            self.timeout_rounds
            if self.timeout_rounds is not None
            else 12 * self.n + 20
        )

    def run_kwargs(self) -> Dict[str, Any]:
        """The runtime-selection keywords for :func:`repro.net.network.run_protocol`."""
        kwargs: Dict[str, Any] = {"runtime": self.runtime}
        if self.delay_model:
            kwargs["delay_model"] = self.delay_model
        if self.omission:
            kwargs["omission"] = self.omission
        return kwargs

    # -- derived views -------------------------------------------------------------

    def with_name(self, name: str) -> "Scenario":
        return replace(self, name=name)

    def __repr__(self) -> str:
        return (
            f"Scenario({self.protocol!r}, n={self.n}, t={self.t},"
            f" adversary={self.adversary!r}, runtime={self.runtime!r},"
            f" id={self.scenario_id()})"
        )
