"""Execute one :class:`Scenario` and judge it against expected guarantees.

:func:`run_scenario` is the campaign's unit of work: it runs every trial
of a scenario through :func:`repro.net.network.run_protocol`, detects
conformance violations, and classifies each against the *expected
guarantees* of the scenario's cell.  Everything it computes is a pure
function of the scenario (per-trial RNG streams are salted from the
scenario seed with the repo-wide ``seed * 1_000_003 + trial`` idiom), so
serial and ``--jobs N`` campaigns produce byte-identical outcome rows.

Detected violation kinds, and the guarantee each one breaches:

========== ============ ===================================================
kind       guarantee    meaning
========== ============ ===================================================
crash      termination  an exception escaped the run (incl. round bound)
timeout    termination  graceful deadline hit, or an honest party silent
disagree   agreement    honest parties split on the announced output
validity   validity     an honest, uncrashed input was not preserved
copy       independence a copier's announced value tracked its target in
                        every trial (the paper's Section 3.2 attack)
========== ============ ===================================================

Violations are *always recorded*; a scenario is only **unexpected** (the
campaign's failure signal) when it breaches a guarantee the conservative
model in :func:`expected_guarantees` says must hold.  Perturbed cells —
wire faults on non-mailbox protocols, crashes, non-degenerate event
timing, omission — are observe-only: the paper's Section 3.1 model does
not promise anything there, so the campaign measures them instead of
gating on them.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..errors import ConsistencyError
from ..net.network import run_protocol
from .spec import Scenario

#: Per-trial RNG stream mixing (the TrialPlan / FaultPlan.injector_seed idiom).
_SEED_MIX = 1_000_003

#: kind → the guarantee it breaches (the table in the module docstring).
GUARANTEE_OF = {
    "crash": "termination",
    "timeout": "termination",
    "disagree": "agreement",
    "validity": "validity",
    "copy": "independence",
}

#: Minimum trials before the cross-trial copy detector may fire — below
#: this, value equality is too likely by chance (2^-trials) to report.
MIN_COPY_TRIALS = 3

#: Delay-model specs under which the event runtime reproduces lockstep
#: exactly (RushDelay(ConstantDelay(1)) is the engine's documented default).
DEGENERATE_DELAYS = ("", "constant:1", "rush:constant:1")


def net_class(scenario: Scenario) -> str:
    """The scenario's network class: one axis of its campaign cell."""
    if scenario.runtime == "lockstep":
        return "lockstep"
    if scenario.omission:
        return "event-lossy"
    if scenario.delay_model in DEGENERATE_DELAYS:
        return "event-degenerate"
    return "event-delay"


def fault_class(scenario: Scenario) -> str:
    """The scenario's fault class: the other model axis of its cell."""
    plan = scenario.faults
    if plan.rules and plan.crashes:
        return "rules+crashes"
    if plan.rules:
        return "rules"
    if plan.crashes:
        return "crashes"
    return "clean"


def cell_key(scenario: Scenario) -> str:
    """``protocol|adversary-kind|fault-class|net-class`` — the report cell."""
    adversary = scenario.adversary_spec().kind
    return "|".join(
        (scenario.protocol, adversary, fault_class(scenario), net_class(scenario))
    )


def expected_guarantees(scenario: Scenario) -> FrozenSet[str]:
    """The guarantees this cell must uphold, conservatively.

    The model only *promises* anything on the paper's own terms: a clean
    wire (no effective fault plan), degenerate timing, and a static
    adversary within the corruption threshold.  Mailbox protocols
    (``ideal-sb``, ``pi-g``) exchange values through the trusted-party
    config, so wire rules and crashes are vacuous for them (the E-FAULT
    immunity result).  Everything else is observe-only — an empty set.
    """
    spec = scenario.spec_info
    plan = scenario.faults
    wire_immune = spec.mailbox
    if not wire_immune and (plan.rules or plan.crashes):
        return frozenset()
    if scenario.runtime == "event" and (
        scenario.omission or scenario.delay_model not in DEGENERATE_DELAYS
    ):
        return frozenset()
    corrupted = set(scenario.adversary_spec().corrupted)
    expected = {"agreement"}
    if spec.single_sender:
        # RBC semantics: liveness and validity are promised only for an
        # honest sender; phase king's fixed round structure always ends.
        sender_honest = scenario.sender not in corrupted
        if sender_honest or scenario.protocol == "phase-king":
            expected.add("termination")
        if sender_honest:
            expected.add("validity")
    else:
        expected.add("termination")
        expected.add("validity")
    return frozenset(expected)


def _violation(kind: str, trial: int, detail: str) -> Dict[str, Any]:
    return {
        "kind": kind,
        "guarantee": GUARANTEE_OF[kind],
        "trial": trial,
        "detail": detail,
    }


def _check_single_sender(
    scenario: Scenario,
    execution: Any,
    inputs: List[int],
    trial: int,
    violations: List[Dict[str, Any]],
) -> Any:
    honest = execution.honest
    outputs = {party: execution.outputs.get(party) for party in honest}
    missing = sorted(party for party, value in outputs.items() if value is None)
    if missing:
        violations.append(
            _violation("timeout", trial, f"honest parties {missing} produced no output")
        )
        return None
    distinct = sorted({repr(value) for value in outputs.values()})
    if len(distinct) > 1:
        violations.append(
            _violation("disagree", trial, f"honest outputs split: {distinct}")
        )
        return None
    value = outputs[honest[0]]
    if scenario.sender not in execution.corrupted and value != inputs[scenario.sender - 1]:
        violations.append(
            _violation(
                "validity",
                trial,
                f"honest sender {scenario.sender} sent"
                f" {inputs[scenario.sender - 1]!r}, parties decided {value!r}",
            )
        )
    return value


def _check_parallel(
    scenario: Scenario,
    execution: Any,
    inputs: List[int],
    trial: int,
    violations: List[Dict[str, Any]],
) -> Optional[Tuple[Any, ...]]:
    try:
        announced = execution.announced_vector()
    except ConsistencyError as exc:
        violations.append(_violation("disagree", trial, str(exc)))
        return None
    crashed = set(scenario.faults.crashed_parties)
    bad = [
        party
        for party in execution.honest
        if party not in crashed and announced[party - 1] != inputs[party - 1]
    ]
    if bad:
        violations.append(
            _violation(
                "validity",
                trial,
                f"honest inputs not preserved at parties {bad}:"
                f" announced={list(announced)}, inputs={inputs}",
            )
        )
    return announced


def run_scenario(scenario: Scenario) -> Dict[str, Any]:
    """Run every trial of one scenario and return its outcome row.

    The row is plain JSON data: scenario identity, detected violations,
    the subset that breaches expected guarantees, and a digest over the
    per-trial records that witnesses cross-run determinism.
    """
    spec = scenario.spec_info
    adversary_spec = scenario.adversary_spec()
    distribution = scenario.distribution_spec()
    expected = expected_guarantees(scenario)
    plan = None if scenario.faults.is_empty() else scenario.faults

    violations: List[Dict[str, Any]] = []
    records: List[List[Any]] = []
    copy_pairs: List[Tuple[Any, Any]] = []
    pair = adversary_spec.copier_pair

    for trial in range(scenario.trials):
        trial_rng = random.Random(scenario.seed * _SEED_MIX + trial)
        inputs = distribution.sample(scenario.n, trial_rng)
        run_seed = trial_rng.getrandbits(48)
        fault_seed = trial_rng.getrandbits(48)
        protocol = scenario.build_protocol()
        adversary = adversary_spec.build(protocol)
        before = len(violations)
        value: Any = None
        try:
            execution = run_protocol(
                protocol,
                inputs,
                adversary=adversary,
                seed=run_seed,
                fault_plan=plan,
                fault_seed=fault_seed,
                timeout_rounds=scenario.timeout(),
                timeout_output=None,
                **scenario.run_kwargs(),
            )
        except ConsistencyError as exc:
            violations.append(_violation("disagree", trial, str(exc)))
        except Exception as exc:  # any escape is, by definition, a crash
            violations.append(
                _violation("crash", trial, f"{type(exc).__name__}: {exc}")
            )
        else:
            if execution.timed_out:
                violations.append(
                    _violation("timeout", trial, "graceful deadline reached")
                )
            elif spec.single_sender:
                value = _check_single_sender(
                    scenario, execution, inputs, trial, violations
                )
            else:
                value = _check_parallel(scenario, execution, inputs, trial, violations)
                if value is not None and pair is not None:
                    copy_pairs.append((value[pair[0] - 1], value[pair[1] - 1]))
        verdict = "ok" if len(violations) == before else violations[-1]["kind"]
        records.append([trial, verdict, repr(value)])

    if (
        pair is not None
        and len(copy_pairs) >= MIN_COPY_TRIALS
        and all(copier == target for copier, target in copy_pairs)
    ):
        violations.append(
            _violation(
                "copy",
                -1,
                f"party {pair[0]}'s announced value equalled party {pair[1]}'s"
                f" in all {len(copy_pairs)} trials",
            )
        )

    unexpected = [v for v in violations if v["guarantee"] in expected]
    digest = hashlib.sha256(
        json.dumps(records, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
    return {
        "id": scenario.scenario_id(),
        "cell": cell_key(scenario),
        "scenario": scenario.to_dict(),
        "trials": scenario.trials,
        "expected": sorted(expected),
        "violations": violations,
        "unexpected": unexpected,
        "verdict": "violation" if violations else "clean",
        "digest": digest,
    }


def violation_kinds(row: Dict[str, Any]) -> FrozenSet[str]:
    """The set of violation kinds in one outcome row (the shrink signature)."""
    return frozenset(v["kind"] for v in row["violations"])
