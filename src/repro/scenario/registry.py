"""Registries mapping scenario spec strings to runtime objects.

The DSL names everything by string — protocol-zoo member, adversary
strategy, input distribution — and this module owns the string → object
mapping plus the per-kind applicability checks that
:mod:`repro.scenario.schema` runs at validation time.  Nothing here holds
state: builders return *fresh* objects so every trial gets its own
(possibly stateful) adversary instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..adversaries import (
    Adversary,
    CommitEchoAdversary,
    PassiveAdversary,
    SequentialCopier,
)
from ..broadcast.bracha import BrachaBroadcast
from ..broadcast.phase_king import PhaseKingBroadcast
from ..errors import ScenarioError
from ..protocols import (
    CGMABroadcast,
    ChorRabinBroadcast,
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    NaiveCommitReveal,
    PiGBroadcast,
    SequentialBroadcast,
)

# -- protocols ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolSpec:
    """One zoo member as the DSL sees it.

    ``single_sender`` protocols broadcast one designated party's value
    (inputs at other positions are ignored); parallel protocols announce
    the whole vector.  ``resilience`` returns a human-readable problem
    string when ``(n, t)`` violates the member's bound, ``None`` when ok.
    ``mailbox`` members exchange values through the trusted-party mailbox
    — wire faults are vacuous, the strongest conformance class.
    """

    key: str
    build: Callable[..., Any]
    single_sender: bool = False
    mailbox: bool = False
    independent: bool = False
    resilience: Optional[Callable[[int, int], Optional[str]]] = None

    def check_resilience(self, n: int, t: int) -> Optional[str]:
        if self.resilience is None:
            return None
        return self.resilience(n, t)


def _needs(fraction: int, name: str) -> Callable[[int, int], Optional[str]]:
    def check(n: int, t: int) -> Optional[str]:
        if fraction * t >= n:
            return f"{name} requires n > {fraction}t (got n={n}, t={t})"
        return None

    return check


PROTOCOLS: Dict[str, ProtocolSpec] = {
    spec.key: spec
    for spec in (
        ProtocolSpec(
            key="sequential",
            build=lambda n, t, k, sender: SequentialBroadcast(n, t),
        ),
        ProtocolSpec(
            key="ideal-sb",
            build=lambda n, t, k, sender: IdealSimultaneousBroadcast(n, t),
            mailbox=True,
            independent=True,
        ),
        ProtocolSpec(
            key="naive-commit-reveal",
            build=lambda n, t, k, sender: NaiveCommitReveal(n, t),
        ),
        ProtocolSpec(
            key="pi-g",
            build=lambda n, t, k, sender: PiGBroadcast(n, t, backend="ideal"),
            mailbox=True,
            independent=True,
        ),
        ProtocolSpec(
            key="cgma",
            build=lambda n, t, k, sender: CGMABroadcast(n, t, security_bits=k),
            independent=True,
            resilience=_needs(2, "CGMA"),
        ),
        ProtocolSpec(
            key="chor-rabin",
            build=lambda n, t, k, sender: ChorRabinBroadcast(n, t, security_bits=k),
            independent=True,
            resilience=_needs(2, "Chor-Rabin"),
        ),
        ProtocolSpec(
            key="gennaro",
            build=lambda n, t, k, sender: GennaroBroadcast(n, t, security_bits=k),
            independent=True,
            resilience=_needs(1, "Gennaro"),
        ),
        ProtocolSpec(
            key="bracha",
            build=lambda n, t, k, sender: BrachaBroadcast(n, t, sender=sender),
            single_sender=True,
            resilience=_needs(3, "Bracha RBC"),
        ),
        ProtocolSpec(
            key="phase-king",
            build=lambda n, t, k, sender: PhaseKingBroadcast(n, t, sender=sender),
            single_sender=True,
            resilience=_needs(4, "phase king"),
        ),
    )
}


def build_protocol(key: str, n: int, t: int, security_bits: int, sender: int) -> Any:
    try:
        spec = PROTOCOLS[key]
    except KeyError:
        raise ScenarioError(
            f"unknown protocol {key!r}; known: {sorted(PROTOCOLS)}"
        ) from None
    return spec.build(n, t, security_bits, sender)


# -- adversaries --------------------------------------------------------------------


@dataclass(frozen=True)
class AdversarySpec:
    """A parsed adversary spec string.

    ``kind`` is the strategy; ``parties`` its integer arguments.  Copier
    kinds read ``parties`` as ``(copier, target)``; corruption kinds as
    the corrupted set.
    """

    kind: str
    parties: Tuple[int, ...] = ()

    @property
    def corrupted(self) -> Tuple[int, ...]:
        """The parties the adversary statically corrupts."""
        if self.kind == "none":
            return ()
        if self.kind in ("commit-echo", "sequential-copier"):
            return (self.parties[0],)
        return tuple(sorted(set(self.parties)))

    @property
    def copier_pair(self) -> Optional[Tuple[int, int]]:
        """``(copier, target)`` for copy strategies, else ``None``."""
        if self.kind in ("commit-echo", "sequential-copier"):
            return (self.parties[0], self.parties[1])
        return None

    def check(self, protocol: str, n: int, t: int) -> Optional[str]:
        """Applicability problem string for one scenario, ``None`` when ok."""
        out_of_range = [p for p in self.parties if not 1 <= p <= n]
        if out_of_range:
            return f"parties {out_of_range} out of range for n={n}"
        if len(self.corrupted) > t:
            return (
                f"{self.kind} corrupts {len(self.corrupted)} parties"
                f" but the scenario tolerates t={t}"
            )
        if self.kind in ("passive", "silent") and not self.parties:
            return f"{self.kind} needs at least one corrupted party"
        if self.kind in ("commit-echo", "sequential-copier"):
            if len(self.parties) != 2:
                return f"{self.kind} needs exactly copier,target"
            copier, target = self.parties
            if copier == target:
                return "copier and target must differ"
            if self.kind == "sequential-copier" and copier <= target:
                return "the copier must be scheduled after the target (copier > target)"
            applicable = ADVERSARIES[self.kind]
            if applicable and protocol not in applicable:
                return (
                    f"{self.kind} replays {applicable}-specific message tags;"
                    f" not applicable to {protocol!r}"
                )
        return None

    def build(self, protocol: Any) -> Optional[Adversary]:
        """A fresh adversary instance bound to one protocol run."""
        if self.kind == "none":
            return None
        if self.kind == "passive":
            return PassiveAdversary(corrupted=list(self.parties))
        if self.kind == "silent":
            return Adversary(corrupted=list(self.parties))
        if self.kind == "commit-echo":
            return CommitEchoAdversary(copier=self.parties[0], target=self.parties[1])
        if self.kind == "sequential-copier":
            return SequentialCopier(copier=self.parties[0], target=self.parties[1])
        raise ScenarioError(f"unknown adversary kind {self.kind!r}")

    def spec(self) -> str:
        if not self.parties:
            return self.kind
        return self.kind + ":" + ",".join(str(p) for p in self.parties)


#: Adversary kinds → the protocols they are restricted to (empty = any).
#: Copy strategies replay protocol-specific message tags, so pointing them
#: at another zoo member would silently test nothing.
ADVERSARIES: Dict[str, Tuple[str, ...]] = {
    "none": (),
    "passive": (),
    "silent": (),
    "commit-echo": ("naive-commit-reveal",),
    "sequential-copier": ("sequential",),
}


def parse_adversary(spec: str) -> AdversarySpec:
    """Parse ``"none"`` / ``"passive:1,2"`` / ``"commit-echo:5,1"`` ..."""
    text = str(spec).strip() or "none"
    head, _, rest = text.partition(":")
    head = head.lower()
    if head not in ADVERSARIES:
        raise ScenarioError(
            f"unknown adversary kind {head!r}; known: {sorted(ADVERSARIES)}"
        )
    parties: Tuple[int, ...] = ()
    if rest:
        try:
            parties = tuple(int(part) for part in rest.split(",") if part.strip())
        except ValueError:
            raise ScenarioError(
                f"adversary parties must be integers, got {rest!r}"
            ) from None
    if head == "none" and parties:
        raise ScenarioError("adversary 'none' takes no parties")
    return AdversarySpec(kind=head, parties=parties)


# -- input distributions ------------------------------------------------------------


@dataclass(frozen=True)
class DistributionSpec:
    """A parsed input-distribution spec: a per-trial bit-vector sampler."""

    kind: str
    params: Tuple[float, ...] = ()

    def sample(self, n: int, rng: random.Random) -> List[int]:
        if self.kind == "uniform":
            return [rng.randrange(2) for _ in range(n)]
        if self.kind == "singleton":
            return [int(b) for b in self.params]
        if self.kind == "bernoulli":
            biases = list(self.params)
            if len(biases) == 1:
                biases = biases * n
            return [1 if rng.random() < bias else 0 for bias in biases]
        raise ScenarioError(f"unknown distribution kind {self.kind!r}")

    def spec(self) -> str:
        if not self.params:
            return self.kind
        if self.kind == "singleton":
            return self.kind + ":" + ",".join(str(int(p)) for p in self.params)
        return self.kind + ":" + ",".join(repr(float(p)) for p in self.params)


#: The distribution classes the DSL can name (mirrors the paper's D(·)
#: hierarchy at the campaign's bit-vector granularity).
DISTRIBUTIONS = ("uniform", "singleton", "bernoulli")


def parse_distribution(spec: str, n: int) -> DistributionSpec:
    """Parse ``"uniform"`` / ``"singleton:0,1,1,0,1"`` / ``"bernoulli:0.3"``."""
    text = str(spec).strip() or "uniform"
    head, _, rest = text.partition(":")
    head = head.lower()
    if head not in DISTRIBUTIONS:
        raise ScenarioError(
            f"unknown distribution {head!r}; known: {sorted(DISTRIBUTIONS)}"
        )
    if head == "uniform":
        if rest:
            raise ScenarioError("distribution 'uniform' takes no parameters")
        return DistributionSpec(kind=head)
    try:
        params = tuple(float(part) for part in rest.split(",") if part.strip())
    except ValueError:
        raise ScenarioError(
            f"distribution parameters must be numbers, got {rest!r}"
        ) from None
    if head == "singleton":
        if len(params) != n or any(p not in (0.0, 1.0) for p in params):
            raise ScenarioError(
                f"singleton needs exactly n={n} bits, got {rest!r}"
            )
    if head == "bernoulli":
        if len(params) not in (1, n):
            raise ScenarioError(
                f"bernoulli needs 1 or n={n} probabilities, got {len(params)}"
            )
        if any(not 0.0 <= p <= 1.0 for p in params):
            raise ScenarioError(f"bernoulli probabilities must be in [0, 1], got {rest!r}")
    return DistributionSpec(kind=head, params=params)
