"""Declarative scenario DSL, seeded campaign fuzzer, and shrinker.

The package closes the loop between the repo's composable seams — the
protocol zoo, the FaultPlan DSL, the adversary strategies, the
lockstep/event network runtimes, and the warm-started parallel engine —
by giving one *declarative* name to a full execution cell:

* :class:`Scenario` (:mod:`repro.scenario.spec`) — the validated,
  canonically serializable spec (a superset of ``examples/faultplan.json``);
* :mod:`repro.scenario.schema` — field-by-field validation for scenarios
  and standalone fault plans (the ``--faults`` CLI path);
* :mod:`repro.scenario.registry` — the string → runtime-object mappings;
* :mod:`repro.scenario.fuzz` — the pure seeded scenario generator;
* :mod:`repro.scenario.runner` — one scenario → one outcome row, with
  violation detection against conservative expected guarantees;
* :mod:`repro.scenario.shrink` — greedy deterministic minimal-
  counterexample reduction;
* :mod:`repro.scenario.campaign` — the resumable campaign driver behind
  ``python -m repro campaign``.
"""

from __future__ import annotations

from .campaign import Campaign
from .fuzz import generate_scenario
from .registry import ADVERSARIES, DISTRIBUTIONS, PROTOCOLS
from .runner import expected_guarantees, run_scenario
from .schema import (
    fault_plan_errors,
    load_fault_plan,
    scenario_errors,
    validate_fault_plan_dict,
    validate_scenario_dict,
)
from .shrink import shrink_scenario, shrink_violation
from .spec import Scenario

__all__ = [
    "ADVERSARIES",
    "Campaign",
    "DISTRIBUTIONS",
    "PROTOCOLS",
    "Scenario",
    "expected_guarantees",
    "fault_plan_errors",
    "generate_scenario",
    "load_fault_plan",
    "run_scenario",
    "scenario_errors",
    "shrink_scenario",
    "shrink_violation",
    "validate_fault_plan_dict",
    "validate_scenario_dict",
]
