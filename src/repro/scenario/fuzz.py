"""The seeded scenario fuzzer: index → :class:`Scenario`, purely.

:func:`generate_scenario` is a *pure function* of ``(campaign_seed,
index)`` — the property every campaign guarantee rests on:

* **resumability** — a checkpoint stores only outcome rows; re-deriving
  scenario ``i`` after a restart gives byte-identical specs;
* **``--jobs`` equivalence** — workers receive fully built scenario
  dicts, but even re-generation inside a worker would agree with the
  coordinator;
* **corpus stability** — a corpus entry's ``scenario_id`` names the same
  scenario in every run of the same campaign.

The sampler sweeps the cross-product the motivation calls out:
distribution classes × adversary strategies × fault plans × runtimes ×
delay/omission models × ``(n, t)`` corners, with the weights biased
toward the boundaries where the paper's claims live (corruption
fractions at the resilience bound, non-degenerate network timing).
Heavy-crypto zoo members (cgma, chor-rabin, gennaro) ride in the default
pool at low weight — affordable since the crypto layer grew batch
verification and shared warm tables (ROADMAP item 2); their ``(n, t)``
draws respect each member's resilience bound via the registry specs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..faults.plan import KINDS
from .spec import Scenario

#: Multiplier mixing the campaign seed with the scenario index (the same
#: idiom as ExperimentConfig.rng / FaultPlan.injector_seed).
_SEED_MIX = 1_000_003

#: The default fuzz pool: the whole zoo, weighted so the known-dirty
#: members (the fuzzer's positive controls) stay frequent and the
#: heavy-crypto members stay a bounded fraction of the budget.
PROTOCOL_POOL: Tuple[Tuple[str, int], ...] = (
    ("sequential", 3),
    ("ideal-sb", 3),
    ("naive-commit-reveal", 4),
    ("pi-g", 2),
    ("bracha", 3),
    ("phase-king", 2),
    ("cgma", 1),
    ("chor-rabin", 1),
    ("gennaro", 1),
)

#: Fault probabilities the rule sampler draws from — boundary-heavy.
_PROBABILITIES = (0.05, 0.1, 0.25, 1.0)

#: Event-runtime delay model specs (empty = the degenerate rush default).
_DELAY_MODELS = (
    "",
    "constant:1",
    "uniform:0.5,1.5",
    "exponential:1.0",
    "rush:uniform:0.5,1.5",
)


def _weighted(rng: random.Random, pool: Tuple[Tuple[str, int], ...]) -> str:
    total = sum(weight for _, weight in pool)
    pick = rng.randrange(total)
    for key, weight in pool:
        pick -= weight
        if pick < 0:
            return key
    return pool[-1][0]


def _sample_parameters(rng: random.Random, protocol: str) -> Tuple[int, int]:
    """Draw ``(n, t)`` biased toward each member's resilience boundary."""
    if protocol == "phase-king":
        n = rng.randrange(5, 10)
        t_max = (n - 1) // 4
    elif protocol == "bracha":
        n = rng.randrange(4, 8)
        t_max = (n - 1) // 3
    elif protocol in ("cgma", "chor-rabin"):
        # Honest-majority members; keep n small — every trial pays VSS
        # dealings for all n parties even with batch verification.
        n = rng.randrange(3, 6)
        t_max = (n - 1) // 2
    elif protocol == "gennaro":
        n = rng.randrange(3, 6)
        t_max = n - 1
    else:
        n = rng.randrange(3, 7)
        t_max = n - 1
    # Two-thirds of draws sit at the boundary t = t_max — the corner the
    # motivation (Cohen et al., Arapinis et al.) says failures live at.
    t = t_max if rng.randrange(3) < 2 else rng.randrange(t_max + 1)
    return n, t


def _sample_adversary(rng: random.Random, protocol: str, n: int, t: int) -> str:
    options: List[str] = ["none"]
    if t >= 1:
        corrupted = sorted(rng.sample(range(1, n + 1), rng.randrange(1, t + 1)))
        listed = ",".join(str(p) for p in corrupted)
        options.append(f"passive:{listed}")
        options.append(f"silent:{listed}")
        if protocol == "naive-commit-reveal":
            target = rng.randrange(1, n + 1)
            copier = rng.choice([p for p in range(1, n + 1) if p != target])
            # Weighted double: the acceptance criterion's known violation.
            options.extend([f"commit-echo:{copier},{target}"] * 2)
        if protocol == "sequential" and n >= 2:
            target = rng.randrange(1, n)
            copier = rng.randrange(target + 1, n + 1)
            options.extend([f"sequential-copier:{copier},{target}"] * 2)
    return options[rng.randrange(len(options))]


def _sample_distribution(rng: random.Random, n: int) -> str:
    pick = rng.randrange(10)
    if pick < 6:
        return "uniform"
    if pick < 8:
        bias = rng.choice((0.1, 0.3, 0.5, 0.7, 0.9))
        return f"bernoulli:{bias}"
    bits = ",".join(str(rng.randrange(2)) for _ in range(n))
    return f"singleton:{bits}"


def _sample_faults(rng: random.Random, n: int) -> Dict[str, object]:
    """A fault-plan dict: empty half the time, else 1–3 rules + 0–2 crashes."""
    if rng.randrange(2):
        return {}
    plan: Dict[str, object] = {"seed": rng.getrandbits(16)}
    rules = []
    for _ in range(rng.randrange(1, 4)):
        kind = rng.choice(KINDS)
        rule: Dict[str, object] = {
            "kind": kind,
            "probability": rng.choice(_PROBABILITIES),
        }
        if rng.randrange(3) == 0:
            rule["senders"] = [rng.randrange(1, n + 1)]
        if rng.randrange(3) == 0:
            rule["rounds"] = [rng.randrange(1, 5)]
        if kind == "delay":
            rule["delay"] = rng.randrange(1, 3)
        if kind == "duplicate":
            rule["copies"] = rng.randrange(1, 3)
        if kind == "corrupt":
            rule["mode"] = rng.choice(("garbage", "flip"))
        rules.append(rule)
    plan["rules"] = rules
    crashes = []
    for _ in range(rng.randrange(3)):
        at_round = rng.randrange(1, 5)
        crash: Dict[str, object] = {
            "party": rng.randrange(1, n + 1),
            "at_round": at_round,
        }
        if rng.randrange(2):
            crash["recover_at"] = at_round + rng.randrange(1, 4)
        crashes.append(crash)
    if crashes:
        plan["crashes"] = crashes
    return plan


def _sample_network(rng: random.Random, n: int) -> Tuple[str, str, str]:
    """``(runtime, delay_model, omission)`` — lockstep half the time."""
    if rng.randrange(2):
        return "lockstep", "", ""
    delay = rng.choice(_DELAY_MODELS)
    omission = ""
    pick = rng.randrange(4)
    if pick == 0:
        omission = f"random:{rng.choice((0.02, 0.05, 0.1))}"
    elif pick == 1:
        omission = f"drop-all:{rng.randrange(1, n + 1)}"
    return "event", delay, omission


def generate_scenario(campaign_seed: int, index: int) -> Scenario:
    """The campaign's scenario at ``index`` — pure, validated, replayable."""
    rng = random.Random(campaign_seed * _SEED_MIX + index)
    protocol = _weighted(rng, PROTOCOL_POOL)
    n, t = _sample_parameters(rng, protocol)
    adversary = _sample_adversary(rng, protocol, n, t)
    data: Dict[str, object] = {
        "name": f"fuzz-{index:06d}",
        "protocol": protocol,
        "n": n,
        "t": t,
        "seed": rng.getrandbits(32),
        "trials": rng.randrange(3, 6),
        "distribution": _sample_distribution(rng, n),
        "adversary": adversary,
    }
    if protocol in ("bracha", "phase-king"):
        data["sender"] = rng.randrange(1, n + 1)
    faults = _sample_faults(rng, n)
    if faults:
        data["faults"] = faults
    runtime, delay_model, omission = _sample_network(rng, n)
    data["runtime"] = runtime
    if delay_model:
        data["delay_model"] = delay_model
    if omission:
        data["omission"] = omission
    return Scenario.from_dict(data)


def generate_batch(
    campaign_seed: int, start: int, count: int, skip: Optional[set] = None
) -> List[Tuple[int, Scenario]]:
    """Scenarios ``[start, start + count)``, minus already-completed indices."""
    completed = skip or set()
    return [
        (index, generate_scenario(campaign_seed, index))
        for index in range(start, start + count)
        if index not in completed
    ]
