"""CLI driver: ``python -m repro campaign [subcommand] [options]``.

* default — run a seeded fuzzing campaign::

      python -m repro campaign --budget 200
      python -m repro campaign --budget 2000 --jobs 4 --seed 7

  Campaigns checkpoint after every batch and resume automatically: rerun
  the same command after an interruption and only the missing scenario
  indices execute.  ``--fresh`` discards the checkpoint instead.

* ``validate FILE ...`` — schema-check scenario files (JSON, or YAML by
  extension) and print every problem, field by field;
* ``exec FILE`` — run one scenario file and print its outcome row;
* ``shrink FILE`` — reduce a violating scenario file to its minimal
  repro (written next to the input as ``<name>.min.json``).

``python -m repro campaign ...`` reaches this driver through the
:mod:`repro.__main__` dispatcher.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..errors import ScenarioError
from .campaign import (
    DEFAULT_BATCH,
    DEFAULT_OUT_DIR,
    DEFAULT_REPORT,
    DEFAULT_SHRINK_LIMIT,
    Campaign,
)
from .runner import run_scenario
from .schema import scenario_errors, load_structured
from .shrink import shrink_violation
from .spec import Scenario

#: Default campaign seed (the repo-wide experiment seed).
DEFAULT_SEED = 20050717

#: Default scenario budget for an interactive run.
DEFAULT_BUDGET = 200

SUBCOMMANDS = ("validate", "exec", "shrink")


def _cmd_validate(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign validate",
        description="Schema-check scenario files without running anything.",
    )
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args(argv)
    failures = 0
    for path in args.files:
        try:
            data = load_structured(path)
        except ScenarioError as exc:
            print(f"{path}: {exc}")
            failures += 1
            continue
        problems = scenario_errors(data)
        if problems:
            failures += 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"{path}: ok ({Scenario.from_dict(data).scenario_id()})")
    return 1 if failures else 0


def _cmd_exec(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign exec",
        description="Run one scenario file and print its outcome row.",
    )
    parser.add_argument("file", metavar="FILE")
    args = parser.parse_args(argv)
    try:
        scenario = Scenario.load(args.file)
    except ScenarioError as exc:
        parser.error(str(exc))
    row = run_scenario(scenario)
    json.dump(row, sys.stdout, indent=2, sort_keys=True)
    print()
    return 1 if row["violations"] else 0


def _cmd_shrink(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign shrink",
        description="Reduce a violating scenario file to its minimal repro.",
    )
    parser.add_argument("file", metavar="FILE")
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="where to write the minimal scenario (default: FILE with a"
        " .min.json suffix)",
    )
    args = parser.parse_args(argv)
    try:
        scenario = Scenario.load(args.file)
        minimal, row, steps = shrink_violation(scenario)
    except ScenarioError as exc:
        parser.error(str(exc))
    out = args.out or os.path.splitext(args.file)[0] + ".min.json"
    minimal.dump(out)
    kinds = sorted({violation["kind"] for violation in row["violations"]})
    print(
        f"shrunk {scenario.scenario_id()} -> {minimal.scenario_id()}"
        f" in {steps} step(s); violation kinds preserved: {', '.join(kinds)}"
    )
    print(f"minimal repro written to {out}")
    return 0


def _cmd_run(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Fuzz seeded scenarios through the protocol zoo,"
        " checkpoint/resume, and shrink violations to minimal repros.",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_BUDGET,
        metavar="N",
        help=f"how many scenarios to run (default {DEFAULT_BUDGET})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"campaign seed (default {DEFAULT_SEED}); every scenario is a"
        " pure function of (seed, index)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1; results are bit-identical at"
        " any value)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=DEFAULT_OUT_DIR,
        help=f"corpus / checkpoint directory (default {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=DEFAULT_REPORT,
        help=f"standing campaign report (default {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=DEFAULT_BATCH,
        metavar="N",
        help=f"scenarios per checkpoint flush (default {DEFAULT_BATCH})",
    )
    parser.add_argument(
        "--shrink",
        type=int,
        default=DEFAULT_SHRINK_LIMIT,
        metavar="K",
        dest="shrink_limit",
        help="how many violators get a minimal repro + flight trace"
        f" (default {DEFAULT_SHRINK_LIMIT}; 0 disables shrinking)",
    )
    parser.add_argument(
        "--crypto-backend",
        choices=["auto", "python", "gmpy2"],
        default=None,
        help="big-int arithmetic backend (bit-identical either way; see"
        " python -m repro.experiments --help)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore (and remove) any existing checkpoint for this seed",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    args = parser.parse_args(argv)
    if args.budget < 1:
        parser.error(f"--budget must be >= 1, got {args.budget}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.crypto_backend is not None:
        from ..crypto import backend as crypto_backend
        from ..errors import InvalidParameterError

        os.environ[crypto_backend.ENV_BACKEND] = args.crypto_backend
        try:
            crypto_backend.configure(None)
        except InvalidParameterError as exc:
            parser.error(str(exc))

    campaign = Campaign(
        seed=args.seed,
        budget=args.budget,
        jobs=args.jobs,
        out_dir=args.out,
        report_path=args.report,
        batch=args.batch,
        shrink_limit=args.shrink_limit,
    )
    log = None if args.quiet else (lambda message: print(message, flush=True))
    report = campaign.run(resume=not args.fresh, log=log)

    totals = report["totals"]
    print(
        f"campaign seed={args.seed}: {totals['scenarios']} scenarios,"
        f" {totals['violating']} violating,"
        f" {totals['unexpected']} unexpected guarantee breach(es)"
    )
    for entry in report.get("shrunk", []):
        print(
            f"  minimal repro {entry['id']}.min.json"
            f" ({entry['steps']} shrink step(s))"
        )
    print(f"report written to {args.report}")
    return 1 if totals["unexpected"] else 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        handler = {
            "validate": _cmd_validate,
            "exec": _cmd_exec,
            "shrink": _cmd_shrink,
        }[argv[0]]
        return handler(argv[1:])
    return _cmd_run(argv)


if __name__ == "__main__":
    sys.exit(main())
