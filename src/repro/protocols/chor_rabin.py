"""Chor--Rabin-style simultaneous broadcast in Θ(log n) rounds [8].

Shape of the protocol (matching the source of the log factor in [8] —
sequential repetitions of a zero-knowledge proof of knowledge):

1. **Commit** (1 round): every party broadcasts a Pedersen commitment to
   the *tagged* message ``m_i = 2·i + x_i``.  The identity tag makes a
   verbatim copied commitment useless: by binding it can only ever open
   to the original owner's tag.
2. **Prove knowledge** (3·⌈log₂ n⌉ rounds): ⌈log₂ n⌉ sequential
   repetitions of the interactive one-bit-challenge Okamoto proof of
   knowledge of the commitment opening, run pairwise over point-to-point
   channels (prover → first message, verifier → challenge bit, prover →
   response).  One-bit challenges keep each repetition zero-knowledge;
   ⌈log₂ n⌉ repetitions push a cheater's escape probability to ≈1/n.
   A party that cannot complete the proofs (e.g. one that mauled someone
   else's commitment and so knows no opening) fails with every honest
   verifier.
3. **Complain** (1 round): parties broadcast who failed their proofs;
   a party drawing more than t complaints is disqualified (honest provers
   can draw at most the t corrupted parties' false complaints).
4. **Reveal** (1 round): openings are broadcast; an announced value is the
   de-tagged committed bit if the opening verifies, the tag matches the
   sender, and the sender was not disqualified — otherwise the default 0.

Requires t < n/2 (so honest complaints outnumber false ones).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

from ..crypto.commitment import PedersenCommitment, PedersenParameters
from ..crypto.group import SchnorrGroup
from ..errors import InvalidParameterError
from ..net.message import broadcast, send
from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit


def tag_message(party: int, bit: int) -> int:
    """The identity-tagged committed message m = 2·party + bit."""
    return 2 * party + bit


def untag_message(message: int) -> Tuple[int, int]:
    """Inverse of :func:`tag_message`: returns (party, bit)."""
    return message // 2, message % 2


class ChorRabinBroadcast(ParallelBroadcastProtocol):
    """Commit / sequential-ZK-verify / reveal, in Θ(log n) rounds."""

    name = "chor-rabin"

    def __init__(self, n: int, t: int, security_bits: int = 24):
        super().__init__(n=n, t=t, security_bits=security_bits)
        if 2 * t >= n:
            raise InvalidParameterError(
                f"Chor-Rabin requires t < n/2 (got t={t}, n={n})"
            )

    @property
    def repetitions(self) -> int:
        return max(1, math.ceil(math.log2(self.n)))

    def setup(self, rng):
        group = SchnorrGroup.for_security(self.security_bits)
        return {
            "group": group,
            "pedersen": PedersenParameters.generate(group, seed=b"chor-rabin"),
        }

    def program(self, ctx, value):
        params: PedersenParameters = ctx.config["pedersen"]
        scheme = PedersenCommitment(params)
        group = params.group
        me = ctx.party_id
        q = group.q

        # ---- round 1: broadcast tagged commitment -----------------------------------
        my_message = tag_message(me, coerce_bit(value))
        my_blinding = ctx.rng.randrange(q)
        my_commitment = scheme.commit_with_randomness(my_message, my_blinding)
        inbox = yield [broadcast(int(my_commitment), tag="cr:commit")]

        commitments: Dict[int, Optional[object]] = {}
        for sender, payload in inbox.payload_by_sender(tag="cr:commit").items():
            try:
                commitments[sender] = group.element(int(payload))
            except Exception:
                commitments[sender] = None

        # ---- proof-of-knowledge repetitions ------------------------------------------
        failed: Set[int] = {
            j for j in ctx.others() if commitments.get(j) is None
        }
        for rep in range(self.repetitions):
            a_tag = f"cr:pok:{rep}:a"
            e_tag = f"cr:pok:{rep}:e"
            z_tag = f"cr:pok:{rep}:z"

            # Prover move: fresh (u, v) per verifier.
            nonces = {}
            drafts = []
            for j in ctx.others():
                u, v = ctx.rng.randrange(1, q), ctx.rng.randrange(1, q)
                nonces[j] = (u, v)
                first = (params.g ** u) * (params.h ** v)
                drafts.append(send(j, int(first), tag=a_tag))
            inbox = yield drafts

            first_messages: Dict[int, Optional[object]] = {}
            for j in ctx.others():
                message = inbox.first_from(j, tag=a_tag)
                if message is None:
                    first_messages[j] = None
                    continue
                try:
                    first_messages[j] = group.element(int(message.payload))
                except Exception:
                    first_messages[j] = None

            # Verifier move: one challenge bit per prover.
            challenges_out = {j: ctx.rng.randrange(2) for j in ctx.others()}
            inbox = yield [
                send(j, challenges_out[j], tag=e_tag) for j in ctx.others()
            ]
            drafts = []
            for j in ctx.others():
                message = inbox.first_from(j, tag=e_tag)
                challenge = coerce_bit(message.payload) if message else 0
                u, v = nonces[j]
                z1 = (u + challenge * my_message) % q
                z2 = (v + challenge * my_blinding) % q
                drafts.append(send(j, (z1, z2), tag=z_tag))

            # Response move + verification.
            inbox = yield drafts
            for j in ctx.others():
                if j in failed:
                    continue
                first = first_messages.get(j)
                response = inbox.first_from(j, tag=z_tag)
                if first is None or response is None:
                    failed.add(j)
                    continue
                try:
                    z1, z2 = (int(z) % q for z in response.payload)
                except (TypeError, ValueError):
                    failed.add(j)
                    continue
                expected = first * (commitments[j] ** challenges_out[j])
                if (params.g ** z1) * (params.h ** z2) != expected:
                    failed.add(j)

        # ---- complaint round -----------------------------------------------------------
        inbox = yield [broadcast(tuple(sorted(failed)), tag="cr:complain")]
        complaint_counts: Dict[int, int] = {j: 0 for j in range(1, self.n + 1)}
        for sender, payload in inbox.payload_by_sender(tag="cr:complain").items():
            try:
                targets = {int(j) for j in payload}
            except (TypeError, ValueError):
                continue
            for target in sorted(targets):
                if target in complaint_counts and target != sender:
                    complaint_counts[target] += 1
        disqualified = {
            j for j, count in complaint_counts.items() if count > self.t
        }

        # ---- reveal round ----------------------------------------------------------------
        inbox = yield [
            broadcast((my_message, my_blinding), tag="cr:reveal")
        ]
        # Own broadcasts are delivered to the sender too, so every party —
        # including ourselves — is scored by the same public rule.
        commitments[me] = my_commitment
        announced = []
        for j in range(1, self.n + 1):
            commitment = commitments.get(j)
            if commitment is None or j in disqualified:
                announced.append(DEFAULT_BIT)
                continue
            message = inbox.first_from(j, tag="cr:reveal")
            if message is None:
                announced.append(DEFAULT_BIT)
                continue
            try:
                revealed, blinding = message.payload
                revealed, blinding = int(revealed), int(blinding)
            except (TypeError, ValueError):
                announced.append(DEFAULT_BIT)
                continue
            expected = scheme.commit_with_randomness(revealed, blinding)
            owner, bit = untag_message(revealed)
            if expected != commitment or owner != j:
                announced.append(DEFAULT_BIT)
                continue
            announced.append(coerce_bit(bit))
        return tuple(announced)
