"""Ideal(f_SB): the trusted-party simultaneous broadcast of Definition 4.1.

The reference point every real protocol is compared against: parties hand
their bits to a trusted party which returns the full vector to everyone.
Independence is perfect by construction — the adversary fixes corrupted
inputs before seeing anything.
"""

from __future__ import annotations

from ..mpc.ideal import FSBFunctionality, TrustedPartyProtocol
from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit


class IdealSimultaneousBroadcast(ParallelBroadcastProtocol):
    """Runnable Ideal(f_SB); tolerates any t < n."""

    name = "ideal-sb"

    def __init__(self, n: int, t: int, security_bits: int = 24):
        super().__init__(n=n, t=t, security_bits=security_bits)
        self._inner = TrustedPartyProtocol(FSBFunctionality(n, default=DEFAULT_BIT))

    def setup(self, rng):
        return self._inner.setup(rng)

    def program(self, ctx, value):
        mailbox = ctx.config["mailbox"]
        mailbox.submit(ctx.party_id, coerce_bit(value, default=None))
        yield []
        vector = mailbox.result(ctx.party_id)
        return tuple(coerce_bit(w) for w in vector)
