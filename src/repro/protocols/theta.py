"""Protocol Θ: a secure implementation of the function g (Claim 6.5).

Lemma 6.4's flawed protocol Π_G delegates all communication to a
sub-protocol Θ that securely computes ``g``.  Claim 6.5 notes such a Θ
exists by standard techniques for t < n/2; we provide two backends:

* ``"ideal"`` — the ideal process itself (a trusted party evaluating g),
* ``"bgw"``   — real secret-shared evaluation of the compiled g circuit
  over the simulated network (:mod:`repro.mpc.bgw`).

Party inputs are pairs ``(x_i, b_i)``; the output is the public vector w.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..errors import InvalidParameterError
from ..mpc.bgw import bgw_evaluate
from ..mpc.gfunc import GFunctionality, build_g_circuit
from ..mpc.ideal import TrustedPartyMailbox
from .base import ParallelBroadcastProtocol, coerce_bit

BACKENDS = ("ideal", "bgw")


class ThetaProtocol(ParallelBroadcastProtocol):
    """Runnable Θ: each party's input is the pair (x_i, b_i)."""

    name = "theta"

    def __init__(self, n: int, t: int, backend: str = "ideal", security_bits: int = 24):
        super().__init__(n=n, t=t, security_bits=security_bits)
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown Theta backend {backend!r}; choose from {BACKENDS}"
            )
        if backend == "bgw" and 2 * t >= n:
            raise InvalidParameterError("the BGW backend requires t < n/2")
        self.backend = backend
        self._circuit = build_g_circuit(n) if backend == "bgw" else None
        self._functionality = GFunctionality(n)

    def setup(self, rng):
        if self.backend == "ideal":
            return {
                "mailbox": TrustedPartyMailbox(
                    self._functionality, random.Random(rng.getrandbits(64))
                )
            }
        return None

    @staticmethod
    def _coerce_pair(value) -> Tuple[int, int]:
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return (coerce_bit(value[0]), coerce_bit(value[1]))
        return (coerce_bit(value), 0)

    def program(self, ctx, value):
        pair = self._coerce_pair(value)
        if self.backend == "ideal":
            mailbox: TrustedPartyMailbox = ctx.config["mailbox"]
            mailbox.submit(ctx.party_id, pair)
            yield []
            w = mailbox.result(ctx.party_id)
            return tuple(coerce_bit(v) for v in w)
        outputs = yield from bgw_evaluate(
            ctx,
            self._circuit,
            {"x": pair[0], "b": pair[1], "rho": ctx.rng.randrange(2)},
            self.t,
            instance="theta",
        )
        return tuple(coerce_bit(int(v)) for v in outputs)
