"""Interactive consistency [18] as a member of the protocol zoo.

Pease, Shostak and Lamport's interactive consistency — n single-sender
Byzantine broadcasts run in parallel — *is* a parallel broadcast protocol
in the sense of Definition 3.1, and the paper's Section 3.2 points out
that neither it nor its more sophisticated descendants guarantee any
independence: all senders speak in the same round, so a rushing adversary
reads the honest round-1 values before corrupted senders commit.

Wrapping it as a :class:`ParallelBroadcastProtocol` lets the definition
estimators score it directly; the companion adversary is
:class:`repro.adversaries.copier.RushedBroadcastCopier`.
"""

from __future__ import annotations

from ..broadcast.interactive_consistency import PRIMITIVES, InteractiveConsistency
from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit


class PeaseInteractiveConsistency(ParallelBroadcastProtocol):
    """Parallel broadcast via n simultaneous-start broadcast instances.

    ``primitive`` selects the single-sender substrate: "ideal" (the model's
    channel), "dolev-strong", "eig" or "phase-king", with the corresponding
    resilience bounds enforced by the inner protocol.
    """

    name = "interactive-consistency"

    def __init__(
        self,
        n: int,
        t: int,
        primitive: str = "ideal",
        security_bits: int = 24,
    ):
        super().__init__(n=n, t=t, security_bits=security_bits)
        self.primitive = primitive
        self._inner = InteractiveConsistency(
            n=n, t=t, primitive=primitive, security_bits=security_bits
        )

    def setup(self, rng):
        return self._inner.setup(rng)

    def program(self, ctx, value):
        vector = yield from self._inner.program(ctx, coerce_bit(value))
        return tuple(coerce_bit(entry, default=DEFAULT_BIT) for entry in vector)
