"""Gennaro-style constant-round simultaneous broadcast in the CRS model [12].

Two rounds regardless of n — the efficiency record the paper's
introduction highlights (and whose definitional cost, G-Independence,
Section 6 dissects):

1. **Commit**: broadcast a Pedersen commitment to the identity-tagged
   message ``2·i + x_i`` together with a *non-interactive* (Fiat--Shamir)
   proof of knowledge of the opening, context-bound to the session and
   the committer's identity.  The common reference string carries the
   Pedersen parameters; the context binding replaces the interactive
   verification of [8], collapsing the round count to a constant.
2. **Reveal**: broadcast the opening.  A value is announced if the
   commitment, proof (under the *sender's own* context) and tag all check
   out; otherwise the default 0.

A verbatim copier fails the context check, a mauler fails the proof of
knowledge, and a reveal-echoer fails the identity tag — the same three
attack surfaces handled by :mod:`repro.protocols.chor_rabin`, one round
apiece cheaper.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..crypto.commitment import TrapdoorCommitment
from ..crypto.group import SchnorrGroup
from ..crypto.sigma import OpeningProof, prove_opening, verify_opening
from ..errors import InvalidParameterError
from ..net.message import broadcast
from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit
from .chor_rabin import tag_message, untag_message


class GennaroBroadcast(ParallelBroadcastProtocol):
    """Constant-round (2) commit-with-NIZK / reveal in the CRS model."""

    name = "gennaro"

    def __init__(self, n: int, t: int, security_bits: int = 24):
        super().__init__(n=n, t=t, security_bits=security_bits)
        if t >= n:
            raise InvalidParameterError("t must be < n")

    def setup(self, rng):
        group = SchnorrGroup.for_security(self.security_bits)
        # The CRS: Pedersen parameters with a trapdoor that exists (so an
        # ideal-process simulator could equivocate) but is never used by
        # honest parties.  The trapdoor is sampled per execution.
        crs = TrapdoorCommitment(group, rng=rng)
        return {"group": group, "crs": crs}

    def _context(self, ctx, party: int):
        return ("gennaro", ctx.session, party)

    def program(self, ctx, value):
        crs: TrapdoorCommitment = ctx.config["crs"]
        params = crs.parameters
        group = params.group
        me = ctx.party_id
        q = group.q

        # ---- round 1: tagged commitment + context-bound NIZK PoK ----------------------
        my_message = tag_message(me, coerce_bit(value))
        my_blinding = ctx.rng.randrange(q)
        my_commitment = crs.commit_with_randomness(my_message, my_blinding)
        proof = prove_opening(
            params, my_message, my_blinding, ctx.rng, context=self._context(ctx, me)
        )
        inbox = yield [
            broadcast(
                (
                    int(my_commitment),
                    (int(proof.commitment), proof.response_value, proof.response_blinding),
                ),
                tag="gen:commit",
            )
        ]

        commitments: Dict[int, Optional[object]] = {}
        for sender, payload in inbox.payload_by_sender(tag="gen:commit").items():
            commitments[sender] = None
            try:
                raw_commitment, raw_proof = payload
                commitment = group.element(int(raw_commitment))
                proof_obj = OpeningProof(
                    commitment=group.element(int(raw_proof[0])),
                    response_value=int(raw_proof[1]),
                    response_blinding=int(raw_proof[2]),
                )
            except Exception:
                continue
            if verify_opening(
                params, commitment, proof_obj, context=self._context(ctx, sender)
            ):
                commitments[sender] = commitment

        # ---- round 2: reveal --------------------------------------------------------------
        inbox = yield [broadcast((my_message, my_blinding), tag="gen:reveal")]

        announced = []
        for j in range(1, self.n + 1):
            commitment = commitments.get(j)
            if commitment is None:
                announced.append(DEFAULT_BIT)
                continue
            message = inbox.first_from(j, tag="gen:reveal")
            if message is None:
                announced.append(DEFAULT_BIT)
                continue
            try:
                revealed, blinding = message.payload
                revealed, blinding = int(revealed), int(blinding)
            except (TypeError, ValueError):
                announced.append(DEFAULT_BIT)
                continue
            expected = crs.commit_with_randomness(revealed, blinding)
            owner, bit = untag_message(revealed)
            if expected != commitment or owner != j:
                announced.append(DEFAULT_BIT)
                continue
            announced.append(coerce_bit(bit))
        return tuple(announced)
