"""Multi-bit values over single-bit simultaneous broadcast.

The paper fixes broadcast messages to bits "for simplicity"; applications
(bids, ballots, nonces) carry integers.  :class:`MultiBitBroadcast` lifts
any single-bit parallel broadcast protocol to B-bit values by running B
independent instances — one per bit position, most significant first —
and reassembling the announced integers.

Independence is inherited positionally: if each instance is simultaneous,
no party can base any bit of its value on any bit of anybody else's.
(The converse subtlety — *cross-position* adaptivity when instances run
sequentially — is exactly the sealed-bid auction attack demonstrated in
``examples/sealed_bid_auction.py``.)
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError
from ..net.adversary import Adversary


class MultiBitBroadcast:
    """Lift a bit-broadcast protocol factory to B-bit integer values.

    Args:
        protocol_factory: zero-argument callable returning a fresh
            single-bit :class:`ParallelBroadcastProtocol` per instance.
        bits: value width B; announced values lie in [0, 2^B).
    """

    def __init__(self, protocol_factory, bits: int):
        if bits < 1:
            raise InvalidParameterError("bits must be positive")
        self.protocol_factory = protocol_factory
        self.bits = bits
        probe = protocol_factory()
        self.n = probe.n
        self.t = probe.t

    def announced(
        self,
        values: Sequence[int],
        adversary_factory=None,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
    ) -> Tuple[int, ...]:
        """Announce each party's B-bit value; returns the announced integers.

        ``adversary_factory`` receives the bit position (B-1 .. 0) and
        returns a fresh adversary for that instance (or None).
        """
        if len(values) != self.n:
            raise InvalidParameterError(f"expected {self.n} values, got {len(values)}")
        limit = 1 << self.bits
        for value in values:
            if isinstance(value, int) and not 0 <= value < limit:
                raise InvalidParameterError(
                    f"value {value} out of range for {self.bits}-bit broadcast"
                )
        if rng is None:
            rng = random.Random(seed if seed is not None else 0)

        totals: List[int] = [0] * self.n
        for position in reversed(range(self.bits)):
            protocol = self.protocol_factory()
            inputs = [
                ((value >> position) & 1) if isinstance(value, int) else value
                for value in values
            ]
            adversary: Optional[Adversary] = (
                adversary_factory(position) if adversary_factory else None
            )
            announced = protocol.announced(
                inputs, adversary=adversary, rng=random.Random(rng.getrandbits(64))
            )
            for party in range(self.n):
                totals[party] = (totals[party] << 1) | announced[party]
        return tuple(totals)
