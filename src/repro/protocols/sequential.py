"""The "simplest instantiation": n sequential single-sender broadcasts.

Section 3.2 of the paper uses this protocol as the canonical example of a
*parallel* broadcast that is **not** simultaneous: party i broadcasts its
bit in round i, so a corrupted later sender can discard its own input and
echo an earlier honest value — breaking every independence notion while
preserving consistency and correctness.

:class:`SequentialBroadcast` runs over the model's broadcast channel.  The
companion adversary that performs the echo attack lives in
:mod:`repro.adversaries.copier`.
"""

from __future__ import annotations

from ..net.message import broadcast
from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit


class SequentialBroadcast(ParallelBroadcastProtocol):
    """Round i: party i broadcasts.  Output: the vector of heard bits."""

    name = "sequential"

    def program(self, ctx, value):
        heard = {}
        for round_index in range(1, self.n + 1):
            if ctx.party_id == round_index:
                inbox = yield [broadcast(coerce_bit(value), tag="seq")]
                heard[ctx.party_id] = coerce_bit(value)
            else:
                inbox = yield []
            # The generator is resumed with round-r traffic, so the scheduled
            # sender's broadcast is read here; off-schedule broadcasts from
            # other rounds are ignored (announced as the default).
            for message in inbox.broadcasts(tag="seq"):
                if message.sender == round_index:
                    heard.setdefault(message.sender, coerce_bit(message.payload))
        return tuple(heard.get(i, DEFAULT_BIT) for i in range(1, self.n + 1))
