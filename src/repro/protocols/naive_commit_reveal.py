"""Ablation: naive commit-then-reveal *without* proofs or identity tags.

This is what the Gennaro-style protocol degenerates to if you strip the
proof of knowledge and the identity tag from the commitments: broadcast a
plain hash commitment, then broadcast the opening.  It looks simultaneous
but is not — a rushing adversary copies an honest commitment verbatim in
round 1 and echoes the honest opening in round 2, announcing a perfect
copy of the victim's bit.

The ablation experiment (see ``benchmarks``) shows this protocol failing
every independence definition under the copy adversary, while the real
:class:`repro.protocols.gennaro.GennaroBroadcast` resists it.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..crypto.prg import random_oracle
from ..net.message import broadcast
from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit

NONCE_BYTES = 16


def commitment_digest(bit: int, nonce: bytes) -> bytes:
    """The (untagged!) commitment C = H(bit, nonce)."""
    return random_oracle("naive-commit", bit, nonce)


class NaiveCommitReveal(ParallelBroadcastProtocol):
    """Two rounds: broadcast H(x, nonce), then broadcast (x, nonce)."""

    name = "naive-commit-reveal"

    def program(self, ctx, value):
        bit = coerce_bit(value)
        nonce = bytes(ctx.rng.getrandbits(8) for _ in range(NONCE_BYTES))
        inbox = yield [broadcast(commitment_digest(bit, nonce), tag="naive:commit")]

        commitments: Dict[int, Optional[bytes]] = {}
        for sender, payload in inbox.payload_by_sender(tag="naive:commit").items():
            commitments[sender] = payload if isinstance(payload, bytes) else None

        inbox = yield [broadcast((bit, nonce), tag="naive:reveal")]
        announced = []
        for j in range(1, self.n + 1):
            commitment = commitments.get(j)
            message = inbox.first_from(j, tag="naive:reveal")
            if commitment is None or message is None:
                announced.append(DEFAULT_BIT)
                continue
            try:
                revealed, revealed_nonce = message.payload
            except (TypeError, ValueError):
                announced.append(DEFAULT_BIT)
                continue
            if commitment_digest(coerce_bit(revealed), revealed_nonce) != commitment:
                announced.append(DEFAULT_BIT)
                continue
            announced.append(coerce_bit(revealed))
        return tuple(announced)
