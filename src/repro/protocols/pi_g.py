"""Π_G — the deliberately flawed protocol of Lemma 6.4.

On private input ``x_i``, each honest party sets its auxiliary bit
``b_i = 0`` and calls the secure sub-protocol Θ on ``(x_i, b_i)``; the
vector returned by Θ is the protocol output.  Honest executions therefore
announce exactly the inputs (Θ computes g, and g is the identity unless
exactly two auxiliary bits are raised).

The flaw is reachable only by the "controlled misbehaviour" the paper
describes: two corrupted parties raising ``b_i = 1``
(:class:`repro.adversaries.xor_attacker.XorAttacker`).  Then g rigs their
two coordinates to ``r`` and ``r ⊕ y``, making every single corrupted
output uniform (G-Independence survives) while forcing ``⊕_i W_i = 0``
(CR-Independence dies — Claim 6.6).
"""

from __future__ import annotations

from .base import ParallelBroadcastProtocol, coerce_bit
from .theta import BACKENDS, ThetaProtocol


class PiGBroadcast(ParallelBroadcastProtocol):
    """Π_G over a pluggable Θ backend ("ideal" or "bgw")."""

    name = "pi-g"

    def __init__(self, n: int, t: int, backend: str = "ideal", security_bits: int = 24):
        super().__init__(n=n, t=t, security_bits=security_bits)
        self.backend = backend
        self._theta = ThetaProtocol(
            n=n, t=t, backend=backend, security_bits=security_bits
        )

    def setup(self, rng):
        return self._theta.setup(rng)

    def program(self, ctx, value):
        result = yield from self._theta.program(
            ctx, (coerce_bit(value), 0)
        )
        return result

    def raised_program(self, ctx, value):
        """The A* deviation: participate honestly but with b = 1.

        Handed to a :class:`repro.net.adversary.ProgramAdversary` for the
        corrupted parties; everything else about the execution is honest.
        """
        result = yield from self._theta.program(
            ctx, (coerce_bit(value), 1)
        )
        return result
