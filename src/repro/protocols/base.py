"""Parallel broadcast protocols: common API and conventions (Section 3.2).

A *parallel broadcast protocol* lets all n parties broadcast a bit at
once; each honest party outputs an n-vector ``B_i`` satisfying

* **consistency** — all honest output vectors agree, and
* **correctness** — honest positions carry the party's actual input.

Every protocol class in this package exposes:

* ``n`` — party count; ``t`` — tolerated corruptions;
* ``name`` — short identifier used by the experiment harness;
* ``setup(rng)`` — per-execution public configuration (group, CRS, PKI);
* ``program(ctx, input_bit)`` — the honest party program.

Inputs are bits (the paper fixes broadcast messages to bits for
simplicity); invalid contributions are announced as the default 0
(footnote 2 of the paper).
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence, Tuple

from ..errors import InvalidParameterError
from ..net.adversary import Adversary
from ..net.network import run_protocol
from ..net.transcript import Execution

DEFAULT_BIT = 0
DEFAULT_SECURITY_BITS = 24


def coerce_bit(value: Any, default: int = DEFAULT_BIT) -> int:
    """Map an arbitrary payload to a bit, defaulting on garbage."""
    if value is True:
        return 1
    if value is False:
        return 0
    if isinstance(value, int) and value in (0, 1):
        return value
    return default


class ParallelBroadcastProtocol:
    """Base class for the protocol zoo."""

    name = "abstract"

    def __init__(self, n: int, t: int, security_bits: int = DEFAULT_SECURITY_BITS):
        if n < 2:
            raise InvalidParameterError("parallel broadcast needs at least 2 parties")
        if not 0 <= t < n:
            raise InvalidParameterError(f"t must be in [0, n), got t={t}, n={n}")
        self.n = n
        self.t = t
        self.security_bits = security_bits

    def setup(self, rng) -> Any:
        return None

    def program(self, ctx, value):
        raise NotImplementedError

    # -- convenience ------------------------------------------------------------

    def run(
        self,
        inputs: Sequence[int],
        adversary: Optional[Adversary] = None,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        fault_plan: Any = None,
        fault_seed: Optional[int] = None,
        timeout_rounds: Optional[int] = None,
        runtime: Any = None,
        delay_model: Any = None,
        omission: Any = None,
    ) -> Execution:
        """Run once; under ``timeout_rounds`` parties that miss the deadline
        announce the paper's default bit vector instead of aborting."""
        timeout_output = (
            tuple([DEFAULT_BIT] * self.n) if timeout_rounds is not None else None
        )
        return run_protocol(
            self,
            list(inputs),
            adversary=adversary,
            rng=rng,
            seed=seed,
            fault_plan=fault_plan,
            fault_seed=fault_seed,
            timeout_rounds=timeout_rounds,
            timeout_output=timeout_output,
            runtime=runtime,
            delay_model=delay_model,
            omission=omission,
        )

    def announced(
        self,
        inputs: Sequence[int],
        adversary: Optional[Adversary] = None,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        fault_plan: Any = None,
        fault_seed: Optional[int] = None,
        timeout_rounds: Optional[int] = None,
        runtime: Any = None,
        delay_model: Any = None,
        omission: Any = None,
    ) -> Tuple[int, ...]:
        """Announced^Π_A(x): run once and extract the announced vector."""
        execution = self.run(
            inputs,
            adversary=adversary,
            rng=rng,
            seed=seed,
            fault_plan=fault_plan,
            fault_seed=fault_seed,
            timeout_rounds=timeout_rounds,
            runtime=runtime,
            delay_model=delay_model,
            omission=omission,
        )
        return tuple(
            coerce_bit(w) for w in execution.announced_vector(default=DEFAULT_BIT)
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, t={self.t}, k={self.security_bits})"
