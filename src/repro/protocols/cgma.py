"""CGMA-style simultaneous broadcast via sequential VSS (linear rounds) [7].

Chor, Goldwasser, Micali and Awerbuch achieve simultaneity by having every
party *verifiably secret-share* its bit before anything is revealed: a
rushing adversary sees only hiding commitments and at most t shares, and
the perfectly binding Feldman commitments fix every announced value at
dealing time.  Dealings run sequentially — one dealer at a time, three
rounds each (deal, complain, resolve) — giving the Θ(n) round complexity
the paper attributes to [7]; the reveal phase is a single round.

A dealer that leaves any complaint unresolved (or broadcasts malformed
commitments) is publicly disqualified and announced as the default 0;
this is also what defeats commitment-copying, since a copier cannot
produce shares consistent with somebody else's polynomial.

Requires t < n/2 so that honest shares alone reconstruct every secret.

:class:`CGMABroadcast` deals sequentially (the faithful shape);
:class:`CGMAParallelDealing` is the ablation where all dealings share the
same three rounds, trading the round complexity down to O(1) while keeping
the same machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..crypto.commitment import PedersenParameters
from ..crypto.group import SchnorrGroup
from ..crypto.secret_sharing import Share
from ..crypto.vss import FeldmanDealing, FeldmanVSS, PedersenShare, PedersenVSS
from ..errors import InvalidParameterError, ShareError
from ..net.message import broadcast, send
from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit


class _DealerState:
    """Everything a party tracks about one dealer's VSS instance."""

    def __init__(self):
        self.commitments: Optional[Tuple] = None
        self.share: Optional[Share] = None
        self.disqualified: bool = False
        self.complainers: Set[int] = set()


def _parse_commitments(group: SchnorrGroup, payload, expected_length: int):
    """Decode a broadcast commitment vector; None if malformed."""
    try:
        values = [int(v) for v in payload]
    except (TypeError, ValueError):
        return None
    if len(values) != expected_length:
        return None
    try:
        return tuple(group.element(v) for v in values)
    except Exception:
        return None


class CGMABroadcast(ParallelBroadcastProtocol):
    """Sequential-dealing VSS simultaneous broadcast (Sb-independent)."""

    name = "cgma"
    sequential_dealing = True
    vss_flavor = "feldman"

    def __init__(self, n: int, t: int, security_bits: int = 24):
        super().__init__(n=n, t=t, security_bits=security_bits)
        if 2 * t >= n:
            raise InvalidParameterError(f"CGMA requires t < n/2 (got t={t}, n={n})")

    def setup(self, rng):
        return {"group": SchnorrGroup.for_security(self.security_bits)}

    # -- VSS flavour indirection ----------------------------------------------------

    def _make_vss(self, group: SchnorrGroup):
        if self.vss_flavor == "pedersen":
            parameters = PedersenParameters.generate(group, seed=b"cgma-pedersen")
            return PedersenVSS(parameters, self.t, self.n)
        return FeldmanVSS(group, self.t, self.n)

    def _serialize_share(self, share) -> object:
        if self.vss_flavor == "pedersen":
            return (int(share.value), int(share.blinding))
        return int(share.value)

    def _parse_share(self, vss, x: int, payload) -> object:
        try:
            if self.vss_flavor == "pedersen":
                value, blinding = payload
                return PedersenShare(
                    x, vss.field.element(int(value)), vss.field.element(int(blinding))
                )
            return Share(x, vss.field.element(int(payload)))
        except (TypeError, ValueError):
            return None

    # -- one dealer's three-round VSS, as a sub-generator --------------------------

    def _deal_phase(self, ctx, vss, dealer: int, value):
        """Sub-generator for dealer ``dealer``; returns this party's state."""
        me = ctx.party_id
        state = _DealerState()
        dealing: Optional[FeldmanDealing] = None
        com_tag = f"cgma:{dealer}:com"
        share_tag = f"cgma:{dealer}:share"
        complain_tag = f"cgma:{dealer}:complain"
        resolve_tag = f"cgma:{dealer}:resolve"

        # Round A: the dealer broadcasts commitments and sends shares.
        if me == dealer:
            dealing = vss.deal(coerce_bit(value), ctx.rng)
            state.share = dealing.shares[me]
            drafts = [
                broadcast(
                    tuple(int(c) for c in dealing.commitments), tag=com_tag
                )
            ]
            drafts += [
                send(j, self._serialize_share(dealing.shares[j]), tag=share_tag)
                for j in ctx.others()
            ]
            inbox = yield drafts
        else:
            inbox = yield []

        if me == dealer:
            state.commitments = dealing.commitments
        else:
            com_messages = [
                m for m in inbox.broadcasts(tag=com_tag) if m.sender == dealer
            ]
            if com_messages:
                state.commitments = _parse_commitments(
                    vss.group, com_messages[0].payload, self.t + 1
                )
            if state.commitments is None:
                state.disqualified = True
            share_message = inbox.first_from(dealer, tag=share_tag)
            if share_message is not None:
                state.share = self._parse_share(vss, me, share_message.payload)

        # Round B: complaints.
        complain = (
            me != dealer
            and not state.disqualified
            and (
                state.share is None
                or not vss.verify_share(state.commitments, state.share)
            )
        )
        if complain:
            state.share = None
            inbox = yield [broadcast("complaint", tag=complain_tag)]
        else:
            inbox = yield []
        state.complainers = {
            m.sender for m in inbox.broadcasts(tag=complain_tag) if m.sender != dealer
        }

        # Round C: resolution — the dealer publishes complained shares.
        if me == dealer and state.complainers:
            published = tuple(
                (j, self._serialize_share(dealing.shares[j]))
                for j in sorted(state.complainers)
                if j in dealing.shares
            )
            inbox = yield [broadcast(published, tag=resolve_tag)]
        else:
            inbox = yield []

        if not state.disqualified and state.complainers:
            published_shares: Dict[int, Share] = {}
            response = [
                m for m in inbox.broadcasts(tag=resolve_tag) if m.sender == dealer
            ]
            if response:
                try:
                    for j, raw in response[0].payload:
                        share = self._parse_share(vss, int(j), raw)
                        if share is not None:
                            published_shares[int(j)] = share
                except (TypeError, ValueError):
                    published_shares = {}
            for j in state.complainers:
                share = published_shares.get(j)
                if share is None or not vss.verify_share(state.commitments, share):
                    state.disqualified = True
                    break
            if not state.disqualified and me in state.complainers:
                state.share = published_shares.get(me)
        return state

    # -- the full protocol -----------------------------------------------------------

    def program(self, ctx, value):
        group = ctx.config["group"]
        vss = self._make_vss(group)
        states: Dict[int, _DealerState] = {}

        if self.sequential_dealing:
            for dealer in range(1, self.n + 1):
                states[dealer] = yield from self._deal_phase(ctx, vss, dealer, value)
        else:
            from ..net.compose import run_in_lockstep

            states = yield from run_in_lockstep(
                {
                    dealer: self._deal_phase(ctx, vss, dealer, value)
                    for dealer in range(1, self.n + 1)
                }
            )

        # Reveal round: broadcast all held shares at once.
        payload = tuple(
            (dealer, self._serialize_share(state.share))
            for dealer, state in states.items()
            if not state.disqualified and state.share is not None
        )
        inbox = yield [broadcast(payload, tag="cgma:reveal")]

        collected: Dict[int, List[Share]] = {d: [] for d in range(1, self.n + 1)}
        for message in inbox.broadcasts(tag="cgma:reveal"):
            try:
                entries = list(message.payload)
            except TypeError:
                continue
            for entry in entries:
                try:
                    dealer, raw = entry
                    dealer = int(dealer)
                except (TypeError, ValueError):
                    continue
                share = self._parse_share(vss, message.sender, raw)
                if share is not None and dealer in collected:
                    collected[dealer].append(share)

        announced = []
        for dealer in range(1, self.n + 1):
            state = states[dealer]
            if state.disqualified or state.commitments is None:
                announced.append(DEFAULT_BIT)
                continue
            try:
                secret = vss.reconstruct(state.commitments, collected[dealer])
            except ShareError:
                announced.append(DEFAULT_BIT)
                continue
            announced.append(coerce_bit(int(secret)))
        return tuple(announced)


class CGMAParallelDealing(CGMABroadcast):
    """Ablation: all n dealings share the same three rounds (constant depth)."""

    name = "cgma-parallel"
    sequential_dealing = False


class CGMAPedersen(CGMABroadcast):
    """Ablation: Pedersen VSS (perfectly hiding) instead of Feldman.

    Feldman commitments reveal g^x, which for bit secrets is only
    *computationally* hiding; the Pedersen variant hides the dealt bit
    information-theoretically at the cost of doubling share size and
    relying on discrete log for binding instead of hiding.
    """

    name = "cgma-pedersen"
    vss_flavor = "pedersen"
