"""The paper's protocol zoo.

===================  =========================  ==========  ===================
protocol             source                      rounds      independence
===================  =========================  ==========  ===================
SequentialBroadcast  Section 3.2 baseline        Θ(n)        none (copy attack)
IdealSimultaneous…   Ideal(f_SB), Def. 4.1       2           perfect
CGMABroadcast        [7] Chor et al. 1985        Θ(n)        Sb
ChorRabinBroadcast   [8] Chor & Rabin 1987       Θ(log n)    CR
GennaroBroadcast     [12] Gennaro 2000           O(1)        G
PiGBroadcast         Lemma 6.4 counterexample    O(1)        G but **not** CR
ThetaProtocol        Claim 6.5 sub-protocol      —           securely computes g
===================  =========================  ==========  ===================
"""

from .base import DEFAULT_BIT, ParallelBroadcastProtocol, coerce_bit
from .cgma import CGMABroadcast, CGMAParallelDealing, CGMAPedersen
from .chor_rabin import ChorRabinBroadcast, tag_message, untag_message
from .gennaro import GennaroBroadcast
from .ideal_sb import IdealSimultaneousBroadcast
from .multibit import MultiBitBroadcast
from .naive_commit_reveal import NaiveCommitReveal
from .pease import PeaseInteractiveConsistency
from .pi_g import PiGBroadcast
from .sequential import SequentialBroadcast
from .theta import BACKENDS, ThetaProtocol

__all__ = [
    "DEFAULT_BIT",
    "ParallelBroadcastProtocol",
    "coerce_bit",
    "SequentialBroadcast",
    "IdealSimultaneousBroadcast",
    "MultiBitBroadcast",
    "CGMABroadcast",
    "CGMAParallelDealing",
    "CGMAPedersen",
    "ChorRabinBroadcast",
    "GennaroBroadcast",
    "NaiveCommitReveal",
    "PeaseInteractiveConsistency",
    "PiGBroadcast",
    "ThetaProtocol",
    "BACKENDS",
    "tag_message",
    "untag_message",
]
