"""E-ABL — ablation: what each defence in commit-then-reveal buys.

The three commit-then-reveal protocols differ in two mechanisms: a proof
of knowledge of the committed value (interactive in Chor–Rabin,
Fiat–Shamir in Gennaro, absent in the naive ablation) and an identity tag
inside the committed message (present in both real protocols, absent in
the naive one).  Against the rushing commit-echo adversary:

* the naive protocol is fully copied — the corrupted announced value
  tracks the victim's input with G** gap 1;
* both hardened protocols reject the replay and announce the default,
  gap 0.

The table also records the price of the defences in rounds; the
wall-clock cost per execution — the efficiency-vs-independence trade the
paper's narrative revolves around — is measured too, but lands in the
``wall_ms_per_run`` metrics entry that ``experiments.diffjson`` strips,
*not* in the table: artifacts must stay bit-identical across replays
(analyzer rule DET002; this module is on the obs timing allowlist).
"""

from __future__ import annotations

import time
from typing import Optional

from ..adversaries import CommitEchoAdversary
from ..analysis import render_table
from ..core import g_star_star_report
from ..protocols import ChorRabinBroadcast, GennaroBroadcast, NaiveCommitReveal
from .common import ExperimentConfig, ExperimentResult, decision_mark

EXPERIMENT_ID = "E-ABL"
TITLE = "Ablation — proofs of knowledge and identity tags in commit-reveal"

CONFIGS = (
    ("naive (no PoK, no tag)", NaiveCommitReveal, "naive:commit", "naive:reveal"),
    ("gennaro (NIZK PoK + tag)", GennaroBroadcast, "gen:commit", "gen:reveal"),
    ("chor-rabin (interactive PoK + tag)", ChorRabinBroadcast, "cr:commit", "cr:reveal"),
)


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    n, t, k = config.n, config.t, config.security_bits
    per_point = config.samples(100, floor=40)

    rows = []
    tracking = {}
    wall_ms = {}
    for label, cls, commit_tag, reveal_tag in CONFIGS:
        protocol = (
            cls(n, t) if cls is NaiveCommitReveal else cls(n, t, security_bits=k)
        )
        echo = lambda ct=commit_tag, rt=reveal_tag: CommitEchoAdversary(
            copier=n, target=1, commit_tag=ct, reveal_tag=rt
        )
        report = g_star_star_report(
            protocol, echo, per_point, config.rng(80 + len(label)),
            honest_assignments=[(0,) * (n - 1), (1,) + (0,) * (n - 2)],
            corrupted_assignments=[(0,)],
        )
        tracking[label] = report

        start = time.perf_counter()
        execution = protocol.run([1, 0, 1, 1, 0][:n] + [0] * max(0, n - 5), seed=1)
        wall_ms[label] = (time.perf_counter() - start) * 1000.0
        rows.append(
            [
                label,
                f"{report.gap:.3f}",
                decision_mark(report),
                execution.communication_rounds,
            ]
        )

    naive_report = tracking["naive (no PoK, no tag)"]
    hardened = [r for label, r in tracking.items() if "naive" not in label]
    passed = naive_report.violated and all(not r.violated for r in hardened)

    table = render_table(
        ["protocol variant", "copy-tracking gap (G**)", "verdict", "rounds"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={label: report.gap for label, report in tracking.items()},
        passed=passed,
        notes=[
            "stripping the PoK and tag converts a simultaneous broadcast into"
            " a copyable one — the copy-tracking gap jumps from 0 to 1"
        ],
        metrics={"wall_ms_per_run": wall_ms},
    )
