"""E-COST — the measured-complexity report for the protocol zoo.

Section 1/7 of the paper tells an efficiency story: CGMA [7] pays Θ(n)
rounds, Chor--Rabin [8] improves to Θ(log n), Gennaro [12] reaches O(1) —
and the definitional weakening the paper dissects is the price.  E-RND
reproduces the round *counts*; this experiment turns the full cost model
into regression-checkable numbers using the :mod:`repro.obs` layer:

* **rounds / messages / bytes / crypto ops** for every zoo protocol at
  n ∈ {4..16}, certifying the linear / logarithmic / constant round
  shapes from *measured* counters (not protocol-internal formulas);
* an **exactness check**: the instrumented message and byte counters must
  agree, to the message, with what the execution transcript records;
* **determinism**: identical seeds must reproduce identical counters, so
  every number in this table is a baseline future perf PRs can diff against;
* the **O(n²) message blowup** of realizing the broadcast channel over
  point-to-point links (:class:`repro.broadcast.emulation.OverPointToPoint`)
  — measured at exactly n(n-1)× for the constant-round Gennaro inner
  protocol, the cost the model's "assume a broadcast channel" hides.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..analysis import render_cost_report
from ..broadcast.emulation import OverPointToPoint
from ..obs import Metrics, payload_size, runtime
from ..parallel import SERIAL_ENGINE, ExperimentEngine
from ..protocols import (
    CGMABroadcast,
    ChorRabinBroadcast,
    GennaroBroadcast,
    SequentialBroadcast,
)
from .common import ExperimentConfig, ExperimentResult

EXPERIMENT_ID = "E-COST"
TITLE = "Measured complexity: rounds / messages / bytes / crypto ops vs n"

SUPPORTS_ENGINE = True

DEFAULT_SIZES = (4, 6, 8, 12, 16)
EMULATION_SIZES = (4, 6, 8)


def measure_protocol(
    protocol, n: int, seed: int, aggregate: Metrics = None
) -> Dict[str, Any]:
    """Run ``protocol`` once under a fresh metrics registry; return its cost.

    The record carries both the counter values and the transcript-derived
    ground truth, so callers can assert the instrumentation is exact.  When
    ``aggregate`` is given, the run's full registry is folded into it.
    """
    # Keep an already-enabled ambient tracer through the measurement scope
    # so `repro obs export E-COST` sees the protocol-level spans too.
    ambient_tracer = runtime.tracer if runtime.tracer.enabled else None
    with runtime.observed(tracer=ambient_tracer, metrics=Metrics()) as (_, metrics):
        execution = protocol.run([i % 2 for i in range(n)], seed=seed)
    if aggregate is not None:
        aggregate.merge(metrics)
    transcript_messages = len(execution.all_messages())
    transcript_bytes = sum(
        payload_size(message.payload) for message in execution.all_messages()
    )
    messages = int(metrics.get("net.messages.sent"))
    total_bytes = int(metrics.get("net.bytes.sent"))
    return {
        "rounds": execution.communication_rounds,
        "scheduler_rounds": execution.round_count,
        "messages": messages,
        "bytes": total_bytes,
        "group_exp": int(metrics.get("crypto.group.exp")),
        "vss_verified": int(metrics.get("crypto.vss.shares_verified")),
        "field_mul": int(metrics.get("crypto.field.mul")),
        "hash_blocks": int(metrics.get("crypto.hash.blocks")),
        "seed": execution.seed,
        "transcript_messages": transcript_messages,
        "transcript_bytes": transcript_bytes,
        "counters_match_transcript": (
            messages == transcript_messages
            and total_bytes == transcript_bytes
            and int(metrics.get("net.rounds")) == execution.round_count
        ),
    }


_ZOO_ORDER = ("sequential", "cgma", "chor-rabin", "gennaro")


def _zoo(n: int, t: int, k: int) -> Dict[str, Any]:
    return {
        "sequential": SequentialBroadcast(n, t),
        "cgma": CGMABroadcast(n, t, security_bits=k),
        "chor-rabin": ChorRabinBroadcast(n, t, security_bits=k),
        "gennaro": GennaroBroadcast(n, t, security_bits=k),
    }


def _measure_zoo_task(name: str, n: int, t: int, k: int, seed: int):
    """One shardable measurement: a single zoo protocol at one size."""
    local = Metrics()
    record = measure_protocol(_zoo(n, t, k)[name], n, seed, local)
    return record, local


def _measure_emulation_task(n: int, t: int, k: int, seed: int):
    """One shardable measurement: Gennaro bare vs over point-to-point links."""
    local = Metrics()
    inner = measure_protocol(GennaroBroadcast(n, t, security_bits=k), n, seed, local)
    wrapped = measure_protocol(
        OverPointToPoint(GennaroBroadcast(n, t, security_bits=k), security_bits=k),
        n,
        seed,
        local,
    )
    return inner, wrapped, local


def run(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    engine = SERIAL_ENGINE if engine is None else engine
    sizes = [n for n in DEFAULT_SIZES if config.scale >= 1.0 or n <= 8]
    emulation_sizes = [n for n in EMULATION_SIZES if config.scale >= 1.0 or n <= 6]
    k = min(config.security_bits, 16)  # cost shapes don't depend on k
    t = 1

    # Each measurement runs under its own registry (in a worker or inline) and
    # ships the registry back; folding them in task order reproduces exactly
    # what the old strictly-serial loop accumulated.
    aggregate = Metrics()
    measured: Dict[str, Dict[int, Dict[str, Any]]] = {}
    zoo_rows = []
    zoo_tasks: list = [
        (name, n, t, k, config.seed) for n in sizes for name in _ZOO_ORDER
    ]
    for (name, n, _, _, _), (record, local) in zip(
        zoo_tasks, engine.map(_measure_zoo_task, zoo_tasks), strict=True
    ):
        aggregate.merge(local)
        measured.setdefault(name, {})[n] = record
        zoo_rows.append(
            [
                n,
                name,
                record["rounds"],
                record["messages"],
                record["bytes"],
                record["group_exp"],
                record["vss_verified"],
                record["field_mul"],
            ]
        )

    emulation: Dict[int, Dict[str, Any]] = {}
    emulation_rows = []
    emulation_tasks: list = [(n, t, k, config.seed) for n in emulation_sizes]
    for (n, _, _, _), (inner, wrapped, local) in zip(
        emulation_tasks, engine.map(_measure_emulation_task, emulation_tasks), strict=True
    ):
        aggregate.merge(local)
        blowup = wrapped["messages"] / max(1, inner["messages"])
        emulation[n] = {"inner": inner, "wrapped": wrapped, "message_blowup": blowup}
        emulation_rows.append(
            [
                n,
                inner["messages"],
                wrapped["messages"],
                f"{blowup:.1f}x",
                inner["rounds"],
                wrapped["rounds"],
            ]
        )

    # -- certification: round shapes, from measured counters only ----------------------
    linear_sequential = all(measured["sequential"][n]["rounds"] == n for n in sizes)
    linear_cgma = all(measured["cgma"][n]["rounds"] == 3 * n + 1 for n in sizes)
    log_chor_rabin = all(
        measured["chor-rabin"][n]["rounds"] == 3 * math.ceil(math.log2(n)) + 3
        for n in sizes
    )
    constant_gennaro = len({measured["gennaro"][n]["rounds"] for n in sizes}) == 1

    # -- certification: counters agree exactly with the transcript ---------------------
    counters_exact = all(
        record["counters_match_transcript"]
        for per_n in measured.values()
        for record in per_n.values()
    ) and all(
        emulation[n][kind]["counters_match_transcript"]
        for n in emulation
        for kind in ("inner", "wrapped")
    )

    # -- certification: same seed, same numbers (the regression-baseline property) -----
    replay = measure_protocol(
        CGMABroadcast(sizes[0], t, security_bits=k), sizes[0], config.seed
    )
    deterministic = replay == measured["cgma"][sizes[0]]

    # -- certification: the emulation's O(n^2) message blowup --------------------------
    # Measured exactly n(n-1)x for a broadcast-only inner protocol; assert the
    # quadratic floor and the quadratic growth rate between the extremes.
    quadratic_floor = all(
        emulation[n]["message_blowup"] >= (n - 1) ** 2 for n in emulation_sizes
    )
    n_lo, n_hi = emulation_sizes[0], emulation_sizes[-1]
    growth = emulation[n_hi]["message_blowup"] / emulation[n_lo]["message_blowup"]
    quadratic_growth = growth >= 0.75 * (n_hi / n_lo) ** 2

    # -- certification: crypto-op attribution matches the constructions ----------------
    crypto_attribution = all(
        measured["sequential"][n]["group_exp"] == 0
        and measured["cgma"][n]["vss_verified"] > 0
        and measured["chor-rabin"][n]["vss_verified"] == 0
        and measured["gennaro"][n]["group_exp"] > 0
        for n in sizes
    )

    passed = (
        linear_sequential
        and linear_cgma
        and log_chor_rabin
        and constant_gennaro
        and counters_exact
        and deterministic
        and quadratic_floor
        and quadratic_growth
        and crypto_attribution
    )

    table = render_cost_report(zoo_rows, emulation_rows, title=TITLE)
    snapshot = aggregate.snapshot()
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={
            "measured": measured,
            "emulation": emulation,
            "checks": {
                "linear_sequential": linear_sequential,
                "linear_cgma": linear_cgma,
                "log_chor_rabin": log_chor_rabin,
                "constant_gennaro": constant_gennaro,
                "counters_exact": counters_exact,
                "deterministic": deterministic,
                "quadratic_floor": quadratic_floor,
                "quadratic_growth": quadratic_growth,
                "crypto_attribution": crypto_attribution,
            },
        },
        passed=passed,
        # The per-run registries are scoped, so publish their aggregate here
        # (run_experiment's setdefault keeps it).
        metrics={
            "counters": snapshot["counters"],
            "histograms": snapshot["histograms"],
        },
        notes=[
            "round shapes measured, not derived: sequential n, cgma 3n+1,",
            "chor-rabin 3*ceil(log2 n)+3, gennaro constant; message/byte counters",
            "agree exactly with the transcript and replay identically under the",
            "same seed; OverPointToPoint costs n(n-1)x messages per broadcast",
        ],
    )
