"""E-L61 — Lemma 6.1: (D(CR), Sb)-Independence implies (D(CR), CR)-Independence.

Two pieces of evidence, mirroring the lemma and its contrapositive proof:

1. **Forward**: the Sb-independent protocol (CGMA) measured over D(CR)
   representatives is also CR-consistent there, under a suite of
   adversaries.
2. **Contrapositive** (how the proof in Appendix A.1 works): a protocol
   that fails CR (sequential + copier) must also fail Sb — the proof
   *constructs* an Sb distinguisher from the CR witness predicate, and we
   measure both failures on the same configuration.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import render_table
from ..core import HONEST, cr_report, sb_report
from ..distributions import bernoulli_product, near_product_mixture, uniform
from .common import (
    ExperimentConfig,
    ExperimentResult,
    copier_factory,
    decision_mark,
    standard_protocols,
    substitution_factory,
)

EXPERIMENT_ID = "E-L61"
TITLE = "Lemma 6.1 — Sb implies CR over D(CR)"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    protocols = standard_protocols(config)
    n = config.n
    samples = config.samples(400, floor=300)
    per_point = config.samples(60, floor=5)

    representatives = [
        uniform(n),
        bernoulli_product([0.3] + [0.5] * (n - 1)),
        near_product_mixture(n, delta=0.05),
    ]

    rows = []
    forward_ok = True
    cgma = protocols["cgma"]
    suite = {
        "honest": HONEST,
        "input-sub": substitution_factory(cgma, corrupted=[n], value=1),
    }
    for distribution in representatives:
        for label, factory in suite.items():
            sb = sb_report(
                cgma,
                factory,
                per_point,
                config.rng(10),
                input_vectors=distribution.support()[:8],
            )
            cr = cr_report(cgma, distribution, factory, samples, config.rng(11))
            premise = not sb.violated
            conclusion = not cr.violated
            forward_ok &= premise and conclusion
            rows.append(
                ["forward", f"cgma/{label}", distribution.name,
                 f"Sb {decision_mark(sb)}", f"CR {decision_mark(cr)}"]
            )

    # Contrapositive: CR failure entails Sb failure on the same configuration.
    sequential = protocols["sequential"]
    copier = copier_factory(sequential)
    cr = cr_report(sequential, uniform(n), copier, samples, config.rng(12))
    sb = sb_report(sequential, copier, per_point, config.rng(13))
    contrapositive_ok = cr.violated and sb.violated
    rows.append(
        ["contrapositive", "sequential/copier", uniform(n).name,
         f"Sb {decision_mark(sb)}", f"CR {decision_mark(cr)}"]
    )

    passed = forward_ok and contrapositive_ok
    table = render_table(
        ["direction", "protocol/adversary", "distribution", "premise", "conclusion"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"forward_ok": forward_ok, "contrapositive_ok": contrapositive_ok},
        passed=passed,
    )
