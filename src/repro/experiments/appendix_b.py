"""E-APB — Appendix B: the G* / G** characterizations of G-Independence.

Proposition B.3 (G* ⟺ G**) and Proposition B.4 (G** ⟹ G on Ψ_L,n),
measured across a spread of configurations:

* a secure configuration (Gennaro under input substitution) — all three
  estimators consistent;
* the copy attack (sequential + copier) — all three violated, with the
  G* and G** witnesses agreeing on the tracked coordinate;
* the Π_G/A* configuration — G** and G both consistent (the interesting
  case: B.4's premise and conclusion hold while CR, measured elsewhere,
  fails).

The equivalence is checked at the verdict level — on every configuration
the G* and G** decisions coincide, and a G**-consistent configuration is
never G-violated on a locally independent distribution.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import render_table
from ..core import g_report, g_star_report, g_star_star_report
from ..distributions import uniform
from ..protocols import GennaroBroadcast, PiGBroadcast, SequentialBroadcast
from .common import (
    ExperimentConfig,
    ExperimentResult,
    copier_factory,
    decision_mark,
    substitution_factory,
    xor_factory,
)

EXPERIMENT_ID = "E-APB"
TITLE = "Appendix B — G* and G** characterize G"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    n, t = config.n, config.t
    per_point = config.samples(200, floor=100)
    g_samples = config.samples(2400, floor=600)

    gennaro = GennaroBroadcast(n, t, security_bits=config.security_bits)
    sequential = SequentialBroadcast(n, t)
    pi_g = PiGBroadcast(n, t, backend="ideal")
    configurations = [
        ("gennaro/input-sub", gennaro, substitution_factory(gennaro, corrupted=[n], value=1)),
        ("sequential/copier", sequential, copier_factory(sequential)),
        ("pi-g/A*", pi_g, xor_factory(pi_g)),
    ]
    # Restricting the interventional estimators to the extreme honest
    # assignments keeps the noise floor low without losing the witnesses
    # (tracking attacks show maximal gaps on all-zero vs one-flipped).
    honest_pairs = {
        "sequential/copier": [(0,) * (n - 1), (1,) + (0,) * (n - 2)],
        "gennaro/input-sub": [(0,) * (n - 1), (1,) * (n - 1)],
        "pi-g/A*": [(0,) * (n - 2), (1,) * (n - 2)],
    }

    rows = []
    b3_ok = True
    b4_ok = True
    for label, protocol, factory in configurations:
        star = g_star_report(protocol, factory, per_point, config.rng(90))
        star_star = g_star_star_report(
            protocol, factory, per_point, config.rng(91),
            honest_assignments=honest_pairs[label],
            corrupted_assignments=[(0,) * len(list(factory().corrupted))],
        )
        g = g_report(
            protocol, uniform(n), factory, g_samples, config.rng(92),
            min_condition_count=max(10, g_samples // 40),
        )
        rows.append(
            [label,
             f"G* {star.gap:.3f} {decision_mark(star)}",
             f"G** {star_star.gap:.3f} {decision_mark(star_star)}",
             f"G {g.gap:.3f} {decision_mark(g)}"]
        )
        # B.3: the G* and G** violation verdicts coincide.
        b3_ok &= star.violated == star_star.violated
        # B.4: if G** is not violated, G must not be violated (uniform ∈ Ψ_L).
        if not star_star.violated:
            b4_ok &= not g.violated

    passed = b3_ok and b4_ok
    table = render_table(
        ["configuration", "G* (Def B.1)", "G** (Def B.2)", "G (Def 4.4)"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"b3_equivalence": b3_ok, "b4_implication": b4_ok},
        passed=passed,
        notes=[
            "Proposition B.3: G* and G** verdicts coincide on every configuration;",
            "Proposition B.4: no G**-consistent configuration is G-violated under"
            " a locally independent distribution",
        ],
    )
