"""E-P63 — Proposition 6.3: Singleton is trivial for CR but not for Sb.

*Trivial for CR*: under a point-mass input distribution every announced
coordinate is (nearly) constant, so every probability in Definition 4.3
factorizes and the CR gap vanishes — for **every** protocol, including
the blatantly insecure sequential+copier configuration.

*Not trivial for Sb*: Definition 4.2 demands one simulator that works for
all singletons simultaneously, and the copier's announced value tracks
the honest input across different singletons, which no simulator seeing
only x_B can reproduce.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import render_table
from ..core import HONEST, cr_report, sb_report
from ..distributions import singleton
from .common import (
    ExperimentConfig,
    ExperimentResult,
    copier_factory,
    decision_mark,
    standard_protocols,
)

EXPERIMENT_ID = "E-P63"
TITLE = "Proposition 6.3 — Singleton: trivial for CR, not for Sb"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    protocols = standard_protocols(config)
    n = config.n
    samples = config.samples(300)
    per_point = config.samples(60, floor=5)
    singletons = [
        tuple([0] * n),
        tuple([1] * n),
        tuple([1] + [0] * (n - 1)),
        tuple([0] * (n - 1) + [1]),
    ]

    rows = []
    # CR under every singleton, for every protocol, under its worst adversary.
    cr_all_trivial = True
    for name, protocol in protocols.items():
        factory = copier_factory(protocol) if name == "sequential" else HONEST
        worst_gap = 0.0
        worst_mark = "ok"
        for fixed in singletons:
            report = cr_report(
                protocol, singleton(fixed), factory, samples, config.rng(30)
            )
            if report.gap > worst_gap:
                worst_gap = report.gap
                worst_mark = decision_mark(report)
            cr_all_trivial &= not report.violated
        adversary_label = "copier" if name == "sequential" else "honest"
        rows.append([name, adversary_label, "CR", f"{worst_gap:.3f}", worst_mark])

    # Sb over the Singleton *class*: the copier is exposed.
    sequential = protocols["sequential"]
    sb = sb_report(
        sequential,
        copier_factory(sequential),
        per_point,
        config.rng(31),
        input_vectors=singletons,
    )
    rows.append(["sequential", "copier", "Sb over Singleton class", f"{sb.gap:.3f}", decision_mark(sb)])

    passed = cr_all_trivial and sb.violated
    table = render_table(
        ["protocol", "adversary", "definition", "worst gap", "verdict"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"cr_all_trivial": cr_all_trivial, "sb_gap": sb.gap},
        passed=passed,
        notes=[
            "CR cannot distinguish the copier under any fixed input (the class"
            " is trivial); Sb catches it because one simulator must cover all"
            " singletons at once"
        ],
    )
