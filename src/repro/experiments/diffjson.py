"""Compare two ``--json`` artifact directories, ignoring wall-clock fields.

The CI ``parallel-equivalence`` gate runs the experiment suite twice —
``--jobs 1`` and ``--jobs 4`` — and feeds both artifact directories to::

    python -m repro.experiments.diffjson artifacts-serial artifacts-par

Every field of every result must match exactly except the wall-clock
measurements (``metrics.wall_seconds``), which are the only
non-deterministic values an experiment records.  Any other divergence —
a missing artifact, a different table, a drifted counter — is a
determinism regression in :mod:`repro.parallel` and fails the build.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Any, Dict, List

#: Result fields that legitimately differ between runs (wall-clock only).
#: ``wall_ms_per_run`` is E-ABL's per-variant timing table — measured cost,
#: same class of value as ``wall_seconds``.
WALL_CLOCK_FIELDS = ("wall_seconds", "wall_ms_per_run")


def strip_wall_clock(result: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy of a result dict with wall-clock metrics removed."""
    stripped = json.loads(json.dumps(result))
    metrics = stripped.get("metrics")
    if isinstance(metrics, dict):
        for field in WALL_CLOCK_FIELDS:
            metrics.pop(field, None)
    return stripped


def _equal(a: Any, b: Any) -> bool:
    """Deep equality treating NaN as equal to itself.

    Inconclusive estimators record ``NaN`` gap estimates, which survive
    the JSON round-trip; under plain ``!=`` every NaN would read as a
    determinism divergence even between bit-identical artifacts.
    """
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_equal(a[key], b[key]) for key in a)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b, strict=True))
    return a == b


def _describe_diff(path: str, a: Any, b: Any, diffs: List[str]) -> None:
    """Record the first point of divergence under ``path`` (recursively)."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                diffs.append(f"{path}.{key}: only in second")
            elif key not in b:
                diffs.append(f"{path}.{key}: only in first")
            elif not _equal(a[key], b[key]):
                _describe_diff(f"{path}.{key}", a[key], b[key], diffs)
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            diffs.append(f"{path}: list lengths {len(a)} != {len(b)}")
            return
        for index, (x, y) in enumerate(zip(a, b, strict=True)):
            if not _equal(x, y):
                _describe_diff(f"{path}[{index}]", x, y, diffs)
        return
    diffs.append(f"{path}: {a!r} != {b!r}")


def compare_dirs(serial_dir: str, parallel_dir: str) -> List[str]:
    """All divergences between two artifact directories (empty = identical)."""
    diffs: List[str] = []
    serial_files = sorted(f for f in os.listdir(serial_dir) if f.endswith(".json"))
    parallel_files = sorted(f for f in os.listdir(parallel_dir) if f.endswith(".json"))
    if serial_files != parallel_files:
        only_serial = set(serial_files) - set(parallel_files)
        only_parallel = set(parallel_files) - set(serial_files)
        if only_serial:
            diffs.append(f"artifacts only in {serial_dir}: {sorted(only_serial)}")
        if only_parallel:
            diffs.append(f"artifacts only in {parallel_dir}: {sorted(only_parallel)}")
    for name in sorted(set(serial_files) & set(parallel_files)):
        with open(os.path.join(serial_dir, name), encoding="utf-8") as handle:
            first = strip_wall_clock(json.load(handle))
        with open(os.path.join(parallel_dir, name), encoding="utf-8") as handle:
            second = strip_wall_clock(json.load(handle))
        if not _equal(first, second):
            _describe_diff(name, first, second, diffs)
    return diffs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.diffjson",
        description="Diff two experiment artifact directories, ignoring wall-clock.",
    )
    parser.add_argument("serial_dir", help="artifacts from the reference (serial) run")
    parser.add_argument("parallel_dir", help="artifacts from the run under test")
    args = parser.parse_args(argv)

    for directory in (args.serial_dir, args.parallel_dir):
        if not os.path.isdir(directory):
            parser.error(f"not a directory: {directory}")

    diffs = compare_dirs(args.serial_dir, args.parallel_dir)
    if diffs:
        print(f"DIVERGENCE: {len(diffs)} difference(s) beyond wall-clock:")
        for diff in diffs:
            print(f"  {diff}")
        return 1
    count = len([f for f in os.listdir(args.serial_dir) if f.endswith(".json")])
    print(f"ok: {count} artifact(s) identical modulo wall-clock")
    return 0


if __name__ == "__main__":
    sys.exit(main())
