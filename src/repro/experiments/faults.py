"""E-FAULT — protocol conformance under the standard fault-plan library.

The paper's Section 3.1 network is pristine; this experiment degrades it
with every plan in :data:`repro.faults.STANDARD_PLANS` (crash, drop,
delay, corrupt, duplicate, mixed) and measures how each zoo protocol
holds up.  Because every plan is channel-consistent (broadcast faults are
all-or-nothing), the broadcast-channel *model* survives, so the table
separates two kinds of degradation:

* **mailbox protocols** (``ideal-sb`` and ``pi-g`` on the ideal Θ
  backend) exchange values through the trusted-party mailbox in the
  public config, not over the wire — message and crash faults are vacuous
  and the experiment asserts agreement *and* input preservation under
  every plan;
* **wire protocols** degrade gracefully: ``naive-commit-reveal`` reads
  everything from its inboxes, so channel-consistent faults keep honest
  views identical (agreement is asserted; faulted coordinates default to
  the paper's 0); ``sequential`` lets the round owner record its *own*
  bit locally, so dropping its broadcast splits its view from everyone
  else's — its agreement rate is reported, not asserted, as a measured
  reminder that the Section 3.2 baseline leans on the broadcast channel.

Trials are sharded exactly like the other heavy experiments: each
(plan, protocol) cell owns a :class:`TrialPlan`, each trial draws inputs,
the run RNG, *and the fault-injector salt* from its own salted stream, so
``--jobs N`` reproduces the serial sweep bit for bit.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import render_table
from ..faults import STANDARD_PLANS, FaultPlan
from ..parallel import SERIAL_ENGINE, ExperimentEngine
from ..protocols import (
    IdealSimultaneousBroadcast,
    NaiveCommitReveal,
    PiGBroadcast,
    SequentialBroadcast,
)
from .common import ExperimentConfig, ExperimentResult, TrialPlan, TrialShard

EXPERIMENT_ID = "E-FAULT"
TITLE = "Fault conformance — protocol zoo under crash/drop/delay/corrupt plans"

SUPPORTS_ENGINE = True

#: Base of the per-cell plan-salt namespace (cells are numbered within it).
_PLAN_SALT_BASE = 0xFA00

#: Protocols whose agreement rate is *reported* but not gated (the
#: sequential baseline's sender records its own bit locally, so losing its
#: broadcast legitimately splits views — the measured story, not a bug).
_REPORT_ONLY = ("sequential",)

#: Protocols that communicate via the trusted-party mailbox: faults on the
#: wire are vacuous, so agreement AND input preservation must both hold.
_MAILBOX = ("ideal-sb", "pi-g")


def _build_protocol(key: str, n: int, t: int) -> Any:
    if key == "sequential":
        return SequentialBroadcast(n, t)
    if key == "ideal-sb":
        return IdealSimultaneousBroadcast(n, t)
    if key == "naive-commit-reveal":
        return NaiveCommitReveal(n, t)
    if key == "pi-g":
        return PiGBroadcast(n, t, backend="ideal")
    raise ValueError(f"unknown protocol key {key!r}")


PROTOCOL_KEYS = ("sequential", "ideal-sb", "naive-commit-reveal", "pi-g")


def _run_shard(
    config: ExperimentConfig,
    protocol_key: str,
    plan: FaultPlan,
    shard: TrialShard,
    timeout_rounds: int,
) -> Dict[str, Any]:
    """Run one shard's trials and return additive per-cell statistics."""
    protocol = _build_protocol(protocol_key, config.n, config.t)
    alive = [
        i
        for i in range(1, config.n + 1)
        if i not in plan.crashed_parties
    ]
    stats: Dict[str, Any] = {
        "trials": 0,
        "completed": 0,
        "agreement": 0,
        "agreement_alive": 0,
        "preserved": 0,
        "timed_out": 0,
        "faults_injected": 0,
        "fault_kinds": {},
    }
    for trial in shard.trials():
        trial_rng = shard.rng(config, trial)
        inputs = [trial_rng.randrange(2) for _ in range(config.n)]
        run_rng = random.Random(trial_rng.getrandbits(64))
        fault_seed = trial_rng.getrandbits(64)
        execution = protocol.run(
            inputs,
            rng=run_rng,
            fault_plan=plan,
            fault_seed=fault_seed,
            timeout_rounds=timeout_rounds,
        )
        stats["trials"] += 1
        outputs = [execution.outputs.get(i) for i in range(1, config.n + 1)]
        if all(o is not None for o in outputs):
            stats["completed"] += 1
        if execution.timed_out:
            stats["timed_out"] += 1
        first = outputs[0]
        if first is not None and all(o == first for o in outputs):
            stats["agreement"] += 1
        alive_outputs = [execution.outputs.get(i) for i in alive]
        if alive_outputs and alive_outputs[0] is not None and all(
            o == alive_outputs[0] for o in alive_outputs
        ):
            stats["agreement_alive"] += 1
        if any(o is not None and tuple(o) == tuple(inputs) for o in outputs):
            stats["preserved"] += 1
        stats["faults_injected"] += len(execution.faults)
        for record in execution.faults:
            kinds = stats["fault_kinds"]
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
    return stats


def _fold(batches: List[Dict[str, Any]]) -> Dict[str, Any]:
    total: Dict[str, Any] = {
        "trials": 0,
        "completed": 0,
        "agreement": 0,
        "agreement_alive": 0,
        "preserved": 0,
        "timed_out": 0,
        "faults_injected": 0,
        "fault_kinds": {},
    }
    for batch in batches:
        for key, value in batch.items():
            if key == "fault_kinds":
                for kind, count in value.items():
                    total["fault_kinds"][kind] = (
                        total["fault_kinds"].get(kind, 0) + count
                    )
            else:
                total[key] += value
    return total


def _sweep_plans(config: ExperimentConfig) -> List[Tuple[str, FaultPlan, bool]]:
    """The plans to sweep: (label, plan, gated) — gated plans assert, the
    user's ``--faults`` plan (if any) is measured but never fails the run."""
    plans = [(name, plan, True) for name, plan in sorted(STANDARD_PLANS.items())]
    extra = getattr(config, "fault_plan", None)
    if extra is not None:
        label = extra.name or "custom"
        if label in STANDARD_PLANS:
            label = f"{label}*"
        plans.append((label, extra, False))
    return plans


def run(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    engine = SERIAL_ENGINE if engine is None else engine
    trials = config.samples(32, floor=8)
    timeout_rounds = 10 * config.n + 20

    plans = _sweep_plans(config)
    cells: List[Tuple[str, FaultPlan, bool, str]] = [
        (label, plan, gated, key)
        for label, plan, gated in plans
        for key in PROTOCOL_KEYS
    ]
    tasks = []
    for index, (label, plan, _gated, key) in enumerate(cells):
        cell_plan = TrialPlan(
            salt=_PLAN_SALT_BASE + index, total=trials, name=f"{label}:{key}"
        )
        for shard in cell_plan.shards():
            tasks.append((config, key, plan, shard, timeout_rounds))
    batches = engine.map(_run_shard, tasks)

    # Re-associate shard batches with their cells (tasks were emitted in
    # cell order, shards-within-cell contiguous).
    rows = []
    data: Dict[str, Any] = {"trials_per_cell": trials, "cells": {}}
    passed = True
    cursor = 0
    shards_per_cell = len(TrialPlan(salt=1, total=trials).shards())
    for label, plan, gated, key in cells:
        stats = _fold(batches[cursor : cursor + shards_per_cell])
        cursor += shards_per_cell
        agreement = stats["agreement"] / trials
        agreement_alive = stats["agreement_alive"] / trials
        preserved = stats["preserved"] / trials
        cell_ok = stats["completed"] == trials
        if gated:
            if plan.is_empty():
                # Baseline: the machinery must be a no-op for everyone.
                cell_ok &= stats["faults_injected"] == 0
                cell_ok &= agreement == 1.0 and preserved == 1.0
            elif key in _MAILBOX:
                cell_ok &= agreement == 1.0 and preserved == 1.0
            elif key not in _REPORT_ONLY:
                cell_ok &= agreement == 1.0
            passed &= cell_ok
        verdict = "ok" if cell_ok else "DEGRADED"
        if not gated:
            verdict += " (ungated)"
        elif key in _REPORT_ONLY and not plan.is_empty():
            verdict = "report"
        rows.append(
            [
                label,
                key,
                f"{agreement:.2f}",
                f"{agreement_alive:.2f}",
                f"{preserved:.2f}",
                str(stats["faults_injected"]),
                verdict,
            ]
        )
        data["cells"].setdefault(label, {})[key] = {
            "gated": gated,
            "plan": plan.to_dict(),
            "ok": cell_ok,
            **{k: v for k, v in stats.items()},
        }

    table = render_table(
        ["plan", "protocol", "agree", "agree-alive", "preserve", "faults", "verdict"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data=data,
        passed=passed,
        notes=[
            "mailbox protocols (ideal-sb, pi-g/ideal) are immune by design:"
            " their traffic never touches the faulted wire",
            "sequential is report-only: its sender records its own bit"
            " locally, so losing its broadcast splits honest views —"
            " the measured cost of leaning on the broadcast channel",
        ],
    )
