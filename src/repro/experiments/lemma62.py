"""E-L62 — Lemma 6.2: (D(G), CR)-Independence implies (D(G), G)-Independence.

Forward direction: the CR-independent protocol (Chor–Rabin) stays
G-consistent over D(G) representatives.

Contrapositive — and this is the fun part — we *replay the proof's
construction* (Appendix A.2): starting from a protocol+adversary that
fails G** (the sequential baseline under the copy adversary), the proof
builds the distribution

    D' :  coordinate ℓ ~ Bernoulli(p),  all other coordinates pinned,

which lies in D(G) (it is locally independent), and shows the same
protocol fails CR under D' with gap p(1−p)·(G**-gap).  We build exactly
that D' with :func:`repro.distributions.leaky_singleton` and measure the
predicted CR violation.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import render_table
from ..core import cr_report, g_report, g_star_star_report
from ..distributions import PSI_L, bernoulli_product, leaky_singleton, uniform
from .common import (
    ExperimentConfig,
    ExperimentResult,
    copier_factory,
    decision_mark,
    standard_protocols,
    substitution_factory,
)

EXPERIMENT_ID = "E-L62"
TITLE = "Lemma 6.2 — CR implies G over D(G)"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    protocols = standard_protocols(config)
    n = config.n
    samples = config.samples(400, floor=300)
    g_samples = config.samples(2400, floor=600)
    per_point = config.samples(200, floor=10)

    rows = []

    # ---- forward: Chor-Rabin over D(G) representatives --------------------------------
    chor_rabin = protocols["chor-rabin"]
    suite = {"input-sub": substitution_factory(chor_rabin, corrupted=[n], value=0)}
    forward_ok = True
    for distribution in (uniform(n), bernoulli_product([0.3] + [0.5] * (n - 1))):
        for label, factory in suite.items():
            cr = cr_report(chor_rabin, distribution, factory, samples, config.rng(20))
            g = g_report(
                chor_rabin, distribution, factory, g_samples, config.rng(21),
                min_condition_count=max(10, g_samples // 40),
            )
            forward_ok &= (not cr.violated) and (not g.violated)
            rows.append(
                ["forward", f"chor-rabin/{label}", distribution.name,
                 f"CR {decision_mark(cr)}", f"G {decision_mark(g)}"]
            )

    # ---- contrapositive: replay the proof's D' construction ---------------------------
    sequential = protocols["sequential"]
    copier = copier_factory(sequential)
    # Step 1: the G** witness — the copier (corrupted P_n) tracks honest P_1,
    # i.e. varying x_1 (the ℓ-th coordinate) flips W_n.
    g_star_star = g_star_star_report(
        sequential, copier, per_point, config.rng(22),
        honest_assignments=[(0,) + (0,) * (n - 2), (1,) + (0,) * (n - 2)],
        corrupted_assignments=[(0,)],
    )
    # Step 2: the proof's D' — coordinate ℓ = 1 free with probability p,
    # everything else pinned to 0.
    p = 0.5
    d_prime = leaky_singleton(n, free_coordinate=1, rest=[0] * (n - 1), p=p)
    in_dg = PSI_L.contains(d_prime)
    # Step 3: CR must fail under D' with gap ≈ p(1-p) · g**-gap.
    cr = cr_report(sequential, d_prime, copier, samples, config.rng(23))
    predicted = p * (1 - p) * g_star_star.gap
    rows.append(
        ["contrapositive", "sequential/copier", "G** witness",
         f"G** gap {g_star_star.gap:.3f}", decision_mark(g_star_star)]
    )
    rows.append(
        ["contrapositive", "sequential/copier", d_prime.name,
         f"CR gap {cr.gap:.3f} (predicted ≥ {predicted:.3f})", decision_mark(cr)]
    )
    contrapositive_ok = (
        g_star_star.violated
        and in_dg
        and cr.violated
        and cr.gap >= 0.8 * predicted
    )

    passed = forward_ok and contrapositive_ok
    table = render_table(
        ["direction", "protocol/adversary", "distribution", "measurement", "verdict"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={
            "forward_ok": forward_ok,
            "g_star_star_gap": g_star_star.gap,
            "cr_gap_under_d_prime": cr.gap,
            "predicted_cr_gap": predicted,
            "d_prime_in_dg": in_dg,
        },
        passed=passed,
        notes=[
            "the contrapositive rows replay Appendix A.2: a G** witness is"
            f" converted into a CR violation of predicted size p(1-p)·gap ="
            f" {predicted:.3f} under the constructed D'"
        ],
    )
