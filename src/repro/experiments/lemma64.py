"""E-L64 — Lemma 6.4: Π_G is (D(G), G)-independent but never CR-independent.

The paper's headline separation.  Under the A* adversary of Claim 6.6:

* the G estimator on Π_G stays consistent for every D(G) representative —
  each rigged coordinate is individually uniform, uncorrelated with the
  honest outputs;
* the CR estimator explodes on the *same* executions: the parity
  predicate R(W_{¬i}) = (⊕_{j≠i} W_j = 0) holds iff W_i = 0, giving the
  gap p(1−p) ≥ 0.25 — "even for the uniform distribution", as the paper
  stresses.

Both Θ backends (trusted party and BGW) are exercised.

This is the heaviest experiment in the registry (the BGW backend runs a
full MPC evaluation per sample), so its sample loops are sharded: every
(backend, distribution, estimator) cell owns a :class:`TrialPlan` whose
trials each draw from their own salted RNG, worker processes return the
raw :class:`AnnouncedSample` batches, and the estimators run on the
folded draws (:func:`repro.core.g_report_from_samples` /
:func:`repro.core.cr_report_from_samples`).  The sharded serial run and
any parallel run produce bit-identical reports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis import render_table
from ..core import cr_report_from_samples, g_report_from_samples
from ..core.announced import AnnouncedSample, announce_once
from ..distributions import bernoulli_product, uniform
from ..parallel import SERIAL_ENGINE, ExperimentEngine
from ..protocols import PiGBroadcast
from .common import (
    ExperimentConfig,
    ExperimentResult,
    TrialPlan,
    TrialShard,
    decision_mark,
    xor_factory,
)

EXPERIMENT_ID = "E-L64"
TITLE = "Lemma 6.4 — Pi_G separates G from CR"

SUPPORTS_ENGINE = True

#: Base of the per-cell plan-salt namespace (cells are numbered within it).
_PLAN_SALT_BASE = 0x6400


def _representative(spec: Tuple, n: int):
    kind = spec[0]
    if kind == "uniform":
        return uniform(n)
    if kind == "bernoulli":
        return bernoulli_product(list(spec[1]))
    raise ValueError(f"unknown distribution spec {spec!r}")


def _draw_shard(
    config: ExperimentConfig,
    n: int,
    t: int,
    backend: str,
    dist_spec: Tuple,
    shard: TrialShard,
) -> List[AnnouncedSample]:
    """Draw one shard's Announced samples; each trial uses its own salted RNG."""
    protocol = PiGBroadcast(n, t, backend=backend)
    attacker_factory = xor_factory(protocol)
    distribution = _representative(dist_spec, n)
    draws = []
    for trial in shard.trials():
        rng = shard.rng(config, trial)
        inputs = distribution.sample(rng)
        draws.append(announce_once(protocol, inputs, attacker_factory, rng))
    return draws


def _collect_draws(
    config: ExperimentConfig,
    engine: ExperimentEngine,
    backend: str,
    dist_spec: Tuple,
    plan_salt: int,
    samples: int,
) -> List[AnnouncedSample]:
    """Sample a full plan, sharded across the engine, folded in shard order."""
    plan = TrialPlan(salt=plan_salt, total=samples, name=f"{backend}:{dist_spec[0]}")
    tasks = [
        (config, config.n, config.t, backend, dist_spec, shard)
        for shard in plan.shards()
    ]
    batches = engine.map(_draw_shard, tasks)
    return [draw for batch in batches for draw in batch]


def run(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    engine = SERIAL_ENGINE if engine is None else engine
    n = config.n
    samples = config.samples(400, floor=300)
    g_samples = config.samples(2400, floor=600)
    representatives = [
        ("uniform",),
        ("bernoulli", tuple([0.4, 0.6] + [0.5] * (n - 2))),
    ]

    rows = []
    g_ok = True
    cr_broken = True
    # The BGW backend is ~100x slower per run; it keeps the violation floor
    # (300 samples certify the 0.25-gap CR break) with a reduced G budget.
    backends = [("ideal", g_samples, samples), ("bgw", max(300, g_samples // 8), 300)]
    cell = 0
    for backend, g_n, cr_n in backends:
        for dist_spec in representatives:
            distribution = _representative(dist_spec, n)
            g_draws = _collect_draws(
                config, engine, backend, dist_spec, _PLAN_SALT_BASE + 2 * cell, g_n
            )
            cr_draws = _collect_draws(
                config, engine, backend, dist_spec, _PLAN_SALT_BASE + 2 * cell + 1, cr_n
            )
            cell += 1
            g = g_report_from_samples(
                g_draws,
                n,
                min_condition_count=max(10, g_n // 40),
                distribution_name=distribution.name,
            )
            cr = cr_report_from_samples(
                cr_draws, n, distribution_name=distribution.name
            )
            g_ok &= not g.violated
            cr_broken &= cr.violated
            rows.append(
                [backend, distribution.name, f"G {g.gap:.3f} {decision_mark(g)}",
                 f"CR {cr.gap:.3f} {decision_mark(cr)}", cr.witness]
            )

    passed = g_ok and cr_broken
    table = render_table(
        ["theta backend", "distribution", "G verdict", "CR verdict", "CR witness"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"g_ok": g_ok, "cr_broken": cr_broken},
        passed=passed,
        notes=[
            "the CR witness is always the parity predicate — the exact"
            " predicate constructed in the paper's proof"
        ],
    )
