"""E-L64 — Lemma 6.4: Π_G is (D(G), G)-independent but never CR-independent.

The paper's headline separation.  Under the A* adversary of Claim 6.6:

* the G estimator on Π_G stays consistent for every D(G) representative —
  each rigged coordinate is individually uniform, uncorrelated with the
  honest outputs;
* the CR estimator explodes on the *same* executions: the parity
  predicate R(W_{¬i}) = (⊕_{j≠i} W_j = 0) holds iff W_i = 0, giving the
  gap p(1−p) ≥ 0.25 — "even for the uniform distribution", as the paper
  stresses.

Both Θ backends (trusted party and BGW) are exercised.
"""

from __future__ import annotations

from ..analysis import render_table
from ..core import cr_report, g_report
from ..distributions import bernoulli_product, uniform
from ..protocols import PiGBroadcast
from .common import ExperimentConfig, ExperimentResult, decision_mark, xor_factory

EXPERIMENT_ID = "E-L64"
TITLE = "Lemma 6.4 — Pi_G separates G from CR"


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    n, t = config.n, config.t
    samples = config.samples(400, floor=300)
    g_samples = config.samples(2400, floor=600)
    representatives = [
        uniform(n),
        bernoulli_product([0.4, 0.6] + [0.5] * (n - 2)),
    ]

    rows = []
    g_ok = True
    cr_broken = True
    # The BGW backend is ~100x slower per run; it keeps the violation floor
    # (300 samples certify the 0.25-gap CR break) with a reduced G budget.
    backends = [("ideal", g_samples, samples), ("bgw", max(300, g_samples // 8), 300)]
    for backend, g_n, cr_n in backends:
        protocol = PiGBroadcast(n, t, backend=backend)
        attacker = xor_factory(protocol)
        for distribution in representatives:
            g = g_report(
                protocol, distribution, attacker, g_n, config.rng(40),
                min_condition_count=max(10, g_n // 40),
            )
            cr = cr_report(protocol, distribution, attacker, cr_n, config.rng(41))
            g_ok &= not g.violated
            cr_broken &= cr.violated
            rows.append(
                [backend, distribution.name, f"G {g.gap:.3f} {decision_mark(g)}",
                 f"CR {cr.gap:.3f} {decision_mark(cr)}", cr.witness]
            )

    passed = g_ok and cr_broken
    table = render_table(
        ["theta backend", "distribution", "G verdict", "CR verdict", "CR witness"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"g_ok": g_ok, "cr_broken": cr_broken},
        passed=passed,
        notes=[
            "the CR witness is always the parity predicate — the exact"
            " predicate constructed in the paper's proof"
        ],
    )
