"""E-TRD — negligibility trends across the security parameter k.

"Negligible in k" is the quantifier every definition bottoms out in; a
single-k measurement cannot certify it.  This experiment re-measures the
key gaps at k ∈ {16, 24, 32} (the Schnorr-group size of the crypto layer)
and applies the trend rule of :mod:`repro.analysis.trend`:

* the Π_G/A* CR gap is an *algebraic* property of the function g — it
  must sit at p(1−p) ≈ 0.25 at every k (a constant-gap, k-independent
  attack: VIOLATED);
* the CGMA honest CR gap is sampling noise at every k and must not grow
  (CONSISTENT);
* the Gennaro copy-echo success (measured as the G** tracking gap of the
  copier) is 0 at every k — the proof-of-knowledge rejection does not
  degrade as parameters shrink within the tested range.
"""

from __future__ import annotations

from typing import Optional

from ..adversaries import CommitEchoAdversary
from ..analysis import Decision, assess_trend, render_table
from ..core import HONEST, cr_report, g_star_star_report
from ..distributions import uniform
from ..protocols import CGMABroadcast, GennaroBroadcast, PiGBroadcast
from .common import ExperimentConfig, ExperimentResult, xor_factory

EXPERIMENT_ID = "E-TRD"
TITLE = "Negligibility trends across the security parameter k"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    n, t = config.n, config.t
    levels = config.security_levels
    cr_samples = config.samples(400, floor=300)
    per_point = config.samples(120, floor=60)

    rows = []
    verdicts = {}

    # ---- Pi_G under A*: the attack is k-independent ------------------------------
    gaps, errors = {}, {}
    for k in levels:
        protocol = PiGBroadcast(n, t, backend="ideal", security_bits=k)
        report = cr_report(
            protocol, uniform(n), xor_factory(protocol), cr_samples, config.rng(50 + k)
        )
        gaps[k], errors[k] = report.gap, report.error
    verdicts["pi-g/A* CR"] = assess_trend(gaps, errors)
    rows.append(["pi-g/A*", "CR gap"] + [f"{gaps[k]:.3f}" for k in levels]
                + [verdicts["pi-g/A* CR"].decision.value])

    # ---- CGMA honest: noise at every k --------------------------------------------
    gaps, errors = {}, {}
    for k in levels:
        protocol = CGMABroadcast(n, t, security_bits=k)
        report = cr_report(protocol, uniform(n), HONEST, cr_samples, config.rng(60 + k))
        gaps[k], errors[k] = report.gap, report.error
    verdicts["cgma/honest CR"] = assess_trend(gaps, errors)
    rows.append(["cgma/honest", "CR gap"] + [f"{gaps[k]:.3f}" for k in levels]
                + [verdicts["cgma/honest CR"].decision.value])

    # ---- Gennaro vs the copy-echo: rejection at every k ----------------------------
    gaps, errors = {}, {}
    for k in levels:
        protocol = GennaroBroadcast(n, t, security_bits=k)
        echo = lambda: CommitEchoAdversary(
            copier=n, target=1, commit_tag="gen:commit", reveal_tag="gen:reveal"
        )
        report = g_star_star_report(
            protocol, echo, per_point, config.rng(70 + k),
            honest_assignments=[(0,) * (n - 1), (1,) + (0,) * (n - 2)],
            corrupted_assignments=[(0,)],
        )
        gaps[k], errors[k] = report.gap, report.error
    verdicts["gennaro/echo G**"] = assess_trend(gaps, errors)
    rows.append(["gennaro/echo", "G** tracking gap"] + [f"{gaps[k]:.3f}" for k in levels]
                + [verdicts["gennaro/echo G**"].decision.value])

    passed = (
        verdicts["pi-g/A* CR"].decision == Decision.VIOLATED
        and verdicts["cgma/honest CR"].decision == Decision.CONSISTENT
        and verdicts["gennaro/echo G**"].decision == Decision.CONSISTENT
    )
    table = render_table(
        ["configuration", "quantity"] + [f"k={k}" for k in levels] + ["trend verdict"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={name: verdict.decision.value for name, verdict in verdicts.items()},
        passed=passed,
        notes=[
            "the separation gaps are flat in k (they are algebraic, not"
            " computational); the secure configurations stay at noise level"
        ],
    )
