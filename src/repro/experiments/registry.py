"""The experiment index: id -> runner, plus the run-everything driver."""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from ..errors import ExperimentError
from ..obs import Metrics, runtime as _obs_runtime
from . import (
    ablation,
    appendix_b,
    claim56,
    claim66,
    cost,
    figure1,
    lemma52,
    lemma54,
    lemma61,
    lemma62,
    lemma64,
    prop63,
    rounds,
    trend_k,
)
from .common import ExperimentConfig, ExperimentResult

_MODULES = (
    figure1,
    claim56,
    lemma52,
    lemma54,
    lemma61,
    lemma62,
    prop63,
    lemma64,
    claim66,
    rounds,
    cost,
    trend_k,
    ablation,
    appendix_b,
)

REGISTRY: Dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

TITLES: Dict[str, str] = {module.EXPERIMENT_ID: module.TITLE for module in _MODULES}


def run_experiment(
    experiment_id: str, config: ExperimentConfig = ExperimentConfig()
) -> ExperimentResult:
    """Run one experiment with cost accounting attached to its result.

    Every run executes under a fresh :class:`repro.obs.Metrics` registry, so
    the returned :class:`ExperimentResult` carries the measured cost of
    producing it (rounds, messages, bytes, crypto ops, wall-clock seconds)
    alongside the scientific payload.  Experiments that scope their own
    measurements (E-COST) keep whatever they already recorded.
    """
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    start = time.perf_counter()
    with _obs_runtime.observed(metrics=Metrics()) as (_, metrics):
        result = runner(config)
    elapsed = time.perf_counter() - start
    snapshot = metrics.snapshot()
    result.metrics.setdefault("wall_seconds", elapsed)
    result.metrics.setdefault("counters", snapshot["counters"])
    result.metrics.setdefault("histograms", snapshot["histograms"])
    return result


def run_all(config: ExperimentConfig = ExperimentConfig()) -> List[ExperimentResult]:
    return [run_experiment(experiment_id, config) for experiment_id in REGISTRY]
