"""The experiment index: id -> runner, plus the run-everything driver."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ExperimentError
from . import (
    ablation,
    appendix_b,
    claim56,
    claim66,
    figure1,
    lemma52,
    lemma54,
    lemma61,
    lemma62,
    lemma64,
    prop63,
    rounds,
    trend_k,
)
from .common import ExperimentConfig, ExperimentResult

_MODULES = (
    figure1,
    claim56,
    lemma52,
    lemma54,
    lemma61,
    lemma62,
    prop63,
    lemma64,
    claim66,
    rounds,
    trend_k,
    ablation,
    appendix_b,
)

REGISTRY: Dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

TITLES: Dict[str, str] = {module.EXPERIMENT_ID: module.TITLE for module in _MODULES}


def run_experiment(
    experiment_id: str, config: ExperimentConfig = ExperimentConfig()
) -> ExperimentResult:
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    return runner(config)


def run_all(config: ExperimentConfig = ExperimentConfig()) -> List[ExperimentResult]:
    return [run_experiment(experiment_id, config) for experiment_id in REGISTRY]
