"""The experiment index: id -> runner, plus the run-everything drivers.

Parallelism happens at two levels, both routed through
:mod:`repro.parallel` and both bit-identical to a serial run:

* **experiment-level** — :func:`run_many` / :func:`run_all` dispatch whole
  experiments to worker processes (each experiment is deterministic given
  its config, and its cost metrics travel inside the returned result);
* **trial-level** — the heavy runners (``SHARDED_IDS``: E-C56, E-L64,
  E-C66, E-COST, E-FAULT) opt in to intra-experiment sharding by accepting an
  ``engine=`` keyword; :func:`run_experiment` hands them an
  :class:`~repro.parallel.ExperimentEngine` sized by its ``jobs``
  argument, and their trial batches fan out across the pool.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ExperimentError
from ..obs import Metrics, runtime as _obs_runtime
from ..parallel import ExperimentEngine, normalize_jobs, prewarm_for_config
from . import (
    ablation,
    appendix_b,
    claim56,
    claim66,
    cost,
    faults,
    figure1,
    lemma52,
    lemma54,
    lemma61,
    lemma62,
    lemma64,
    prop63,
    rounds,
    trend_k,
)
from .common import ExperimentConfig, ExperimentResult

_MODULES = (
    figure1,
    claim56,
    lemma52,
    lemma54,
    lemma61,
    lemma62,
    prop63,
    lemma64,
    claim66,
    rounds,
    cost,
    trend_k,
    ablation,
    appendix_b,
    faults,
)

REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

TITLES: Dict[str, str] = {module.EXPERIMENT_ID: module.TITLE for module in _MODULES}

#: Experiments whose runners accept ``engine=`` for intra-experiment sharding.
SHARDED_IDS = frozenset(
    module.EXPERIMENT_ID
    for module in _MODULES
    if getattr(module, "SUPPORTS_ENGINE", False)
)


def run_experiment(
    experiment_id: str,
    config: Optional[ExperimentConfig] = None,
    jobs: int = 1,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentResult:
    """Run one experiment with cost accounting attached to its result.

    Every run executes under a fresh :class:`repro.obs.Metrics` registry, so
    the returned :class:`ExperimentResult` carries the measured cost of
    producing it (rounds, messages, bytes, crypto ops, wall-clock seconds)
    alongside the scientific payload.  Experiments that scope their own
    measurements (E-COST) keep whatever they already recorded.

    ``jobs > 1`` shards the trial batches of the opt-in heavy experiments
    (``SHARDED_IDS``) across worker processes; the result — including its
    metrics counters and histograms — is identical at every worker count.
    Pass ``engine`` to reuse a caller-owned (already warm) pool across
    several experiments; otherwise a temporary engine is created, warm-
    started from the coordinator's parameter caches, and shut down before
    returning.
    """
    config = ExperimentConfig() if config is None else config
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    owns_engine = False
    if experiment_id in SHARDED_IDS and engine is None:
        if jobs > 1:
            # Warm the coordinator first: under fork the pool workers
            # inherit the parameter caches and fixed-base tables for free.
            prewarm_for_config(config)
        engine = ExperimentEngine(jobs)
        owns_engine = True
    try:
        start = time.perf_counter()
        # Scope a fresh metrics registry but keep an already-enabled ambient
        # tracer installed (observed() would otherwise swap in the no-op
        # tracer) — this is what lets `repro obs export` capture spans from
        # a full experiment run.
        ambient_tracer = (
            _obs_runtime.tracer if _obs_runtime.tracer.enabled else None
        )
        with _obs_runtime.observed(tracer=ambient_tracer, metrics=Metrics()) as (
            _,
            metrics,
        ):
            if experiment_id in SHARDED_IDS:
                result = runner(config, engine=engine)
            else:
                result = runner(config)
        elapsed = time.perf_counter() - start
    finally:
        if owns_engine and engine is not None:
            engine.close()
    snapshot = metrics.snapshot()
    result.metrics.setdefault("wall_seconds", elapsed)
    result.metrics.setdefault("counters", snapshot["counters"])
    result.metrics.setdefault("histograms", snapshot["histograms"])
    return result


def _run_one(experiment_id: str, config: ExperimentConfig) -> ExperimentResult:
    """Experiment-level shard task: one whole experiment, internally serial."""
    return run_experiment(experiment_id, config)


def run_many(
    experiment_ids: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    jobs: int = 1,
) -> List[ExperimentResult]:
    """Run the named experiments, in order, with ``jobs`` worker processes.

    Scheduling: experiments without trial-level sharding fan out whole
    (one pool task per experiment), then the sharded heavy experiments run
    one at a time with the full pool working their trial batches — the
    heavy runners dominate wall-clock, so this keeps every worker busy
    where it matters.  Results are returned in the requested order and are
    identical to a ``jobs=1`` run.
    """
    config = ExperimentConfig() if config is None else config
    jobs = normalize_jobs(jobs)
    unknown = [e for e in experiment_ids if e not in REGISTRY]
    if unknown:
        raise ExperimentError(
            f"unknown experiment(s) {unknown!r}; known: {sorted(REGISTRY)}"
        )
    if jobs == 1:
        return [run_experiment(experiment_id, config) for experiment_id in experiment_ids]

    # One pool for the whole batch: warm the coordinator's parameter caches
    # first (fork-inherited by every worker), then reuse the same engine for
    # the light fan-out and every heavy experiment's trial shards.
    prewarm_for_config(config)
    light = [e for e in experiment_ids if e not in SHARDED_IDS]
    heavy = [e for e in experiment_ids if e in SHARDED_IDS]
    with ExperimentEngine(jobs) as engine:
        results = dict(
            zip(light, engine.map(_run_one, [(experiment_id, config) for experiment_id in light]), strict=True)
        )
        for experiment_id in heavy:
            results[experiment_id] = run_experiment(
                experiment_id, config, jobs=jobs, engine=engine
            )
    return [results[experiment_id] for experiment_id in experiment_ids]


def run_all(
    config: Optional[ExperimentConfig] = None, parallel: int = 1
) -> List[ExperimentResult]:
    """Run every registered experiment; ``parallel=N`` shards across N workers."""
    return run_many(list(REGISTRY), config, jobs=parallel)
