"""The reproduction experiments: one module per claim/lemma/figure.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for measured
results.  Run everything with::

    python -m repro.experiments --jobs 4

or programmatically via :func:`repro.experiments.registry.run_all`
(``parallel=N`` shards across worker processes with bit-identical
results; see :mod:`repro.parallel`).
"""

from .common import ExperimentConfig, ExperimentResult, TrialPlan, TrialShard
from .registry import REGISTRY, SHARDED_IDS, TITLES, run_all, run_experiment, run_many

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "REGISTRY",
    "SHARDED_IDS",
    "TITLES",
    "TrialPlan",
    "TrialShard",
    "run_all",
    "run_experiment",
    "run_many",
]
