"""The reproduction experiments: one module per claim/lemma/figure.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for measured
results.  Run everything with::

    python -m repro.experiments

or programmatically via :func:`repro.experiments.registry.run_all`.
"""

from .common import ExperimentConfig, ExperimentResult
from .registry import REGISTRY, TITLES, run_all, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "REGISTRY",
    "TITLES",
    "run_all",
    "run_experiment",
]
