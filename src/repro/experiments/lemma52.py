"""E-L52 — Lemma 5.2: no protocol is CR-independent outside Ψ_C,n.

The lemma says correlation in the inputs *itself* defeats Definition 4.3,
no matter how good the protocol: a correct protocol must announce the
(correlated) inputs, and a predicate reading the correlated coordinates
then has non-negligible covariance with any single honest bit.

We measure the CR gap of every protocol in the zoo — including the ideal
trusted-party protocol, which is as secure as protocols get — under two
distributions outside Ψ_C,n (all-equal and parity), with *no adversary at
all*.  Every cell must come out VIOLATED.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import render_table
from ..core import HONEST, cr_report
from ..distributions import all_equal, parity
from ..distributions.analytic import cr_achievability_floor
from .common import (
    ExperimentConfig,
    ExperimentResult,
    decision_mark,
    stable_salt,
    standard_protocols,
)

EXPERIMENT_ID = "E-L52"
TITLE = "Lemma 5.2 — CR impossibility outside Psi_C"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    protocols = standard_protocols(config)
    distributions = [all_equal(config.n), parity(config.n)]
    samples = config.samples(400, floor=300)

    floors = {d.name: cr_achievability_floor(d) for d in distributions}
    rows = []
    verdicts = {}
    for name, protocol in protocols.items():
        for distribution in distributions:
            report = cr_report(
                protocol, distribution, HONEST, samples, config.rng(salt=stable_salt(name, distribution.name))
            )
            verdicts[(name, distribution.name)] = report
            rows.append(
                [
                    name,
                    distribution.name,
                    f"{report.gap:.3f}",
                    f"{floors[distribution.name]:.3f}",
                    f"{report.error:.3f}",
                    decision_mark(report),
                    report.witness,
                ]
            )

    passed = all(report.violated for report in verdicts.values())
    table = render_table(
        ["protocol", "distribution", "CR gap", "exact floor", "err", "verdict", "witness"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={
            "gaps": {f"{p}/{d}": r.gap for (p, d), r in verdicts.items()},
            "floors": floors,
            "all_violated": passed,
        },
        passed=passed,
        notes=[
            "every protocol — even Ideal(f_SB) — fails Definition 4.3 under"
            " correlated inputs, exactly as the lemma predicts"
        ],
    )
