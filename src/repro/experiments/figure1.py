"""E-FIG1 — Figure 1: the implication/separation diagram, measured.

The figure asserts four arrows:

* ``Sb ==[D(CR)]==> CR``  (Lemma 6.1)
* ``CR =/=[Singleton]=> Sb``  (Proposition 6.3)
* ``CR ==[D(G)]==> G``  (Lemma 6.2)
* ``G =/=[D(G)]=> CR``  (Lemma 6.4, witnessed by Π_G under A*)

Each solid arrow is evidenced by a protocol satisfying the premise
definition over the quantifying class and (as the lemma requires) also
satisfying the conclusion; each broken arrow is evidenced by a concrete
protocol+adversary meeting the premise while violating the conclusion.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import render_figure1, render_table
from ..core import HONEST, cr_report, g_report, sb_report
from ..distributions import bernoulli_product, near_product_mixture, uniform
from .common import (
    ExperimentConfig,
    ExperimentResult,
    copier_factory,
    decision_mark,
    standard_protocols,
    substitution_factory,
    xor_factory,
)

EXPERIMENT_ID = "E-FIG1"
TITLE = "Figure 1 — implications and separations among Sb, CR, G"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    protocols = standard_protocols(config)
    n = config.n
    samples = config.samples(400, floor=300)
    per_point = config.samples(60, floor=5)
    g_samples = config.samples(2400, floor=600)

    rows = []
    arrows = {}

    # ---- Sb ==[D(CR)]==> CR : CGMA under honest + input-substitution ----------------
    # A Ψ_C representative with a *small* mixture weight: the CR covariance it
    # induces (δ/4 ≈ 0.0125) stays well below the decision threshold, matching
    # the class's "negligibly far from product" intent at simulation scale.
    cgma = protocols["cgma"]
    d_cr_rep = near_product_mixture(n, delta=0.05)
    suite = {
        "honest": HONEST,
        "input-sub": substitution_factory(cgma, corrupted=[n], value=1),
    }
    sb_ok = cr_ok = True
    for label, factory in suite.items():
        sb = sb_report(
            cgma, factory, per_point, config.rng(1),
            input_vectors=d_cr_rep.support()[: min(8, len(d_cr_rep.support()))],
        )
        cr = cr_report(cgma, d_cr_rep, factory, samples, config.rng(2))
        sb_ok &= not sb.violated
        cr_ok &= not cr.violated
        rows.append(["Sb=>CR", f"cgma/{label}", f"Sb {decision_mark(sb)}", f"CR {decision_mark(cr)}"])
    arrows[("Sb", "CR")] = {"class": "D(CR)", "holds": sb_ok and cr_ok}

    # ---- CR =/=[Singleton]=> Sb : sequential + copier ---------------------------------
    sequential = protocols["sequential"]
    copier = copier_factory(sequential)
    singleton_inputs = [tuple([0] * n), tuple([1] + [0] * (n - 1))]
    cr_under_singletons_ok = True
    for fixed in singleton_inputs:
        from ..distributions import singleton as singleton_dist

        cr = cr_report(sequential, singleton_dist(fixed), copier, samples, config.rng(3))
        cr_under_singletons_ok &= not cr.violated
    sb = sb_report(sequential, copier, per_point, config.rng(4), input_vectors=singleton_inputs)
    rows.append(
        ["CR=/=>Sb", "sequential/copier",
         f"CR {'ok' if cr_under_singletons_ok else 'VIOLATED'}",
         f"Sb {decision_mark(sb)}"]
    )
    arrows[("CR", "Sb")] = {
        "class": "Singleton",
        "holds": not (cr_under_singletons_ok and sb.violated),
        "note": "broken arrow expected",
    }

    # ---- CR ==[D(G)]==> G : Chor-Rabin with a passively corrupted party ---------------
    chor_rabin = protocols["chor-rabin"]
    d_g_rep = bernoulli_product([0.3] + [0.5] * (n - 1))
    sub = substitution_factory(chor_rabin, corrupted=[n], value=0)
    cr = cr_report(chor_rabin, d_g_rep, sub, samples, config.rng(5))
    g = g_report(
        chor_rabin, d_g_rep, sub, g_samples, config.rng(6),
        min_condition_count=max(10, g_samples // 40),
    )
    rows.append(["CR=>G", "chor-rabin/input-sub", f"CR {decision_mark(cr)}", f"G {decision_mark(g)}"])
    arrows[("CR", "G")] = {"class": "D(G)", "holds": not cr.violated and not g.violated}

    # ---- G =/=[D(G), incl. uniform]=> CR : Pi_G under A* -------------------------------
    pi_g = protocols["pi-g"]
    attacker = xor_factory(pi_g)
    g = g_report(
        pi_g, uniform(n), attacker, g_samples, config.rng(7),
        min_condition_count=max(10, g_samples // 40),
    )
    cr = cr_report(pi_g, uniform(n), attacker, samples, config.rng(8))
    rows.append(["G=/=>CR", "pi-g/A*", f"G {decision_mark(g)}", f"CR {decision_mark(cr)}"])
    arrows[("G", "CR")] = {
        "class": "D(G) (uniform)",
        "holds": not (not g.violated and cr.violated),
        "note": "broken arrow expected (Lemma 6.4)",
    }

    passed = (
        arrows[("Sb", "CR")]["holds"]
        and not arrows[("CR", "Sb")]["holds"]
        and arrows[("CR", "G")]["holds"]
        and not arrows[("G", "CR")]["holds"]
    )
    table = (
        render_table(["arrow", "evidence", "premise", "conclusion"], rows, title=TITLE)
        + "\n\n"
        + render_figure1(arrows)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"arrows": {f"{a}->{b}": v["holds"] for (a, b), v in arrows.items()}},
        passed=passed,
        notes=[
            "solid arrows hold, broken arrows break — matching the paper's Figure 1"
        ],
    )
