"""Shared infrastructure for the reproduction experiments.

Every experiment is a function ``run(config) -> ExperimentResult``; the
result carries a rendered table (what the harness prints), structured
data (what the benchmarks assert on), and a ``passed`` flag meaning "the
measured behaviour matches the paper's claim".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..adversaries import (
    InputSubstitution,
    PassiveAdversary,
    SequentialCopier,
    XorAttacker,
)
from ..core import MeasurementBudget
from ..protocols import (
    CGMABroadcast,
    ChorRabinBroadcast,
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    PiGBroadcast,
    SequentialBroadcast,
)


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    ``scale`` shrinks all sample counts uniformly — the benchmarks run at
    scale << 1, the EXPERIMENTS.md numbers at scale = 1.
    """

    n: int = 5
    t: int = 2
    security_bits: int = 24
    security_levels: tuple = (16, 24, 32)
    seed: int = 20050717  # PODC'05 started July 17, 2005.
    scale: float = 1.0

    def rng(self, salt: int = 0) -> random.Random:
        return random.Random(self.seed * 1_000_003 + salt)

    def budget(self) -> MeasurementBudget:
        return MeasurementBudget().scaled(self.scale)

    def samples(self, base: int, floor: int = 10) -> int:
        return max(floor, int(base * self.scale))


@dataclass
class ExperimentResult:
    experiment_id: str
    title: str
    table: str
    data: Dict[str, Any] = field(default_factory=dict)
    passed: bool = True
    notes: List[str] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    """Measured cost of producing this result (counters/histograms/wall time).

    Populated automatically by :func:`repro.experiments.registry.run_experiment`
    from the :mod:`repro.obs` layer; experiments that take their own
    measurements (e.g. E-COST) may add structured entries of their own.
    """

    def render(self) -> str:
        status = "PASS" if self.passed else "MISMATCH"
        lines = [f"[{self.experiment_id}] {self.title} — {status}", "", self.table]
        if self.notes:
            lines.append("")
            lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-safe dump of the full result (for ``--json`` artifacts)."""
        from ..obs import jsonable

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "passed": self.passed,
            "table": self.table,
            "notes": list(self.notes),
            "data": jsonable(self.data),
            "metrics": jsonable(self.metrics),
        }


# -- protocol & adversary shorthands used across experiments ------------------------


def standard_protocols(config: ExperimentConfig) -> Dict[str, Any]:
    """The protocol zoo at the experiment's parameters."""
    n, t, k = config.n, config.t, config.security_bits
    return {
        "sequential": SequentialBroadcast(n, t),
        "ideal-sb": IdealSimultaneousBroadcast(n, t),
        "cgma": CGMABroadcast(n, t, security_bits=k),
        "chor-rabin": ChorRabinBroadcast(n, t, security_bits=k),
        "gennaro": GennaroBroadcast(n, t, security_bits=k),
        "pi-g": PiGBroadcast(n, t, backend="ideal"),
    }


def copier_factory(protocol: SequentialBroadcast):
    """The Section 3.2 echo adversary for the sequential baseline."""
    return lambda: SequentialCopier(copier=protocol.n, target=1)


def xor_factory(protocol: PiGBroadcast):
    """A* of Claim 6.6 (corrupts the first two parties)."""
    return lambda: XorAttacker(protocol, corrupted_pair=[1, 2])


def passive_factory(corrupted):
    return lambda: PassiveAdversary(corrupted=list(corrupted))


def substitution_factory(protocol, corrupted, value=0):
    return lambda: InputSubstitution(protocol, corrupted=list(corrupted), substitution=value)


def decision_mark(report) -> str:
    """Short table cell for a report's decision."""
    from ..analysis import Decision

    return {
        Decision.CONSISTENT: "ok",
        Decision.VIOLATED: "VIOLATED",
        Decision.INCONCLUSIVE: "??",
    }[report.decision]
