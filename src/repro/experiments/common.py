"""Shared infrastructure for the reproduction experiments.

Every experiment is a function ``run(config) -> ExperimentResult``; the
result carries a rendered table (what the harness prints), structured
data (what the benchmarks assert on), and a ``passed`` flag meaning "the
measured behaviour matches the paper's claim".
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

from ..adversaries import (
    InputSubstitution,
    PassiveAdversary,
    SequentialCopier,
    XorAttacker,
)
from ..core import MeasurementBudget
from ..protocols import (
    CGMABroadcast,
    ChorRabinBroadcast,
    GennaroBroadcast,
    IdealSimultaneousBroadcast,
    PiGBroadcast,
    SequentialBroadcast,
)


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    ``scale`` shrinks all sample counts uniformly — the benchmarks run at
    scale << 1, the EXPERIMENTS.md numbers at scale = 1.
    """

    n: int = 5
    t: int = 2
    security_bits: int = 24
    security_levels: tuple = (16, 24, 32)
    seed: int = 20050717  # PODC'05 started July 17, 2005.
    scale: float = 1.0
    fault_plan: Any = None
    """An extra :class:`repro.faults.FaultPlan` (from ``--faults PLAN.json``)
    swept by E-FAULT alongside the standard library — measured, never gated."""
    runtime: str = "lockstep"
    """Which :mod:`repro.net.runtime` engine drives protocol executions
    (``--runtime``).  The CLI applies the choice through the ``REPRO_RUNTIME``
    environment so pool shards resolve it too; it is recorded here so a
    config states what was simulated."""

    def rng(self, salt: int = 0) -> random.Random:
        return random.Random(self.seed * 1_000_003 + salt)

    def budget(self) -> MeasurementBudget:
        return MeasurementBudget().scaled(self.scale)

    def samples(self, base: int, floor: int = 10) -> int:
        return max(floor, int(base * self.scale))


def stable_salt(*parts: Any) -> int:
    """A 16-bit RNG salt derived deterministically from labels.

    Experiments that salt per-(protocol, distribution) cell used to call
    builtin ``hash(...)`` here, which is ``PYTHONHASHSEED``-salted for
    strings — the same invocation on a fresh interpreter drew *different*
    RNG streams, so artifacts could never be replayed across processes
    (analyzer rule DET005).  ``zlib.crc32`` is process-independent.
    """
    text = "\x1f".join(str(part) for part in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFF


# -- deterministic trial sharding ---------------------------------------------------
#
# Salt layout: legacy experiment salts are small integers (every call site
# uses a value < 2**16), while per-trial salts are ``(plan_salt << 32) | trial``
# with ``plan_salt >= 1`` — so the two namespaces can never collide, and two
# plans with different salts can never share a trial stream.

TRIAL_SALT_SHIFT = 32


@dataclass(frozen=True)
class TrialShard:
    """A contiguous slice ``[start, stop)`` of a :class:`TrialPlan`'s trials."""

    plan_salt: int
    start: int
    stop: int

    @property
    def count(self) -> int:
        return self.stop - self.start

    def trials(self) -> range:
        return range(self.start, self.stop)

    def rng(self, config: "ExperimentConfig", trial: int) -> random.Random:
        """The per-trial RNG, computable inside a worker from the shard alone."""
        if not self.start <= trial < self.stop:
            raise IndexError(f"trial {trial} outside shard [{self.start}, {self.stop})")
        return config.rng((self.plan_salt << TRIAL_SALT_SHIFT) | trial)


#: Default fixed shard count per plan — enough to balance an 8-way pool.
DEFAULT_PLAN_PARTS = 8


@dataclass(frozen=True)
class TrialPlan:
    """A fixed batch of independent Monte-Carlo trials with per-trial RNG salts.

    The plan is the unit of determinism for :mod:`repro.parallel`.  Two
    properties make any run bit-identical at any worker count:

    * every trial draws *only* from its own salted RNG
      (``plan.rng(config, trial)``), so no trial can observe another
      trial's stream;
    * the shard partition is **fixed** (``parts``, not the worker count) —
      workers only affect *where* a shard executes, never the shard
      structure, so even per-shard setup work (protocol construction,
      cached field tables) is charged identically in serial and parallel
      runs.
    """

    salt: int
    total: int
    name: str = ""
    parts: int = DEFAULT_PLAN_PARTS

    def __post_init__(self) -> None:
        if self.salt < 1:
            raise ValueError("plan salt must be >= 1 (0 is the legacy default salt)")
        if self.total < 0:
            raise ValueError("trial count must be non-negative")
        if self.parts < 1:
            raise ValueError("plans need at least one part")

    def trial_salt(self, trial: int) -> int:
        if not 0 <= trial < self.total:
            raise IndexError(f"trial {trial} outside plan of {self.total}")
        return (self.salt << TRIAL_SALT_SHIFT) | trial

    def rng(self, config: "ExperimentConfig", trial: int) -> random.Random:
        """The RNG owned exclusively by one trial of this plan."""
        return config.rng(self.trial_salt(trial))

    def shards(self) -> List[TrialShard]:
        """The fixed partition: ``min(parts, total)`` contiguous, balanced shards.

        The partition is exact — shards are disjoint, ordered, and cover
        ``range(total)``; sizes differ by at most one — and depends only on
        the plan, never on how many workers will execute it.
        """
        parts = min(self.parts, self.total) if self.total else 0
        shards = []
        cursor = 0
        for index in range(parts):
            size = self.total // parts + (1 if index < self.total % parts else 0)
            shards.append(TrialShard(self.salt, cursor, cursor + size))
            cursor += size
        return shards

    def trials(self) -> Iterator[int]:
        return iter(range(self.total))


@dataclass
class ExperimentResult:
    experiment_id: str
    title: str
    table: str
    data: Dict[str, Any] = field(default_factory=dict)
    passed: bool = True
    notes: List[str] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    """Measured cost of producing this result (counters/histograms/wall time).

    Populated automatically by :func:`repro.experiments.registry.run_experiment`
    from the :mod:`repro.obs` layer; experiments that take their own
    measurements (e.g. E-COST) may add structured entries of their own.
    """

    def render(self) -> str:
        status = "PASS" if self.passed else "MISMATCH"
        lines = [f"[{self.experiment_id}] {self.title} — {status}", "", self.table]
        if self.notes:
            lines.append("")
            lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-safe dump of the full result (for ``--json`` artifacts)."""
        from ..obs import jsonable

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "passed": self.passed,
            "table": self.table,
            "notes": list(self.notes),
            "data": jsonable(self.data),
            "metrics": jsonable(self.metrics),
        }


# -- protocol & adversary shorthands used across experiments ------------------------


def standard_protocols(config: ExperimentConfig) -> Dict[str, Any]:
    """The protocol zoo at the experiment's parameters."""
    n, t, k = config.n, config.t, config.security_bits
    return {
        "sequential": SequentialBroadcast(n, t),
        "ideal-sb": IdealSimultaneousBroadcast(n, t),
        "cgma": CGMABroadcast(n, t, security_bits=k),
        "chor-rabin": ChorRabinBroadcast(n, t, security_bits=k),
        "gennaro": GennaroBroadcast(n, t, security_bits=k),
        "pi-g": PiGBroadcast(n, t, backend="ideal"),
    }


def copier_factory(protocol: SequentialBroadcast):
    """The Section 3.2 echo adversary for the sequential baseline."""
    return lambda: SequentialCopier(copier=protocol.n, target=1)


def xor_factory(protocol: PiGBroadcast):
    """A* of Claim 6.6 (corrupts the first two parties)."""
    return lambda: XorAttacker(protocol, corrupted_pair=[1, 2])


def passive_factory(corrupted):
    return lambda: PassiveAdversary(corrupted=list(corrupted))


def substitution_factory(protocol, corrupted, value=0):
    return lambda: InputSubstitution(protocol, corrupted=list(corrupted), substitution=value)


def decision_mark(report) -> str:
    """Short table cell for a report's decision."""
    from ..analysis import Decision

    return {
        Decision.CONSISTENT: "ok",
        Decision.VIOLATED: "VIOLATED",
        Decision.INCONCLUSIVE: "??",
    }[report.decision]
