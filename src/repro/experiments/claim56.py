"""E-C56 — Claim 5.6: Singleton, Uniform ⊊ D(G) ⊊ D(CR) ⊊ D(Sb).

Regenerates the strict inclusion chain of distribution classes with
measured membership bits for a battery of distributions, including the
witness for each strict inclusion.

The battery rows are independent, so the experiment shards one task per
distribution across :class:`repro.parallel.ExperimentEngine` workers; the
membership computations are analytic (no RNG), so sharded and serial runs
are identical by construction.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import render_table
from ..distributions import (
    ALL,
    PSI_C,
    PSI_L,
    SINGLETON,
    UNIFORM,
    all_equal,
    bernoulli_product,
    near_product_mixture,
    noisy_copy,
    parity,
    singleton,
    uniform,
)
from ..parallel import SERIAL_ENGINE, ExperimentEngine
from .common import ExperimentConfig, ExperimentResult

EXPERIMENT_ID = "E-C56"
TITLE = "Claim 5.6 — the achievable-distribution chain"

SUPPORTS_ENGINE = True

_CLASSES = ("Singleton", "Uniform", "D(G)", "D(CR)", "D(Sb)")


def _battery(n: int) -> List:
    return [
        singleton([0] * n),
        singleton([1] * n),
        uniform(n),
        bernoulli_product([0.3] + [0.5] * (n - 1)),
        near_product_mixture(n, delta=0.1),
        noisy_copy(n, flip_probability=0.05),
        parity(n),
        all_equal(n),
    ]


def _membership_trial(n: int, index: int):
    """One shardable trial: the membership row of battery distribution ``index``."""
    distribution = _battery(n)[index]
    bits = {
        "Singleton": SINGLETON.contains(distribution),
        "Uniform": UNIFORM.contains(distribution),
        "D(G)": PSI_L.contains(distribution),
        "D(CR)": PSI_C.contains(distribution),
        "D(Sb)": ALL.contains(distribution),
    }
    return (
        distribution.name,
        bits,
        distribution.product_gap(),
        distribution.local_independence_gap(),
    )


def run(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    engine = SERIAL_ENGINE if engine is None else engine
    n = config.n
    battery_size = len(_battery(n))

    trials = engine.map(_membership_trial, [(n, index) for index in range(battery_size)])

    rows = []
    memberships = {}
    for name, bits, product_gap, local_gap in trials:
        memberships[name] = bits
        rows.append(
            [name]
            + ["yes" if bits[c] else "no" for c in _CLASSES]
            + [f"{product_gap:.3f}", f"{local_gap:.3f}"]
        )

    # The chain is verified if membership is monotone along the chain for
    # every distribution, and each strict inclusion has a witness.
    chain = ("D(G)", "D(CR)", "D(Sb)")
    monotone = all(
        all(
            (not bits[chain[i]]) or bits[chain[i + 1]]
            for i in range(len(chain) - 1)
        )
        and ((not bits["Singleton"]) or bits["D(G)"])
        and ((not bits["Uniform"]) or bits["D(G)"])
        for bits in memberships.values()
    )
    witnesses = {
        "Singleton ⊊ D(G)": any(
            b["D(G)"] and not b["Singleton"] for b in memberships.values()
        ),
        "Uniform ⊊ D(G)": any(
            b["D(G)"] and not b["Uniform"] for b in memberships.values()
        ),
        "D(G) ⊊ D(CR)": any(
            b["D(CR)"] and not b["D(G)"] for b in memberships.values()
        ),
        "D(CR) ⊊ D(Sb)": any(
            b["D(Sb)"] and not b["D(CR)"] for b in memberships.values()
        ),
    }
    passed = monotone and all(witnesses.values())

    table = render_table(
        ["distribution", "Singleton", "Uniform", "D(G)", "D(CR)", "D(Sb)", "prod-gap", "local-gap"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"memberships": memberships, "witnesses": witnesses, "monotone": monotone},
        passed=passed,
        notes=[f"strict-inclusion witness {k}: {'found' if v else 'MISSING'}" for k, v in witnesses.items()],
    )
