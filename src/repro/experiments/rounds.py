"""E-RND — the round-complexity comparison motivating the paper.

Section 1's narrative: [7] costs Θ(n) rounds, [8] improves to Θ(log n),
[12] reaches O(1) — and the price of that efficiency gain is the
definitional weakening the paper dissects.  We measure the communication
rounds of every protocol as n grows, plus the CGMA parallel-dealing
ablation showing where CGMA's linearity comes from.
"""

from __future__ import annotations

import math
from typing import Optional

from ..analysis import render_table
from ..protocols import (
    CGMABroadcast,
    CGMAParallelDealing,
    ChorRabinBroadcast,
    GennaroBroadcast,
    SequentialBroadcast,
)
from .common import ExperimentConfig, ExperimentResult

EXPERIMENT_ID = "E-RND"
TITLE = "Round complexity: linear [7] vs logarithmic [8] vs constant [12]"

DEFAULT_SIZES = (4, 6, 8, 12, 16)


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    sizes = [n for n in DEFAULT_SIZES if config.scale >= 1.0 or n <= 8]
    k = min(config.security_bits, 16)  # round counts don't depend on k

    measured = {}
    rows = []
    for n in sizes:
        t = 1
        protocols = {
            "sequential": SequentialBroadcast(n, t),
            "cgma": CGMABroadcast(n, t, security_bits=k),
            "cgma-parallel": CGMAParallelDealing(n, t, security_bits=k),
            "chor-rabin": ChorRabinBroadcast(n, t, security_bits=k),
            "gennaro": GennaroBroadcast(n, t, security_bits=k),
        }
        row = [n]
        for name, protocol in protocols.items():
            execution = protocol.run([i % 2 for i in range(n)], seed=config.seed)
            rounds = execution.communication_rounds
            measured.setdefault(name, {})[n] = rounds
            row.append(rounds)
        rows.append(row)

    # Shape checks: who grows how.
    n_lo, n_hi = sizes[0], sizes[-1]
    ratio = n_hi / n_lo
    linear_sequential = measured["sequential"][n_hi] == n_hi
    linear_cgma = (
        measured["cgma"][n_hi] / measured["cgma"][n_lo] >= 0.8 * ratio
    )
    log_chor_rabin = (
        measured["chor-rabin"][n_hi]
        == 1 + 3 * math.ceil(math.log2(n_hi)) + 2
    )
    sublinear_chor_rabin = measured["chor-rabin"][n_hi] < measured["cgma"][n_hi] / 2
    constant_gennaro = len(set(measured["gennaro"].values())) == 1
    constant_ablation = len(set(measured["cgma-parallel"].values())) == 1
    passed = (
        linear_sequential
        and linear_cgma
        and log_chor_rabin
        and sublinear_chor_rabin
        and constant_gennaro
        and constant_ablation
    )

    table = render_table(
        ["n", "sequential", "cgma", "cgma-parallel", "chor-rabin", "gennaro"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={"rounds": measured},
        passed=passed,
        notes=[
            "cgma grows linearly (3n+1), chor-rabin logarithmically (3·ceil(log2 n)+3),",
            "gennaro is constant (2); the cgma-parallel ablation shows the linear",
            "round cost comes from sequential dealing, not from VSS itself",
        ],
    )
