"""E-L54 — Lemma 5.4: no protocol is G-independent outside Ψ_L,n.

G-Independence conditions corrupted announced bits on honest announced
bits; if the *inputs* are correlated across the corrupted/honest split,
correctness forces the announced values to inherit the correlation even
when the corrupted parties behave perfectly honestly.

We run each protocol with a passive adversary (corrupted parties follow
the protocol!) under non-locally-independent distributions; every cell
must come out VIOLATED.  As a control, the same measurement under the
uniform distribution must come out consistent.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import render_table
from ..core import g_report
from ..distributions import all_equal, near_product_mixture, uniform
from ..distributions.analytic import g_achievability_floor
from .common import (
    ExperimentConfig,
    ExperimentResult,
    decision_mark,
    passive_factory,
    stable_salt,
    standard_protocols,
)

EXPERIMENT_ID = "E-L54"
TITLE = "Lemma 5.4 — G impossibility outside Psi_L"


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    protocols = standard_protocols(config)
    bad_distributions = [all_equal(config.n), near_product_mixture(config.n, delta=0.3)]
    control = uniform(config.n)
    samples = config.samples(800, floor=400)
    corrupted = [config.n]  # one passively corrupted party suffices

    floors = {
        d.name: g_achievability_floor(d, corrupted) for d in bad_distributions
    }
    rows = []
    violated_cells = []
    control_cells = []
    for name, protocol in protocols.items():
        factory = passive_factory(corrupted)
        for distribution in bad_distributions:
            report = g_report(
                protocol,
                distribution,
                factory,
                samples,
                config.rng(salt=stable_salt(name, distribution.name)),
                min_condition_count=max(10, samples // 40),
            )
            violated_cells.append(report)
            rows.append(
                [name, distribution.name, f"{report.gap:.3f}",
                 f"{floors[distribution.name]:.3f}", decision_mark(report), report.witness]
            )
        control_report = g_report(
            protocol,
            control,
            factory,
            samples,
            config.rng(salt=stable_salt(name)),
            min_condition_count=max(10, samples // 40),
        )
        control_cells.append(control_report)
        rows.append(
            [name, control.name + " (control)", f"{control_report.gap:.3f}",
             "0.000", decision_mark(control_report), ""]
        )

    passed = all(r.violated for r in violated_cells) and all(
        not r.violated for r in control_cells
    )
    table = render_table(
        ["protocol", "distribution", "G gap", "exact floor", "verdict", "witness"],
        rows,
        title=TITLE
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={
            "bad_gaps": [r.gap for r in violated_cells],
            "control_gaps": [r.gap for r in control_cells],
            "floors": floors,
        },
        passed=passed,
        notes=[
            "the corrupted party is *passive* — its announced value is its"
            " honest input, and the input correlation alone breaks Definition 4.4"
        ],
    )
