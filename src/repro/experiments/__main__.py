"""CLI driver: ``python -m repro.experiments [EXPERIMENT_ID ...] [options]``.

* default — run the named experiments (all of them if none given), print
  each rendered table, and exit nonzero if any reports MISMATCH;
* ``--list`` — print the registry (id + title) and exit;
* ``--json DIR`` — additionally dump each result (table, data, notes, and
  the measured cost metrics) as ``DIR/<EXPERIMENT_ID>.json``;
* ``--jobs N`` — shard the run across N worker processes (default: all
  CPUs; results are bit-identical at every worker count, so ``--jobs`` is
  purely a wall-clock knob — see :mod:`repro.parallel`);
* ``--faults PLAN.json`` — load a :class:`repro.faults.FaultPlan` and
  sweep it through E-FAULT alongside the standard plan library (the
  custom plan is measured but never fails the run);
* ``--profile`` — run the whole batch under :mod:`cProfile` (forces
  ``--jobs 1``: the profiler sees only the coordinator process) and write
  the top functions by cumulative time as ``PROFILE.txt`` next to the
  ``--json`` artifacts (or in the working directory).

``python -m repro experiments run ...`` reaches the same driver through
the :mod:`repro.__main__` dispatcher.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..parallel import default_jobs
from .common import ExperimentConfig
from .registry import REGISTRY, TITLES, run_many


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(REGISTRY),
        help=f"experiment ids (default: all of {sorted(REGISTRY)})",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list experiment ids and titles, then exit",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="write each result (including metrics) as DIR/<EXPERIMENT_ID>.json",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: CPU count; 1 = serial; "
        "results are identical at any value)",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN.json",
        default=None,
        help="a fault-plan JSON file (see repro.faults.FaultPlan) swept by"
        " E-FAULT alongside the standard plan library; measured, never gated",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run with cProfile (forces --jobs 1) and write the"
        " top functions by cumulative time to PROFILE.txt next to the --json"
        " artifacts (or the working directory)",
    )
    parser.add_argument(
        "--runtime",
        choices=["lockstep", "event"],
        default=None,
        help="network runtime driving every protocol execution (default:"
        " lockstep, or the REPRO_RUNTIME environment variable); 'event' uses"
        " the deterministic discrete-event clock",
    )
    parser.add_argument(
        "--delay-model",
        metavar="SPEC",
        default=None,
        help="event-runtime delay model, e.g. 'constant:1', 'uniform:0.5,1.5',"
        " 'exponential:1.0', or 'rush:uniform:0.5,1.5' (default:"
        " rush:constant:1, which reproduces lockstep exactly)",
    )
    parser.add_argument(
        "--omission",
        metavar="SPEC",
        default=None,
        help="event-runtime omission policy, e.g. 'drop-all:1',"
        " 'drop-edges:1-2,3-4', or 'random:0.05'",
    )
    parser.add_argument(
        "--crypto-backend",
        choices=["auto", "python", "gmpy2"],
        default=None,
        help="big-int arithmetic backend (default: the REPRO_CRYPTO_BACKEND"
        " environment variable, else 'auto' — gmpy2 when importable, python"
        " otherwise; backends are bit-identical, so this is purely a"
        " wall-clock knob)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="sample-size scale factor")
    parser.add_argument("--n", type=int, default=5, help="number of parties")
    parser.add_argument("--t", type=int, default=2, help="corruption bound")
    parser.add_argument("--seed", type=int, default=20050717)
    args = parser.parse_args(argv)

    if args.list_experiments:
        width = max(len(experiment_id) for experiment_id in REGISTRY)
        for experiment_id in REGISTRY:
            print(f"{experiment_id.ljust(width)}  {TITLES[experiment_id]}")
        return 0

    unknown = [e for e in args.experiments if e not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment id(s): {', '.join(unknown)} "
            f"(see --list for the registry)"
        )

    if args.json is not None:
        try:
            os.makedirs(args.json, exist_ok=True)
        except (OSError, FileExistsError) as exc:
            parser.error(f"--json target {args.json!r} is not a usable directory: {exc}")

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")

    fault_plan = None
    if args.faults is not None:
        # Schema-validated load: a malformed plan fails here with a
        # field-by-field diagnosis instead of a stack trace from deep
        # inside the fault injector.
        from ..errors import ScenarioError
        from ..scenario.schema import load_fault_plan

        try:
            fault_plan = load_fault_plan(args.faults)
        except ScenarioError as exc:
            parser.error(f"--faults {args.faults!r}: {exc}")

    from ..errors import InvalidParameterError
    from ..net.runtime import ENV_DELAY_MODEL, ENV_OMISSION, ENV_RUNTIME, resolve_runtime

    try:
        runtime_config = resolve_runtime(args.runtime, args.delay_model, args.omission)
    except InvalidParameterError as exc:
        parser.error(str(exc))
    # Apply the choice through the environment: run_protocol consults it at
    # every call site, and the parallel engine ships it to pool shards.
    if args.runtime is not None:
        os.environ[ENV_RUNTIME] = args.runtime
    if args.delay_model is not None:
        os.environ[ENV_DELAY_MODEL] = args.delay_model
    if args.omission is not None:
        os.environ[ENV_OMISSION] = args.omission

    if args.crypto_backend is not None:
        # Same seam as --runtime: write the environment variable so the
        # kernels resolve it lazily and the parallel engine ships it to
        # pool shards, then fail fast if the choice is unavailable.
        from ..crypto import backend as crypto_backend

        os.environ[crypto_backend.ENV_BACKEND] = args.crypto_backend
        try:
            crypto_backend.configure(None)
        except InvalidParameterError as exc:
            parser.error(str(exc))

    config = ExperimentConfig(
        n=args.n,
        t=args.t,
        seed=args.seed,
        scale=args.scale,
        fault_plan=fault_plan,
        runtime=runtime_config.kind,
    )
    experiment_ids = args.experiments or list(REGISTRY)
    if args.profile:
        import cProfile
        import io
        import pstats

        if jobs != 1:
            print("--profile forces --jobs 1 (cProfile sees one process)")
            jobs = 1
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            results = run_many(experiment_ids, config, jobs=jobs)
        finally:
            profiler.disable()
            stream = io.StringIO()
            stats = pstats.Stats(profiler, stream=stream)
            stats.strip_dirs().sort_stats("cumulative").print_stats(40)
            out_dir = args.json or os.curdir
            profile_path = os.path.join(out_dir, "PROFILE.txt")
            with open(profile_path, "w", encoding="utf-8") as handle:
                handle.write(stream.getvalue())
            # The same top-40 as structured records, for machine consumption
            # (dashboards, regression tooling) — mirrors the text report.
            records = []
            for func, (cc, nc, tottime, cumtime, _callers) in sorted(
                stats.stats.items(), key=lambda item: item[1][3], reverse=True
            )[:40]:
                filename, line, name = func
                records.append(
                    {
                        "file": filename,
                        "line": line,
                        "function": name,
                        "ncalls": nc,
                        "primitive_calls": cc,
                        "tottime": round(tottime, 6),
                        "cumtime": round(cumtime, 6),
                    }
                )
            profile_json_path = os.path.join(out_dir, "PROFILE.json")
            with open(profile_json_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {"sort": "cumulative", "top": 40, "functions": records},
                    handle,
                    indent=2,
                )
                handle.write("\n")
            print(f"profile written to {profile_path} and {profile_json_path}")
    else:
        results = run_many(experiment_ids, config, jobs=jobs)

    failures = 0
    for result in results:
        print(result.render())
        elapsed = result.metrics.get("wall_seconds", 0.0)
        print(f"  ({elapsed:.1f}s)\n")
        if args.json is not None:
            path = os.path.join(args.json, f"{result.experiment_id}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(result.to_json_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        if not result.passed:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
