"""CLI driver: ``python -m repro.experiments [EXPERIMENT_ID ...] [--scale S]``."""

from __future__ import annotations

import argparse
import sys
import time

from .common import ExperimentConfig
from .registry import REGISTRY, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(REGISTRY),
        help=f"experiment ids (default: all of {sorted(REGISTRY)})",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="sample-size scale factor")
    parser.add_argument("--n", type=int, default=5, help="number of parties")
    parser.add_argument("--t", type=int, default=2, help="corruption bound")
    parser.add_argument("--seed", type=int, default=20050717)
    args = parser.parse_args(argv)

    config = ExperimentConfig(n=args.n, t=args.t, seed=args.seed, scale=args.scale)
    failures = 0
    for experiment_id in args.experiments or list(REGISTRY):
        start = time.time()
        result = run_experiment(experiment_id, config)
        elapsed = time.time() - start
        print(result.render())
        print(f"  ({elapsed:.1f}s)\n")
        if not result.passed:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
