"""E-C66 — Claim 6.6: under A*, the announced bits always XOR to zero.

The deterministic invariant behind Lemma 6.4: for *any* input vector,
the execution of Π_G under the two-party auxiliary-bit adversary A*
yields announced values with ⊕_i W_i = 0 — on every single run, for both
Θ backends.  We also check the honest-coordinate pass-through and that
the rigged coordinates really are random (both values occur).

Every (backend, seed, input-vector) execution is keyed by an explicit
seed, so the trial grid shards freely across
:class:`repro.parallel.ExperimentEngine` workers: per-shard aggregates
(run counts, XOR hits, rigged-value sets, pass-through flags) fold with
sums / unions / conjunctions, which are partition-independent.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from ..analysis import render_table
from ..parallel import SERIAL_ENGINE, ExperimentEngine
from ..protocols import PiGBroadcast
from .common import ExperimentConfig, ExperimentResult, TrialPlan, xor_factory

EXPERIMENT_ID = "E-C66"
TITLE = "Claim 6.6 — the XOR invariant of A* against Pi_G"

SUPPORTS_ENGINE = True

#: Plan salts are only namespace markers here (the trials consume explicit
#: seeds, not salted RNG streams), but registering them keeps the shard
#: bookkeeping uniform across the shardable experiments.
_PLAN_SALTS = {"ideal": 0x66A, "bgw": 0x66B}


def _xor_shard(n: int, t: int, backend: str, seeds: Tuple[int, ...]):
    """Run the A* trial grid for one batch of seeds on one Θ backend."""
    protocol = PiGBroadcast(n, t, backend=backend)
    attacker_factory = xor_factory(protocol)
    runs = 0
    zero_count = 0
    rigged_values = set()
    honest_ok = True
    for seed in seeds:
        for inputs in itertools.islice(itertools.product((0, 1), repeat=n), 4):
            announced = protocol.announced(
                list(inputs), adversary=attacker_factory(), seed=seed
            )
            xor = 0
            for w in announced:
                xor ^= w
            runs += 1
            if xor == 0:
                zero_count += 1
            rigged_values.add(announced[0])
            for j in range(3, n + 1):  # parties 3..n are honest under A*
                honest_ok &= announced[j - 1] == inputs[j - 1]
    return {
        "runs": runs,
        "zero_count": zero_count,
        "rigged_values": frozenset(rigged_values),
        "honest_ok": honest_ok,
    }


def run(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentResult:
    config = ExperimentConfig() if config is None else config
    engine = SERIAL_ENGINE if engine is None else engine
    n, t = config.n, config.t
    seed_count = config.samples(40, floor=4)

    rows = []
    all_zero = True
    rigged_values = set()
    honest_ok = True
    runs = 0
    for backend in ("ideal", "bgw"):
        plan = TrialPlan(salt=_PLAN_SALTS[backend], total=seed_count, name=backend)
        tasks = [
            (n, t, backend, tuple(shard.trials())) for shard in plan.shards()
        ]
        shards = engine.map(_xor_shard, tasks)
        backend_runs = sum(shard["runs"] for shard in shards)
        zero_count = sum(shard["zero_count"] for shard in shards)
        for shard in shards:
            rigged_values |= shard["rigged_values"]
            honest_ok &= shard["honest_ok"]
        all_zero &= zero_count == backend_runs
        runs += backend_runs
        rows.append(
            [backend, backend_runs, zero_count, f"{zero_count / backend_runs:.3f}"]
        )

    randomness_ok = rigged_values == {0, 1}
    passed = all_zero and honest_ok and randomness_ok
    table = render_table(
        ["theta backend", "runs", "xor == 0", "rate"], rows, title=TITLE
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={
            "runs": runs,
            "all_zero": all_zero,
            "honest_pass_through": honest_ok,
            "rigged_values_seen": sorted(rigged_values),
        },
        passed=passed,
        notes=["the invariant holds on every execution, not just on average"],
    )
