"""E-C66 — Claim 6.6: under A*, the announced bits always XOR to zero.

The deterministic invariant behind Lemma 6.4: for *any* input vector,
the execution of Π_G under the two-party auxiliary-bit adversary A*
yields announced values with ⊕_i W_i = 0 — on every single run, for both
Θ backends.  We also check the honest-coordinate pass-through and that
the rigged coordinates really are random (both values occur).
"""

from __future__ import annotations

import itertools

from ..analysis import render_table
from ..protocols import PiGBroadcast
from .common import ExperimentConfig, ExperimentResult, xor_factory

EXPERIMENT_ID = "E-C66"
TITLE = "Claim 6.6 — the XOR invariant of A* against Pi_G"


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    n, t = config.n, config.t
    seeds = range(config.samples(40, floor=4))

    rows = []
    all_zero = True
    rigged_values = set()
    honest_ok = True
    runs = 0
    for backend in ("ideal", "bgw"):
        protocol = PiGBroadcast(n, t, backend=backend)
        attacker_factory = xor_factory(protocol)
        zero_count = 0
        backend_runs = 0
        for seed in seeds:
            for inputs in itertools.islice(itertools.product((0, 1), repeat=n), 4):
                announced = protocol.announced(
                    list(inputs), adversary=attacker_factory(), seed=seed
                )
                xor = 0
                for w in announced:
                    xor ^= w
                backend_runs += 1
                runs += 1
                if xor == 0:
                    zero_count += 1
                else:
                    all_zero = False
                rigged_values.add(announced[0])
                for j in range(3, n + 1):  # parties 3..n are honest under A*
                    honest_ok &= announced[j - 1] == inputs[j - 1]
        rows.append(
            [backend, backend_runs, zero_count, f"{zero_count / backend_runs:.3f}"]
        )

    randomness_ok = rigged_values == {0, 1}
    passed = all_zero and honest_ok and randomness_ok
    table = render_table(
        ["theta backend", "runs", "xor == 0", "rate"], rows, title=TITLE
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table=table,
        data={
            "runs": runs,
            "all_zero": all_zero,
            "honest_pass_through": honest_ok,
            "rigged_values_seen": sorted(rigged_values),
        },
        passed=passed,
        notes=["the invariant holds on every execution, not just on average"],
    )
