"""simbcast — a reproduction of *Simultaneous Broadcast Revisited* (PODC 2005).

The package implements, from scratch:

* a partially synchronous n-party network simulator with a rushing,
  statically corrupting adversary (:mod:`repro.net`);
* the cryptographic toolkit the protocols rely on (:mod:`repro.crypto`);
* Byzantine broadcast substrates (:mod:`repro.broadcast`);
* an honest-majority MPC substrate (:mod:`repro.mpc`);
* the paper's protocol zoo — sequential baseline, CGMA [7], Chor–Rabin [8],
  Gennaro [12], the flawed Π_G of Lemma 6.4, and the trusted-party ideal
  (:mod:`repro.protocols`);
* input distribution ensembles and the achievability classes of Section 5
  (:mod:`repro.distributions`);
* statistical testers for the independence definitions Sb / CR / G / G* / G**
  and the implication/separation engine behind Figure 1 (:mod:`repro.core`);
* the experiment harness regenerating every claim, lemma, proposition and
  Figure 1 (:mod:`repro.experiments`).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the measured
reproduction results.
"""

__version__ = "1.0.0"
