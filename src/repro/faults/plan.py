"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a pure description of a fault regime — it owns no
runtime state and is cheap to serialize, hash, and ship to worker
processes.  Two fault families exist:

* **message faults** (:class:`FaultRule`) — drop, delay, duplicate, or
  corrupt honest messages matched by round, sender, receiver, and tag;
* **party faults** (:class:`CrashFault`) — crash (send-omission) a party
  from ``at_round`` until ``recover_at`` (exclusive; ``None`` = forever).

Faults model *benign* degradation of the Section 3.1 network, distinct
from the Byzantine :class:`repro.net.adversary.Adversary`: crash faults
are send omissions (the party's program keeps running and receiving, it
just stops being heard), and message faults strike honest traffic before
the rushing adversary observes it.

Broadcast-channel semantics: a rule with an explicit ``receivers`` list
never matches a broadcast message.  The model's broadcast channel delivers
to everyone or no one, so broadcast faults are all-or-nothing — dropping,
delaying, or corrupting a broadcast affects every recipient identically,
which keeps honest views consistent by construction.

Determinism: probabilistic rules draw from the
:class:`~repro.faults.injector.FaultInjector`'s RNG, which is seeded from
``plan.seed`` mixed with a per-execution salt (see
:meth:`FaultPlan.injector_seed`).  A fixed ``(plan, salt)`` pair therefore
yields a bit-identical fault pattern on every run — the property the
replay tests and the ``--jobs`` equivalence gate assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..errors import InvalidParameterError

#: The supported message-fault kinds.
KINDS = ("drop", "delay", "duplicate", "corrupt")

#: The supported payload-corruption modes.
CORRUPT_MODES = ("garbage", "flip")

#: Multiplier mixing the plan seed with a per-execution salt (mirrors
#: :meth:`repro.experiments.common.ExperimentConfig.rng`).
_SEED_MIX = 1_000_003


def _int_tuple(values) -> Optional[Tuple[int, ...]]:
    if values is None:
        return None
    return tuple(int(v) for v in values)


def _str_tuple(values) -> Optional[Tuple[str, ...]]:
    if values is None:
        return None
    return tuple(str(v) for v in values)


@dataclass(frozen=True)
class FaultRule:
    """One declarative message-fault rule.

    ``rounds`` / ``senders`` / ``receivers`` / ``tags`` are match filters;
    ``None`` means "any".  ``probability`` gates each structural match with
    an independent draw from the injector's seeded RNG (1.0 = always).
    """

    kind: str
    rounds: Optional[Tuple[int, ...]] = None
    senders: Optional[Tuple[int, ...]] = None
    receivers: Optional[Tuple[int, ...]] = None
    tags: Optional[Tuple[str, ...]] = None
    probability: float = 1.0
    delay: int = 1
    copies: int = 1
    mode: str = "garbage"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidParameterError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.kind == "delay" and self.delay < 1:
            raise InvalidParameterError("delay must be >= 1 round")
        if self.kind == "duplicate" and self.copies < 1:
            raise InvalidParameterError("duplicate needs copies >= 1")
        if self.kind == "corrupt" and self.mode not in CORRUPT_MODES:
            raise InvalidParameterError(
                f"unknown corrupt mode {self.mode!r}; choose from {CORRUPT_MODES}"
            )
        # Normalize filter containers to tuples so plans hash and pickle
        # identically however they were constructed.
        object.__setattr__(self, "rounds", _int_tuple(self.rounds))
        object.__setattr__(self, "senders", _int_tuple(self.senders))
        object.__setattr__(self, "receivers", _int_tuple(self.receivers))
        object.__setattr__(self, "tags", _str_tuple(self.tags))
        # Reset knobs the kind never reads, so two semantically identical
        # rules compare (and serialize) identically.
        if self.kind != "delay":
            object.__setattr__(self, "delay", 1)
        if self.kind != "duplicate":
            object.__setattr__(self, "copies", 1)
        if self.kind != "corrupt":
            object.__setattr__(self, "mode", "garbage")

    def matches(self, round_number: int, message) -> bool:
        """Structural match (the probability gate is the injector's job)."""
        if self.rounds is not None and round_number not in self.rounds:
            return False
        if self.senders is not None and message.sender not in self.senders:
            return False
        if self.receivers is not None:
            # Broadcast faults are all-or-nothing: targeting individual
            # receivers of a broadcast would desynchronise honest views.
            if message.is_broadcast:
                return False
            if message.recipient not in self.receivers:
                return False
        if self.tags is not None and message.tag not in self.tags:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        for key in ("rounds", "senders", "receivers", "tags"):
            value = getattr(self, key)
            if value is not None:
                data[key] = list(value)
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.kind == "delay":
            data["delay"] = self.delay
        if self.kind == "duplicate":
            data["copies"] = self.copies
        if self.kind == "corrupt":
            data["mode"] = self.mode
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        return cls(
            kind=data["kind"],
            rounds=data.get("rounds"),
            senders=data.get("senders"),
            receivers=data.get("receivers"),
            tags=data.get("tags"),
            probability=float(data.get("probability", 1.0)),
            delay=int(data.get("delay", 1)),
            copies=int(data.get("copies", 1)),
            mode=data.get("mode", "garbage"),
        )


@dataclass(frozen=True)
class CrashFault:
    """Send-omission crash: the party goes silent in ``[at_round, recover_at)``.

    ``recover_at=None`` means the party never recovers.  The party's
    program keeps running and receiving (so it still produces an output);
    only its outbound messages are suppressed — the standard benign-crash
    approximation in a synchronous round model.
    """

    party: int
    at_round: int = 1
    recover_at: Optional[int] = None

    def __post_init__(self):
        if self.party < 1:
            raise InvalidParameterError("crash fault party ids are 1-based")
        if self.at_round < 1:
            raise InvalidParameterError("crash at_round must be >= 1")
        if self.recover_at is not None and self.recover_at <= self.at_round:
            raise InvalidParameterError("recover_at must be after at_round")

    def active(self, round_number: int) -> bool:
        if round_number < self.at_round:
            return False
        return self.recover_at is None or round_number < self.recover_at

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"party": self.party, "at_round": self.at_round}
        if self.recover_at is not None:
            data["recover_at"] = self.recover_at
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CrashFault":
        return cls(
            party=int(data["party"]),
            at_round=int(data.get("at_round", 1)),
            recover_at=data.get("recover_at"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seedable fault regime: message rules plus crash faults."""

    rules: Tuple[FaultRule, ...] = ()
    crashes: Tuple[CrashFault, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    def is_empty(self) -> bool:
        return not self.rules and not self.crashes

    @property
    def crashed_parties(self) -> Tuple[int, ...]:
        return tuple(sorted({crash.party for crash in self.crashes}))

    def injector_seed(self, salt: int = 0) -> int:
        """The effective RNG seed for one execution's injector.

        Salting mirrors the per-trial RNG streams of
        :class:`repro.experiments.common.TrialPlan`: every trial passes its
        own salt, so a sharded parallel sweep injects exactly the faults a
        serial sweep would, shard partition notwithstanding.
        """
        return self.seed * _SEED_MIX + salt

    def with_name(self, name: str) -> "FaultPlan":
        return replace(self, name=name)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.name:
            data["name"] = self.name
        if self.seed:
            data["seed"] = self.seed
        if self.rules:
            data["rules"] = [rule.to_dict() for rule in self.rules]
        if self.crashes:
            data["crashes"] = [crash.to_dict() for crash in self.crashes]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", ())),
            crashes=tuple(CrashFault.from_dict(c) for c in data.get("crashes", ())),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.loads(handle.read())
