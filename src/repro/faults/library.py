"""The standard fault-plan library used by E-FAULT and the conformance suite.

Each plan is deliberately *channel-consistent*: broadcast faults are
all-or-nothing (see :mod:`repro.faults.plan`), so plans here degrade the
network without silently violating the paper's broadcast-channel model.
Party indices assume the experiments' default ``n = 5``; plans remain
valid at any ``n >= 3``.
"""

from __future__ import annotations

from typing import Dict

from .plan import CrashFault, FaultPlan, FaultRule

#: Empty plan: exercises the injection machinery with zero faults (the
#: benchmark baseline for the <= 5% overhead budget).
BASELINE = FaultPlan(name="baseline")

#: One mid-protocol send-omission crash with recovery.
CRASH_ONE = FaultPlan(
    name="crash-1",
    crashes=(CrashFault(party=2, at_round=2, recover_at=4),),
)

#: Light random message loss (10% of all traffic, seeded).
DROP_LIGHT = FaultPlan(
    name="drop-light",
    seed=0xD201,
    rules=(FaultRule(kind="drop", probability=0.1),),
)

#: Light random one-round delays (10% of all traffic, seeded).
DELAY_LIGHT = FaultPlan(
    name="delay-light",
    seed=0xDE11,
    rules=(FaultRule(kind="delay", delay=1, probability=0.1),),
)

#: Light random payload corruption (10% of all traffic, seeded).
CORRUPT_LIGHT = FaultPlan(
    name="corrupt-light",
    seed=0xC021,
    rules=(FaultRule(kind="corrupt", mode="garbage", probability=0.1),),
)

#: Duplicate storms: 20% of messages delivered twice.
DUPLICATE_LIGHT = FaultPlan(
    name="duplicate-light",
    seed=0xD0B1,
    rules=(FaultRule(kind="duplicate", copies=1, probability=0.2),),
)

#: Everything at once: a crash plus low-rate drop and delay noise.
MIXED = FaultPlan(
    name="mixed",
    seed=0x3D1,
    crashes=(CrashFault(party=3, at_round=2, recover_at=3),),
    rules=(
        FaultRule(kind="drop", probability=0.05),
        FaultRule(kind="delay", delay=1, probability=0.05),
    ),
)

STANDARD_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        BASELINE,
        CRASH_ONE,
        DROP_LIGHT,
        DELAY_LIGHT,
        CORRUPT_LIGHT,
        DUPLICATE_LIGHT,
        MIXED,
    )
}


def get_plan(name: str) -> FaultPlan:
    """Look up a standard plan by name."""
    try:
        return STANDARD_PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault plan {name!r}; known: {sorted(STANDARD_PLANS)}"
        ) from None
