"""The runtime half of fault injection: applying a plan to live traffic.

A :class:`FaultInjector` is created per execution (one seeded RNG, one
delayed-message queue, one fault log) and hooked into the
:class:`repro.net.scheduler.Scheduler`, which calls :meth:`apply` on each
round's honest traffic *before* the rushing adversary sees it.  Faults
therefore degrade what the adversary can observe exactly as they degrade
what honest parties receive — a delayed message leaves the rushed view
until its release round, a dropped one never appears.

Every injected fault is recorded three ways:

* a :class:`FaultRecord` appended to :attr:`records` (and, via the
  scheduler, to ``Execution.faults`` — the replayable transcript);
* a ``faults.*`` metrics counter (``faults.dropped``, ``faults.delayed``,
  ``faults.duplicated``, ``faults.corrupted``, ``faults.crashed``, plus
  ``faults.delayed.released`` on delivery);
* a ``fault.inject`` tracer event when tracing is enabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Sequence

from ..net.message import Message
from ..obs import runtime as _obs
from .plan import FaultPlan, FaultRule


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """One injected fault, as recorded in the execution transcript."""

    round: int
    kind: str
    sender: int
    recipient: int
    tag: str
    detail: str = ""


def corrupt_payload(payload: Any, rng: random.Random, mode: str = "garbage") -> Any:
    """Deterministically mangle a payload.

    ``flip`` inverts bit payloads (falling back to garbage for anything
    else); ``garbage`` replaces the payload with a tagged junk tuple that
    no protocol parser accepts — downstream validation then announces the
    paper's default value, exactly as for a malformed adversarial message.
    """
    if mode == "flip" and payload in (0, 1, True, False):
        return 1 - int(payload)
    return ("faults:corrupted", rng.getrandbits(32))


#: Metrics counter per fault kind (issue-specified names).
_COUNTERS = {
    "drop": "faults.dropped",
    "delay": "faults.delayed",
    "duplicate": "faults.duplicated",
    "corrupt": "faults.corrupted",
    "crash": "faults.crashed",
}


class FaultInjector:
    """Applies one :class:`FaultPlan` to one execution's honest traffic."""

    def __init__(self, plan: FaultPlan, salt: int = 0):
        self.plan = plan
        self.salt = salt
        self.rng = random.Random(plan.injector_seed(salt))
        self.records: List[FaultRecord] = []
        self._delayed: Dict[int, List[Message]] = {}

    # -- bookkeeping -------------------------------------------------------------

    def _record(self, round_number: int, kind: str, message: Message, detail: str = ""):
        record = FaultRecord(
            round=round_number,
            kind=kind,
            sender=message.sender,
            recipient=message.recipient,
            tag=message.tag,
            detail=detail,
        )
        self.records.append(record)
        if _obs.flightrec is not None:
            _obs.flightrec.record_fault(record)
        metrics = _obs.metrics
        if metrics is not None:
            metrics.inc("faults.injected")
            metrics.inc(_COUNTERS[kind])
        tracer = _obs.tracer
        if tracer.enabled:
            tracer.event(
                "fault.inject",
                kind=kind,
                round=round_number,
                sender=message.sender,
                recipient=message.recipient,
                tag=message.tag,
                detail=detail,
            )

    def _fires(self, rule: FaultRule) -> bool:
        if rule.probability >= 1.0:
            return True
        return self.rng.random() < rule.probability

    @property
    def undelivered(self) -> int:
        """Delayed messages still queued (the run ended before release)."""
        return sum(len(batch) for batch in self._delayed.values())

    # -- the hook ----------------------------------------------------------------

    def apply(self, round_number: int, traffic: Sequence[Message]) -> List[Message]:
        """Transform one round's honest traffic according to the plan.

        Returns the messages that actually hit the wire this round: the
        survivors of drop/crash filtering, corrupted payload replacements,
        injected duplicates, and previously delayed messages now due.
        """
        plan = self.plan
        if not plan.rules and not plan.crashes and not self._delayed:
            return list(traffic)

        released = self._delayed.pop(round_number, [])
        if released:
            metrics = _obs.metrics
            if metrics is not None:
                metrics.inc("faults.delayed.released", len(released))
        out: List[Message] = list(released)

        for message in traffic:
            crashed = any(
                crash.party == message.sender and crash.active(round_number)
                for crash in plan.crashes
            )
            if crashed:
                self._record(round_number, "crash", message)
                continue
            current = message
            fate = "deliver"
            duplicates = 0
            for rule in plan.rules:
                if not rule.matches(round_number, current) or not self._fires(rule):
                    continue
                if rule.kind == "drop":
                    fate = "drop"
                    self._record(round_number, "drop", current)
                    break
                if rule.kind == "delay":
                    fate = "delay"
                    release = round_number + rule.delay
                    self._record(
                        round_number, "delay", current, detail=f"release={release}"
                    )
                    self._delayed.setdefault(release, []).append(current)
                    break
                if rule.kind == "corrupt":
                    current = replace(
                        current,
                        payload=corrupt_payload(current.payload, self.rng, rule.mode),
                    )
                    self._record(round_number, "corrupt", current, detail=rule.mode)
                elif rule.kind == "duplicate":
                    duplicates += rule.copies
                    self._record(
                        round_number, "duplicate", current, detail=f"copies={rule.copies}"
                    )
            if fate == "deliver":
                out.append(current)
                out.extend(current for _ in range(duplicates))
        return out
