"""Deterministic fault injection for the simulated network.

The paper's model (Section 3.1) is a clean synchronous network; this
package degrades it on purpose.  A :class:`FaultPlan` declares *what*
goes wrong — drop / delay / duplicate / corrupt rules keyed by round,
sender, receiver, and tag, plus crash-at-round party faults — and a
:class:`FaultInjector` applies the plan to each round's honest traffic
inside the scheduler, **before** the rushing adversary observes it.
Everything is seeded: a fixed ``(plan, salt)`` pair reproduces the exact
same fault pattern, which is what lets the conformance suite
(``tests/conformance/``) certify paper-grounded tolerance bounds and the
parallel engine keep ``--jobs N`` bit-identical to serial under faults.

Entry points:

* ``run_protocol(..., fault_plan=plan)`` — one faulted execution;
* :func:`with_faults` — wrap a protocol so every estimator in
  :mod:`repro.core` measures its faulted behaviour;
* :data:`STANDARD_PLANS` — the named plan library behind the E-FAULT
  sweep and ``--faults``.
"""

from .harness import FaultedProtocol, FaultyScheduler, with_faults
from .injector import FaultInjector, FaultRecord, corrupt_payload
from .library import STANDARD_PLANS, get_plan
from .plan import CORRUPT_MODES, KINDS, CrashFault, FaultPlan, FaultRule

__all__ = [
    "CORRUPT_MODES",
    "KINDS",
    "CrashFault",
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "FaultRecord",
    "FaultedProtocol",
    "FaultyScheduler",
    "STANDARD_PLANS",
    "corrupt_payload",
    "get_plan",
    "with_faults",
]
