"""Convenience harnesses: a fault-wired scheduler and a protocol proxy.

:class:`FaultyScheduler` is :class:`repro.net.scheduler.Scheduler` with a
:class:`~repro.faults.injector.FaultInjector` pre-wired — for callers that
drive the scheduler directly.  Most code should instead go through
:func:`repro.net.network.run_protocol` (``fault_plan=`` /
``fault_seed=``) or wrap a protocol with :func:`with_faults`, which
returns a proxy whose ``run`` / ``announced`` bind the plan; the proxy
satisfies the protocol API, so every estimator and sampler in
:mod:`repro.core` measures the faulted protocol unchanged.
"""

from __future__ import annotations

from typing import Any, Optional

from ..net.scheduler import Scheduler
from .injector import FaultInjector
from .plan import FaultPlan


class FaultyScheduler(Scheduler):
    """A scheduler executing one protocol run under a fault plan."""

    def __init__(self, *args, plan: FaultPlan, fault_salt: int = 0, **kwargs):
        kwargs.setdefault("fault_injector", FaultInjector(plan, salt=fault_salt))
        super().__init__(*args, **kwargs)


class FaultedProtocol:
    """A protocol proxy that binds a fault plan into every run.

    Delegates every attribute (``n``, ``t``, ``name``, ``setup``,
    ``program``, ...) to the wrapped protocol and overrides the
    ``run`` / ``announced`` conveniences to thread the plan (and an
    optional graceful-degradation ``timeout_rounds``) through
    :func:`repro.net.network.run_protocol`.
    """

    def __init__(
        self,
        protocol: Any,
        plan: FaultPlan,
        timeout_rounds: Optional[int] = None,
        fault_seed: Optional[int] = None,
    ):
        self.protocol = protocol
        self.plan = plan
        self.timeout_rounds = timeout_rounds
        # A pinned salt keeps the run RNG stream untouched (no salt draw),
        # so a faulted run is coin-for-coin comparable to a clean one.
        self.fault_seed = fault_seed

    def __getattr__(self, name: str) -> Any:
        return getattr(self.protocol, name)

    def run(self, inputs, adversary=None, rng=None, seed=None, fault_seed=None):
        return self.protocol.run(
            inputs,
            adversary=adversary,
            rng=rng,
            seed=seed,
            fault_plan=self.plan,
            fault_seed=self.fault_seed if fault_seed is None else fault_seed,
            timeout_rounds=self.timeout_rounds,
        )

    def announced(self, inputs, adversary=None, rng=None, seed=None, fault_seed=None):
        return self.protocol.announced(
            inputs,
            adversary=adversary,
            rng=rng,
            seed=seed,
            fault_plan=self.plan,
            fault_seed=self.fault_seed if fault_seed is None else fault_seed,
            timeout_rounds=self.timeout_rounds,
        )

    def __repr__(self) -> str:
        return f"FaultedProtocol({self.protocol!r}, plan={self.plan.name or 'anonymous'!r})"


def with_faults(
    protocol: Any,
    plan: FaultPlan,
    timeout_rounds: Optional[int] = None,
    fault_seed: Optional[int] = None,
) -> FaultedProtocol:
    """Bind ``plan`` to ``protocol`` for every subsequent run."""
    return FaultedProtocol(
        protocol, plan, timeout_rounds=timeout_rounds, fault_seed=fault_seed
    )
