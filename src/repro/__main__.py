"""Top-level CLI dispatcher: ``python -m repro <command> ...``.

Commands:

* ``experiments run [IDS ...] [options]`` — the experiments driver
  (:mod:`repro.experiments.__main__`); ``run`` is optional sugar, and
  ``experiments list`` is shorthand for ``--list``;
* ``obs {export,report,diff,baseline}`` — observability exports and the
  metrics-regression surface (:mod:`repro.obs.__main__`);
* ``analyze [--format text|json] [--baseline] [--update-baseline]`` — the
  determinism & protocol-discipline static analyzer
  (:mod:`repro.analysis.cli`), emitting ``results/ANALYSIS.json``;
* ``campaign [validate|exec|shrink] ...`` — the declarative-scenario
  campaign fuzzer with minimal-counterexample shrinking
  (:mod:`repro.scenario.cli`), emitting ``results/CAMPAIGN_zoo.json``
  and the violation corpus under ``results/corpus/``.

Installed as the ``repro`` console script, so
``repro experiments run E-FAULT --faults plan.json --jobs 4``,
``repro obs diff``, and ``repro analyze`` work wherever the package does.
"""

from __future__ import annotations

import sys
from typing import List, Optional

_USAGE = """usage: python -m repro <command> ...

commands:
  experiments [run|list] ...   run the paper's experiments (see
                               `python -m repro experiments --help`)
  obs {export,report,diff,baseline} ...
                               observability exports and the metrics
                               regression surface (see
                               `python -m repro obs --help`)
  analyze [paths ...] ...      determinism & protocol-discipline static
                               analyzer with CI ratchet gates (see
                               `python -m repro analyze --help`)
  campaign [validate|exec|shrink] ...
                               seeded scenario-fuzzing campaigns with
                               checkpoint/resume and minimal-repro
                               shrinking (see
                               `python -m repro campaign --help`)
"""


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "experiments":
        from .experiments.__main__ import main as experiments_main

        if rest and rest[0] == "run":
            rest = rest[1:]
        elif rest and rest[0] == "list":
            rest = ["--list"] + rest[1:]
        return experiments_main(rest)
    if command == "obs":
        from .obs.__main__ import main as obs_main

        return obs_main(rest)
    if command == "analyze":
        from .analysis.cli import main as analyze_main

        return analyze_main(rest)
    if command == "campaign":
        from .scenario.cli import main as campaign_main

        return campaign_main(rest)
    print(f"unknown command {command!r}\n\n{_USAGE}", end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
