"""Input distribution ensembles and the achievability classes of Section 5."""

from .base import Distribution, Ensemble
from .classes import (
    ALL,
    CHAIN,
    PHI,
    PSI_C,
    PSI_L,
    SINGLETON,
    UNIFORM,
    DistributionClass,
    claim_56_witnesses,
    representatives,
)
from .correlated import (
    all_equal,
    leaky_singleton,
    near_product_mixture,
    noisy_copy,
    parity,
)
from .standard import (
    all_singletons,
    bernoulli_ensemble,
    bernoulli_product,
    singleton,
    singleton_ensemble,
    uniform,
    uniform_ensemble,
)
from .testers import (
    empirical_distribution,
    estimate_local_independence_gap,
    estimate_product_gap,
    sampler_of,
)

__all__ = [
    "Distribution",
    "Ensemble",
    "DistributionClass",
    "ALL",
    "CHAIN",
    "PHI",
    "PSI_C",
    "PSI_L",
    "SINGLETON",
    "UNIFORM",
    "claim_56_witnesses",
    "representatives",
    "uniform",
    "singleton",
    "all_singletons",
    "bernoulli_product",
    "uniform_ensemble",
    "singleton_ensemble",
    "bernoulli_ensemble",
    "all_equal",
    "parity",
    "noisy_copy",
    "near_product_mixture",
    "leaky_singleton",
    "empirical_distribution",
    "estimate_product_gap",
    "estimate_local_independence_gap",
    "sampler_of",
]
