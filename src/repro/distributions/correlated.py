"""Correlated input distributions: the witnesses for Section 5's negative results.

* :func:`all_equal` — all parties hold the same uniform bit.  Far from any
  product distribution: the witness that D(CR) ≠ All (Lemma 5.2).
* :func:`parity` — uniform over even-parity vectors.  Every proper
  marginal is exactly uniform, yet conditioning on n-1 coordinates pins
  the last one: outside Ψ_L with maximal gap, while only moderately far
  from product — a witness used against G-Independence (Lemma 5.4).
* :func:`noisy_copy` — coordinate 2 is a noisy copy of coordinate 1.
* :func:`near_product_mixture` — (1−δ)·Uniform + δ·AllEqual: within δ of a
  product distribution (so inside Ψ_C for small δ) but with conditional
  gaps of order 1/2 (so outside Ψ_L): the witness that Ψ_L ⊊ Ψ_C in
  Claim 5.6.
* :func:`leaky_singleton` — the D′ construction from the proof of
  Lemma 6.2: coordinate ℓ is Bernoulli(p) and every other coordinate is
  pinned to a fixed string.
"""

from __future__ import annotations

import itertools
from typing import Dict, Sequence

from ..errors import DistributionError
from .base import Distribution, Vector
from .standard import uniform


def all_equal(n: int, bias: float = 0.5) -> Distribution:
    """P(0^n) = 1 - bias, P(1^n) = bias."""
    if not 0.0 < bias < 1.0:
        raise DistributionError("bias must be in (0, 1) for a non-trivial distribution")
    return Distribution(
        n,
        {tuple([0] * n): 1.0 - bias, tuple([1] * n): bias},
        name=f"all-equal-{n}",
    )


def parity(n: int, even: bool = True) -> Distribution:
    """Uniform over the 2^(n-1) vectors of even (or odd) parity."""
    if n < 2:
        raise DistributionError("parity needs n >= 2")
    target = 0 if even else 1
    table: Dict[Vector, float] = {}
    weight = 1.0 / (2 ** (n - 1))
    for vector in itertools.product((0, 1), repeat=n):
        if sum(vector) % 2 == target:
            table[vector] = weight
    return Distribution(n, table, name=f"parity-{n}-{'even' if even else 'odd'}")


def noisy_copy(n: int, flip_probability: float = 0.1) -> Distribution:
    """x_1 uniform; x_2 = x_1 ⊕ Bernoulli(flip); the rest uniform independent."""
    if n < 2:
        raise DistributionError("noisy_copy needs n >= 2")
    if not 0.0 <= flip_probability <= 1.0:
        raise DistributionError("flip probability must be in [0, 1]")
    table: Dict[Vector, float] = {}
    tail_weight = 1.0 / (2 ** (n - 2)) if n > 2 else 1.0
    for vector in itertools.product((0, 1), repeat=n):
        p1 = 0.5
        flip = vector[1] != vector[0]
        p2 = flip_probability if flip else (1.0 - flip_probability)
        probability = p1 * p2 * tail_weight
        if probability > 0:
            table[vector] = probability
    return Distribution(n, table, name=f"noisy-copy-{n}-{flip_probability}")


def near_product_mixture(n: int, delta: float = 0.1) -> Distribution:
    """(1 − δ)·Uniform + δ·AllEqual — inside Ψ_C, outside Ψ_L for δ ≫ 2^−n."""
    if not 0.0 < delta < 1.0:
        raise DistributionError("delta must be in (0, 1)")
    base = uniform(n)
    spike = all_equal(n)
    table: Dict[Vector, float] = {}
    for vector in itertools.product((0, 1), repeat=n):
        probability = (1.0 - delta) * base.probability(vector) + delta * spike.probability(vector)
        if probability > 0:
            table[vector] = probability
    return Distribution(n, table, name=f"near-product-{n}-{delta}")


def leaky_singleton(n: int, free_coordinate: int, rest: Sequence[int], p: float = 0.5) -> Distribution:
    """The D′ of Lemma 6.2's proof: one Bernoulli(p) coordinate, rest pinned.

    Args:
        n: total coordinates.
        free_coordinate: the 1-based index ℓ left random.
        rest: the n-1 pinned bits, in increasing coordinate order
            (skipping ``free_coordinate``).
        p: P(x_ℓ = 1).
    """
    if not 1 <= free_coordinate <= n:
        raise DistributionError("free coordinate out of range")
    rest = list(rest)
    if len(rest) != n - 1:
        raise DistributionError(f"expected {n - 1} pinned bits, got {len(rest)}")
    if not 0.0 < p < 1.0:
        raise DistributionError("p must be in (0, 1) for a non-trivial distribution")
    table: Dict[Vector, float] = {}
    for bit, weight in ((0, 1.0 - p), (1, p)):
        vector = []
        remaining = iter(rest)
        for c in range(1, n + 1):
            vector.append(bit if c == free_coordinate else next(remaining))
        table[tuple(vector)] = weight
    return Distribution(n, table, name=f"leaky-singleton-{n}@{free_coordinate}")
