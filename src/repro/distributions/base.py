"""Input distributions over {0,1}^n, with exact probability tables.

The paper's Section 5 quantifies over input distributions and their
conditionals; at the party counts the simulations use (n ≤ 10), every
distribution of interest fits in an explicit table, so marginals,
conditionals and the class-membership quantities of Definitions 4.3/4.4
are computed *exactly* rather than estimated.

Coordinates are 1-based (matching party indices).  An
:class:`Ensemble` maps the security parameter k to a distribution — most
ensembles here are constant in k, mirroring the paper's fixed-n setting.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import DistributionError

Vector = Tuple[int, ...]

_PROB_TOLERANCE = 1e-9


class Distribution:
    """An explicit distribution over n-bit vectors."""

    def __init__(self, n: int, probabilities: Mapping[Vector, float], name: str = ""):
        if n < 1:
            raise DistributionError("n must be positive")
        table: Dict[Vector, float] = {}
        total = 0.0
        for vector, probability in probabilities.items():
            vector = tuple(vector)
            if len(vector) != n or any(bit not in (0, 1) for bit in vector):
                raise DistributionError(f"bad support vector {vector} for n={n}")
            if probability < -_PROB_TOLERANCE:
                raise DistributionError("negative probability")
            if probability <= 0:
                continue
            table[vector] = table.get(vector, 0.0) + float(probability)
            total += probability
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(f"probabilities sum to {total}, not 1")
        # Renormalize exactly so downstream arithmetic is stable.
        self.n = n
        self.probs: Dict[Vector, float] = {v: p / total for v, p in table.items()}
        self.name = name or f"distribution-{n}"
        self._cumulative: Optional[List[Tuple[float, Vector]]] = None

    # -- sampling and point mass ------------------------------------------------------

    def sample(self, rng: random.Random) -> Vector:
        if self._cumulative is None:
            acc = 0.0
            cumulative = []
            for vector in sorted(self.probs):
                acc += self.probs[vector]
                cumulative.append((acc, vector))
            self._cumulative = cumulative
        point = rng.random()
        for threshold, vector in self._cumulative:
            if point <= threshold:
                return vector
        return self._cumulative[-1][1]

    def probability(self, vector: Sequence[int]) -> float:
        return self.probs.get(tuple(vector), 0.0)

    def support(self) -> List[Vector]:
        return sorted(self.probs)

    # -- marginals, conditionals, joins -----------------------------------------------

    def marginal(self, coordinates: Sequence[int]) -> "Distribution":
        """The induced distribution D_B on the (1-based) ``coordinates``."""
        coords = tuple(coordinates)
        if any(not 1 <= c <= self.n for c in coords):
            raise DistributionError(f"coordinates {coords} out of range")
        table: Dict[Vector, float] = {}
        for vector, probability in self.probs.items():
            projected = tuple(vector[c - 1] for c in coords)
            table[projected] = table.get(projected, 0.0) + probability
        return Distribution(len(coords), table, name=f"{self.name}|{coords}")

    def conditional(self, given: Mapping[int, int]) -> "Distribution":
        """D conditioned on the event {x_c = b for (c, b) in given}.

        Returns a distribution over the full n coordinates.  Raises
        :class:`DistributionError` if the event has zero probability.
        """
        mass = 0.0
        table: Dict[Vector, float] = {}
        for vector, probability in self.probs.items():
            if all(vector[c - 1] == bit for c, bit in given.items()):
                table[vector] = probability
                mass += probability
        if mass <= 0:
            raise DistributionError(f"conditioning event {dict(given)} has zero mass")
        return Distribution(
            self.n,
            {v: p / mass for v, p in table.items()},
            name=f"{self.name}|{dict(given)}",
        )

    def product_of_marginals(self) -> "Distribution":
        """The product distribution with D's single-coordinate marginals."""
        singles = [self.marginal([c]) for c in range(1, self.n + 1)]
        table: Dict[Vector, float] = {}
        for vector in itertools.product((0, 1), repeat=self.n):
            probability = 1.0
            for c, bit in enumerate(vector):
                probability *= singles[c].probability((bit,))
            if probability > 0:
                table[vector] = probability
        return Distribution(self.n, table, name=f"prod({self.name})")

    def join(self, other: "Distribution") -> "Distribution":
        """The ⊔ of the paper: independent concatenation of coordinates."""
        table: Dict[Vector, float] = {}
        for left, lp in self.probs.items():
            for right, rp in other.probs.items():
                table[left + right] = lp * rp
        return Distribution(self.n + other.n, table, name=f"{self.name}⊔{other.name}")

    # -- metrics ---------------------------------------------------------------------

    def tv_distance(self, other: "Distribution") -> float:
        """Total variation distance (exact)."""
        if other.n != self.n:
            raise DistributionError("dimension mismatch")
        support = set(self.probs) | set(other.probs)
        return 0.5 * sum(
            abs(self.probs.get(v, 0.0) - other.probs.get(v, 0.0)) for v in support
        )

    def product_gap(self) -> float:
        """TV distance to the product of its own marginals.

        If D is ε-close to *some* product distribution, this gap is at most
        (n+1)·ε, so thresholding it is a sound (up to the factor) membership
        oracle for the class Ψ_C,n.
        """
        return self.tv_distance(self.product_of_marginals())

    def local_independence_gap(self) -> float:
        """The defining quantity of Ψ_L,n (Section 5.2), exactly.

        max over nonempty proper subsets B, strings u ∈ {0,1}^|B| and
        strings w in the support of D_B̄ of
        ``|P(D_B = u | D_B̄ = w) − P(D_B = u)|``.
        """
        worst = 0.0
        indices = list(range(1, self.n + 1))
        for size in range(1, self.n):
            for subset in itertools.combinations(indices, size):
                rest = [c for c in indices if c not in subset]
                marginal_b = self.marginal(subset)
                marginal_rest = self.marginal(rest)
                for w in marginal_rest.support():
                    conditioned = self.conditional(dict(zip(rest, w, strict=True)))
                    conditional_b = conditioned.marginal(subset)
                    for u in itertools.product((0, 1), repeat=size):
                        gap = abs(
                            conditional_b.probability(u) - marginal_b.probability(u)
                        )
                        worst = max(worst, gap)
        return worst

    def is_trivial(self, tolerance: float = 1e-9) -> bool:
        """Statistically close to a singleton (the paper's "trivial")."""
        return max(self.probs.values()) >= 1.0 - tolerance

    def shannon_entropy(self) -> float:
        return -sum(p * math.log2(p) for p in self.probs.values() if p > 0)

    def __repr__(self) -> str:
        return f"Distribution({self.name}, n={self.n}, support={len(self.probs)})"


class Ensemble:
    """A distribution ensemble {D^(k)}: security parameter -> Distribution."""

    def __init__(self, name: str, n: int, factory: Callable[[int], Distribution]):
        self.name = name
        self.n = n
        self._factory = factory

    @classmethod
    def constant(cls, distribution: Distribution, name: str = "") -> "Ensemble":
        return cls(
            name or distribution.name,
            distribution.n,
            lambda _k, d=distribution: d,
        )

    def at(self, k: int) -> Distribution:
        distribution = self._factory(k)
        if distribution.n != self.n:
            raise DistributionError(
                f"ensemble {self.name} produced n={distribution.n}, expected {self.n}"
            )
        return distribution

    def __repr__(self) -> str:
        return f"Ensemble({self.name}, n={self.n})"
