"""The standard input distributions: uniform, singletons, products.

These are the classes named explicitly in Claim 5.6 — ``Uniform``,
``Singleton`` and the independent products Φ_n — all of which every
independence definition can be achieved under.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..errors import DistributionError
from .base import Distribution, Ensemble


def uniform(n: int) -> Distribution:
    """The uniform distribution over {0,1}^n."""
    probability = 1.0 / (2 ** n)
    return Distribution(
        n,
        {vector: probability for vector in itertools.product((0, 1), repeat=n)},
        name=f"uniform-{n}",
    )


def singleton(vector: Sequence[int]) -> Distribution:
    """The point mass D_α on a fixed vector α."""
    vector = tuple(vector)
    return Distribution(
        len(vector), {vector: 1.0}, name="singleton-" + "".join(map(str, vector))
    )


def all_singletons(n: int):
    """Every singleton over {0,1}^n (the class Singleton, finitely listed)."""
    return [singleton(v) for v in itertools.product((0, 1), repeat=n)]


def bernoulli_product(biases: Sequence[float]) -> Distribution:
    """The independent product with P(x_i = 1) = biases[i-1] (class Φ_n)."""
    biases = list(biases)
    if not biases:
        raise DistributionError("need at least one coordinate")
    if any(not 0.0 <= p <= 1.0 for p in biases):
        raise DistributionError("biases must lie in [0, 1]")
    n = len(biases)
    table = {}
    for vector in itertools.product((0, 1), repeat=n):
        probability = 1.0
        for bit, bias in zip(vector, biases, strict=True):
            probability *= bias if bit else (1.0 - bias)
        if probability > 0:
            table[vector] = probability
    return Distribution(n, table, name=f"product-{biases}")


def uniform_ensemble(n: int) -> Ensemble:
    return Ensemble.constant(uniform(n), name=f"uniform-{n}")


def singleton_ensemble(vector: Sequence[int]) -> Ensemble:
    return Ensemble.constant(singleton(vector))


def bernoulli_ensemble(biases: Sequence[float]) -> Ensemble:
    return Ensemble.constant(bernoulli_product(biases))
