"""Empirical (sample-based) distribution testers.

The exact oracles in :mod:`repro.distributions.classes` need the full
probability table.  When only a sampler is available — e.g. the announced
vector of a protocol execution — these estimators recover the same
quantities from samples, with Hoeffding-style error bars handled by the
callers in :mod:`repro.analysis`.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Sequence

from ..errors import DistributionError
from .base import Distribution, Vector

Sampler = Callable[[random.Random], Sequence[int]]


def empirical_distribution(
    sampler: Sampler, n: int, samples: int, rng: random.Random
) -> Distribution:
    """Build an explicit table from ``samples`` draws of ``sampler``."""
    if samples < 1:
        raise DistributionError("need at least one sample")
    counts: Dict[Vector, int] = {}
    for _ in range(samples):
        vector = tuple(int(b) for b in sampler(rng))
        if len(vector) != n:
            raise DistributionError(
                f"sampler produced a vector of length {len(vector)}, expected {n}"
            )
        counts[vector] = counts.get(vector, 0) + 1
    return Distribution(
        n, {v: c / samples for v, c in counts.items()}, name="empirical"
    )


def estimate_product_gap(
    sampler: Sampler, n: int, samples: int, rng: random.Random
) -> float:
    """Sample-based estimate of the TV distance to the marginal product."""
    return empirical_distribution(sampler, n, samples, rng).product_gap()


def estimate_local_independence_gap(
    sampler: Sampler,
    n: int,
    samples: int,
    rng: random.Random,
    min_condition_mass: float = 0.02,
) -> float:
    """Sample-based estimate of the Ψ_L defining gap.

    Conditioning events with empirical mass below ``min_condition_mass``
    are skipped: their conditional estimates would be dominated by noise
    (this mirrors the paper's restriction to strings occurring with
    non-zero — here, non-negligible — probability).
    """
    empirical = empirical_distribution(sampler, n, samples, rng)
    worst = 0.0
    indices = list(range(1, n + 1))
    for size in range(1, n):
        for subset in itertools.combinations(indices, size):
            rest = [c for c in indices if c not in subset]
            marginal_b = empirical.marginal(subset)
            marginal_rest = empirical.marginal(rest)
            for w in marginal_rest.support():
                if marginal_rest.probability(w) < min_condition_mass:
                    continue
                conditional_b = empirical.conditional(
                    dict(zip(rest, w, strict=True))
                ).marginal(subset)
                for u in itertools.product((0, 1), repeat=size):
                    gap = abs(
                        conditional_b.probability(u) - marginal_b.probability(u)
                    )
                    worst = max(worst, gap)
    return worst


def sampler_of(distribution: Distribution) -> Sampler:
    """Adapt a table distribution to the sampler interface."""
    return distribution.sample
