"""The achievability classes of Section 5, as executable membership oracles.

For each independence definition N the paper identifies the class D(N) of
input distributions under which N is achievable:

====================  ===========================================  ========
class                  membership criterion                          D(·)
====================  ===========================================  ========
``SINGLETON``          a point mass                                  —
``UNIFORM``            the uniform distribution                      —
``PHI``                exactly a product of independent marginals    —
``PSI_L`` (Ψ_L,n)      local-independence gap ≤ tolerance            D(G)
``PSI_C`` (Ψ_C,n)      TV distance to a product ≤ tolerance          D(CR)
``ALL``                anything                                      D(Sb)
====================  ===========================================  ========

The paper's Ψ_C is *computational* closeness; at simulation scale we use
statistical closeness with an explicit tolerance, which is the right
proxy because every separation witness in the paper exhibits a constant
(not merely super-negligible) gap.  Claim 5.6's strict chain

    Singleton, Uniform ⊊ D(G) ⊊ D(CR) ⊊ D(Sb)

is regenerated empirically by :func:`claim_56_witnesses`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .base import Distribution
from .correlated import all_equal, near_product_mixture, parity
from .standard import bernoulli_product, singleton, uniform

DEFAULT_TOLERANCE = 1e-6
PSI_C_TOLERANCE = 0.25  # admits δ-mixtures with δ below this, rejects parity/all-equal


@dataclass(frozen=True)
class DistributionClass:
    """A named class of distributions with a decidable membership oracle."""

    name: str
    description: str
    membership: Callable[[Distribution], bool]

    def contains(self, distribution: Distribution) -> bool:
        return self.membership(distribution)

    def __repr__(self) -> str:
        return f"DistributionClass({self.name})"


def _is_singleton(distribution: Distribution) -> bool:
    return distribution.is_trivial(tolerance=DEFAULT_TOLERANCE)


def _is_uniform(distribution: Distribution) -> bool:
    return distribution.tv_distance(uniform(distribution.n)) <= DEFAULT_TOLERANCE


def _is_product(distribution: Distribution) -> bool:
    return distribution.product_gap() <= DEFAULT_TOLERANCE


def _is_locally_independent(distribution: Distribution) -> bool:
    return distribution.local_independence_gap() <= DEFAULT_TOLERANCE


def _is_computationally_independent(distribution: Distribution) -> bool:
    return distribution.product_gap() <= PSI_C_TOLERANCE


SINGLETON = DistributionClass(
    "Singleton", "point masses D_α", _is_singleton
)
UNIFORM = DistributionClass(
    "Uniform", "the uniform distribution", _is_uniform
)
PHI = DistributionClass(
    "Phi_n", "exact products of independent coordinate distributions", _is_product
)
PSI_L = DistributionClass(
    "Psi_L,n = D(G)",
    "locally independent: conditionals match marginals (Section 5.2)",
    _is_locally_independent,
)
PSI_C = DistributionClass(
    "Psi_C,n = D(CR)",
    "computationally independent: close to some product (Section 5.1)",
    _is_computationally_independent,
)
ALL = DistributionClass("All = D(Sb)", "all input distributions", lambda _d: True)

CHAIN = (SINGLETON, UNIFORM, PSI_L, PSI_C, ALL)


def claim_56_witnesses(n: int) -> Dict[str, Dict[str, object]]:
    """Witness distributions regenerating each strict inclusion of Claim 5.6.

    Returns, for each inclusion ``A ⊊ B``, a witness distribution that is a
    member of B but not of A, together with its measured membership bits.
    """
    witnesses = {
        "Singleton ⊊ D(G)": uniform(n),
        "Uniform ⊊ D(G)": bernoulli_product([0.3] + [0.5] * (n - 1)),
        "D(G) ⊊ D(CR)": near_product_mixture(n, delta=0.1),
        "D(CR) ⊊ D(Sb)": parity(n),
        "D(CR) ⊊ D(Sb) (alt)": all_equal(n),
    }
    report: Dict[str, Dict[str, object]] = {}
    for label, distribution in witnesses.items():
        report[label] = {
            "distribution": distribution.name,
            "singleton": SINGLETON.contains(distribution),
            "uniform": UNIFORM.contains(distribution),
            "psi_l": PSI_L.contains(distribution),
            "psi_c": PSI_C.contains(distribution),
            "all": True,
        }
    return report


def representatives(n: int) -> Dict[str, List[Distribution]]:
    """Representative members per class, used by the experiment harness."""
    return {
        "Singleton": [singleton([0] * n), singleton([1] + [0] * (n - 1))],
        "Uniform": [uniform(n)],
        "D(G)": [
            uniform(n),
            bernoulli_product([0.3] + [0.5] * (n - 1)),
            bernoulli_product([0.7, 0.2] + [0.5] * (n - 2)),
        ],
        "D(CR)": [near_product_mixture(n, delta=0.1)],
        "All": [parity(n), all_equal(n)],
    }
