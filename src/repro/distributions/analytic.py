"""Exact (table-based) CR and G gaps of honest executions.

Under a correct protocol with no active deviation, the announced vector
*is* the input vector, so the quantities inside Definitions 4.3 and 4.4
become properties of the input distribution alone and can be computed
exactly from its probability table — no sampling, no error bars.  This
gives Lemma 5.2 and Lemma 5.4 an analytic verification path next to the
empirical one:

* :func:`exact_cr_gap` — max over coordinates i and predicates R of
  ``|P(x_i = 0)·P(R(x_{¬i})) − P(x_i = 0 ∧ R(x_{¬i}))|``; this is the
  floor *any* correct protocol's CR gap inherits from the distribution.
* :func:`exact_g_gap` — max over corrupted i, bit b and honest-projection
  pairs r, s of ``|P(x_i = b | x_H = r) − P(x_i = b | x_H = s)|``; the
  floor for the G gap under a passively corrupted set.

Sampling estimators converge to these values (see
``tests/test_distributions_analytic.py``), which is also how the
estimators themselves are validated.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence, Tuple

from ..core.predicates import Predicate, default_family
from ..errors import DistributionError
from .base import Distribution


def exact_cr_gap(
    distribution: Distribution,
    predicates: Optional[Sequence[Predicate]] = None,
    coordinates: Optional[Iterable[int]] = None,
) -> Tuple[float, str]:
    """The exact CR quantity of the distribution itself; returns (gap, witness).

    ``coordinates`` restricts the honest-party index i (defaults to all).
    """
    n = distribution.n
    if predicates is None:
        predicates = default_family(n)
    if coordinates is None:
        coordinates = range(1, n + 1)

    worst = 0.0
    witness = ""
    support = distribution.support()
    for i in coordinates:
        if not 1 <= i <= n:
            raise DistributionError(f"coordinate {i} out of range")
        p_zero = sum(
            distribution.probability(x) for x in support if x[i - 1] == 0
        )
        for predicate in predicates:
            p_pred = 0.0
            p_joint = 0.0
            for x in support:
                probability = distribution.probability(x)
                if predicate(x, i):
                    p_pred += probability
                    if x[i - 1] == 0:
                        p_joint += probability
            gap = abs(p_zero * p_pred - p_joint)
            if gap > worst:
                worst = gap
                witness = f"coordinate {i}, R = {predicate.name}"
    return worst, witness


def exact_g_gap(
    distribution: Distribution,
    corrupted: Iterable[int],
) -> Tuple[float, str]:
    """The exact G quantity under passive corruption; returns (gap, witness).

    For each corrupted coordinate i, compares
    ``P(x_i = b | x_honest = r)`` across all honest projections r, s in the
    support of the honest marginal — exactly Definition 4.4 with W = x.
    """
    n = distribution.n
    corrupted = sorted(set(corrupted))
    if not corrupted:
        return 0.0, "no corrupted coordinates (vacuous)"
    if any(not 1 <= i <= n for i in corrupted):
        raise DistributionError("corrupted coordinate out of range")
    honest = [i for i in range(1, n + 1) if i not in corrupted]
    if not honest:
        raise DistributionError("at least one coordinate must stay honest")

    honest_marginal = distribution.marginal(honest)
    projections = honest_marginal.support()

    worst = 0.0
    witness = ""
    for i in corrupted:
        rates = {}
        for r in projections:
            conditioned = distribution.conditional(dict(zip(honest, r, strict=True)))
            rates[r] = conditioned.marginal([i]).probability((1,))
        for r, s in itertools.combinations(projections, 2):
            gap = abs(rates[r] - rates[s])
            if gap > worst:
                worst = gap
                witness = f"coordinate {i}, x_H = {r} vs {s}"
    return worst, witness


def cr_achievability_floor(distribution: Distribution) -> float:
    """Shorthand: the CR gap every correct protocol inherits (Lemma 5.2)."""
    gap, _ = exact_cr_gap(distribution)
    return gap


def g_achievability_floor(distribution: Distribution, corrupted: Iterable[int]) -> float:
    """Shorthand: the G gap every correct protocol inherits (Lemma 5.4)."""
    gap, _ = exact_g_gap(distribution, corrupted)
    return gap
