"""The Sb-Independence estimator (Definitions 4.1/4.2, Chor et al. [7]).

Sb-Independence asks for a *single* simulator S such that for every
distribution in the class, the real execution is indistinguishable from
the ideal process with S.  Two facts make this empirically testable:

1. In the ideal process, the honest coordinates of the announced vector
   equal the honest inputs, and the corrupted coordinates are produced by
   S from ``(x_B, z)`` alone — in particular their distribution cannot
   depend on the honest inputs.
2. Our distinguisher family consists of the predicates on ``(x, W)`` —
   the same family the paper's own proofs use (the distinguisher T in
   Appendix A.1 is built from a predicate on W; the distinguisher Q in
   Lemma 6.4 compares two announced coordinates).

For this family, the best distinguishing advantage against the *best*
simulator decomposes into two measurable quantities:

* ``correctness_violation`` — the rate at which some honest announced
  coordinate differs from the honest input (an ideal process never does
  this, no matter the simulator);
* the **simulation gap** — the maximal total-variation distance between
  the corrupted announced pattern ``W_B`` under two input vectors that
  agree on the corrupted coordinates but differ on honest ones.  Any
  dependence of W_B on x_H is unsimulatable, because S sees only x_B;
  conversely, if W_B depends on x only through x_B (and honest outputs
  are correct), the map x_B ↦ W_B *is* a valid simulator for this family.

The test quantifies over a set of input vectors that represents the
distribution class Δ (for (Singleton, Sb)-independence: the singletons
themselves), implementing the paper's ∃S ∀D∈Δ quantifier order: one
simulator must explain all of them at once.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.stats import empirical_tv, selection_halfwidth
from ..errors import ExperimentError
from .announced import AdversaryFactory, sample_announced_fixed
from .verdict import IndependenceReport


def sb_report(
    protocol,
    adversary_factory: AdversaryFactory,
    samples_per_point: int,
    rng: random.Random,
    input_vectors: Optional[Iterable[Sequence[int]]] = None,
) -> IndependenceReport:
    """Estimate the Sb gap of Π under A over a class of fixed input vectors.

    Args:
        input_vectors: representative inputs of the class Δ (defaults to
            all of {0,1}^n, i.e. the Singleton class, which by the paper's
            Section 5.3 discussion is equivalent to (All, Sb)).
    """
    if samples_per_point < 5:
        raise ExperimentError("Sb estimation needs >= 5 samples per input point")
    adversary_probe = adversary_factory()
    corrupted = sorted(adversary_probe.corrupted) if adversary_probe else []
    honest = [i for i in range(1, protocol.n + 1) if i not in set(corrupted)]

    if input_vectors is None:
        input_vectors = list(itertools.product((0, 1), repeat=protocol.n))
    else:
        input_vectors = [tuple(x) for x in input_vectors]

    # Collect W_B patterns per input vector, and correctness violations.
    total_runs = 0
    violations = 0
    patterns: Dict[Tuple[int, ...], Dict[Tuple[int, ...], int]] = {}
    for x in input_vectors:
        counts: Dict[Tuple[int, ...], int] = {}
        draws = sample_announced_fixed(
            protocol, x, adversary_factory, samples_per_point, rng
        )
        total_runs += samples_per_point
        for draw in draws:
            for j in honest:
                if draw.announced[j - 1] != x[j - 1]:
                    violations += 1
                    break
            pattern = tuple(draw.announced[i - 1] for i in corrupted)
            counts[pattern] = counts.get(pattern, 0) + 1
        patterns[x] = counts

    correctness_violation = violations / total_runs if total_runs else 0.0

    # Simulation gap: W_B must not vary across honest inputs for fixed x_B.
    worst_gap = 0.0
    witness = ""
    if corrupted:
        by_corrupted_inputs: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        for x in input_vectors:
            key = tuple(x[i - 1] for i in corrupted)
            by_corrupted_inputs.setdefault(key, []).append(x)
        for group in by_corrupted_inputs.values():
            for x_r, x_s in itertools.combinations(group, 2):
                gap = empirical_tv(
                    patterns[x_r], samples_per_point, patterns[x_s], samples_per_point
                )
                if gap > worst_gap:
                    worst_gap = gap
                    witness = f"W_B depends on honest inputs: x={x_r} vs x={x_s}"

    gap = max(worst_gap, correctness_violation)
    if correctness_violation >= worst_gap and correctness_violation > 0:
        witness = f"correctness violated at rate {correctness_violation:.3f}"
    comparisons = max(1, len(input_vectors) * (len(input_vectors) - 1) // 2)
    error = selection_halfwidth(samples_per_point, comparisons)
    return IndependenceReport(
        definition="Sb",
        gap=gap,
        error=error,
        samples=total_runs,
        witness=witness,
        details={
            "corrupted": corrupted,
            "correctness_violation": correctness_violation,
            "simulation_gap": worst_gap,
            "input_vectors": len(input_vectors),
        },
    )
