"""The G* / G** estimators (Definitions B.1 and B.2, Appendix B).

G** is the *interventional* form of G-Independence: instead of
conditioning on honest outputs under a sampled distribution, it fixes the
corrupted coordinates ``w`` and compares runs on different fixed honest
inputs ``r`` vs ``s``:

    | Pr[W ← Announced^Π_A(w ⊔ s) : W_i = 1]
      − Pr[W ← Announced^Π_A(w ⊔ r) : W_i = 1] |

G* compares each full input x against ``x_B ⊔ 0`` (honest inputs zeroed).
Proposition B.3 shows the two are equivalent; the tests in
``tests/test_core_definitions.py`` check that equivalence empirically.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Optional, Sequence, Tuple

from ..analysis.stats import selection_halfwidth
from ..errors import ExperimentError
from .announced import AdversaryFactory, sample_announced_fixed
from .verdict import IndependenceReport


def _corrupted_of(adversary_factory: AdversaryFactory) -> frozenset:
    adversary = adversary_factory()
    if adversary is None:
        return frozenset()
    return frozenset(adversary.corrupted)


def _compose(n: int, corrupted: Sequence[int], w: Sequence[int], honest: Sequence[int], r: Sequence[int]) -> Tuple[int, ...]:
    """The w ⊔ r vector: corrupted coordinates from w, honest from r."""
    vector = [0] * n
    for index, party in enumerate(corrupted):
        vector[party - 1] = w[index]
    for index, party in enumerate(honest):
        vector[party - 1] = r[index]
    return tuple(vector)


def _rate(protocol, inputs, adversary_factory, party, samples, rng) -> float:
    draws = sample_announced_fixed(protocol, inputs, adversary_factory, samples, rng)
    return sum(1 for d in draws if d.announced[party - 1] == 1) / samples


def g_star_star_report(
    protocol,
    adversary_factory: AdversaryFactory,
    samples_per_point: int,
    rng: random.Random,
    honest_assignments: Optional[Iterable[Sequence[int]]] = None,
    corrupted_assignments: Optional[Iterable[Sequence[int]]] = None,
) -> IndependenceReport:
    """Estimate the G** gap by direct input intervention.

    By default every corrupted assignment w and every pair of honest
    assignments (r, s) over {0,1} is tested — feasible for the small n the
    experiments use; pass explicit assignment lists to restrict.
    """
    if samples_per_point < 5:
        raise ExperimentError("G** estimation needs >= 5 samples per input point")
    corrupted = sorted(_corrupted_of(adversary_factory))
    honest = [i for i in range(1, protocol.n + 1) if i not in corrupted]
    if not corrupted:
        return IndependenceReport(
            definition="G**",
            gap=0.0,
            error=0.0,
            samples=0,
            witness="no corrupted parties (vacuous)",
        )

    if honest_assignments is None:
        honest_assignments = list(itertools.product((0, 1), repeat=len(honest)))
    else:
        honest_assignments = [tuple(a) for a in honest_assignments]
    if corrupted_assignments is None:
        corrupted_assignments = list(itertools.product((0, 1), repeat=len(corrupted)))
    else:
        corrupted_assignments = [tuple(a) for a in corrupted_assignments]

    worst_gap = 0.0
    witness = ""
    total_runs = 0
    for w in corrupted_assignments:
        rates = {}
        for r in honest_assignments:
            inputs = _compose(protocol.n, corrupted, w, honest, r)
            for i in corrupted:
                rates[(r, i)] = None
            draws = sample_announced_fixed(
                protocol, inputs, adversary_factory, samples_per_point, rng
            )
            total_runs += samples_per_point
            for i in corrupted:
                rates[(r, i)] = (
                    sum(1 for d in draws if d.announced[i - 1] == 1)
                    / samples_per_point
                )
        for i in corrupted:
            for r, s in itertools.combinations(honest_assignments, 2):
                gap = abs(rates[(r, i)] - rates[(s, i)])
                if gap > worst_gap:
                    worst_gap = gap
                    witness = f"corrupted P_{i}, w={w}, r={r} vs s={s}"

    comparisons = max(
        1,
        len(corrupted)
        * len(corrupted_assignments)
        * len(honest_assignments)
        * (len(honest_assignments) - 1)
        // 2,
    )
    error = selection_halfwidth(samples_per_point, comparisons)
    return IndependenceReport(
        definition="G**",
        gap=worst_gap,
        error=error,
        samples=total_runs,
        witness=witness,
        details={"corrupted": corrupted},
    )


def g_star_report(
    protocol,
    adversary_factory: AdversaryFactory,
    samples_per_point: int,
    rng: random.Random,
    inputs_list: Optional[Iterable[Sequence[int]]] = None,
) -> IndependenceReport:
    """Estimate the G* gap: each x against x_B ⊔ 0 (honest inputs zeroed)."""
    if samples_per_point < 5:
        raise ExperimentError("G* estimation needs >= 5 samples per input point")
    corrupted = sorted(_corrupted_of(adversary_factory))
    honest = [i for i in range(1, protocol.n + 1) if i not in corrupted]
    if not corrupted:
        return IndependenceReport(
            definition="G*",
            gap=0.0,
            error=0.0,
            samples=0,
            witness="no corrupted parties (vacuous)",
        )
    if inputs_list is None:
        inputs_list = list(itertools.product((0, 1), repeat=protocol.n))
    else:
        inputs_list = [tuple(x) for x in inputs_list]

    worst_gap = 0.0
    witness = ""
    total_runs = 0
    for x in inputs_list:
        zeroed = _compose(
            protocol.n,
            corrupted,
            [x[i - 1] for i in corrupted],
            honest,
            [0] * len(honest),
        )
        for i in corrupted:
            rate_x = _rate(protocol, x, adversary_factory, i, samples_per_point, rng)
            rate_zero = _rate(
                protocol, zeroed, adversary_factory, i, samples_per_point, rng
            )
            total_runs += 2 * samples_per_point
            gap = abs(rate_x - rate_zero)
            if gap > worst_gap:
                worst_gap = gap
                witness = f"corrupted P_{i}, x={x} vs x_B⊔0"

    comparisons = max(1, len(corrupted) * len(inputs_list))
    error = selection_halfwidth(samples_per_point, comparisons)
    return IndependenceReport(
        definition="G*",
        gap=worst_gap,
        error=error,
        samples=total_runs,
        witness=witness,
        details={"corrupted": corrupted},
    )
