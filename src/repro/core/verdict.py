"""Result types shared by the independence estimators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..analysis.stats import Decision, decide


@dataclass(frozen=True)
class IndependenceReport:
    """Outcome of testing one definition on one (protocol, adversary, D) triple.

    Attributes:
        definition: "CR", "G", "G*", "G**" or "Sb".
        gap: the estimated maximal defining quantity (paper-speak: the
            amount by which negligibility fails).
        error: confidence half-width attached to ``gap``.
        samples: total protocol executions consumed.
        witness: human-readable description of the arg-max (which party,
            predicate, conditioning event, ... achieved the gap).
        details: estimator-specific extras.
    """

    definition: str
    gap: float
    error: float
    samples: int
    witness: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def decision(self) -> Decision:
        return decide(self.gap, self.error)

    @property
    def violated(self) -> bool:
        return self.decision == Decision.VIOLATED

    @property
    def consistent(self) -> bool:
        return self.decision == Decision.CONSISTENT

    def summary(self) -> str:
        return (
            f"{self.definition}: gap={self.gap:.4f}±{self.error:.4f} "
            f"({self.decision.value})"
            + (f" witness: {self.witness}" if self.witness else "")
        )
