"""The G-Independence estimator (Definition 4.4, Gennaro [12]).

For every corrupted party P_i, every bit b, and every pair of honest-
output vectors r, s occurring with non-negligible empirical probability,
estimate

    | Pr[W_i = b | W_honest = r]  −  Pr[W_i = b | W_honest = s] |

over W ← Announced^Π_A(D^(k)).  Conditioning events below the minimum
count are skipped, mirroring the definition's restriction to vectors that
"occur with non-zero probability as D_B̄" (conditioning on near-null
events is exactly the technical difficulty the paper's G** variant
side-steps).

With no corrupted parties the definition is vacuous and the gap is 0.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..analysis.stats import hoeffding_halfwidth, selection_halfwidth
from ..distributions.base import Distribution
from ..errors import ExperimentError
from .announced import AdversaryFactory, sample_announced
from .verdict import IndependenceReport

DEFAULT_MIN_CONDITION_COUNT = 25


def g_report(
    protocol,
    distribution: Distribution,
    adversary_factory: AdversaryFactory,
    samples: int,
    rng: random.Random,
    min_condition_count: int = DEFAULT_MIN_CONDITION_COUNT,
) -> IndependenceReport:
    """Estimate the G gap of Π under adversary A and input distribution D."""
    if samples < 10:
        raise ExperimentError("G estimation needs at least 10 samples")
    draws = sample_announced(protocol, distribution, adversary_factory, samples, rng)
    return g_report_from_samples(
        draws,
        protocol.n,
        min_condition_count=min_condition_count,
        distribution_name=distribution.name,
    )


def g_report_from_samples(
    draws,
    n: int,
    min_condition_count: int = DEFAULT_MIN_CONDITION_COUNT,
    distribution_name: str = "",
) -> IndependenceReport:
    """The estimation step of :func:`g_report`, on pre-drawn samples.

    Splitting sampling from estimation lets :mod:`repro.parallel` draw the
    samples in sharded worker processes and fold them back here; the
    estimate depends only on the multiset of draws, in order.
    """
    samples = len(draws)
    if samples < 10:
        raise ExperimentError("G estimation needs at least 10 samples")
    corrupted = sorted(draws[0].corrupted)
    honest = [i for i in range(1, n + 1) if i not in draws[0].corrupted]

    if not corrupted:
        return IndependenceReport(
            definition="G",
            gap=0.0,
            error=0.0,
            samples=samples,
            witness="no corrupted parties (vacuous)",
            details={"distribution": distribution_name},
        )

    # Bucket draws by the honest projection of the announced vector.
    buckets: Dict[Tuple[int, ...], list] = {}
    for draw in draws:
        key = tuple(draw.announced[j - 1] for j in honest)
        buckets.setdefault(key, []).append(draw)

    usable = {
        key: group
        for key, group in buckets.items()
        if len(group) >= min_condition_count
    }

    worst_gap = 0.0
    worst_error = hoeffding_halfwidth(samples)
    witness = ""
    keys = sorted(usable)
    comparisons = max(1, len(corrupted) * len(keys) * (len(keys) - 1) // 2)
    for i in corrupted:
        rates = {}
        for key in keys:
            group = usable[key]
            rates[key] = sum(1 for d in group if d.announced[i - 1] == 1) / len(group)
        for a_index in range(len(keys)):
            for b_index in range(a_index + 1, len(keys)):
                r, s = keys[a_index], keys[b_index]
                gap = abs(rates[r] - rates[s])
                if gap > worst_gap:
                    worst_gap = gap
                    worst_error = selection_halfwidth(
                        min(len(usable[r]), len(usable[s])), comparisons
                    )
                    witness = f"corrupted P_{i}, W_honest = {r} vs {s}"

    if not witness:
        witness = "no conditioning pair with enough mass"
    return IndependenceReport(
        definition="G",
        gap=worst_gap,
        error=worst_error,
        samples=samples,
        witness=witness,
        details={
            "corrupted": corrupted,
            "conditioning_events": len(usable),
            "distribution": distribution_name,
        },
    )
