"""Transcript-level Sb testing: explicit simulators and distinguishers.

:mod:`repro.core.sb` tests Sb-Independence through its announced-value
consequences.  This module implements Definition 4.1/4.2 more literally:

* an **ideal process** — a :class:`Simulator` receives the corrupted
  parties' inputs (and auxiliary input), hands substituted inputs to
  ``Ideal(f_SB)``, and fabricates the adversary's output; the ideal
  Exec vector is (simulated adversary output, W, ..., W);
* a **real process** — the protocol runs under the adversary, producing
  Exec^Π_A(k, z, x) = (adversary output, party outputs);
* a family of **distinguishers** over (x, Exec vector), containing every
  distinguisher the paper's proofs construct (predicates on W, the
  W_i = W_ℓ comparator of Lemma 6.4's Q, input-tracking tests);
* an **advantage estimator**: the maximum over distinguishers and input
  vectors of |P(D = 1 | real) − P(D = 1 | ideal)|.

Two canonical simulators are provided.  For every protocol in the zoo
either the canonical simulator achieves negligible advantage (secure
cases) or the explicit distinguisher defeats *any* simulator because the
real W_B tracks honest inputs no simulator can see (attack cases) — the
argument DESIGN.md §5 records.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.stats import selection_halfwidth
from ..errors import ExperimentError
from .announced import AdversaryFactory
from .verdict import IndependenceReport

Distinguisher = Tuple[str, Callable[[Tuple[int, ...], Tuple[Any, ...]], bool]]


# ---------------------------------------------------------------------------
# Ideal process
# ---------------------------------------------------------------------------


class Simulator:
    """An ideal-process adversary S for Ideal(f_SB).

    ``simulate`` sees only the corrupted inputs (and its auxiliary input);
    it returns the substituted corrupted inputs plus a fabricated
    adversary output.
    """

    def simulate(
        self, corrupted_inputs: Dict[int, int], rng: random.Random
    ) -> Tuple[Dict[int, int], Any]:
        raise NotImplementedError


class HonestInputSimulator(Simulator):
    """Forwards the corrupted inputs unchanged; adversary output is None.

    The right simulator for honest or passive adversaries.
    """

    def simulate(self, corrupted_inputs, rng):
        return dict(corrupted_inputs), None


class ReplaySimulator(Simulator):
    """The standard dummy-input simulator.

    Runs the *real* adversary in a private simulation where honest parties
    execute the protocol on dummy inputs (0), extracts the corrupted
    parties' announced values, and submits those to the ideal
    functionality; the fake run's adversary output is replayed as the
    simulated view.  Sound whenever the corrupted announced values do not
    depend on honest inputs — which is exactly what Sb-security requires.
    """

    def __init__(self, protocol, adversary_factory: AdversaryFactory, dummy_bit: int = 0):
        self.protocol = protocol
        self.adversary_factory = adversary_factory
        self.dummy_bit = dummy_bit

    def simulate(self, corrupted_inputs, rng):
        adversary = self.adversary_factory()
        corrupted = set(adversary.corrupted) if adversary else set()
        inputs = [
            corrupted_inputs.get(i, self.dummy_bit) if i in corrupted else self.dummy_bit
            for i in range(1, self.protocol.n + 1)
        ]
        execution = self.protocol.run(
            inputs, adversary=adversary, rng=random.Random(rng.getrandbits(64))
        )
        try:
            announced = execution.announced_vector(default=0)
        except Exception:
            announced = tuple(0 for _ in range(self.protocol.n))
        substituted = {i: announced[i - 1] for i in sorted(corrupted)}
        return substituted, execution.adversary_output


def ideal_exec_vector(
    n: int,
    inputs: Sequence[int],
    corrupted: Iterable[int],
    simulator: Simulator,
    rng: random.Random,
    default: int = 0,
) -> Tuple[Any, ...]:
    """One sample of Exec^{Ideal(f_SB)}_S(k, z, x)."""
    corrupted = set(corrupted)
    corrupted_inputs = {i: inputs[i - 1] for i in sorted(corrupted)}
    substituted, adversary_output = simulator.simulate(corrupted_inputs, rng)
    announced = tuple(
        substituted.get(i, default)
        if i in corrupted
        else (inputs[i - 1] if inputs[i - 1] in (0, 1) else default)
        for i in range(1, n + 1)
    )
    return (adversary_output,) + tuple(announced for _ in range(n))


# ---------------------------------------------------------------------------
# Distinguishers
# ---------------------------------------------------------------------------


def _announced_of(exec_vector: Tuple[Any, ...]) -> Optional[Tuple[int, ...]]:
    """Extract the announced vector from the first available party output."""
    for output in exec_vector[1:]:
        if isinstance(output, tuple):
            return output
    return None


def default_distinguishers(n: int) -> List[Distinguisher]:
    """The distinguisher family: everything the paper's proofs use."""
    family: List[Distinguisher] = []

    def parity(x, exec_vector):
        announced = _announced_of(exec_vector)
        if announced is None:
            return False
        total = 0
        for bit in announced:
            total ^= bit if bit in (0, 1) else 0
        return total == 0

    family.append(("parity(W)==0", parity))

    for i in range(1, n + 1):
        for j in range(1, n + 1):
            if i == j:
                continue

            def tracks(x, exec_vector, i=i, j=j):
                announced = _announced_of(exec_vector)
                return announced is not None and announced[i - 1] == x[j - 1]

            family.append((f"W[{i}]==x[{j}]", tracks))

            def comparator(x, exec_vector, i=i, j=j):
                # Lemma 6.4's distinguisher Q: compare two announced coords.
                announced = _announced_of(exec_vector)
                return announced is not None and announced[i - 1] == announced[j - 1]

            if i < j:
                family.append((f"W[{i}]==W[{j}]", comparator))

    for i in range(1, n + 1):

        def projection(x, exec_vector, i=i):
            announced = _announced_of(exec_vector)
            return announced is not None and announced[i - 1] == 1

        family.append((f"W[{i}]==1", projection))
    return family


# ---------------------------------------------------------------------------
# Advantage estimation
# ---------------------------------------------------------------------------


def sb_advantage(
    protocol,
    adversary_factory: AdversaryFactory,
    simulator: Simulator,
    samples_per_point: int,
    rng: random.Random,
    input_vectors: Optional[Iterable[Sequence[int]]] = None,
    distinguishers: Optional[List[Distinguisher]] = None,
) -> IndependenceReport:
    """Estimate the distinguishing advantage of the family against S.

    The Sb definition's ensembles are indexed by the input x, so the
    advantage is maximised over the supplied input vectors as well.
    """
    if samples_per_point < 5:
        raise ExperimentError("advantage estimation needs >= 5 samples per point")
    n = protocol.n
    if input_vectors is None:
        input_vectors = list(itertools.product((0, 1), repeat=n))
    else:
        input_vectors = [tuple(v) for v in input_vectors]
    if distinguishers is None:
        distinguishers = default_distinguishers(n)

    probe = adversary_factory()
    corrupted = sorted(probe.corrupted) if probe else []

    worst = 0.0
    witness = ""
    total_runs = 0
    for x in input_vectors:
        real_hits = {name: 0 for name, _ in distinguishers}
        ideal_hits = {name: 0 for name, _ in distinguishers}
        for _ in range(samples_per_point):
            execution = protocol.run(
                list(x),
                adversary=adversary_factory(),
                rng=random.Random(rng.getrandbits(64)),
            )
            real_vector = execution.exec_vector
            # Party outputs may be raw vectors already; normalise by reading
            # announced values through the transcript helper.
            try:
                announced = execution.announced_vector(default=0)
                real_vector = (real_vector[0],) + tuple(
                    announced for _ in range(n)
                )
            except Exception:
                pass
            ideal_vector = ideal_exec_vector(
                n, x, corrupted, simulator, rng
            )
            total_runs += 1
            for name, fn in distinguishers:
                if fn(x, real_vector):
                    real_hits[name] += 1
                if fn(x, ideal_vector):
                    ideal_hits[name] += 1
        for name, _ in distinguishers:
            advantage = abs(real_hits[name] - ideal_hits[name]) / samples_per_point
            if advantage > worst:
                worst = advantage
                witness = f"distinguisher {name} at x={x}"

    comparisons = max(1, len(distinguishers) * len(input_vectors))
    error = selection_halfwidth(samples_per_point, comparisons)
    return IndependenceReport(
        definition="Sb-advantage",
        gap=worst,
        error=error,
        samples=total_runs,
        witness=witness,
        details={
            "corrupted": corrupted,
            "simulator": type(simulator).__name__,
            "distinguishers": len(distinguishers),
        },
    )
