"""The CR-Independence estimator (Definition 4.3, Chor & Rabin [8]).

For every honest party P_i and every predicate R in the tested family,
estimate

    | Pr[W_i = 0] · Pr[R(W_{¬i})]  −  Pr[W_i = 0 ∧ R(W_{¬i})] |

over W ← Announced^Π_A(D^(k)), and report the maximum.  The quantity is a
covariance, so the error of the product term is bounded by three Hoeffding
half-widths.

The quantifier over *all* polynomial-time predicates is replaced by the
explicit family of :mod:`repro.core.predicates`, which contains every
witness predicate appearing in the paper's proofs; see DESIGN.md §5 for
the calibration argument.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..analysis.stats import selection_halfwidth
from ..distributions.base import Distribution
from ..errors import ExperimentError
from .announced import AdversaryFactory, sample_announced
from .predicates import Predicate, default_family
from .verdict import IndependenceReport


def cr_report(
    protocol,
    distribution: Distribution,
    adversary_factory: AdversaryFactory,
    samples: int,
    rng: random.Random,
    predicates: Optional[Sequence[Predicate]] = None,
) -> IndependenceReport:
    """Estimate the CR gap of Π under adversary A and input distribution D."""
    if samples < 10:
        raise ExperimentError("CR estimation needs at least 10 samples")
    draws = sample_announced(protocol, distribution, adversary_factory, samples, rng)
    return cr_report_from_samples(
        draws, protocol.n, predicates=predicates, distribution_name=distribution.name
    )


def cr_report_from_samples(
    draws,
    n: int,
    predicates: Optional[Sequence[Predicate]] = None,
    distribution_name: str = "",
) -> IndependenceReport:
    """The estimation step of :func:`cr_report`, on pre-drawn samples.

    Splitting sampling from estimation lets :mod:`repro.parallel` draw the
    samples in sharded worker processes and fold them back here; the
    estimate depends only on the multiset of draws, in order.
    """
    samples = len(draws)
    if samples < 10:
        raise ExperimentError("CR estimation needs at least 10 samples")
    if predicates is None:
        predicates = default_family(n)

    corrupted = draws[0].corrupted
    honest = [i for i in range(1, n + 1) if i not in corrupted]

    worst_gap = 0.0
    witness = ""
    for i in honest:
        zero_count = sum(1 for d in draws if d.announced[i - 1] == 0)
        p_zero = zero_count / samples
        for predicate in predicates:
            hits = 0
            joint = 0
            for draw in draws:
                satisfied = predicate(draw.announced, i)
                if satisfied:
                    hits += 1
                    if draw.announced[i - 1] == 0:
                        joint += 1
            p_pred = hits / samples
            p_joint = joint / samples
            gap = abs(p_zero * p_pred - p_joint)
            if gap > worst_gap:
                worst_gap = gap
                witness = f"honest P_{i}, R = {predicate.name}"

    # The gap is a maximum over |predicates| x |honest| candidate statistics;
    # the half-width is Bonferroni-adjusted for that selection.
    comparisons = max(1, len(predicates) * len(honest))
    error = selection_halfwidth(samples, comparisons)
    return IndependenceReport(
        definition="CR",
        gap=worst_gap,
        error=error,
        samples=samples,
        witness=witness,
        details={
            "corrupted": sorted(corrupted),
            "predicates": len(predicates),
            "distribution": distribution_name,
        },
    )
