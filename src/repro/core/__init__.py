"""The paper's contribution: the independence definitions and their comparison.

* :mod:`repro.core.cr` — Definition 4.3 (Chor & Rabin).
* :mod:`repro.core.g` — Definition 4.4 (Gennaro).
* :mod:`repro.core.gstar` — Definitions B.1/B.2 (G*, G**).
* :mod:`repro.core.sb` — Definitions 4.1/4.2 (simulation-based).
* :mod:`repro.core.relations` — the ∀-adversary measurement engine behind
  Figure 1.
"""

from .announced import (
    HONEST,
    AdversaryFactory,
    AnnouncedSample,
    announce_once,
    sample_announced,
    sample_announced_fixed,
)
from .cr import cr_report, cr_report_from_samples
from .g import g_report, g_report_from_samples
from .gstar import g_star_report, g_star_star_report
from .predicates import (
    Predicate,
    default_family,
    equality_predicate,
    parity_predicate,
    projection_predicate,
    threshold_predicate,
)
from .relations import (
    DEFINITIONS,
    GridCell,
    MeasurementBudget,
    definition_grid,
    measure,
)
from .sb import sb_report
from .simulators import (
    HonestInputSimulator,
    ReplaySimulator,
    Simulator,
    default_distinguishers,
    ideal_exec_vector,
    sb_advantage,
)
from .verdict import IndependenceReport

__all__ = [
    "HONEST",
    "AdversaryFactory",
    "AnnouncedSample",
    "announce_once",
    "sample_announced",
    "sample_announced_fixed",
    "cr_report",
    "cr_report_from_samples",
    "g_report",
    "g_report_from_samples",
    "g_star_report",
    "g_star_star_report",
    "sb_report",
    "Simulator",
    "HonestInputSimulator",
    "ReplaySimulator",
    "default_distinguishers",
    "ideal_exec_vector",
    "sb_advantage",
    "Predicate",
    "default_family",
    "parity_predicate",
    "projection_predicate",
    "equality_predicate",
    "threshold_predicate",
    "DEFINITIONS",
    "GridCell",
    "MeasurementBudget",
    "definition_grid",
    "measure",
    "IndependenceReport",
]
