"""Sampling Announced^Π_A(x) and Announced^Π_A(D) (Definition 3.1).

Adversaries are stateful per execution, so samplers take an *adversary
factory* — a zero-argument callable producing a fresh adversary for each
run (or ``None`` for honest executions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..distributions.base import Distribution
from ..net.adversary import Adversary

AdversaryFactory = Callable[[], Optional[Adversary]]

HONEST: AdversaryFactory = lambda: None
"""The adversary factory for honest executions."""


@dataclass(frozen=True)
class AnnouncedSample:
    """One draw: the sampled inputs and the resulting announced vector."""

    inputs: Tuple[int, ...]
    announced: Tuple[int, ...]
    corrupted: frozenset


def announce_once(
    protocol,
    inputs: Sequence[int],
    adversary_factory: AdversaryFactory,
    rng: random.Random,
) -> AnnouncedSample:
    """Run Π once under a fresh adversary on the given inputs."""
    adversary = adversary_factory()
    announced = protocol.announced(
        list(inputs), adversary=adversary, rng=random.Random(rng.getrandbits(64))
    )
    corrupted = frozenset(adversary.corrupted) if adversary is not None else frozenset()
    return AnnouncedSample(
        inputs=tuple(inputs), announced=announced, corrupted=corrupted
    )


def sample_announced(
    protocol,
    distribution: Distribution,
    adversary_factory: AdversaryFactory,
    samples: int,
    rng: random.Random,
) -> List[AnnouncedSample]:
    """Draw x ~ D and run Π under A, ``samples`` times."""
    results = []
    for _ in range(samples):
        inputs = distribution.sample(rng)
        results.append(announce_once(protocol, inputs, adversary_factory, rng))
    return results


def sample_announced_fixed(
    protocol,
    inputs: Sequence[int],
    adversary_factory: AdversaryFactory,
    samples: int,
    rng: random.Random,
) -> List[AnnouncedSample]:
    """Run Π repeatedly on one *fixed* input vector (the interventional mode
    used by the G**/Sb estimators and by singleton-distribution tests)."""
    return [
        announce_once(protocol, inputs, adversary_factory, rng) for _ in range(samples)
    ]
