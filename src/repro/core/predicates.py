"""The polynomial-time predicate family R of Definition 4.3.

CR-Independence quantifies over *all* polynomial-time predicates on the
other parties' announced bits.  Empirically we test an explicit family
that contains every witness predicate used in the paper's proofs:

* the parity predicate ``⊕_j z_j = c`` — the witness in Lemma 6.4 / Claim
  6.6 (the XOR attack is detected exactly by parity);
* coordinate projections ``z_j = c`` — the witness in Lemma 6.2's proof
  (there R(Z) := (Z_i = 1)) and in the copy attack (the copied coordinate
  predicts the target);
* pairwise equalities ``z_j = z_l``;
* thresshold/majority predicates — representatives of monotone tests.

Predicates operate on the announced vector *with coordinate i removed*
(the paper's ``W_{¬i}``); implementations receive the full vector plus the
excluded index so a single object serves every honest party.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


@dataclass(frozen=True)
class Predicate:
    """A named polynomial-time predicate on W with one coordinate excluded."""

    name: str
    fn: Callable[[Tuple[int, ...], int], bool]

    def __call__(self, announced: Sequence[int], excluded: int) -> bool:
        """Evaluate on ``announced`` ignoring 1-based coordinate ``excluded``."""
        return bool(self.fn(tuple(announced), excluded))


def _others(announced: Tuple[int, ...], excluded: int) -> Tuple[int, ...]:
    return tuple(b for j, b in enumerate(announced, start=1) if j != excluded)


def parity_predicate(target: int = 0) -> Predicate:
    def fn(announced, excluded):
        total = 0
        for bit in _others(announced, excluded):
            total ^= bit
        return total == target

    return Predicate(name=f"parity=={target}", fn=fn)


def projection_predicate(coordinate: int, value: int = 1) -> Predicate:
    def fn(announced, excluded):
        if coordinate == excluded or not 1 <= coordinate <= len(announced):
            return False
        return announced[coordinate - 1] == value

    return Predicate(name=f"W[{coordinate}]=={value}", fn=fn)


def equality_predicate(left: int, right: int) -> Predicate:
    def fn(announced, excluded):
        if excluded in (left, right):
            return False
        if not (1 <= left <= len(announced) and 1 <= right <= len(announced)):
            return False
        return announced[left - 1] == announced[right - 1]

    return Predicate(name=f"W[{left}]==W[{right}]", fn=fn)


def threshold_predicate(minimum_ones: int) -> Predicate:
    def fn(announced, excluded):
        return sum(_others(announced, excluded)) >= minimum_ones

    return Predicate(name=f"sum>={minimum_ones}", fn=fn)


def default_family(n: int) -> List[Predicate]:
    """The standard predicate family used by the CR estimator."""
    predicates: List[Predicate] = [parity_predicate(0), parity_predicate(1)]
    for coordinate in range(1, n + 1):
        predicates.append(projection_predicate(coordinate, 1))
        predicates.append(projection_predicate(coordinate, 0))
    for left in range(1, n + 1):
        for right in range(left + 1, n + 1):
            predicates.append(equality_predicate(left, right))
    for minimum in (1, (n - 1) // 2 + 1, n - 1):
        predicates.append(threshold_predicate(minimum))
    return predicates
