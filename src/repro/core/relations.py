"""The comparison engine: evaluate any definition on any (Π, A, D) triple.

This is the measurement layer behind Figure 1: a uniform interface that
runs the right estimator for each definition, quantifies over a suite of
adversaries (taking the worst report, since every definition is ∀A), and
assembles protocol × definition grids.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..analysis.stats import Decision
from ..distributions.base import Distribution
from ..errors import ExperimentError
from .announced import HONEST, AdversaryFactory
from .cr import cr_report
from .g import g_report
from .gstar import g_star_report, g_star_star_report
from .sb import sb_report
from .verdict import IndependenceReport

DEFINITIONS = ("Sb", "CR", "G", "G*", "G**")


@dataclass(frozen=True)
class MeasurementBudget:
    """Sample sizes for the estimators (kept per-definition because the
    distribution-sampling estimators and the interventional ones consume
    protocol executions very differently)."""

    distribution_samples: int = 400
    samples_per_point: int = 60

    def scaled(self, factor: float) -> "MeasurementBudget":
        return MeasurementBudget(
            distribution_samples=max(10, int(self.distribution_samples * factor)),
            samples_per_point=max(5, int(self.samples_per_point * factor)),
        )


def measure(
    definition: str,
    protocol,
    distribution: Distribution,
    adversary_factories: Mapping[str, AdversaryFactory],
    rng: random.Random,
    budget: Optional[MeasurementBudget] = None,
) -> IndependenceReport:
    """Worst-case report for one definition over a suite of adversaries.

    For the interventional definitions (Sb, G*, G**) the distribution
    enters through its support: those estimators fix input vectors drawn
    from the distribution's support set.
    """
    if budget is None:
        budget = MeasurementBudget()
    if definition not in DEFINITIONS:
        raise ExperimentError(f"unknown definition {definition!r}")
    if not adversary_factories:
        adversary_factories = {"honest": HONEST}

    worst: Optional[IndependenceReport] = None
    for label, factory in adversary_factories.items():
        if definition == "CR":
            report = cr_report(
                protocol,
                distribution,
                factory,
                samples=budget.distribution_samples,
                rng=rng,
            )
        elif definition == "G":
            report = g_report(
                protocol,
                distribution,
                factory,
                samples=budget.distribution_samples,
                rng=rng,
            )
        elif definition == "Sb":
            report = sb_report(
                protocol,
                factory,
                samples_per_point=budget.samples_per_point,
                rng=rng,
                input_vectors=distribution.support(),
            )
        elif definition == "G*":
            report = g_star_report(
                protocol,
                factory,
                samples_per_point=budget.samples_per_point,
                rng=rng,
                inputs_list=distribution.support(),
            )
        else:  # G**
            report = g_star_star_report(
                protocol,
                factory,
                samples_per_point=budget.samples_per_point,
                rng=rng,
            )
        report = IndependenceReport(
            definition=report.definition,
            gap=report.gap,
            error=report.error,
            samples=report.samples,
            witness=f"[A = {label}] {report.witness}",
            details=report.details,
        )
        if worst is None or report.gap > worst.gap:
            worst = report
    assert worst is not None
    return worst


@dataclass
class GridCell:
    protocol_name: str
    definition: str
    distribution_name: str
    report: IndependenceReport

    @property
    def decision(self) -> Decision:
        return self.report.decision


def definition_grid(
    protocols: Sequence,
    definitions: Sequence[str],
    distributions: Sequence[Distribution],
    adversary_suites: Mapping[str, Mapping[str, AdversaryFactory]],
    rng: random.Random,
    budget: Optional[MeasurementBudget] = None,
) -> List[GridCell]:
    """Evaluate every (protocol, definition, distribution) cell.

    ``adversary_suites`` maps a protocol's ``name`` to its adversary suite
    (protocol-specific attacks need the protocol instance, so suites are
    built by the caller).
    """
    if budget is None:
        budget = MeasurementBudget()
    cells: List[GridCell] = []
    for protocol in protocols:
        suite = adversary_suites.get(protocol.name, {"honest": HONEST})
        for distribution in distributions:
            for definition in definitions:
                report = measure(
                    definition, protocol, distribution, suite, rng, budget
                )
                cells.append(
                    GridCell(
                        protocol_name=protocol.name,
                        definition=definition,
                        distribution_name=distribution.name,
                        report=report,
                    )
                )
    return cells
