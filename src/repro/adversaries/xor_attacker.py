"""A* — the adversary of Claim 6.6 against protocol Π_G.

Corrupts exactly two parties and instructs them to follow Π_G honestly
*except* that their auxiliary bit is set to 1.  The function g then rigs
their announced values to ``r`` and ``r ⊕ y`` — individually uniform, yet
forcing the XOR of the whole announced vector to 0 on every execution.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import InvalidParameterError
from ..net.adversary import ProgramAdversary
from ..protocols.pi_g import PiGBroadcast


class XorAttacker(ProgramAdversary):
    """Run ``protocol.raised_program`` (b = 1) at two corrupted parties."""

    def __init__(self, protocol: PiGBroadcast, corrupted_pair: Iterable[int]):
        pair = sorted(set(corrupted_pair))
        if len(pair) != 2:
            raise InvalidParameterError(
                "the XOR attack needs exactly two corrupted parties"
            )
        if not hasattr(protocol, "raised_program"):
            raise InvalidParameterError(
                f"{type(protocol).__name__} exposes no auxiliary-bit deviation"
            )
        super().__init__(
            programs={i: protocol.raised_program for i in pair}
        )
        self.protocol = protocol
        self.pair = tuple(pair)
