"""Copy adversaries: announce a function of an honest party's value.

Three strengths, matched to the protocol being attacked:

* :class:`SequentialCopier` — the paper's Section 3.2 attack on the
  sequential baseline: the corrupted (later) sender discards its input
  and re-broadcasts the value it heard from the target.
* :class:`CommitEchoAdversary` — the rushing attack on naive
  commit-then-reveal: copy the target's commitment verbatim in the commit
  round (rushed), then echo the target's opening in the reveal round
  (rushed again).  Defeated by identity tags / proofs of knowledge.
* :class:`RushedBroadcastCopier` — generic one-round copy on any protocol
  whose announced value is a round-1 broadcast (used against
  interactive-consistency style substrates).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.adversary import Adversary
from ..net.message import Inbox, broadcast


class SequentialCopier(Adversary):
    """Corrupted party ``copier`` echoes ``target``'s bit in its own slot.

    ``transform`` post-processes the stolen bit (default: identity); pass
    ``lambda b: 1 - b`` for the anti-correlation variant.
    """

    def __init__(
        self,
        copier: int,
        target: int,
        transform: Callable[[int], int] = lambda bit: bit,
    ):
        if copier <= target:
            raise ValueError(
                "the copier must be scheduled after the target (copier > target)"
            )
        super().__init__(corrupted=[copier])
        self.copier = copier
        self.target = target
        self.transform = transform
        self._stolen: Optional[int] = None

    def act(self, round_number, rushed):
        # The target broadcasts in its scheduled round; thanks to rushing we
        # see it in that same round (broadcasts reach corrupted instantly).
        if self._stolen is None:
            for message in rushed[self.copier].broadcasts(tag="seq"):
                if message.sender == self.target:
                    self._stolen = message.payload
        if round_number == self.copier:
            bit = self.transform(self._stolen if self._stolen in (0, 1) else 0)
            return {self.copier: [broadcast(bit, tag="seq")]}
        return {self.copier: []}


class CommitEchoAdversary(Adversary):
    """Rushing copy attack on commit-then-reveal protocols.

    Round 1: replay the target's commit-round broadcast under our identity.
    Round 2: replay the target's reveal-round broadcast.  ``commit_tag``
    and ``reveal_tag`` select the protocol's message tags
    (defaults match :class:`repro.protocols.naive_commit_reveal`).
    ``transform_payload`` optionally rewrites the replayed payloads (for
    mauling variants).
    """

    def __init__(
        self,
        copier: int,
        target: int,
        commit_tag: str = "naive:commit",
        reveal_tag: str = "naive:reveal",
        transform_commit: Optional[Callable[[Any], Any]] = None,
        transform_reveal: Optional[Callable[[Any], Any]] = None,
    ):
        super().__init__(corrupted=[copier])
        self.copier = copier
        self.target = target
        self.commit_tag = commit_tag
        self.reveal_tag = reveal_tag
        self.transform_commit = transform_commit or (lambda payload: payload)
        self.transform_reveal = transform_reveal or (lambda payload: payload)

    def _replay(self, inbox: Inbox, tag: str, transform):
        for message in inbox.broadcasts(tag=tag):
            if message.sender == self.target:
                return [broadcast(transform(message.payload), tag=tag)]
        return []

    def act(self, round_number, rushed):
        inbox = rushed[self.copier]
        if round_number == 1:
            return {self.copier: self._replay(inbox, self.commit_tag, self.transform_commit)}
        if round_number == 2:
            return {self.copier: self._replay(inbox, self.reveal_tag, self.transform_reveal)}
        return {self.copier: []}


class RushedBroadcastCopier(Adversary):
    """Copy a single round-1 broadcast identified by ``source_tag``.

    The stolen payload is re-broadcast in the same round under
    ``own_tag`` — the generic pattern behind the interactive-consistency
    copy attack.
    """

    def __init__(self, copier: int, target: int, source_tag: str, own_tag: str):
        super().__init__(corrupted=[copier])
        self.copier = copier
        self.target = target
        self.source_tag = source_tag
        self.own_tag = own_tag

    def act(self, round_number, rushed):
        if round_number != 1:
            return {self.copier: []}
        for message in rushed[self.copier].broadcasts(tag=self.source_tag):
            if message.sender == self.target:
                return {self.copier: [broadcast(message.payload, tag=self.own_tag)]}
        return {self.copier: []}
