"""Adversary library: the attacks the paper's arguments are built around."""

from ..net.adversary import Adversary, PassiveAdversary, ProgramAdversary
from .biaser import InputFlipper, InputSubstitution
from .copier import CommitEchoAdversary, RushedBroadcastCopier, SequentialCopier
from .xor_attacker import XorAttacker

__all__ = [
    "Adversary",
    "PassiveAdversary",
    "ProgramAdversary",
    "InputFlipper",
    "InputSubstitution",
    "SequentialCopier",
    "CommitEchoAdversary",
    "RushedBroadcastCopier",
    "XorAttacker",
]
