"""Input-substitution adversaries.

The mildest possible deviation — corrupted parties run the protocol
honestly on *substituted* inputs — is exactly what the ideal process
permits, so every independence definition must tolerate it.  These
adversaries are the control group in the implication experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Union

from ..net.adversary import ProgramAdversary


class InputSubstitution(ProgramAdversary):
    """Corrupted parties run the honest program on attacker-chosen inputs.

    ``substitution`` is either a constant (every corrupted party uses it),
    a mapping ``party -> value``, or a callable ``party, original -> value``
    applied at setup time.
    """

    def __init__(
        self,
        protocol,
        corrupted: Iterable[int],
        substitution: Union[int, Dict[int, int], Callable] = 0,
    ):
        corrupted = sorted(set(corrupted))
        super().__init__(programs={i: protocol.program for i in corrupted})
        self._substitution = substitution

    def setup(self, n, config, corrupted_inputs, rng, session=""):
        overrides = {}
        for i in self.corrupted:
            original = corrupted_inputs.get(i)
            if callable(self._substitution):
                overrides[i] = self._substitution(i, original)
            elif isinstance(self._substitution, dict):
                overrides[i] = self._substitution.get(i, original)
            else:
                overrides[i] = self._substitution
        self._inputs_override = overrides
        super().setup(n, config, corrupted_inputs, rng, session)


class InputFlipper(InputSubstitution):
    """Corrupted parties announce the complement of their real input."""

    def __init__(self, protocol, corrupted: Iterable[int]):
        super().__init__(
            protocol,
            corrupted,
            substitution=lambda _party, original: 1 - original
            if original in (0, 1)
            else 1,
        )
