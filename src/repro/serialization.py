"""Canonical, deterministic byte encoding used throughout the library.

Protocol messages, commitment inputs, Fiat--Shamir challenges and transcript
hashes all need a stable byte representation.  Python's ``repr`` and
``pickle`` are unsuitable (version dependent, not injective across types),
so we define a tiny canonical encoding:

* ``int``    -> ``b"i" + len + two's-complement-free sign byte + magnitude``
* ``str``    -> ``b"s" + len + utf-8 bytes``
* ``bytes``  -> ``b"b" + len + bytes``
* ``bool``   -> ``b"t"`` / ``b"f"``
* ``None``   -> ``b"n"``
* ``tuple``/``list`` -> ``b"l" + count + encoded items``
* ``dict``   -> ``b"d" + count + encoded (key, value) pairs, keys sorted``

The encoding is injective on the supported types, which is what makes it
safe to hash for commitments and challenges.
"""

from __future__ import annotations

from typing import Any

_LEN_BYTES = 8


def _encode_length(value: int) -> bytes:
    return value.to_bytes(_LEN_BYTES, "big")


def encode(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``.

    Raises:
        TypeError: if ``value`` (or a nested element) has an unsupported type.
    """
    # bool must be tested before int (bool is a subclass of int).
    if value is None:
        return b"n"
    if value is True:
        return b"t"
    if value is False:
        return b"f"
    if isinstance(value, int):
        sign = b"-" if value < 0 else b"+"
        magnitude = abs(value)
        width = max(1, (magnitude.bit_length() + 7) // 8)
        body = magnitude.to_bytes(width, "big")
        return b"i" + _encode_length(len(body)) + sign + body
    if isinstance(value, str):
        body = value.encode("utf-8")
        return b"s" + _encode_length(len(body)) + body
    if isinstance(value, (bytes, bytearray)):
        body = bytes(value)
        return b"b" + _encode_length(len(body)) + body
    if isinstance(value, (tuple, list)):
        parts = [b"l", _encode_length(len(value))]
        parts.extend(encode(item) for item in value)
        return b"".join(parts)
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: encode(kv[0]))
        parts = [b"d", _encode_length(len(items))]
        for key, val in items:
            parts.append(encode(key))
            parts.append(encode(val))
        return b"".join(parts)
    raise TypeError(f"cannot canonically encode value of type {type(value).__name__}")


def encode_many(*values: Any) -> bytes:
    """Encode several values as a single canonical tuple."""
    return encode(tuple(values))
