"""Exception hierarchy for the simbcast library.

Every error raised by the library derives from :class:`SimbcastError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the layer that failed (crypto, network, protocol, ...).
"""

from __future__ import annotations


class SimbcastError(Exception):
    """Base class for all simbcast errors."""


class CryptoError(SimbcastError):
    """A cryptographic operation failed (bad parameters, invalid proof, ...)."""


class InvalidParameterError(CryptoError):
    """Cryptographic parameters are malformed or out of range."""


class CommitmentError(CryptoError):
    """A commitment failed to verify against its claimed opening."""


class ShareError(CryptoError):
    """A secret share is inconsistent or reconstruction is impossible."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class ProofError(CryptoError):
    """A zero-knowledge proof failed to verify."""


class NetworkError(SimbcastError):
    """The network simulation was driven into an invalid state."""


class ProtocolError(SimbcastError):
    """A protocol invariant was violated during execution."""


class ConsistencyError(ProtocolError):
    """Honest parties disagree on an output that must be consistent."""


class CorrectnessError(ProtocolError):
    """An honest party's input was not faithfully announced."""


class DistributionError(SimbcastError):
    """An input distribution ensemble is malformed or unsupported."""


class ExperimentError(SimbcastError):
    """An experiment harness failed to produce a verdict."""


class ScenarioError(SimbcastError):
    """A declarative scenario (or fault-plan) spec failed schema validation."""
