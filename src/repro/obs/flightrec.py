"""The execution flight recorder: a bounded ring buffer you can leave on.

A :class:`FlightRecorder` retains the *last N* observability records seen
by this process — tracer spans and events, scheduler round summaries,
per-message routing entries, and injected
:class:`~repro.faults.injector.FaultRecord` entries — in a fixed-size
ring (``collections.deque(maxlen=N)``), so its memory and per-record
cost are constant no matter how long the run.  It is the post-mortem
half of :mod:`repro.obs`: the live tracer/metrics answer "what is the
system doing", the flight recorder answers "what were the last few
thousand things it did before something went wrong".

The recorder dumps its buffer as a ``results/flightrec_<run>.jsonl``
snapshot automatically when

* a protocol hits its graceful ``timeout_rounds`` deadline
  (:mod:`repro.net.scheduler`),
* an exception escapes :func:`repro.net.network.run_protocol`,
* honest parties are caught disagreeing on the announced vector
  (:meth:`repro.net.transcript.Execution.announced_vector`), or
* a conformance check logs a failing cell
  (``tests/conformance/conftest.py``).

Lifecycle mirrors the rest of the switchboard: **off by default**
(every hook guards on ``_obs.flightrec is not None``, one attribute
load + identity test), installed process-wide with :func:`enable` /
scoped with :func:`recording`.  Parallel shards record into their own
ring (workers inherit "flight recording is on" via the engine's task
flag), ship their buffer back with the shard payload, and the
coordinator grafts it in with :meth:`FlightRecorder.fold` — the same
reduction path :meth:`repro.obs.Tracer.fold` and
:meth:`repro.obs.Metrics.merge` use.

Snapshots are diagnostic artifacts only: they carry wall-clock
timestamps and are written *next to* — never inside — the
deterministic ``--json`` experiment artifacts, so enabling the recorder
cannot perturb a ``diffjson`` gate (``tests/test_experiments_diffjson.py``
locks this in).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

from .metrics import jsonable
from .tracer import Tracer

#: Ring capacity when the caller does not choose one.  Sized so a dump
#: spans several rounds of a mid-size protocol (n=10 is ~100 messages a
#: round) while the resident buffer stays well under a megabyte.
DEFAULT_CAPACITY = 4096

#: Where dumps land unless overridden (per-recorder or via the
#: ``REPRO_FLIGHTREC_DIR`` environment variable).
DEFAULT_DUMP_DIR = "results"


class FlightRecorder:
    """A fixed-capacity ring of observability records for one process."""

    __slots__ = (
        "capacity",
        "run_id",
        "dump_dir",
        "buffer",
        "pushed",
        "dumps",
        "_clock",
        "_epoch",
        "_dump_seq",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        run_id: Optional[str] = None,
        dump_dir: Optional[str] = None,
        clock=None,
    ):
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.run_id = run_id if run_id is not None else f"pid{os.getpid()}"
        # Dump-path override only: the value steers where debugging snapshots
        # land, never what a shard computes, so it stays outside the replay
        # capture seam on purpose.
        self.dump_dir = dump_dir or os.environ.get(  # repro: allow[ENV001]
            "REPRO_FLIGHTREC_DIR", DEFAULT_DUMP_DIR
        )
        self.buffer: deque = deque(maxlen=capacity)
        #: Total records ever pushed; ``pushed - len(buffer)`` is how many
        #: the ring has already forgotten.
        self.pushed = 0
        #: Paths of every snapshot this recorder has written, in order.
        self.dumps: List[str] = []
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self._dump_seq = 0

    # -- recording ---------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def push(self, kind: str, **fields: Any) -> None:
        """Append one record; the ring silently forgets the oldest when full."""
        record = {"kind": kind, "ts": self._now()}
        record.update(fields)
        self.buffer.append(record)
        self.pushed += 1

    def push_record(self, record: Dict[str, Any]) -> None:
        """Mirror a pre-built tracer record (span close / event) into the ring."""
        mirrored = dict(record)
        mirrored["kind"] = f"trace.{mirrored.pop('type', 'record')}"
        self.buffer.append(mirrored)
        self.pushed += 1

    def record_message(self, round_number: int, message: Any) -> None:
        """One routing entry per wire message: who → whom, which tag."""
        self.push(
            "message",
            round=round_number,
            sender=message.sender,
            recipient=message.recipient,
            tag=message.tag,
        )

    def record_fault(self, fault: Any) -> None:
        """Mirror one injected :class:`FaultRecord` into the ring."""
        self.push(
            "fault",
            round=fault.round,
            fault=fault.kind,
            sender=fault.sender,
            recipient=fault.recipient,
            tag=fault.tag,
            detail=fault.detail,
        )

    def fold(self, records: Iterable[Dict[str, Any]]) -> None:
        """Graft a shard's buffer (see :meth:`snapshot`) into this ring.

        The cross-process reduction step used by
        :class:`repro.parallel.ExperimentEngine`: workers snapshot their
        recorder, ship the plain dicts back with the payload, and the
        coordinator folds them in task order.  Timestamps keep the
        worker's epoch (comparable within a shard, like folded spans).
        """
        for record in records:
            folded = dict(record)
            folded["shard"] = True
            self.buffer.append(folded)
            self.pushed += 1

    # -- reading / dumping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.buffer)

    @property
    def forgotten(self) -> int:
        """How many records the ring has already discarded."""
        return self.pushed - len(self.buffer)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The retained records, oldest first, as JSON-safe plain dicts."""
        return [jsonable(record) for record in self.buffer]

    def dump(self, reason: str, path: Optional[str] = None, **context: Any) -> str:
        """Write the buffer as a JSONL snapshot and return its path.

        Line 1 is a header record (``kind: "flightrec.header"``) carrying
        the dump reason, ring statistics, and any caller context; every
        following line is one buffered record, oldest first.
        """
        self._dump_seq += 1
        if path is None:
            name = f"flightrec_{self.run_id}_{self._dump_seq:03d}.jsonl"
            path = os.path.join(self.dump_dir, name)
        header = {
            "kind": "flightrec.header",
            "reason": reason,
            "run_id": self.run_id,
            "capacity": self.capacity,
            "retained": len(self.buffer),
            "forgotten": self.forgotten,
            "context": jsonable(context),
        }
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True))
            handle.write("\n")
            for record in self.buffer:
                handle.write(json.dumps(jsonable(record), sort_keys=True))
                handle.write("\n")
        self.dumps.append(path)
        return path

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self.buffer)}/{self.capacity} records, "
            f"run_id={self.run_id!r})"
        )


def read_dump(path) -> List[Dict[str, Any]]:
    """Load a snapshot written by :meth:`FlightRecorder.dump` (header first)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- process-wide lifecycle ----------------------------------------------------------


def _install(recorder: Optional[FlightRecorder]) -> None:
    from . import runtime

    runtime.flightrec = recorder


def active() -> Optional[FlightRecorder]:
    """The process-wide recorder, or ``None`` when flight recording is off."""
    from . import runtime

    return runtime.flightrec


def enable(
    capacity: int = DEFAULT_CAPACITY,
    run_id: Optional[str] = None,
    dump_dir: Optional[str] = None,
) -> FlightRecorder:
    """Install a process-wide recorder (replacing any current one)."""
    recorder = FlightRecorder(capacity=capacity, run_id=run_id, dump_dir=dump_dir)
    _install(recorder)
    Tracer.flight_tap = recorder
    return recorder


def disable() -> None:
    """Turn flight recording off process-wide."""
    _install(None)
    Tracer.flight_tap = None


@contextmanager
def recording(
    capacity: int = DEFAULT_CAPACITY,
    run_id: Optional[str] = None,
    dump_dir: Optional[str] = None,
):
    """Scope a recorder: enable, yield it, restore whatever was on before."""
    previous = active()
    recorder = enable(capacity=capacity, run_id=run_id, dump_dir=dump_dir)
    try:
        yield recorder
    finally:
        _install(previous)
        Tracer.flight_tap = previous


def dump_if_active(reason: str, **context: Any) -> Optional[str]:
    """Dump the process recorder, if one is on; never raises.

    This is the hook the failure paths call — a diagnostic snapshot must
    not turn a diagnosable failure into an I/O crash, so write errors are
    swallowed (the failure itself still propagates to the caller).
    """
    recorder = active()
    if recorder is None:
        return None
    try:
        return recorder.dump(reason, **context)
    except OSError:
        return None
