"""CLI driver: ``python -m repro obs {export,report,diff,baseline} ...``.

* ``export`` — run experiments with tracing, metrics, and the flight
  recorder on, and write the exportable artifacts: a Perfetto-loadable
  Chrome trace (``trace_chrome.json``), one Prometheus text exposition
  per experiment (``<ID>.prom``, fastpath gauges included), the raw
  metrics snapshots (``<ID>.metrics.json``), and a per-round
  message-flow timeline for one zoo protocol (text + HTML);
* ``baseline`` — regenerate ``results/OBS_baseline.json``, the canonical
  metrics snapshot of the pinned experiment set (commit the result);
* ``diff`` — compare a fresh run (or a ``--json`` artifact directory via
  ``--from``) against the baseline: deterministic counters must match
  exactly, timings are checked against a tolerance band (advisory unless
  ``--strict-timings``); exits nonzero on drift;
* ``report`` — a human-readable summary of the key cost counters per
  pinned experiment, annotated against the baseline when one exists.

``python -m repro obs ...`` reaches this driver through the
:mod:`repro.__main__` dispatcher; ``python -m repro.obs`` works too.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from . import Metrics, Tracer, flightrec, runtime
from . import export as export_mod
from .baseline import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_TIMING_TOLERANCE,
    PINNED_EXPERIMENTS,
    PINNED_SCALE,
    canonical_snapshot,
    capture,
    compare,
    load,
    pinned_config,
    save,
)

#: The headline counters the report prints per experiment (when present).
KEY_COUNTERS = (
    "net.rounds",
    "net.messages.sent",
    "net.bytes.sent",
    "crypto.group.exp",
    "crypto.field.mul",
    "crypto.hash.blocks",
    "crypto.vss.shares_verified",
)


def _config_from_args(args) -> Any:
    config = pinned_config(scale=args.scale, seed=args.seed)
    if args.n is not None:
        config.n = args.n
    if args.t is not None:
        config.t = args.t
    return config


def _config_from_baseline(baseline: Dict[str, Any]) -> Any:
    from ..experiments.common import ExperimentConfig

    pinned = baseline.get("config", {})
    return ExperimentConfig(
        n=pinned.get("n", 5),
        t=pinned.get("t", 2),
        seed=pinned.get("seed", 20050717),
        scale=pinned.get("scale", PINNED_SCALE),
        security_bits=pinned.get("security_bits", 24),
    )


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=PINNED_SCALE)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--t", type=int, default=None)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (results identical at any value)",
    )


def _fresh_snapshots(
    experiment_ids: List[str],
    config: Any,
    jobs: int,
    from_dir: Optional[str],
) -> Dict[str, Dict[str, Any]]:
    """Canonical snapshots for the named experiments: re-run, or read
    ``--json`` artifacts previously written by the experiments CLI."""
    if from_dir is not None:
        fresh = {}
        for experiment_id in experiment_ids:
            path = os.path.join(from_dir, f"{experiment_id}.json")
            with open(path, "r", encoding="utf-8") as handle:
                fresh[experiment_id] = canonical_snapshot(json.load(handle))
        return fresh
    from ..experiments.registry import run_many

    results = run_many(experiment_ids, config, jobs=jobs)
    return {result.experiment_id: canonical_snapshot(result) for result in results}


# -- subcommands ---------------------------------------------------------------------


def cmd_export(args) -> int:
    from ..experiments.common import standard_protocols
    from ..experiments.registry import REGISTRY, run_many

    experiment_ids = args.experiments or ["E-COST"]
    unknown = [e for e in experiment_ids if e not in REGISTRY]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    os.makedirs(args.out, exist_ok=True)

    tracer = Tracer()
    with flightrec.recording(run_id="export", dump_dir=args.out):
        with runtime.observed(tracer=tracer, metrics=Metrics()):
            results = run_many(experiment_ids, config, jobs=args.jobs)

    trace_path = os.path.join(args.out, "trace_chrome.json")
    export_mod.write_chrome_trace(trace_path, tracer.records, process_name="repro")
    written = [trace_path]

    gauges = export_mod.fastpath_gauges()
    failures = 0
    for result in results:
        if not result.passed:
            failures += 1
        metrics = export_mod.metrics_from_snapshot(
            result.metrics.get("counters") or {},
            result.metrics.get("histograms") or {},
        )
        prom_path = os.path.join(args.out, f"{result.experiment_id}.prom")
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(export_mod.prometheus_text(metrics, extra_gauges=gauges))
        snapshot_path = os.path.join(args.out, f"{result.experiment_id}.metrics.json")
        with open(snapshot_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment_id": result.experiment_id,
                    "passed": result.passed,
                    "counters": result.metrics.get("counters") or {},
                    "histograms": result.metrics.get("histograms") or {},
                    "wall_seconds": result.metrics.get("wall_seconds"),
                    "fastpath": gauges,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        written.extend([prom_path, snapshot_path])

    protocol = standard_protocols(config).get(args.protocol)
    if protocol is None:
        print(f"unknown protocol {args.protocol!r} for the timeline", file=sys.stderr)
        return 2
    execution = protocol.run(
        [i % 2 for i in range(protocol.n)], seed=config.seed
    )
    slug = args.protocol.replace("-", "_")
    text_path = os.path.join(args.out, f"timeline_{slug}.txt")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(export_mod.timeline(execution))
    html_path = os.path.join(args.out, f"timeline_{slug}.html")
    with open(html_path, "w", encoding="utf-8") as handle:
        handle.write(
            export_mod.timeline_html(
                execution, title=f"{args.protocol} execution timeline"
            )
        )
    written.extend([text_path, html_path])

    for path in written:
        print(f"wrote {path}")
    return 1 if failures else 0


def cmd_baseline(args) -> int:
    config = _config_from_args(args)
    experiment_ids = args.experiments or list(PINNED_EXPERIMENTS)
    baseline = capture(experiment_ids, config, jobs=args.jobs)
    save(baseline, args.out)
    counters = sum(
        len(snapshot["counters"]) for snapshot in baseline["experiments"].values()
    )
    print(
        f"baseline written to {args.out}: {len(baseline['experiments'])} "
        f"experiment(s), {counters} counters"
    )
    return 0


def cmd_diff(args) -> int:
    try:
        baseline = load(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"cannot load baseline: {exc}", file=sys.stderr)
        return 2
    config = _config_from_baseline(baseline)
    experiment_ids = sorted(baseline.get("experiments", {}))
    fresh = _fresh_snapshots(experiment_ids, config, args.jobs, args.from_dir)
    report = compare(
        baseline,
        fresh,
        timing_tolerance=args.timing_tolerance,
        strict_timings=args.strict_timings,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_report(args) -> int:
    baseline = None
    try:
        baseline = load(args.baseline)
    except (OSError, ValueError):
        pass
    if baseline is not None:
        config = _config_from_baseline(baseline)
        experiment_ids = sorted(baseline.get("experiments", {}))
    else:
        config = _config_from_args(args)
        experiment_ids = list(PINNED_EXPERIMENTS)
    fresh = _fresh_snapshots(experiment_ids, config, args.jobs, args.from_dir)

    expected = (baseline or {}).get("experiments", {})
    for experiment_id in experiment_ids:
        snapshot = fresh.get(experiment_id)
        if snapshot is None:
            print(f"[{experiment_id}] missing")
            continue
        status = "PASS" if snapshot["passed"] else "MISMATCH"
        print(f"[{experiment_id}] {status}")
        base = expected.get(experiment_id, {})
        base_counters = base.get("counters", {})
        shown = 0
        for name in KEY_COUNTERS:
            if name not in snapshot["counters"]:
                continue
            value = snapshot["counters"][name]
            line = f"  {name:<30} {value:>14,.0f}"
            if name in base_counters:
                mark = "=" if base_counters[name] == value else "DRIFT"
                line += f"  (baseline {base_counters[name]:,.0f} {mark})"
            print(line)
            shown += 1
        others = len(snapshot["counters"]) - shown
        if others > 0:
            print(f"  ... {others} more counter(s)")
        for name, value in sorted(snapshot["timings"].items()):
            line = f"  {name:<30} {value:>14.3f}"
            base_timings = base.get("timings", {})
            if name in base_timings and base_timings[name] > 0:
                line += f"  (baseline {base_timings[name]:.3f}, x{value / base_timings[name]:.2f})"
            print(line)
    gauges = export_mod.fastpath_gauges()
    active = {name: value for name, value in gauges.items() if value}
    print(f"fastpath (process-local, not regression-gated): {len(active)} live gauge(s)")
    for name, value in sorted(active.items()):
        print(f"  {name:<30} {value:>14,.0f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Observability exports and the metrics-regression surface.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    export_parser = subparsers.add_parser(
        "export", help="run experiments and write trace/metrics/timeline artifacts"
    )
    export_parser.add_argument(
        "experiments", nargs="*", help="experiment ids (default: E-COST)"
    )
    export_parser.add_argument("--out", default="obs-artifacts", metavar="DIR")
    export_parser.add_argument(
        "--protocol",
        default="cgma",
        help="zoo protocol for the timeline artifacts (default: cgma)",
    )
    _add_run_options(export_parser)
    export_parser.set_defaults(func=cmd_export)

    baseline_parser = subparsers.add_parser(
        "baseline", help="regenerate the committed metrics baseline"
    )
    baseline_parser.add_argument(
        "experiments", nargs="*", help=f"experiment ids (default: {PINNED_EXPERIMENTS})"
    )
    baseline_parser.add_argument(
        "--out", default=DEFAULT_BASELINE_PATH, metavar="PATH"
    )
    _add_run_options(baseline_parser)
    baseline_parser.set_defaults(func=cmd_baseline)

    diff_parser = subparsers.add_parser(
        "diff", help="compare a fresh run against the committed baseline"
    )
    diff_parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    diff_parser.add_argument(
        "--from",
        dest="from_dir",
        default=None,
        metavar="DIR",
        help="read --json artifacts from DIR instead of re-running",
    )
    diff_parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=DEFAULT_TIMING_TOLERANCE,
        help="relative band for timings (default: %(default)s)",
    )
    diff_parser.add_argument(
        "--strict-timings",
        action="store_true",
        help="timing drift outside the band fails the diff (default: advisory)",
    )
    _add_run_options(diff_parser)
    diff_parser.set_defaults(func=cmd_diff)

    report_parser = subparsers.add_parser(
        "report", help="print the key cost counters, annotated against the baseline"
    )
    report_parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    report_parser.add_argument(
        "--from", dest="from_dir", default=None, metavar="DIR"
    )
    _add_run_options(report_parser)
    report_parser.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
