"""Execution tracing: nested wall-clock spans and structured events.

A :class:`Tracer` accumulates an ordered list of records, each a plain
dict.  Two record types exist:

* ``{"type": "span", "name", "path", "depth", "start", "end",
  "duration", "attrs"}`` — appended when a span *closes* (so a parent
  span appears after its children, as in most trace formats);
* ``{"type": "event", "name", "path", "ts", "attrs"}`` — appended
  inline, stamped with the enclosing span path.

``path`` is the slash-joined chain of open span names ("scheduler.run/
round"), which is what makes the flat JSONL stream reconstructible into a
tree.  All timestamps come from ``time.perf_counter`` relative to the
tracer's creation, so traces are diffable across runs.

:class:`NoopTracer` implements the same surface with every method a
no-op; the module-level :data:`NOOP_TRACER` is the process default (see
:mod:`repro.obs.runtime`).  Instrumented code gates attr-dict
construction on ``tracer.enabled`` so the disabled path allocates
nothing.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

from .metrics import jsonable


class _SpanHandle:
    """Context manager for one open span; supports late attribute updates."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer._now()
        self._tracer._stack.append(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        path = "/".join(tracer._stack)
        tracer._stack.pop()
        end = tracer._now()
        attrs = self.attrs
        if exc_type is not None:
            attrs = dict(attrs)
            attrs["error"] = exc_type.__name__
        record = {
            "type": "span",
            "name": self.name,
            "path": path,
            "depth": len(tracer._stack),
            "start": self._start,
            "end": end,
            "duration": end - self._start,
            "attrs": jsonable(attrs),
        }
        tracer.records.append(record)
        tap = Tracer.flight_tap
        if tap is not None:
            tap.push_record(record)


class Tracer:
    """Collects spans and events for one observed run."""

    enabled = True

    #: When a :class:`repro.obs.flightrec.FlightRecorder` is enabled it
    #: registers itself here, and every closed span / recorded event is
    #: mirrored into its ring.  A class attribute (not an import) so the
    #: tracer stays importable before the recorder module loads.
    flight_tap = None

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self._stack: List[str] = []
        self.records: List[Dict[str, Any]] = []

    def _now(self) -> float:
        return self._clock() - self._epoch

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span: ``with tracer.span("scheduler.run", n=5):``."""
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time structured event inside the current span."""
        record = {
            "type": "event",
            "name": name,
            "path": "/".join(self._stack),
            "ts": self._now(),
            "attrs": jsonable(attrs),
        }
        self.records.append(record)
        tap = Tracer.flight_tap
        if tap is not None:
            tap.push_record(record)

    def fold(self, records: List[Dict[str, Any]]) -> None:
        """Graft records captured by *another* tracer under the current path.

        This is the cross-process reduction step used by
        :mod:`repro.parallel`: worker processes trace into their own
        :class:`Tracer`, ship ``records`` back (they are plain dicts, so they
        pickle), and the coordinator folds them in shard order.  Paths and
        depths are re-rooted at the coordinator's current span; timestamps
        keep the worker tracer's epoch (they remain comparable *within* a
        shard, which is what span durations need).
        """
        base_path = "/".join(self._stack)
        base_depth = len(self._stack)
        for record in records:
            folded = dict(record)
            if base_path:
                child_path = record.get("path", "")
                folded["path"] = f"{base_path}/{child_path}" if child_path else base_path
            if "depth" in folded:
                folded["depth"] = record["depth"] + base_depth
            self.records.append(folded)

    # -- reading / export --------------------------------------------------------

    @property
    def current_depth(self) -> int:
        return len(self._stack)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            record
            for record in self.records
            if record["type"] == "span" and (name is None or record["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            record
            for record in self.records
            if record["type"] == "event" and (name is None or record["name"] == name)
        ]

    def to_jsonl(self) -> str:
        """One JSON object per line, in record order (the trace artifact)."""
        return "\n".join(json.dumps(record, sort_keys=True) for record in self.records)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text)
                handle.write("\n")

    def __repr__(self) -> str:
        return f"Tracer({len(self.records)} records)"


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Load a trace written by :meth:`Tracer.write_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class _NullSpan:
    """A reusable, state-free context manager."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NoopTracer:
    """The default tracer: every operation does nothing and stores nothing."""

    enabled = False
    records: tuple = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def fold(self, records: list) -> None:
        return None

    def spans(self, name: Optional[str] = None) -> list:
        return []

    def events(self, name: Optional[str] = None) -> list:
        return []

    def to_jsonl(self) -> str:
        return ""

    def __repr__(self) -> str:
        return "NoopTracer()"


NOOP_TRACER = NoopTracer()
