"""The process-wide observability switchboard.

Instrumented modules read two module attributes on their hot paths::

    from ..obs import runtime as _obs

    if _obs.metrics is not None:
        _obs.metrics.inc("crypto.group.exp")
    if _obs.tracer.enabled:
        _obs.tracer.event("round", number=r)

Both default to *off* (``metrics is None``, ``tracer`` is the no-op
tracer), so an uninstrumented run pays one attribute load and one
``is None`` / truthiness test per hook — within measurement noise of the
seed benchmarks.

Installation is explicit and scoped: prefer the :func:`observed` context
manager, which saves and restores whatever was installed before (so
nested observations — e.g. E-COST measuring one protocol inside an
already-observed experiment run — stay isolated).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

from .metrics import Metrics
from .tracer import NOOP_TRACER, Tracer

#: The active tracer.  Never ``None``; disabled means the no-op tracer.
tracer = NOOP_TRACER

#: The active metrics registry, or ``None`` when metrics are off.
metrics: Optional[Metrics] = None

#: The active flight recorder, or ``None`` when flight recording is off.
#: Managed by :mod:`repro.obs.flightrec` (``enable``/``disable``/
#: ``recording``); hooks guard on ``_obs.flightrec is not None`` exactly
#: like the metrics hooks do.  Deliberately *not* part of
#: :func:`install`/:func:`observed`: the recorder is a process-lifetime
#: diagnostic ring, not a per-observation registry, so scoping a
#: measurement must not silently discard the crash buffer.
flightrec = None


def install(
    new_tracer: Optional[Tracer] = None, new_metrics: Optional[Metrics] = None
) -> None:
    """Install a tracer and/or metrics registry process-wide."""
    global tracer, metrics
    tracer = new_tracer if new_tracer is not None else NOOP_TRACER
    metrics = new_metrics


def uninstall() -> None:
    """Reset to the defaults: no-op tracer, no metrics."""
    install(None, None)


@contextmanager
def observed(
    tracer: Optional[Tracer] = None, metrics: Optional[Metrics] = None
):
    """Scope an observation: install, yield ``(tracer, metrics)``, restore.

    ``metrics`` defaults to a fresh :class:`Metrics` so the common
    "measure this run" case is one line; pass an explicit tracer to also
    capture spans/events.
    """
    effective_metrics = metrics if metrics is not None else Metrics()
    effective_tracer = tracer if tracer is not None else NOOP_TRACER
    # The parameters shadow the module attributes; read them via globals().
    previous = (globals()["tracer"], globals()["metrics"])
    install(effective_tracer, effective_metrics)
    try:
        yield effective_tracer, effective_metrics
    finally:
        install(previous[0], previous[1])
