"""Exporters: Chrome trace-event JSON, Prometheus text, message timelines.

Three ways out of the in-process observability registries:

* :func:`chrome_trace` turns :class:`~repro.obs.tracer.Tracer` records
  into the Chrome trace-event JSON format — load the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` to see the span tree
  on a timeline;
* :func:`prometheus_text` renders a :class:`~repro.obs.metrics.Metrics`
  registry in the Prometheus text exposition format (counters as
  ``*_total``, histograms as count/sum plus min/max/mean gauges), with
  metric names sanitized and per-entity suffixes (``...party.3``) lifted
  into labels;
* :func:`timeline` / :func:`timeline_html` render any
  :class:`~repro.net.transcript.Execution` as a per-round message-flow
  table (who sent what to whom, faults inline).

:func:`fastpath_gauges` surfaces the fastpath kernels' process-local
``fastpath.*`` telemetry as a gauge namespace for these exports.  Those
counters are cache-warmth dependent (they differ between serial and
parallel topologies by design), so they appear *only* here and in obs
snapshots — never in the deterministic, diffjson-gated experiment
artifact counters.
"""

from __future__ import annotations

import json
import re
from html import escape
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import Histogram, Metrics


def metrics_from_snapshot(
    counters: Mapping[str, float], histograms: Optional[Mapping[str, Mapping[str, float]]] = None
) -> Metrics:
    """Rebuild a :class:`Metrics` registry from snapshot dicts.

    Experiment results carry their metrics as plain ``counters`` /
    ``histograms`` snapshots (see ``ExperimentResult.metrics``); this
    inverse lets the exporters render them without re-running anything.
    Histogram means are recomputed from count/sum, as in the original.
    """
    metrics = Metrics()
    for name, value in (counters or {}).items():
        metrics.inc(name, value)
    for name, stats in (histograms or {}).items():
        histogram = Histogram()
        histogram.count = int(stats.get("count", 0))
        histogram.total = float(stats.get("sum", 0.0))
        if histogram.count:
            histogram.min = float(stats.get("min", 0.0))
            histogram.max = float(stats.get("max", 0.0))
        metrics.histograms[name] = histogram
    return metrics


# -- Chrome trace-event JSON ---------------------------------------------------------

#: Microseconds per tracer second (trace-event timestamps are in µs).
_US = 1_000_000


def chrome_trace(
    records: Iterable[Mapping[str, Any]], process_name: str = "repro"
) -> Dict[str, Any]:
    """Convert tracer records into a Chrome trace-event JSON object.

    Spans become complete ("X") events and events become instants ("i"),
    all on one thread track per shard — the viewer reconstructs nesting
    from the timestamps, which is exactly what the tracer's start/end
    pairs encode.  Records folded in from parallel shards (see
    :meth:`repro.obs.Tracer.fold`) keep their own epoch, so each shard
    gets its own thread id to keep its timeline internally consistent.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for record in records:
        tid = 2 if record.get("shard") else 1
        kind = record.get("type") or str(record.get("kind", "")).removeprefix("trace.")
        if kind == "span":
            events.append(
                {
                    "name": record["name"],
                    "cat": record.get("path", ""),
                    "ph": "X",
                    "ts": record["start"] * _US,
                    "dur": record["duration"] * _US,
                    "pid": 1,
                    "tid": tid,
                    "args": dict(record.get("attrs") or {}),
                }
            )
        elif kind == "event":
            events.append(
                {
                    "name": record["name"],
                    "cat": record.get("path", ""),
                    "ph": "i",
                    "ts": record["ts"] * _US,
                    "pid": 1,
                    "tid": tid,
                    "s": "t",
                    "args": dict(record.get("attrs") or {}),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path, records: Iterable[Mapping[str, Any]], process_name: str = "repro"
) -> None:
    """Dump :func:`chrome_trace` as a Perfetto-loadable ``.json`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records, process_name=process_name), handle, indent=1)
        handle.write("\n")


# -- Prometheus text exposition ------------------------------------------------------

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
#: Per-entity counter suffixes lifted into labels: ``net.bytes.sent.party.3``
#: becomes ``repro_net_bytes_sent_by_party_total{party="3"}``.
_LABEL_SUFFIXES = (re.compile(r"^(?P<base>.+)\.party\.(?P<value>\d+)$", ), "party")


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """A Prometheus-legal metric name: namespaced, ``[a-zA-Z0-9_:]`` only."""
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if not flat or not (flat[0].isalpha() or flat[0] in "_:"):
        flat = f"_{flat}"
    return f"{namespace}_{flat}" if namespace else flat


def split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Split a dotted counter name into (base name, labels).

    Only the per-entity suffixes the instrumentation actually emits are
    recognized; everything else passes through label-free.
    """
    pattern, label = _LABEL_SUFFIXES
    match = pattern.match(name)
    if match:
        return f"{match.group('base')}.by_{label}", {label: match.group("value")}
    return name, {}


def _format_value(value: Any) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return f"{{{inner}}}"


def prometheus_text(
    metrics: Metrics,
    namespace: str = "repro",
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters become ``<namespace>_<name>_total`` counter families;
    histograms become ``_count``/``_sum`` (summary convention) plus
    ``_min``/``_max``/``_mean`` gauges; ``extra_gauges`` (e.g.
    :func:`fastpath_gauges`) are appended as plain gauges.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str, kind: str) -> Dict[str, Any]:
        entry = families.setdefault(name, {"kind": kind, "samples": []})
        return entry

    for name, value in sorted(metrics.counters.items()):
        base, labels = split_labels(name)
        fam = family(f"{sanitize_metric_name(base, namespace)}_total", "counter")
        fam["samples"].append((labels, value))
    for name, histogram in sorted(metrics.histograms.items()):
        base, labels = split_labels(name)
        flat = sanitize_metric_name(base, namespace)
        snap = histogram.snapshot()
        family(f"{flat}_count", "counter")["samples"].append((labels, snap["count"]))
        family(f"{flat}_sum", "counter")["samples"].append((labels, snap["sum"]))
        for stat in ("min", "max", "mean"):
            family(f"{flat}_{stat}", "gauge")["samples"].append((labels, snap[stat]))
    for name, value in sorted((extra_gauges or {}).items()):
        base, labels = split_labels(name)
        family(sanitize_metric_name(base, namespace), "gauge")["samples"].append(
            (labels, value)
        )

    lines: List[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {name} {entry['kind']}")
        for labels, value in entry["samples"]:
            lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{'name{labels}': value}``.

    The round-trip half used by the tests and the CI smoke job — enough
    of the format to verify :func:`prometheus_text` output, not a
    general scraper.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


def fastpath_gauges() -> Dict[str, float]:
    """The fastpath kernels' process-local telemetry as a gauge mapping.

    Flattens :func:`repro.fastpath.stats` into dotted gauge names
    (``fastpath.pow.table_hits``, ``fastpath.caches.pow_tables``,
    ``fastpath.enabled``).  Process-local by design: these values depend
    on cache warmth and process topology, so they belong in exported
    snapshots, never in diffjson-gated artifact counters.
    """
    from .. import fastpath

    snapshot = fastpath.stats()
    gauges: Dict[str, float] = {}
    for name, value in snapshot["counters"].items():
        gauges[name] = float(value)
    for cache, size in snapshot.get("caches", {}).items():
        gauges[f"fastpath.caches.{cache}"] = float(size)
    gauges["fastpath.enabled"] = 1.0 if snapshot.get("enabled") else 0.0
    return gauges


# -- per-round message-flow timelines ------------------------------------------------


def _round_flows(messages: Sequence[Any]) -> List[Tuple[str, str, str, int]]:
    """Aggregate one round's traffic into (sender, recipient, tag, count) rows."""
    counts: Dict[Tuple[str, str, str], int] = {}
    for message in messages:
        sender = str(message.sender)
        recipient = "*" if message.recipient == -1 else str(message.recipient)
        key = (sender, recipient, message.tag)
        counts[key] = counts.get(key, 0) + 1
    return [
        (sender, recipient, tag, count)
        for (sender, recipient, tag), count in sorted(
            counts.items(), key=lambda item: (int(item[0][0]), item[0][1], item[0][2])
        )
    ]


def timeline(execution, max_rounds: Optional[int] = None) -> str:
    """A text rendering of the per-round message flow of an execution.

    One block per round: the round header (message and fault counts),
    then one line per (sender → recipient, tag) flow, ``*`` meaning the
    broadcast channel.  ``max_rounds`` truncates long executions.
    """
    faults_by_round: Dict[int, List[Any]] = {}
    for fault in execution.faults:
        faults_by_round.setdefault(fault.round, []).append(fault)
    lines = [
        f"execution: n={execution.n} corrupted={sorted(execution.corrupted)} "
        f"rounds={execution.round_count} seed={execution.seed}"
        + (" TIMED-OUT" if execution.timed_out else "")
    ]
    shown = execution.rounds if max_rounds is None else execution.rounds[:max_rounds]
    for record in shown:
        round_faults = faults_by_round.get(record.round, [])
        header = f"round {record.round} | {len(record.messages)} message(s)"
        if round_faults:
            header += f", {len(round_faults)} fault(s)"
        lines.append(header)
        for sender, recipient, tag, count in _round_flows(record.messages):
            suffix = f" x{count}" if count > 1 else ""
            lines.append(f"  {sender} -> {recipient} : {tag}{suffix}")
        for fault in round_faults:
            recipient = "*" if fault.recipient == -1 else fault.recipient
            lines.append(
                f"  ! {fault.kind} {fault.sender} -> {recipient} : {fault.tag}"
            )
    if max_rounds is not None and len(execution.rounds) > max_rounds:
        lines.append(f"... {len(execution.rounds) - max_rounds} more round(s)")
    return "\n".join(lines) + "\n"


_HTML_PAGE = """<!doctype html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; }}
th, td {{ border: 1px solid #ccc; padding: 4px 10px; vertical-align: top; text-align: left; }}
th {{ background: #f2f2f2; }}
.fault {{ color: #b00; }}
.broadcast {{ font-weight: bold; }}
</style></head><body>
<h1>{title}</h1>
<p>n={n}, corrupted={corrupted}, rounds={rounds}, seed={seed}{timed_out}</p>
<table>
<tr><th>round</th><th>message flows</th><th>faults</th></tr>
{rows}
</table></body></html>
"""


def timeline_html(execution, title: str = "repro execution timeline") -> str:
    """The same per-round flow table as :func:`timeline`, as standalone HTML."""
    faults_by_round: Dict[int, List[Any]] = {}
    for fault in execution.faults:
        faults_by_round.setdefault(fault.round, []).append(fault)
    rows = []
    for record in execution.rounds:
        flows = []
        for sender, recipient, tag, count in _round_flows(record.messages):
            suffix = f" ×{count}" if count > 1 else ""
            cls = ' class="broadcast"' if recipient == "*" else ""
            flows.append(
                f"<div{cls}>{escape(sender)} → {escape(recipient)} : "
                f"{escape(tag)}{suffix}</div>"
            )
        faults = []
        for fault in faults_by_round.get(record.round, []):
            recipient = "*" if fault.recipient == -1 else fault.recipient
            faults.append(
                f'<div class="fault">{escape(fault.kind)} {fault.sender} → '
                f"{recipient} : {escape(fault.tag)}</div>"
            )
        rows.append(
            f"<tr><td>{record.round}</td><td>{''.join(flows)}</td>"
            f"<td>{''.join(faults)}</td></tr>"
        )
    return _HTML_PAGE.format(
        title=escape(title),
        n=execution.n,
        corrupted=escape(str(sorted(execution.corrupted))),
        rounds=execution.round_count,
        seed=execution.seed,
        timed_out=" — <strong>timed out</strong>" if execution.timed_out else "",
        rows="\n".join(rows),
    )
