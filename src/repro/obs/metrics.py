"""Counters, histograms, and the cost-accounting helpers behind them.

A :class:`Metrics` instance is a flat registry of named counters and
histograms.  Names are dotted strings (``"net.messages.sent"``,
``"crypto.group.exp"``); per-entity breakdowns append a suffix
(``"net.messages.sent.party.3"``).  The registry is deliberately simple —
plain dicts, no label algebra — because the instrumentation sits on hot
paths (every field multiplication, every group exponentiation) and must
cost almost nothing even when enabled.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .. import serialization


class Histogram:
    """Streaming summary of an observed value: count / sum / min / max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.3g})"


class Metrics:
    """A registry of named counters and histograms for one observed run."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def reset(self) -> None:
        """Drop every counter and histogram (back to a fresh registry).

        Long-lived registries need this: the fastpath ``STATS`` registry
        survives warm-pool worker reuse, so callers measuring one
        workload snapshot-and-reset around it instead of accumulating
        counts from every run the process ever served.
        """
        self.counters.clear()
        self.histograms.clear()

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counts into this one (for aggregation)."""
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    # -- reading -----------------------------------------------------------------

    def get(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        return {
            name: value
            for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every counter and histogram."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def write_json(self, path) -> None:
        """Dump :meth:`snapshot` as a JSON file (the per-run metrics artifact)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self.counters)} counters, "
            f"{len(self.histograms)} histograms)"
        )


def payload_size(payload: Any) -> int:
    """Wire size of a message payload in bytes.

    Uses the library's canonical encoding (the same bytes commitments and
    signatures hash over).  Payloads an adversary smuggles in that the
    canonical encoding rejects are charged their ``repr`` size so byte
    accounting never raises mid-run.
    """
    try:
        return len(serialization.encode(payload))
    except TypeError:
        return len(repr(payload).encode("utf-8"))


def jsonable(value: Any) -> Any:
    """Best-effort conversion of ``value`` into JSON-safe structures.

    Tuples/sets become lists, bytes become hex, dict keys become strings,
    and anything else unsupported falls back to ``repr``.  Used by the
    trace exporter and the experiment ``--json`` dumper.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, dict):
        return {str(key): jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(item) for item in value)
    return repr(value)
