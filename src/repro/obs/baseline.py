"""The standing metrics-regression surface: capture, load, and diff baselines.

The paper's efficiency claims are counter-shaped (rounds, messages,
bytes, crypto operations — Section 1/7), and every counter the obs layer
records for an experiment is deterministic given its
:class:`~repro.experiments.common.ExperimentConfig`.  That makes drift
detectable: capture a canonical snapshot of a pinned experiment set once
(``results/OBS_baseline.json``, regenerated with ``python -m repro obs
baseline``), and any later run can be compared against it with

* **exact matching** for the deterministic surface — every metrics
  counter and histogram (message counts, round counts, crypto op
  counts), plus each experiment's ``passed`` flag; any divergence is a
  behaviour change that either needs investigating or a deliberate
  baseline regeneration (the ``diffjson`` discipline, applied over time
  instead of across worker counts);
* **tolerance bands** for the wall-clock timings, which legitimately
  vary between machines and runs — drift is reported as a ratio against
  ``timing_tolerance`` and only fails the comparison when the caller
  opts in with ``strict_timings`` (CI machines are too heterogeneous
  for timing gates to be on by default).

Process-local ``fastpath.*`` telemetry never appears here: it depends on
cache warmth and process topology, so it is exported as gauges
(:func:`repro.obs.export.fastpath_gauges`) but excluded from the
regression surface by construction.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Where the committed baseline lives, relative to the repo root.
DEFAULT_BASELINE_PATH = "results/OBS_baseline.json"

#: The pinned experiment set: small enough to run in a CI smoke job,
#: broad enough to cover the network layer (E-FIG1), the round-complexity
#: table (E-RND), and the full measured-cost surface (E-COST).
PINNED_EXPERIMENTS = ("E-FIG1", "E-RND", "E-COST")

#: The pinned sample scale (matches the CI smoke runs).
PINNED_SCALE = 0.15

#: Default relative tolerance band for timing comparisons: a fresh timing
#: within [base / 4, base * 4] is unremarkable across machines.
DEFAULT_TIMING_TOLERANCE = 4.0

SCHEMA_VERSION = 1

#: Metric names that are wall-clock-derived and therefore banded, never
#: exact-matched (defensive: today only ``wall_seconds`` exists).
_TIMING_NAME = re.compile(r"(^|[._])(wall|seconds|elapsed)([._]|$)")


def pinned_config(scale: float = PINNED_SCALE, seed: Optional[int] = None):
    """The :class:`ExperimentConfig` the baseline is captured at."""
    from ..experiments.common import ExperimentConfig

    config = ExperimentConfig(scale=scale)
    if seed is not None:
        config.seed = seed
    return config


def is_timing_name(name: str) -> bool:
    return bool(_TIMING_NAME.search(name))


def canonical_snapshot(result: Any) -> Dict[str, Any]:
    """The regression-surface view of one experiment result.

    Accepts an :class:`~repro.experiments.common.ExperimentResult` or its
    ``to_json_dict()`` / ``--json`` artifact form, and splits the
    recorded metrics into the exact-match surface (``counters``,
    ``histograms``, ``passed``) and the banded ``timings``.
    """
    if isinstance(result, dict):
        passed = bool(result.get("passed", False))
        metrics = result.get("metrics") or {}
    else:
        passed = bool(result.passed)
        metrics = result.metrics or {}
    counters = {
        name: value
        for name, value in (metrics.get("counters") or {}).items()
        if not is_timing_name(name)
    }
    histograms = {
        name: dict(stats)
        for name, stats in (metrics.get("histograms") or {}).items()
        if not is_timing_name(name)
    }
    timings = {
        name: value
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and is_timing_name(name)
    }
    return {
        "passed": passed,
        "counters": dict(sorted(counters.items())),
        "histograms": dict(sorted(histograms.items())),
        "timings": dict(sorted(timings.items())),
    }


def capture(
    experiment_ids: Optional[Sequence[str]] = None,
    config: Any = None,
    jobs: int = 1,
) -> Dict[str, Any]:
    """Run the pinned experiment set and build a baseline document."""
    from ..experiments.registry import run_many

    ids = list(experiment_ids or PINNED_EXPERIMENTS)
    config = pinned_config() if config is None else config
    results = run_many(ids, config, jobs=jobs)
    return {
        "schema": SCHEMA_VERSION,
        "config": {
            "n": config.n,
            "t": config.t,
            "seed": config.seed,
            "scale": config.scale,
            "security_bits": config.security_bits,
        },
        "experiments": {
            result.experiment_id: canonical_snapshot(result) for result in results
        },
    }


def save(baseline: Dict[str, Any], path: str = DEFAULT_BASELINE_PATH) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str = DEFAULT_BASELINE_PATH) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path!r} has schema {baseline.get('schema')!r}, "
            f"expected {SCHEMA_VERSION} (regenerate with `repro obs baseline`)"
        )
    return baseline


@dataclass
class Comparison:
    """The outcome of diffing a fresh run against a baseline."""

    drifts: List[str] = field(default_factory=list)
    """Exact-surface divergences — any entry here is a regression (or an
    intentional change that needs a baseline regeneration)."""
    timing_notes: List[str] = field(default_factory=list)
    """Timings outside the tolerance band — advisory unless strict."""
    compared: int = 0
    strict_timings: bool = False

    @property
    def ok(self) -> bool:
        if self.drifts:
            return False
        return not (self.strict_timings and self.timing_notes)

    def render(self) -> str:
        lines = []
        if self.drifts:
            lines.append(f"DRIFT: {len(self.drifts)} deterministic divergence(s):")
            lines.extend(f"  {drift}" for drift in self.drifts)
        if self.timing_notes:
            qualifier = "gating" if self.strict_timings else "advisory"
            lines.append(f"timing drift ({qualifier}):")
            lines.extend(f"  {note}" for note in self.timing_notes)
        if not lines:
            lines.append(
                f"ok: {self.compared} experiment(s) match the baseline "
                "(counters exact, timings in band)"
            )
        return "\n".join(lines)


def _equal(a: Any, b: Any) -> bool:
    from ..experiments.diffjson import _equal as diff_equal

    return diff_equal(a, b)


def compare(
    baseline: Dict[str, Any],
    fresh: Dict[str, Dict[str, Any]],
    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE,
    strict_timings: bool = False,
) -> Comparison:
    """Diff fresh canonical snapshots against a baseline document.

    ``fresh`` maps experiment id -> :func:`canonical_snapshot`.  Counter
    and histogram surfaces must match exactly (NaN-tolerant deep
    equality, like ``diffjson``); each timing must satisfy
    ``base / tol <= fresh <= base * tol``.
    """
    if timing_tolerance < 1.0:
        raise ValueError(f"timing tolerance must be >= 1.0, got {timing_tolerance}")
    report = Comparison(strict_timings=strict_timings)
    expected = baseline.get("experiments", {})
    for experiment_id in sorted(expected):
        if experiment_id not in fresh:
            report.drifts.append(f"{experiment_id}: missing from the fresh run")
    for experiment_id in sorted(fresh):
        if experiment_id not in expected:
            report.drifts.append(f"{experiment_id}: not in the baseline")
    for experiment_id in sorted(set(expected) & set(fresh)):
        base, new = expected[experiment_id], fresh[experiment_id]
        report.compared += 1
        if base.get("passed") != new.get("passed"):
            report.drifts.append(
                f"{experiment_id}: passed {base.get('passed')} -> {new.get('passed')}"
            )
        for surface in ("counters", "histograms"):
            base_surface = base.get(surface) or {}
            new_surface = new.get(surface) or {}
            for name in sorted(set(base_surface) | set(new_surface)):
                if name not in new_surface:
                    report.drifts.append(f"{experiment_id}: {surface}.{name} vanished")
                elif name not in base_surface:
                    report.drifts.append(
                        f"{experiment_id}: {surface}.{name} is new "
                        "(regenerate the baseline to adopt it)"
                    )
                elif not _equal(base_surface[name], new_surface[name]):
                    report.drifts.append(
                        f"{experiment_id}: {surface}.{name} "
                        f"{base_surface[name]!r} -> {new_surface[name]!r}"
                    )
        base_timings = base.get("timings") or {}
        new_timings = new.get("timings") or {}
        for name in sorted(set(base_timings) & set(new_timings)):
            reference, measured = base_timings[name], new_timings[name]
            if reference <= 0:
                continue
            ratio = measured / reference
            if not (1.0 / timing_tolerance <= ratio <= timing_tolerance):
                report.timing_notes.append(
                    f"{experiment_id}: {name} {measured:.3f}s vs baseline "
                    f"{reference:.3f}s (x{ratio:.2f}, band x{timing_tolerance:g})"
                )
    return report
