"""Observability: execution tracing, cost metrics, and run artifacts.

The reproduction's efficiency story (Section 1/7 of the paper: linear [7]
vs logarithmic [8] vs constant [12] rounds) only becomes regression-checkable
once the system can *measure* itself.  This package is a zero-dependency
tracing + metrics layer threaded through the network engine, the crypto
toolkit, the broadcast emulation and the MPC substrate:

* :class:`Tracer` — nested wall-clock spans plus structured events,
  exportable as JSONL (one record per line);
* :class:`Metrics` — a registry of named counters and histograms
  (rounds, messages, bytes, per-party traffic, group exponentiations,
  hash/PRG calls, field multiplications, VSS shares verified, ...);
* :mod:`repro.obs.runtime` — the process-wide switchboard.  Everything is
  **off by default**: instrumented code guards on ``runtime.metrics is
  None`` / ``tracer.enabled``, so uninstrumented runs pay a single
  attribute load + ``is None`` test per hook.

Typical use::

    from repro.obs import Metrics, Tracer, runtime

    with runtime.observed(tracer=Tracer(), metrics=Metrics()) as (tr, m):
        execution = protocol.run(inputs, seed=7)
    print(m.get("net.messages.sent"), m.get("crypto.group.exp"))
    tr.write_jsonl("trace.jsonl")
    m.write_json("metrics.json")
"""

from . import export, flightrec, runtime
from .flightrec import FlightRecorder
from .metrics import Histogram, Metrics, jsonable, payload_size
from .tracer import NOOP_TRACER, NoopTracer, Tracer, read_jsonl

__all__ = [
    "FlightRecorder",
    "Histogram",
    "Metrics",
    "NOOP_TRACER",
    "NoopTracer",
    "Tracer",
    "export",
    "flightrec",
    "jsonable",
    "payload_size",
    "read_jsonl",
    "runtime",
]
