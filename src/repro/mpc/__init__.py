"""Secure function evaluation substrate: circuits, BGW, trusted-party ideal.

Provides the two backends of protocol Θ (Claim 6.5) and the ideal process
Ideal(f_SB) of Definition 4.1.
"""

from .bgw import BGWProtocol, bgw_evaluate
from .builder import CircuitBuilder
from .circuit import ADD, CONST, INPUT, MUL, SCALE, SUB, Circuit, Gate
from .gfunc import GFunctionality, build_g_circuit, g_field, g_reference
from .ideal import (
    FSBFunctionality,
    IdealFunctionality,
    TrustedPartyMailbox,
    TrustedPartyProtocol,
)

__all__ = [
    "Circuit",
    "Gate",
    "CircuitBuilder",
    "INPUT",
    "CONST",
    "ADD",
    "SUB",
    "MUL",
    "SCALE",
    "BGWProtocol",
    "bgw_evaluate",
    "GFunctionality",
    "g_reference",
    "g_field",
    "build_g_circuit",
    "IdealFunctionality",
    "FSBFunctionality",
    "TrustedPartyMailbox",
    "TrustedPartyProtocol",
]
