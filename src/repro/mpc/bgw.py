"""BGW-style secret-shared circuit evaluation (honest majority, 2t < n).

The classic Ben-Or--Goldwasser--Wigderson construction [2], in its
semi-honest form with the Gennaro--Rabin--Rabin resharing-based degree
reduction:

1. *Input round* — every party Shamir-shares each of its input wires.
2. *Multiplication rounds* — linear gates are local; each layer of
   multiplication gates costs one round in which parties locally multiply
   their shares (degree 2t) and reshare the products back down to degree t.
3. *Output round* — shares of output wires are exchanged and interpolated.

Security holds against t < n/2 passively corrupted parties.  That is all
Claim 6.5 needs for protocol Θ: the adversary used in Lemma 6.4 deviates
only by *choosing* its inputs (setting the auxiliary bit), which the ideal
model permits anyway.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..crypto.field import FieldElement
from ..crypto.polynomial import lagrange_coefficients_at_zero
from ..crypto.secret_sharing import ShamirSharing, Share
from ..errors import InvalidParameterError, ShareError
from ..net.message import send
from ..obs import runtime as _obs
from .circuit import ADD, CONST, INPUT, MUL, SCALE, SUB, Circuit


def bgw_evaluate(
    ctx,
    circuit: Circuit,
    my_inputs: Mapping[str, int],
    t: int,
    instance: str = "bgw",
):
    """Sub-generator: jointly evaluate ``circuit``; returns the output values.

    Args:
        ctx: party context (``ctx.n`` parties participate).
        circuit: the arithmetic circuit; its INPUT gates name the owners.
        my_inputs: this party's input wires by name (missing wires -> 0).
        t: threshold, must satisfy 2t < ctx.n.
        instance: message-tag namespace.

    Returns:
        list of field values, one per circuit output (identical at every
        honest party).
    """
    n = ctx.n
    if 2 * t >= n:
        raise InvalidParameterError(f"BGW requires 2t < n (got t={t}, n={n})")
    field_ = circuit.field
    sharing = ShamirSharing(field_, t, n)
    me = ctx.party_id
    in_tag = f"bgw:{instance}:in"
    mul_tag = f"bgw:{instance}:mul"
    out_tag = f"bgw:{instance}:out"
    lagrange = lagrange_coefficients_at_zero(field_, list(range(1, n + 1)))

    # ---- round 1: share inputs ---------------------------------------------------
    my_wires = circuit.inputs_of(me)
    per_recipient: Dict[int, List[Tuple[int, int]]] = {j: [] for j in range(1, n + 1)}
    for name, gate_id in my_wires:
        value = field_.element(my_inputs.get(name, 0))
        _, shares = sharing.share(value, ctx.rng)
        for j in range(1, n + 1):
            per_recipient[j].append((gate_id, shares[j].value.value))
    if _obs.metrics is not None:
        _obs.metrics.inc("mpc.bgw.evaluations")
        _obs.metrics.inc("mpc.bgw.input_wires_shared", len(my_wires))
    inbox = yield [
        send(j, tuple(per_recipient[j]), tag=in_tag) for j in range(1, n + 1)
    ]

    shares_by_gate: Dict[int, FieldElement] = {}
    for message in inbox.with_tag(in_tag):
        try:
            entries = list(message.payload)
        except TypeError:
            continue
        for entry in entries:
            try:
                gate_id, raw = entry
            except (TypeError, ValueError):
                continue
            gate = circuit.gates[gate_id] if 0 <= gate_id < circuit.size else None
            if gate is None or gate.op != INPUT or gate.owner != message.sender:
                continue
            shares_by_gate.setdefault(gate_id, field_.element(raw))
    # Unshared inputs behave as the public constant 0 (constant zero poly).
    for _owner, _name, gate_id in circuit.input_wires():
        shares_by_gate.setdefault(gate_id, field_.zero())

    # ---- evaluation with batched multiplication rounds ----------------------------
    shares: Dict[int, FieldElement] = dict(shares_by_gate)
    cursor = 0
    while True:
        pending_muls: List[int] = []
        while cursor < circuit.size:
            gate = circuit.gates[cursor]
            if gate.op in (INPUT,):
                cursor += 1
                continue
            if gate.op == CONST:
                shares[cursor] = field_.element(gate.constant)
                cursor += 1
                continue
            if any(arg not in shares for arg in gate.args):
                break  # blocked on a multiplication still in flight
            if gate.op == ADD:
                shares[cursor] = shares[gate.args[0]] + shares[gate.args[1]]
            elif gate.op == SUB:
                shares[cursor] = shares[gate.args[0]] - shares[gate.args[1]]
            elif gate.op == SCALE:
                shares[cursor] = shares[gate.args[0]] * field_.element(gate.constant)
            elif gate.op == MUL:
                pending_muls.append(cursor)
                cursor += 1
                continue
            cursor += 1
        # Drop MULs that were registered but then found computable?  They are
        # exactly the pending ones: resolve them with one resharing round.
        pending_muls = [g for g in pending_muls if g not in shares]
        if not pending_muls and cursor >= circuit.size:
            break
        if not pending_muls:
            raise ShareError("circuit evaluation deadlocked (malformed circuit)")

        if _obs.metrics is not None:
            _obs.metrics.inc("mpc.bgw.mul_rounds")
            _obs.metrics.inc("mpc.bgw.mul_gates", len(pending_muls))
        # Local degree-2t products, then reshare each down to degree t.
        per_recipient = {j: [] for j in range(1, n + 1)}
        for gate_id in pending_muls:
            gate = circuit.gates[gate_id]
            product = shares[gate.args[0]] * shares[gate.args[1]]
            _, subshares = sharing.share(product, ctx.rng)
            for j in range(1, n + 1):
                per_recipient[j].append((gate_id, subshares[j].value.value))
        inbox = yield [
            send(j, tuple(per_recipient[j]), tag=mul_tag) for j in range(1, n + 1)
        ]
        contributions: Dict[int, Dict[int, FieldElement]] = {
            g: {} for g in pending_muls
        }
        for message in inbox.with_tag(mul_tag):
            try:
                entries = list(message.payload)
            except TypeError:
                continue
            for entry in entries:
                try:
                    gate_id, raw = entry
                except (TypeError, ValueError):
                    continue
                if gate_id in contributions:
                    contributions[gate_id].setdefault(
                        message.sender, field_.element(raw)
                    )
        for gate_id in pending_muls:
            received = contributions[gate_id]
            if len(received) < n:
                missing = [j for j in range(1, n + 1) if j not in received]
                raise ShareError(
                    f"degree reduction missing contributions from {missing}"
                )
            reduced = field_.zero()
            for j in range(1, n + 1):
                reduced = reduced + lagrange[j - 1] * received[j]
            shares[gate_id] = reduced

    # ---- output round --------------------------------------------------------------
    my_output_shares = tuple(
        (index, shares[gate_id].value) for index, gate_id in enumerate(circuit.outputs)
    )
    inbox = yield [send(j, my_output_shares, tag=out_tag) for j in range(1, n + 1)]
    collected: Dict[int, List[Share]] = {i: [] for i in range(len(circuit.outputs))}
    for message in inbox.with_tag(out_tag):
        try:
            entries = list(message.payload)
        except TypeError:
            continue
        for entry in entries:
            try:
                index, raw = entry
            except (TypeError, ValueError):
                continue
            if index in collected and not any(
                s.x == message.sender for s in collected[index]
            ):
                collected[index].append(Share(message.sender, field_.element(raw)))

    outputs: List[FieldElement] = []
    for index in range(len(circuit.outputs)):
        outputs.append(sharing.reconstruct(collected[index]))
    return outputs


class BGWProtocol:
    """Runnable wrapper: every party's input is a dict of wire values."""

    def __init__(self, circuit: Circuit, n: int, t: int):
        if 2 * t >= n:
            raise InvalidParameterError(f"BGW requires 2t < n (got t={t}, n={n})")
        self.circuit = circuit
        self.n = n
        self.t = t

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        outputs = yield from bgw_evaluate(
            ctx, self.circuit, dict(value or {}), self.t
        )
        return tuple(int(v) for v in outputs)
