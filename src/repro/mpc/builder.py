"""Boolean-over-field circuit builder.

Wraps :class:`repro.mpc.circuit.Circuit` with the boolean idioms needed to
compile the function ``g`` of Lemma 6.4: XOR, AND, NOT, multiplexers and
the Lagrange equality indicator for small sums.  Bits are represented as
field elements in {0, 1}; the helpers assume their arguments are bits.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..crypto.field import PrimeField
from ..errors import InvalidParameterError
from .circuit import Circuit


class CircuitBuilder:
    """Fluent construction of boolean-ish circuits over GF(p)."""

    def __init__(self, field_: PrimeField):
        self.circuit = Circuit(field_)
        self._zero = None
        self._one = None

    # -- primitives -----------------------------------------------------------

    def input(self, owner: int, name: str) -> int:
        return self.circuit.input(owner, name)

    def const(self, value: int) -> int:
        return self.circuit.const(value)

    @property
    def zero(self) -> int:
        if self._zero is None:
            self._zero = self.const(0)
        return self._zero

    @property
    def one(self) -> int:
        if self._one is None:
            self._one = self.const(1)
        return self._one

    def add(self, a: int, b: int) -> int:
        return self.circuit.add(a, b)

    def sub(self, a: int, b: int) -> int:
        return self.circuit.sub(a, b)

    def mul(self, a: int, b: int) -> int:
        return self.circuit.mul(a, b)

    def scale(self, a: int, scalar: int) -> int:
        return self.circuit.scale(a, scalar)

    def sum(self, wires: Iterable[int]) -> int:
        wires = list(wires)
        if not wires:
            return self.zero
        total = wires[0]
        for wire in wires[1:]:
            total = self.add(total, wire)
        return total

    # -- boolean helpers ---------------------------------------------------------

    def bit_not(self, a: int) -> int:
        return self.sub(self.one, a)

    def bit_and(self, a: int, b: int) -> int:
        return self.mul(a, b)

    def bit_or(self, a: int, b: int) -> int:
        # a + b - ab
        return self.sub(self.add(a, b), self.mul(a, b))

    def bit_xor(self, a: int, b: int) -> int:
        # a + b - 2ab
        return self.sub(self.add(a, b), self.scale(self.mul(a, b), 2))

    def xor_all(self, wires: Iterable[int]) -> int:
        wires = list(wires)
        if not wires:
            return self.zero
        result = wires[0]
        for wire in wires[1:]:
            result = self.bit_xor(result, wire)
        return result

    def select(self, condition: int, if_true: int, if_false: int) -> int:
        """``if_false + condition * (if_true - if_false)`` (condition a bit)."""
        return self.add(
            if_false, self.mul(condition, self.sub(if_true, if_false))
        )

    def equals_const(self, wire: int, target: int, max_value: int) -> int:
        """Indicator bit for ``wire == target`` given ``wire`` in [0, max_value].

        Uses the Lagrange indicator polynomial over the points 0..max_value,
        so the field modulus must exceed ``max_value``.
        """
        field_ = self.circuit.field
        if max_value >= field_.modulus:
            raise InvalidParameterError(
                "field too small for equality indicator range"
            )
        if not 0 <= target <= max_value:
            raise InvalidParameterError("target outside declared range")
        # indicator(w) = prod_{v != target} (w - v) / (target - v)
        numerator = None
        denominator = field_.one()
        for v in range(max_value + 1):
            if v == target:
                continue
            term = self.sub(wire, self.const(v))
            numerator = term if numerator is None else self.mul(numerator, term)
            denominator = denominator * (field_.element(target) - field_.element(v))
        if numerator is None:  # max_value == 0 and target == 0
            return self.one
        return self.scale(numerator, int(denominator.inverse()))

    def prefix_products(self, wires: Sequence[int]) -> List[int]:
        """[w0, w0*w1, w0*w1*w2, ...] — used for "first set bit" logic."""
        results: List[int] = []
        running = None
        for wire in wires:
            running = wire if running is None else self.mul(running, wire)
            results.append(running)
        return results

    def output(self, wire: int) -> None:
        self.circuit.mark_output(wire)

    def build(self) -> Circuit:
        return self.circuit
