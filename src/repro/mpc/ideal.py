"""Trusted-party (ideal-process) evaluation of functionalities.

This is Canetti's ideal process [4] as an executable protocol: every party
hands its input to an incorruptible trusted party, which evaluates the
functionality once and returns each party's output.  Submission and
delivery do not touch the simulated network, so nothing leaks to the
adversary beyond the outputs themselves — exactly the ideal model.

Timing discipline (mirrors the ideal process with a rushing adversary):

* inputs are collected during round 1;
* the functionality is *frozen* the first time any party reads a result —
  which cannot happen before round 2 for honest parties, and even a
  corrupted program peeking early only freezes the inputs sooner, it never
  gets to choose its input after seeing an output.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from ..errors import ProtocolError


class IdealFunctionality:
    """Interface: evaluate inputs {party: value} -> outputs {party: value}."""

    name = "functionality"
    n: int

    def evaluate(self, inputs: Dict[int, Any], rng) -> Dict[int, Any]:
        raise NotImplementedError


class FSBFunctionality(IdealFunctionality):
    """f_SB(x) = (x, ..., x): the simultaneous-broadcast functionality.

    Missing or invalid inputs become the default 0, per the paper's
    convention for corrupted parties that contribute nothing.
    """

    name = "fSB"

    def __init__(self, n: int, default: int = 0):
        self.n = n
        self.default = default

    def evaluate(self, inputs: Dict[int, Any], rng) -> Dict[int, Any]:
        vector = tuple(
            inputs[i] if inputs.get(i) is not None else self.default
            for i in range(1, self.n + 1)
        )
        return {i: vector for i in range(1, self.n + 1)}


class TrustedPartyMailbox:
    """The per-execution state of the trusted party."""

    def __init__(self, functionality: IdealFunctionality, rng: random.Random):
        self._functionality = functionality
        self._rng = rng
        self._inputs: Dict[int, Any] = {}
        self._outputs: Optional[Dict[int, Any]] = None

    @property
    def frozen(self) -> bool:
        return self._outputs is not None

    def submit(self, party: int, value: Any) -> None:
        """Hand an input to the trusted party; ignored once frozen."""
        if self._outputs is not None:
            return
        if party in self._inputs:
            raise ProtocolError(f"party {party} submitted twice")
        self._inputs[party] = value

    def result(self, party: int) -> Any:
        """Read a party's output, freezing the inputs on first access."""
        if self._outputs is None:
            self._outputs = self._functionality.evaluate(dict(self._inputs), self._rng)
        return self._outputs.get(party)


class TrustedPartyProtocol:
    """Runnable protocol: one submit round, one result round.

    The ``setup`` hook creates a fresh mailbox per execution and stores it
    in the shared config — that object *is* the trusted party.  Honest
    parties submit in round 1 and read their output in round 2.
    """

    rounds = 2

    def __init__(self, functionality: IdealFunctionality):
        self.functionality = functionality
        self.n = functionality.n

    def setup(self, rng):
        return {
            "mailbox": TrustedPartyMailbox(
                self.functionality, random.Random(rng.getrandbits(64))
            )
        }

    def program(self, ctx, value):
        mailbox: TrustedPartyMailbox = ctx.config["mailbox"]
        mailbox.submit(ctx.party_id, value)
        yield []  # round 1: inputs are in.
        return mailbox.result(ctx.party_id)
