"""Arithmetic circuit intermediate representation.

Circuits are the lingua franca between the function specifications (such
as the leaky function ``g`` of Lemma 6.4) and the evaluation backends
(plain evaluation, BGW secret-shared evaluation).  A circuit is a DAG of
gates over a prime field:

* ``INPUT``  — a named input wire owned by one party;
* ``CONST``  — a public constant;
* ``ADD`` / ``SUB`` / ``MUL`` — binary arithmetic;
* ``SCALE``  — multiplication by a public constant (linear, so free in BGW).

Outputs are an ordered list of wires.  Gates are identified by dense
integer ids in topological order (gates can only reference earlier gates),
which makes layered evaluation in :mod:`repro.mpc.bgw` straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.field import FieldElement, PrimeField
from ..errors import InvalidParameterError

INPUT = "input"
CONST = "const"
ADD = "add"
SUB = "sub"
MUL = "mul"
SCALE = "scale"

_OPS = (INPUT, CONST, ADD, SUB, MUL, SCALE)


@dataclass(frozen=True)
class Gate:
    """One circuit gate.

    Attributes:
        op: one of the module-level op constants.
        args: ids of argument gates (empty for INPUT/CONST).
        owner: owning party for INPUT gates.
        name: input wire name (unique per owner) for INPUT gates.
        constant: field value for CONST, or the scalar for SCALE.
    """

    op: str
    args: Tuple[int, ...] = ()
    owner: Optional[int] = None
    name: Optional[str] = None
    constant: Optional[int] = None


class Circuit:
    """A mutable arithmetic circuit over a fixed prime field."""

    def __init__(self, field_: PrimeField):
        self.field = field_
        self.gates: List[Gate] = []
        self.outputs: List[int] = []
        self._inputs_by_key: Dict[Tuple[int, str], int] = {}

    # -- construction ---------------------------------------------------------

    def _append(self, gate: Gate) -> int:
        for arg in gate.args:
            if not 0 <= arg < len(self.gates):
                raise InvalidParameterError(f"gate argument {arg} out of range")
        self.gates.append(gate)
        return len(self.gates) - 1

    def input(self, owner: int, name: str) -> int:
        """Declare (or reuse) the input wire ``name`` owned by ``owner``."""
        key = (owner, name)
        if key in self._inputs_by_key:
            return self._inputs_by_key[key]
        gate_id = self._append(Gate(op=INPUT, owner=owner, name=name))
        self._inputs_by_key[key] = gate_id
        return gate_id

    def const(self, value: int) -> int:
        return self._append(Gate(op=CONST, constant=int(self.field.element(value))))

    def add(self, a: int, b: int) -> int:
        return self._append(Gate(op=ADD, args=(a, b)))

    def sub(self, a: int, b: int) -> int:
        return self._append(Gate(op=SUB, args=(a, b)))

    def mul(self, a: int, b: int) -> int:
        return self._append(Gate(op=MUL, args=(a, b)))

    def scale(self, a: int, scalar: int) -> int:
        return self._append(
            Gate(op=SCALE, args=(a,), constant=int(self.field.element(scalar)))
        )

    def mark_output(self, gate_id: int) -> None:
        if not 0 <= gate_id < len(self.gates):
            raise InvalidParameterError(f"output gate {gate_id} out of range")
        self.outputs.append(gate_id)

    # -- queries ----------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.gates)

    @property
    def multiplication_count(self) -> int:
        return sum(1 for gate in self.gates if gate.op == MUL)

    def input_wires(self) -> List[Tuple[int, str, int]]:
        """All input wires as (owner, name, gate_id), in declaration order."""
        return [
            (gate.owner, gate.name, gate_id)
            for gate_id, gate in enumerate(self.gates)
            if gate.op == INPUT
        ]

    def inputs_of(self, owner: int) -> List[Tuple[str, int]]:
        return [
            (name, gate_id)
            for gate_owner, name, gate_id in self.input_wires()
            if gate_owner == owner
        ]

    def multiplication_layers(self) -> List[List[int]]:
        """Group MUL gates into layers evaluable one network round each.

        A MUL gate's layer is 1 + the maximum layer among the MUL gates it
        (transitively) depends on; linear gates do not add depth.
        """
        depth: Dict[int, int] = {}
        layers: Dict[int, List[int]] = {}
        for gate_id, gate in enumerate(self.gates):
            arg_depth = max((depth[a] for a in gate.args), default=0)
            if gate.op == MUL:
                depth[gate_id] = arg_depth + 1
                layers.setdefault(arg_depth + 1, []).append(gate_id)
            else:
                depth[gate_id] = arg_depth
        return [layers[level] for level in sorted(layers)]

    # -- reference evaluation ------------------------------------------------------

    def evaluate(self, inputs: Dict[Tuple[int, str], int]) -> List[FieldElement]:
        """Evaluate in the clear; ``inputs`` maps (owner, name) -> value.

        Missing inputs default to 0, matching the protocol convention for
        absent contributions.
        """
        values: List[FieldElement] = []
        for gate in self.gates:
            if gate.op == INPUT:
                raw = inputs.get((gate.owner, gate.name), 0)
                values.append(self.field.element(raw))
            elif gate.op == CONST:
                values.append(self.field.element(gate.constant))
            elif gate.op == ADD:
                values.append(values[gate.args[0]] + values[gate.args[1]])
            elif gate.op == SUB:
                values.append(values[gate.args[0]] - values[gate.args[1]])
            elif gate.op == MUL:
                values.append(values[gate.args[0]] * values[gate.args[1]])
            elif gate.op == SCALE:
                values.append(values[gate.args[0]] * self.field.element(gate.constant))
            else:  # pragma: no cover - _OPS is closed
                raise InvalidParameterError(f"unknown op {gate.op}")
        return [values[o] for o in self.outputs]
