"""The leaky function ``g`` of Lemma 6.4, as spec and as circuit.

``g`` takes from each party a pair ``(x_i, b_i)`` of bits.  If *exactly
two* parties raise their auxiliary bit ``b_i`` (the controlled misbehaviour
of the corrupted parties), the two lowest such indices ``l1 < l2`` receive
``w_{l1} = r`` and ``w_{l2} = r XOR y`` where ``r`` is a fresh random bit
and ``y`` is the XOR of everybody else's ``x``; all other coordinates pass
through unchanged.  Otherwise ``w = x``.  Everyone learns the full vector
``w``.

The deliberate flaw: each single rigged coordinate is uniform (so no
*individual* corrupted output correlates with the honest outputs —
G-Independence holds), but the XOR of all announced values is forced to 0
(so CR-Independence fails spectacularly; Claim 6.6).

Two forms are provided:

* :func:`g_reference` / :class:`GFunctionality` — direct evaluation, used
  by the trusted-party backend of protocol Θ;
* :func:`build_g_circuit` — an arithmetic circuit whose random bit is the
  XOR of per-party random contributions, used by the BGW backend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..crypto.field import PrimeField, next_prime
from ..errors import InvalidParameterError
from .builder import CircuitBuilder
from .circuit import Circuit


def _as_bit(value) -> int:
    try:
        bit = int(value)
    except (TypeError, ValueError):
        return 0
    return bit if bit in (0, 1) else 0


def g_reference(pairs: Sequence[Tuple[int, int]], rng) -> Tuple[int, ...]:
    """Evaluate g on the list of per-party pairs ``(x_i, b_i)``.

    Invalid entries are coerced to 0, matching the default-input
    convention.  Returns the public vector ``w``.
    """
    n = len(pairs)
    xs = [_as_bit(p[0]) if isinstance(p, (tuple, list)) and len(p) == 2 else 0 for p in pairs]
    bs = [_as_bit(p[1]) if isinstance(p, (tuple, list)) and len(p) == 2 else 0 for p in pairs]

    raised = [i for i in range(1, n + 1) if bs[i - 1] == 1]
    r = rng.randrange(2)
    if len(raised) == 2:
        l1, l2 = raised[0], raised[1]
    else:
        l1 = l2 = 0

    y = 0
    for i in range(1, n + 1):
        if i not in (l1, l2):
            y ^= xs[i - 1]

    w: List[int] = []
    for i in range(1, n + 1):
        if l1 and i == l1:
            w.append(r)
        elif l2 and i == l2:
            w.append(r ^ y)
        else:
            w.append(xs[i - 1])
    return tuple(w)


class GFunctionality:
    """Ideal-functionality wrapper for g: every party receives the vector w."""

    name = "g"

    def __init__(self, n: int):
        self.n = n

    def evaluate(self, inputs: Dict[int, Tuple[int, int]], rng) -> Dict[int, Tuple[int, ...]]:
        pairs = [inputs.get(i, (0, 0)) for i in range(1, self.n + 1)]
        w = g_reference(pairs, rng)
        return {i: w for i in range(1, self.n + 1)}


def g_field(n: int) -> PrimeField:
    """The canonical BGW field for an n-party evaluation of g."""
    return PrimeField(next_prime(2 * n + 2))


def build_g_circuit(n: int, field_: PrimeField = None) -> Circuit:
    """Compile g into an arithmetic circuit over GF(p), p > 2n.

    Per-party input wires: ``x`` and ``b`` (the pair from the spec) plus a
    random contribution ``rho``; the functionality's coin is
    ``r = XOR_i rho_i``, uniform as long as one contributor is honest.
    Outputs are the n public wires ``w_1 .. w_n``.
    """
    if n < 2:
        raise InvalidParameterError("g needs at least two parties")
    if field_ is None:
        field_ = g_field(n)
    if field_.modulus <= n:
        raise InvalidParameterError("field modulus must exceed the party count")
    builder = CircuitBuilder(field_)

    xs = [builder.input(i, "x") for i in range(1, n + 1)]
    bs = [builder.input(i, "b") for i in range(1, n + 1)]
    rhos = [builder.input(i, "rho") for i in range(1, n + 1)]

    # first_i: b_i is the lowest raised bit.
    not_bs = [builder.bit_not(b) for b in bs]
    firsts: List[int] = []
    for i in range(n):
        if i == 0:
            firsts.append(bs[0])
        else:
            prefix = not_bs[0]
            for j in range(1, i):
                prefix = builder.mul(prefix, not_bs[j])
            firsts.append(builder.mul(bs[i], prefix))

    count = builder.sum(bs)
    is_two = builder.equals_const(count, 2, n)

    is_l1 = [builder.mul(is_two, firsts[i]) for i in range(n)]
    is_l2 = [
        builder.mul(is_two, builder.mul(bs[i], builder.bit_not(firsts[i])))
        for i in range(n)
    ]
    free = [
        builder.sub(builder.sub(builder.one, is_l1[i]), is_l2[i]) for i in range(n)
    ]

    r = builder.xor_all(rhos)
    y = builder.xor_all([builder.mul(xs[i], free[i]) for i in range(n)])
    r_xor_y = builder.bit_xor(r, y)

    for i in range(n):
        w_i = builder.sum(
            [
                builder.mul(is_l1[i], r),
                builder.mul(is_l2[i], r_xor_y),
                builder.mul(free[i], xs[i]),
            ]
        )
        builder.output(w_i)

    return builder.build()
