"""The synchronous round engine with rushing delivery.

Round semantics (Section 3.1 of the paper):

1. At the start of round r every honest party receives the messages sent
   to it in round r-1 (by anyone) and produces its round-r messages.
2. The adversary then sees all round-r honest traffic (it reads every
   channel) and, *rushing*, receives instantly the round-r honest messages
   addressed to corrupted parties — plus everything on the broadcast
   channel — before choosing the corrupted parties' round-r messages.
3. All round-r messages are buffered for delivery at round r+1.

The run ends when every honest party's program has returned, or aborts
with :class:`NetworkError` after ``max_rounds``.

Two optional degradation hooks extend the clean model:

* ``fault_injector`` (see :mod:`repro.faults`) rewrites each round's
  honest traffic — dropping, delaying, duplicating, or corrupting
  messages and suppressing crashed senders — *before* the rushing
  adversary observes it, so faults degrade the adversary's view exactly
  as they degrade honest deliveries;
* ``timeout_rounds`` bounds the run gracefully: instead of raising
  :class:`NetworkError`, parties still running past the deadline are
  finalized with ``timeout_output`` (protocols pass the paper's default
  bit vector), and the execution is marked ``timed_out``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import NetworkError, ProtocolError
from ..obs import flightrec as _flightrec
from ..obs import runtime as _obs
from ..obs.metrics import payload_size
from .adversary import Adversary
from .message import Draft, Inbox, Message, RoundRecord
from .party import PartyContext, PartyState
from .transcript import Execution

DEFAULT_MAX_ROUNDS = 10_000

ProgramFactory = Callable[[PartyContext, Any], Any]


def bucket_by_recipient(
    messages: Sequence[Message], recipients: Iterable[int]
) -> Dict[int, List[Message]]:
    """One-pass routing index: recipient -> messages addressed to it.

    Equivalent to ``{i: [m for m in messages if m.addressed_to(i)]}`` (the
    per-party scan it replaces, including message order within each
    bucket), but walks the traffic once instead of once per recipient —
    the scan was quadratic in round size for the rushing instant-view
    construction.
    """
    buckets: Dict[int, List[Message]] = {i: [] for i in recipients}
    for message in messages:
        if message.recipient == -1:  # BROADCAST: addressed to everyone
            for bucket in buckets.values():
                bucket.append(message)
        else:
            bucket = buckets.get(message.recipient)
            if bucket is not None:
                bucket.append(message)
    return buckets


class Scheduler:
    """Drives one protocol execution to completion.

    This is the **lockstep runtime** of the :mod:`repro.net.runtime` seam:
    the registry entry ``"lockstep"`` resolves here, and the discrete-event
    engine (:class:`repro.net.event.EventScheduler`) subclasses it so both
    runtimes share party construction, adversary validation, observability
    hooks, and finalization — the RNG-derivation order in ``__init__`` is
    part of the determinism contract and must not change.
    """

    #: Recorded on the returned :class:`Execution` (the runtime seam's tag).
    runtime_name = "lockstep"

    def __init__(
        self,
        n: int,
        program_factory: ProgramFactory,
        inputs: Sequence[Any],
        adversary: Adversary,
        rng: random.Random,
        config: Any = None,
        session: str = "",
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        seed: Any = None,
        fault_injector: Any = None,
        timeout_rounds: Optional[int] = None,
        timeout_output: Any = None,
    ) -> None:
        if len(inputs) != n:
            raise ProtocolError(f"expected {n} inputs, got {len(inputs)}")
        if len(adversary.corrupted) >= n and n > 0:
            raise ProtocolError("at least one party must remain honest")
        if not all(1 <= i <= n for i in adversary.corrupted):
            raise ProtocolError(
                f"corrupted set {set(adversary.corrupted)} out of range for n={n}"
            )
        self.n = n
        self.inputs = tuple(inputs)
        self.adversary = adversary
        self.rng = rng
        self.config = config
        self.session = session
        self.max_rounds = max_rounds
        self.seed = seed
        self.fault_injector = fault_injector
        self.timeout_rounds = timeout_rounds
        self.timeout_output = timeout_output
        self._program_factory = program_factory

        self.honest_ids = [i for i in range(1, n + 1) if i not in adversary.corrupted]
        self._honest: Dict[int, PartyState] = {}
        for i in self.honest_ids:
            ctx = PartyContext(
                party_id=i,
                n=n,
                rng=random.Random(rng.getrandbits(64)),
                config=config,
                session=session,
            )
            self._honest[i] = PartyState(
                party_id=i, generator=program_factory(ctx, self.inputs[i - 1])
            )

        corrupted_inputs = {
            i: self.inputs[i - 1] for i in adversary.corrupted
        }
        # Give PassiveAdversary-style adversaries the honest program.
        installer = getattr(adversary, "set_program_factory", None)
        if installer is not None:
            installer(program_factory)
        adversary.setup(
            n=n,
            config=config,
            corrupted_inputs=corrupted_inputs,
            rng=random.Random(rng.getrandbits(64)),
            session=session,
        )

    # -- main loop -------------------------------------------------------------

    def run(self) -> Execution:
        tracer = _obs.tracer
        if not tracer.enabled:
            return self._run_rounds()
        with tracer.span(
            "scheduler.run",
            n=self.n,
            session=self.session,
            corrupted=sorted(self.adversary.corrupted),
            seed=self.seed,
        ) as span:
            execution = self._run_rounds()
            span.set(rounds=execution.round_count)
            return execution

    def _run_rounds(self) -> Execution:
        metrics = _obs.metrics
        rounds: List[RoundRecord] = []
        # Messages sent in the previous round, keyed by recipient.
        pending: Dict[int, List[Message]] = {i: [] for i in range(1, self.n + 1)}
        # Corrupted parties' inboxes accumulate lazily: adversary-to-adversary
        # traffic from the previous round plus rushed honest traffic.
        stale_for_corrupted: Dict[int, List[Message]] = {
            i: [] for i in self.adversary.corrupted
        }

        round_number = 0
        started = False
        timed_out = False
        while True:
            round_number += 1
            if self.timeout_rounds is not None and round_number > self.timeout_rounds:
                timed_out = True
                self._note_timeout(round_number)
                break
            if round_number > self.max_rounds:
                raise NetworkError(
                    f"protocol did not terminate within {self.max_rounds} rounds"
                )

            # 1. Honest parties speak.
            honest_traffic: List[Message] = []
            for i in self.honest_ids:
                state = self._honest[i]
                if state.finished:
                    continue
                if not started:
                    drafts = state.start()
                else:
                    drafts = state.resume(Inbox(pending[i]))
                honest_traffic.extend(draft.stamped(i) for draft in drafts)

            # 1b. Faults strike honest traffic before the adversary sees it:
            #     crashes and drops remove messages, delays shift them to a
            #     later round, corruption rewrites payloads in place.
            if self.fault_injector is not None:
                honest_traffic = self.fault_injector.apply(
                    round_number, honest_traffic
                )

            # 2. Rushing: corrupted parties instantly receive this round's
            #    honest traffic addressed to them (and honest broadcasts).
            instant_views = bucket_by_recipient(
                honest_traffic, self.adversary.corrupted
            )
            rushed: Dict[int, Inbox] = {
                i: Inbox(stale_for_corrupted[i] + instant_views[i])
                for i in self.adversary.corrupted
            }

            corrupted_outboxes = self.adversary.act(round_number, rushed)
            corrupted_traffic = self._collect_corrupted_traffic(corrupted_outboxes)

            traffic = honest_traffic + corrupted_traffic
            self.adversary.observe(round_number, traffic)
            rounds.append(RoundRecord(round=round_number, messages=traffic))
            started = True

            self._observe_round(round_number, traffic, honest_traffic, corrupted_traffic)

            # 3. Buffer everything for next-round delivery.
            pending = {i: [] for i in range(1, self.n + 1)}
            delivered = 0
            for message in traffic:
                if message.is_broadcast:
                    for i in range(1, self.n + 1):
                        pending[i].append(message)
                    delivered += self.n
                else:
                    if not 1 <= message.recipient <= self.n:
                        raise ProtocolError(
                            f"message to unknown party {message.recipient}"
                        )
                    pending[message.recipient].append(message)
                    delivered += 1
            if metrics is not None:
                metrics.inc("net.messages.delivered", delivered)
            # Corrupted parties already saw this round's honest traffic; only
            # corrupted-to-corrupted traffic still awaits them next round.
            stale_for_corrupted = bucket_by_recipient(
                corrupted_traffic, self.adversary.corrupted
            )

            if all(state.finished for state in self._honest.values()):
                break

        return self._finalize(rounds, timed_out)

    # -- helpers shared by both runtimes ---------------------------------------

    def _note_timeout(self, round_number: int) -> None:
        """Record a graceful deadline hit (metrics, trace, flight recorder)."""
        metrics = _obs.metrics
        tracer = _obs.tracer
        flight = _obs.flightrec
        if metrics is not None:
            metrics.inc("net.timeouts")
        if tracer.enabled:
            tracer.event(
                "scheduler.timeout",
                round=round_number,
                unfinished=[
                    i for i, s in self._honest.items() if not s.finished
                ],
            )
        if flight is not None:
            unfinished = [
                i for i, s in self._honest.items() if not s.finished
            ]
            flight.push(
                "scheduler.timeout",
                round=round_number,
                session=self.session,
                unfinished=unfinished,
            )
            _flightrec.dump_if_active(
                "timeout",
                session=self.session,
                round=round_number,
                timeout_rounds=self.timeout_rounds,
                unfinished=unfinished,
            )

    def _collect_corrupted_traffic(
        self, corrupted_outboxes: Dict[int, Any]
    ) -> List[Message]:
        """Validate and stamp the adversary's outboxes for one round."""
        corrupted_traffic: List[Message] = []
        for i, drafts in corrupted_outboxes.items():
            if i not in self.adversary.corrupted:
                raise ProtocolError(
                    f"adversary produced messages for uncorrupted party {i}"
                )
            for draft in drafts or []:
                if isinstance(draft, Message):
                    # Allow adversaries to forge sender fields only among
                    # corrupted identities (channels are authenticated).
                    if draft.sender not in self.adversary.corrupted:
                        raise ProtocolError(
                            "adversary tried to forge an honest sender"
                        )
                    corrupted_traffic.append(draft)
                elif isinstance(draft, Draft):
                    corrupted_traffic.append(draft.stamped(i))
                else:
                    raise ProtocolError(
                        f"adversary yielded {type(draft).__name__}"
                    )
        return corrupted_traffic

    def _observe_round(
        self,
        round_number: int,
        traffic: Sequence[Message],
        honest_traffic: Sequence[Message],
        corrupted_traffic: Sequence[Message],
        **extra: Any,
    ) -> None:
        """Fold one round (or event batch) into metrics/trace/flight records.

        ``extra`` fields travel with the flight-recorder summary — the
        event runtime adds its batch time and delivery count, turning the
        round summary into an event-batch summary without changing the
        record kind tooling keys on.
        """
        metrics = _obs.metrics
        tracer = _obs.tracer
        flight = _obs.flightrec
        if metrics is not None:
            metrics.inc("net.rounds")
            metrics.inc("net.messages.sent", len(traffic))
            metrics.inc("net.messages.honest", len(honest_traffic))
            metrics.inc("net.messages.corrupted", len(corrupted_traffic))
            round_bytes = 0
            for message in traffic:
                size = payload_size(message.payload)
                round_bytes += size
                metrics.inc(f"net.messages.sent.party.{message.sender}")
                metrics.inc(f"net.bytes.sent.party.{message.sender}", size)
                if message.is_broadcast:
                    metrics.inc("net.messages.broadcast")
            metrics.inc("net.bytes.sent", round_bytes)
            metrics.observe("net.round.messages", len(traffic))
            metrics.observe("net.round.bytes", round_bytes)
        if tracer.enabled:
            tracer.event(
                "scheduler.round",
                round=round_number,
                messages=len(traffic),
                honest=len(honest_traffic),
                corrupted=len(corrupted_traffic),
                **extra,
            )
        if flight is not None:
            for message in traffic:
                flight.record_message(round_number, message)
            flight.push(
                "round",
                round=round_number,
                session=self.session,
                messages=len(traffic),
                honest=len(honest_traffic),
                corrupted=len(corrupted_traffic),
                **extra,
            )

    def _finalize(self, rounds: List[RoundRecord], timed_out: bool) -> Execution:
        """Collect outputs (applying the timeout fallback) into an Execution."""
        metrics = _obs.metrics
        outputs = {}
        for i, state in self._honest.items():
            if state.finished or not timed_out:
                outputs[i] = state.output
            elif callable(self.timeout_output):
                outputs[i] = self.timeout_output(i)
            else:
                outputs[i] = self.timeout_output
        faults = (
            list(self.fault_injector.records)
            if self.fault_injector is not None
            else []
        )
        if self.fault_injector is not None and metrics is not None:
            undelivered = self.fault_injector.undelivered
            if undelivered:
                metrics.inc("faults.delayed.undelivered", undelivered)
        return Execution(
            n=self.n,
            corrupted=frozenset(self.adversary.corrupted),
            inputs=self.inputs,
            outputs=outputs,
            adversary_output=self.adversary.finish(),
            rounds=rounds,
            config=self.config,
            seed=self.seed,
            faults=faults,
            timed_out=timed_out,
            runtime=self.runtime_name,
        )
